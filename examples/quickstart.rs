//! Quickstart: monitor one simulated call, then watch vids catch a BYE DoS.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vids::attacks::craft::{self, Target};
use vids::attacks::AttackKind;
use vids::netsim::time::SimTime;
use vids::scenario::{Testbed, TestbedConfig};

fn main() {
    // A small twin-enterprise testbed: 2 phones per site, vids inline on
    // site B's perimeter, calls placed by a deterministic random workload.
    let mut config = TestbedConfig::small(42);
    config.workload.mean_interarrival_secs = 5.0;
    config.workload.mean_duration_secs = 600.0;
    let mut tb = Testbed::build(&config);
    let (attacker, _) = tb.add_attacker();

    // Phase 1: run until phone A0 has an established call.
    let snap = tb
        .run_until_call_established(0, SimTime::from_secs(1), SimTime::from_secs(120))
        .expect("a call should establish");
    println!("call established: {}", snap.call_id);
    println!(
        "  caller {} -> callee {}",
        snap.caller_addr, snap.callee_addr
    );
    println!(
        "  media: {} (ssrc {:#010x})",
        snap.callee_media.unwrap(),
        snap.caller_ssrc.unwrap()
    );
    println!(
        "  alerts so far: {} (clean traffic)",
        tb.vids_alerts().len()
    );

    // Phase 2: the attacker sniffed the dialog and forges a BYE to the
    // callee, impersonating the caller. The callee hangs up; the caller,
    // oblivious, keeps streaming RTP.
    let attack_at = tb.ent.sim.now() + SimTime::from_secs(2);
    let (victim, spoof_src) = snap.endpoints(Target::Callee);
    let message = craft::spoofed_bye(&snap, Target::Callee);
    for k in 0..3u64 {
        tb.attacker_mut(attacker).schedule(
            attack_at + SimTime::from_millis(k * 100),
            AttackKind::SpoofedBye {
                victim,
                message: message.clone(),
                spoof_src,
            },
        );
    }
    println!("\nattacker launches spoofed BYE at t = {attack_at}");

    // Phase 3: vids's RTP machine armed timer T on the BYE; RTP arriving
    // after T expires is the cross-protocol attack signature (paper Fig. 5).
    tb.run_until(attack_at + SimTime::from_secs(5));
    println!("\nvids alert log:");
    for alert in tb.vids_alerts() {
        println!("  {alert}");
    }
    let vids = tb.vids().unwrap();
    println!(
        "\nmonitor saw {} packets, {} calls, {} B of per-call state",
        vids.packets_seen(),
        vids.vids().factbase_stats().calls_created,
        vids.vids().memory_bytes()
    );
}
