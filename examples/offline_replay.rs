//! Offline analysis: capture perimeter traffic with a passive trace tap,
//! then replay the capture through a fresh vids instance — the
//! "record now, analyze later" deployment mode, and a demonstration that
//! the IDS is a pure function of the packet stream.
//!
//! ```sh
//! cargo run --example offline_replay
//! ```

use vids::attacks::craft::{self, Target};
use vids::attacks::AttackKind;
use vids::core::report::AlertReport;
use vids::core::{Config, NullSink, VidsPool};
use vids::netsim::node::TapNode;
use vids::netsim::time::SimTime;
use vids::netsim::trace::{CaptureFilter, TraceTap};
use vids::netsim::workload::WorkloadSpec;
use vids::scenario::{Testbed, TestbedConfig};

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn main() {
    // Phase 1: run the testbed with a *recording* trace tap (no vids, no
    // added delay) while an attacker spams a call's media stream.
    let mut config = TestbedConfig::small(77).without_vids();
    config.workload = WorkloadSpec {
        callers: 2,
        callees: 2,
        mean_interarrival_secs: 5.0,
        mean_duration_secs: 600.0,
        horizon: secs(30),
    };
    // A 100k-packet VoIP-only trace tap instead of the inline monitor.
    let mut tb = Testbed::build_capture(
        &config,
        Box::new(TraceTap::new(100_000).with_filter(CaptureFilter::VoipOnly)),
    );
    let (attacker, _) = tb.add_attacker();
    let snap = tb
        .run_until_call_established(0, secs(1), secs(60))
        .expect("call");
    let at = tb.ent.sim.now() + secs(1);
    let (seq, ts) = snap.caller_rtp_cursor.unwrap();
    tb.attacker_mut(attacker).schedule(
        at,
        AttackKind::MediaSpam {
            victim: snap.callee_media.unwrap(),
            ssrc: snap.caller_ssrc.unwrap(),
            payload_type: 18,
            start_seq: seq.wrapping_add(5_000),
            start_timestamp: ts.wrapping_add(800_000),
            spoof_src: snap.caller_media.unwrap(),
            rate_pps: 100.0,
            count: 25,
        },
    );
    // Also a lazy spoofed BYE for a second detection in the capture.
    let mut lazy = snap.clone();
    lazy.caller_from.set_tag("forged");
    let (victim, spoof_src) = lazy.endpoints(Target::Callee);
    let bye = craft::spoofed_bye(&lazy, Target::Callee);
    for k in 0..3 {
        tb.attacker_mut(attacker).schedule(
            at + secs(2) + SimTime::from_millis(k * 100),
            AttackKind::SpoofedBye {
                victim,
                message: bye.clone(),
                spoof_src,
            },
        );
    }
    tb.run_until(at + secs(8));

    let tap = tb
        .ent
        .sim
        .node_as::<TapNode>(tb.ent.tap)
        .tap_as::<TraceTap>();
    println!(
        "captured {} VoIP packets at the perimeter",
        tap.captured().len()
    );
    println!("busiest flows:");
    for (flow, n) in tap.flow_summary().into_iter().take(5) {
        println!("  {n:>6}  {flow}");
    }

    // Phase 2: replay the capture through a fresh offline monitor — here a
    // 4-shard pool ingesting the whole capture as one batch. Offline replay
    // is the batch API's natural habitat: the capture timestamps ride along
    // in `sent_at`, and the deterministic merge makes the report identical
    // to a packet-at-a-time single-engine replay.
    let config = Config::builder().shards(4).build().unwrap();
    let mut offline = VidsPool::with_cost(config, vids::core::CostModel::free());
    let batch: Vec<_> = tap
        .captured()
        .iter()
        .map(|c| {
            let mut p = c.packet.clone();
            p.sent_at = c.at;
            p
        })
        .collect();
    offline.process_batch(&batch, SimTime::ZERO, &mut NullSink);
    offline.tick(
        tap.captured().last().map(|c| c.at).unwrap_or(SimTime::ZERO) + secs(30),
        &mut NullSink,
    );

    println!(
        "\noffline analysis of the capture ({} shards):",
        offline.shards()
    );
    let report = AlertReport::from_alerts(offline.alerts());
    print!("{report}");
    println!("\nCSV:\n{}", report.to_csv());

    // Bonus: export the capture as a Wireshark-compatible pcap.
    let pcap = vids::netsim::trace::to_pcap_bytes(tap.captured());
    let path = std::env::temp_dir().join("vids_capture.pcap");
    if std::fs::write(&path, &pcap).is_ok() {
        println!("pcap written to {} ({} bytes)", path.display(), pcap.len());
    }
}
