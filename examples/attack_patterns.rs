//! Prints the attack patterns derivable from the shipped protocol state
//! machines — the paper's §4.2: "The paths along the transitions from s_i
//! to s_attack constitute attack patterns."
//!
//! ```sh
//! cargo run --example attack_patterns
//! ```

use vids::core::machines::{flood, rtp, sip};
use vids::core::Config;
use vids::efsm::analysis::attack_paths;
use vids::efsm::machine::MachineDef;

fn show(def: &MachineDef) {
    println!(
        "\n### machine `{}` — {} states, {} transitions",
        def.name(),
        def.state_count(),
        def.transition_count()
    );
    let paths = attack_paths(def);
    if paths.is_empty() {
        println!("(no attack states)");
        return;
    }
    for p in paths {
        println!("{p}");
    }
}

fn main() {
    let cfg = Config::default();
    println!("attack patterns derived from the specification machines");
    println!("(every path from the initial state to an annotated attack state)");
    show(&sip::sip_call_machine(&cfg));
    show(&rtp::rtp_session_machine(&cfg));
    show(&flood::invite_flood_machine(&cfg));
    show(&flood::response_flood_machine(&cfg));
}
