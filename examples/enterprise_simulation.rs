//! The paper's §7.1 experiment: 20 UAs per enterprise calling across the
//! Internet for (by default) 10 simulated minutes, vids inline. Prints the
//! Fig. 8-style workload summary and the QoS measurements of Figs. 9–10.
//!
//! ```sh
//! cargo run --release --example enterprise_simulation [minutes]
//! ```
//!
//! Pass `120` for the paper's full two-hour horizon (needs `--release`).

use vids::netsim::stats::Summary;
use vids::netsim::time::SimTime;
use vids::scenario::{Testbed, TestbedConfig};

fn main() {
    let minutes: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);

    let mut config = TestbedConfig::paper(1);
    config.workload.horizon = SimTime::from_secs(minutes * 60);
    println!(
        "simulating {} UAs/site for {minutes} min (seed {})...",
        config.uas_per_site, config.seed
    );
    let mut tb = Testbed::build(&config);
    println!("planned calls: {}", tb.plan().len());
    tb.run_until(SimTime::from_secs(minutes * 60 + 120));

    // ---- Fig. 8: call arrivals and durations at proxy B ---------------
    let proxy = tb.proxy_b();
    println!("\n=== Fig. 8: workload observed at enterprise B's proxy ===");
    println!("INVITE arrivals: {}", proxy.arrivals().len());
    let bins = proxy.arrivals().binned(600.0);
    println!("{:>10} {:>8}", "t (min)", "calls");
    for (start, count, _) in bins {
        println!("{:>10.0} {:>8}", start / 60.0, count);
    }
    let durations = proxy.durations().summary();
    println!(
        "call durations: n={} mean={:.1}s min={:.1}s max={:.1}s",
        durations.count(),
        durations.mean(),
        durations.min(),
        durations.max()
    );

    // ---- Fig. 9 / Fig. 10 inputs ----------------------------------------
    let mut setup = Summary::new();
    let mut rtp_delay = Summary::new();
    let mut jitter = Summary::new();
    let mut placed = 0u64;
    let mut completed = 0u64;
    for i in 0..config.uas_per_site {
        let s = tb.ua_a_stats(i);
        setup.merge(&s.setup_delays.summary());
        rtp_delay.merge(&s.rtp_delay);
        jitter.merge(&s.rtp_jitter);
        placed += s.calls_placed;
        completed += s.calls_completed;
    }
    println!("\n=== call outcomes ===");
    println!("placed {placed}, completed {completed}");
    println!("\n=== Fig. 9 input: call setup delay (with vids) ===");
    println!("{setup}");
    println!("\n=== Fig. 10 input: RTP QoS (with vids) ===");
    println!("one-way delay: {rtp_delay}");
    println!("jitter:        {jitter}");

    // ---- monitor health ---------------------------------------------------
    let vids = tb.vids().unwrap();
    println!("\n=== vids ===");
    println!("packets seen:    {}", vids.packets_seen());
    println!("counters:        {:?}", vids.vids().counters());
    println!("fact base:       {:?}", vids.vids().factbase_stats());
    println!("memory:          {} B", vids.vids().memory_bytes());
    println!("CPU overhead:    {:.2} %", vids.cpu_overhead() * 100.0);
    println!("alerts:          {}", vids.alerts().len());
    for a in vids.alerts() {
        println!("  {a}");
    }
    if vids.alerts().is_empty() {
        println!("  (none — clean workload, zero false positives)");
    }
}
