//! The attack gauntlet: every §3 threat fired at the monitored enterprise,
//! one scenario per run, with the resulting alert log — a live version of
//! the detection-accuracy table (experiment E6).
//!
//! ```sh
//! cargo run --example attack_gauntlet
//! ```

use vids::attacks::craft::{self, Target};
use vids::attacks::AttackKind;
use vids::core::alert::labels;
use vids::netsim::time::SimTime;
use vids::netsim::topology::{ua_addr, SITE_B};
use vids::scenario::{Testbed, TestbedConfig};

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn testbed(seed: u64) -> Testbed {
    let mut config = TestbedConfig::small(seed);
    config.workload.mean_interarrival_secs = 5.0;
    config.workload.mean_duration_secs = 600.0;
    config.workload.horizon = secs(30);
    Testbed::build(&config)
}

/// Runs one scenario; returns (detected labels, expected label hit?).
fn run_scenario(
    name: &str,
    expected: &str,
    mut setup: impl FnMut(&mut Testbed, vids::netsim::engine::NodeId),
) -> bool {
    let mut tb = testbed(0xA77AC4 + expected.len() as u64);
    let (attacker, _) = tb.add_attacker();
    setup(&mut tb, attacker);
    let end = tb.ent.sim.now() + secs(15);
    tb.run_until(end);
    let hit = tb.vids_alerts().iter().any(|a| a.label == expected);
    let verdict = if hit { "DETECTED" } else { "missed  " };
    println!("{verdict}  {name:<28} -> expecting {expected}");
    for a in tb.vids_alerts() {
        println!("            {a}");
    }
    hit
}

fn main() {
    println!("=== vids attack gauntlet (paper §3 threat model) ===\n");
    let mut score = 0;
    let total = 6;

    score += run_scenario("INVITE flooding", labels::INVITE_FLOOD, |tb, atk| {
        let victim = vids::agents::ua_uri(0, vids::agents::site_domain(SITE_B));
        tb.attacker_mut(atk).schedule(
            secs(5),
            AttackKind::InviteFlood {
                target_uri: victim,
                target_addr: ua_addr(SITE_B, 0),
                rate_pps: 100.0,
                count: 40,
            },
        );
    }) as i32;

    score += run_scenario(
        "BYE DoS (cross-protocol)",
        labels::RTP_AFTER_BYE,
        |tb, atk| {
            let snap = tb
                .run_until_call_established(0, secs(1), secs(60))
                .expect("call");
            let at = tb.ent.sim.now() + secs(1);
            let (victim, spoof_src) = snap.endpoints(Target::Callee);
            let message = craft::spoofed_bye(&snap, Target::Callee);
            for k in 0..3 {
                tb.attacker_mut(atk).schedule(
                    at + SimTime::from_millis(k * 100),
                    AttackKind::SpoofedBye {
                        victim,
                        message: message.clone(),
                        spoof_src,
                    },
                );
            }
        },
    ) as i32;

    score += run_scenario("media spamming", labels::MEDIA_SPAM, |tb, atk| {
        let snap = tb
            .run_until_call_established(0, secs(1), secs(60))
            .expect("call");
        let at = tb.ent.sim.now() + secs(1);
        let (seq, ts) = snap.caller_rtp_cursor.unwrap();
        tb.attacker_mut(atk).schedule(
            at,
            AttackKind::MediaSpam {
                victim: snap.callee_media.unwrap(),
                ssrc: snap.caller_ssrc.unwrap(),
                payload_type: 18,
                start_seq: seq.wrapping_add(1_000),
                start_timestamp: ts.wrapping_add(200_000),
                spoof_src: snap.caller_media.unwrap(),
                rate_pps: 100.0,
                count: 20,
            },
        );
    }) as i32;

    score += run_scenario("RTP flooding", labels::RTP_FOREIGN_SOURCE, |tb, atk| {
        let snap = tb
            .run_until_call_established(0, secs(1), secs(60))
            .expect("call");
        let at = tb.ent.sim.now() + secs(1);
        tb.attacker_mut(atk).schedule(
            at,
            AttackKind::RtpFlood {
                victim: snap.callee_media.unwrap(),
                payload_type: 18,
                payload_bytes: 160,
                rate_pps: 400.0,
                count: 80,
            },
        );
    }) as i32;

    score += run_scenario("call hijack (re-INVITE)", labels::CALL_HIJACK, |tb, atk| {
        let snap = tb
            .run_until_call_established(0, secs(1), secs(60))
            .expect("call");
        let at = tb.ent.sim.now() + secs(1);
        let (victim, spoof_src) = snap.endpoints(Target::Callee);
        let message = craft::spoofed_reinvite(
            &snap,
            vids::netsim::topology::internet_addr(0).with_port(44_000),
        );
        for k in 0..3 {
            tb.attacker_mut(atk).schedule(
                at + SimTime::from_millis(k * 100),
                AttackKind::ReinviteHijack {
                    victim,
                    message: message.clone(),
                    spoof_src,
                },
            );
        }
    }) as i32;

    score += run_scenario("DRDoS reflection", labels::RESPONSE_FLOOD, |tb, atk| {
        let victim = ua_addr(vids::netsim::topology::SITE_A, 1);
        tb.attacker_mut(atk).schedule(
            secs(5),
            AttackKind::Drdos {
                reflectors: vec![ua_addr(SITE_B, 0), ua_addr(SITE_B, 1)],
                victim,
                per_reflector: 15,
                rate_pps: 200.0,
            },
        );
    }) as i32;

    println!("\n=== score: {score}/{total} attacks detected ===");
}
