//! Crude phase-by-phase timing of the pcap replay path (dev aid).

use std::time::Instant;

use vids::core::classify::{classify_wire, WireProto};
use vids::core::{Config, CostModel, NullSink, VidsPool};
use vids::ingest::demux::{classify_datagram, demux};
use vids::ingest::pcap::{PcapReader, PcapWriter};
use vids::netsim::packet::Address;
use vids::netsim::packet::{Packet, Payload};
use vids::netsim::time::SimTime;
use vids::sip::view::parse_view;

/// Local clone of `vids_bench::synth_call_batch` (vids doesn't depend on
/// the bench crate).
fn synth_call_batch(calls: usize, rtp_per_call: usize) -> Vec<Packet> {
    use vids::rtp::packet::RtpPacket;
    use vids::sdp::{Codec, SessionDescription};
    use vids::sip::{Method, Request, SipUri, StatusCode};

    let mut timed: Vec<(u64, Address, Address, Payload)> = Vec::new();
    for i in 0..calls {
        let a = (i / 250) as u8;
        let b = (i % 250 + 1) as u8;
        let caller = Address::new(10, 1, a, b, 5060);
        let callee = Address::new(10, 2, a, b, 5060);
        let caller_ip = format!("10.1.{a}.{b}");
        let callee_ip = format!("10.2.{a}.{b}");
        let t0 = (i as u64) * 3;

        let offer = SessionDescription::audio_offer("alice", &caller_ip, 20_000, &[Codec::G729]);
        let invite = Request::invite(
            &SipUri::new("alice", "a.example.com"),
            &SipUri::new("bob", "b.example.com"),
            &format!("fig8-{i}"),
        )
        .with_body(vids::sdp::MIME_TYPE, offer.to_string());
        timed.push((t0, caller, callee, Payload::Sip(invite.to_string())));

        let answer = SessionDescription::audio_offer("bob", &callee_ip, 30_000, &[Codec::G729]);
        let ok = invite
            .response(StatusCode::OK)
            .with_to_tag("tt")
            .with_body(vids::sdp::MIME_TYPE, answer.to_string());
        timed.push((t0 + 20, callee, caller, Payload::Sip(ok.to_string())));
        let ack = Request::in_dialog(Method::Ack, &invite, 1, Some("tt"));
        timed.push((t0 + 40, caller, callee, Payload::Sip(ack.to_string())));

        for j in 0..rtp_per_call {
            let fwd = j % 2 == 0;
            let k = (j / 2) as u64;
            let rtp = RtpPacket::new(
                18,
                (100 + k) as u16,
                (k * 80) as u32,
                if fwd { 7 } else { 9 },
            )
            .with_payload(vec![0; 10]);
            let (src, dst) = if fwd {
                (caller.with_port(20_000), callee.with_port(30_000))
            } else {
                (callee.with_port(30_000), caller.with_port(20_000))
            };
            timed.push((t0 + 50 + k * 20, src, dst, Payload::Rtp(rtp.to_bytes())));
        }

        let t_bye = t0 + 60 + (rtp_per_call as u64 / 2) * 20;
        let bye = Request::in_dialog(Method::Bye, &invite, 2, Some("tt"));
        timed.push((t_bye, caller, callee, Payload::Sip(bye.to_string())));
        let bye_ok = bye.response(StatusCode::OK);
        timed.push((t_bye + 20, callee, caller, Payload::Sip(bye_ok.to_string())));
    }
    timed.sort_by_key(|(t, ..)| *t);
    timed
        .into_iter()
        .enumerate()
        .map(|(id, (t, src, dst, payload))| Packet {
            src,
            dst,
            payload,
            id: id as u64,
            sent_at: SimTime::from_millis(t),
        })
        .collect()
}

fn to_socket(addr: vids::netsim::packet::Address) -> std::net::SocketAddrV4 {
    let [a, b, c, d] = addr.ip.to_be_bytes();
    std::net::SocketAddrV4::new(std::net::Ipv4Addr::new(a, b, c, d), addr.port)
}

fn main() {
    let batch = synth_call_batch(150, 40);
    let mut w = PcapWriter::new();
    for p in &batch {
        let payload: Vec<u8> = match &p.payload {
            Payload::Sip(text) => text.clone().into_bytes(),
            Payload::Rtp(bytes) | Payload::Raw(bytes) => bytes.clone(),
        };
        w.push_udp(p.sent_at, to_socket(p.src), to_socket(p.dst), &payload);
    }
    let capture = w.into_bytes();
    let n = batch.len();
    let reps = 20usize;

    // Phase A: pcap decode only.
    let start = Instant::now();
    let mut count = 0usize;
    for _ in 0..reps {
        let mut r = PcapReader::new(&capture).unwrap();
        while let Some(d) = r.next_datagram().unwrap() {
            count += d.payload.len();
        }
    }
    let a = start.elapsed();
    eprintln!(
        "pcap decode only:      {:>9.0} pps (checksum {count})",
        (n * reps) as f64 / a.as_secs_f64()
    );

    // Phase B: decode + demux.
    let start = Instant::now();
    let mut count = 0usize;
    for _ in 0..reps {
        let mut r = PcapReader::new(&capture).unwrap();
        while let Some(d) = r.next_datagram().unwrap() {
            count += demux(d.src.port(), d.dst.port(), d.payload) as usize;
        }
    }
    let b = start.elapsed();
    eprintln!(
        "decode + demux:        {:>9.0} pps ({count})",
        (n * reps) as f64 / b.as_secs_f64()
    );

    // Phase C: decode + demux + classify (full wire classify incl. events).
    let start = Instant::now();
    let mut count = 0usize;
    for _ in 0..reps {
        let mut r = PcapReader::new(&capture).unwrap();
        while let Some(d) = r.next_datagram().unwrap() {
            let (_, c) = classify_datagram(&d);
            count += matches!(c, vids::core::classify::Classified::Sip { .. }) as usize;
        }
    }
    let c = start.elapsed();
    eprintln!(
        "decode+demux+classify: {:>9.0} pps ({count})",
        (n * reps) as f64 / c.as_secs_f64()
    );

    // Phase C2: parse_view only over the SIP texts.
    let sip_texts: Vec<&str> = batch
        .iter()
        .filter_map(|p| match &p.payload {
            Payload::Sip(t) => Some(t.as_str()),
            _ => None,
        })
        .collect();
    let start = Instant::now();
    let mut ok = 0usize;
    for _ in 0..reps * 10 {
        for t in &sip_texts {
            ok += parse_view(std::hint::black_box(t)).is_ok() as usize;
        }
    }
    let c2 = start.elapsed();
    eprintln!(
        "parse_view only:       {:>9.0} views/s over {} SIP msgs ({ok})",
        (sip_texts.len() * reps * 10) as f64 / c2.as_secs_f64(),
        sip_texts.len()
    );

    // Phase C2b: reject path — malformed floods must fail on the start
    // line without paying the whole-message header walk (the PR 7
    // `sip_parse_reject_malformed` regression was exactly that).
    let malformed: &[&str] = &[
        "HELLO sip:bob@example.com SIP/2.0\r\nCall-ID: x\r\n\r\n",
        "INVITE not-a-uri SIP/2.0\r\n\r\n",
        "SIP/2.0 9xx Nope\r\n\r\n",
        "garbage",
    ];
    let start = Instant::now();
    let mut rejected = 0usize;
    for _ in 0..reps * 1000 {
        for t in malformed {
            rejected += vids::sip::parse::parse_message(std::hint::black_box(t)).is_err() as usize;
            rejected += parse_view(std::hint::black_box(t)).is_err() as usize;
        }
    }
    let c2b = start.elapsed();
    eprintln!(
        "reject path (owned+view): {:>9.0} rejects/s ({rejected})",
        (malformed.len() * reps * 1000 * 2) as f64 / c2b.as_secs_f64()
    );

    // Phase C3: classify_wire only (classify incl. event building).
    let wires: Vec<(WireProto, &[u8], _, _)> = batch
        .iter()
        .filter_map(|p| match &p.payload {
            Payload::Sip(t) => Some((WireProto::Sip, t.as_bytes(), p.src, p.dst)),
            Payload::Rtp(b) => Some((WireProto::Rtp, b.as_slice(), p.src, p.dst)),
            _ => None,
        })
        .collect();
    let start = Instant::now();
    let mut ok = 0usize;
    for _ in 0..reps {
        for (proto, payload, src, dst) in &wires {
            let c = classify_wire(*proto, payload, *src, *dst);
            ok += matches!(c, vids::core::classify::Classified::Ignored) as usize;
        }
    }
    let c3 = start.elapsed();
    eprintln!(
        "classify_wire only:    {:>9.0} pps ({ok})",
        (wires.len() * reps) as f64 / c3.as_secs_f64()
    );

    // Phase D: full replay via pool.
    let start = Instant::now();
    let mut total = 0u64;
    for _ in 0..reps {
        let config = Config::builder().shards(1).build().unwrap();
        let mut pool = VidsPool::with_cost(config, CostModel::free());
        let report = vids::ingest::replay::replay_pcap(
            capture.clone(),
            &mut pool,
            256,
            None,
            None,
            &mut NullSink,
        )
        .unwrap();
        total += report.datagrams;
    }
    let d = start.elapsed();
    eprintln!(
        "full replay (1 shard): {:>9.0} pps ({total})",
        (n * reps) as f64 / d.as_secs_f64()
    );

    // Phase E: engine only — pre-classified wire events fed to the pool.
    let events: Vec<vids::core::pool::WireEvent> = {
        let mut r = PcapReader::new(&capture).unwrap();
        let mut v = Vec::new();
        while let Some(dg) = r.next_datagram().unwrap() {
            let (_, c) = classify_datagram(&dg);
            v.push(vids::core::pool::WireEvent {
                classified: c,
                at: dg.at,
            });
        }
        v
    };
    let start = Instant::now();
    for _ in 0..reps {
        let config = Config::builder().shards(1).build().unwrap();
        let mut pool = VidsPool::with_cost(config, CostModel::free());
        for chunk in events.chunks(256) {
            let mut batch: Vec<_> = chunk.to_vec();
            let at = batch.first().map(|e| e.at).unwrap_or(SimTime::ZERO);
            pool.process_wire_batch(&mut batch, at, &mut NullSink);
        }
        pool.tick(SimTime::from_secs(120), &mut NullSink);
    }
    let e = start.elapsed();
    eprintln!(
        "engine only (preclassified, incl clone): {:>9.0} pps",
        (n * reps) as f64 / e.as_secs_f64()
    );

    let _ = Packet {
        src: batch[0].src,
        dst: batch[0].dst,
        payload: Payload::Raw(vec![]),
        id: 0,
        sent_at: SimTime::ZERO,
    };
}
