//! Live monitoring: the simulation runs on a worker thread and streams
//! vids alerts over a channel to the operator console as they happen —
//! the "notifies administrators for further analysis" loop of §5.
//!
//! ```sh
//! cargo run --example live_monitor
//! ```

use std::thread;

use crossbeam::channel;

use vids::attacks::craft::{self, Target};
use vids::attacks::AttackKind;
use vids::core::alert::Alert;
use vids::netsim::time::SimTime;
use vids::scenario::{Testbed, TestbedConfig};

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn main() {
    let (tx, rx) = channel::unbounded::<(SimTime, Alert)>();

    let worker = thread::spawn(move || {
        let mut config = TestbedConfig::small(99);
        config.workload.mean_interarrival_secs = 5.0;
        config.workload.mean_duration_secs = 600.0;
        let mut tb = Testbed::build(&config);
        // Telemetry on: alerts carry the offending call's recent EFSM
        // transitions, and we hand a final metric snapshot to the console.
        tb.enable_telemetry(64);
        let (attacker, _) = tb.add_attacker();

        // Launch a media-spam attack once a call is up.
        let snap = tb
            .run_until_call_established(0, secs(1), secs(60))
            .expect("call");
        let at = tb.ent.sim.now() + secs(2);
        let (seq, ts) = snap.caller_rtp_cursor.unwrap();
        tb.attacker_mut(attacker).schedule(
            at,
            AttackKind::MediaSpam {
                victim: snap.callee_media.unwrap(),
                ssrc: snap.caller_ssrc.unwrap(),
                payload_type: 18,
                start_seq: seq.wrapping_add(3_000),
                start_timestamp: ts.wrapping_add(400_000),
                spoof_src: snap.caller_media.unwrap(),
                rate_pps: 100.0,
                count: 30,
            },
        );
        // And a lazy spoofed BYE a bit later.
        let mut lazy = snap.clone();
        lazy.caller_from.set_tag("forged");
        let (victim, spoof_src) = lazy.endpoints(Target::Callee);
        let bye = craft::spoofed_bye(&lazy, Target::Callee);
        for k in 0..3 {
            tb.attacker_mut(attacker).schedule(
                at + secs(3) + SimTime::from_millis(k * 100),
                AttackKind::SpoofedBye {
                    victim,
                    message: bye.clone(),
                    spoof_src,
                },
            );
        }

        // Step the simulation, forwarding any fresh alerts as they appear.
        let mut forwarded = 0usize;
        let end = at + secs(10);
        let mut now = tb.ent.sim.now();
        while now < end {
            now += SimTime::from_millis(250);
            tb.run_until(now);
            let alerts = tb.vids_alerts();
            while forwarded < alerts.len() {
                tx.send((now, alerts[forwarded].clone())).ok();
                forwarded += 1;
            }
        }
        // Channel closes when tx drops; the console loop ends.
        tb.vids().and_then(|v| v.telemetry_snapshot(now))
    });

    println!("vids live monitor — waiting for alerts...\n");
    for (seen_at, alert) in rx {
        println!("[console @ {seen_at}] {alert}");
        for line in &alert.trace {
            println!("    {line}");
        }
    }
    let snapshot = worker.join().expect("simulation thread");
    if let Some(snap) = snapshot {
        println!("\nfinal telemetry: {}", snap.to_jsonl());
    }
    println!("\nsimulation finished.");
}
