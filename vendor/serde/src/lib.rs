//! Offline stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` as forward-looking
//! markers (no serialization is performed anywhere yet), so this stand-in
//! provides empty marker traits and a derive macro that emits empty impls.
//! If a future PR starts serializing for real, this crate is the seam where
//! the actual wire format gets implemented.

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
