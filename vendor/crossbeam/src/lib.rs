//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! That trades crossbeam's multi-consumer cloneable receivers for the
//! std single-consumer one — sufficient for the workspace, which uses
//! one producer side (cloned freely) and one receiving loop.

pub mod channel {
    //! MPSC channels with the crossbeam-channel surface.

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; errors only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Fetches a value if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks until a value arrives, the timeout elapses, or all
        /// senders are gone.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Iterates over received values, blocking between them.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::unbounded;

        #[test]
        fn values_flow_in_order_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || {
                for i in 0..10 {
                    tx2.send(i).unwrap();
                }
            });
            drop(tx);
            let got: Vec<i32> = rx.into_iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }
    }
}
