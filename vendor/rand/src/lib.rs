//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256++ with a
//! splitmix64 seed expander — deterministic across runs and platforms,
//! which is all the simulator requires.

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps 64 random bits onto [0, 1).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let width = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard the open upper bound against rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expands the seed into the full state, per the
            // xoshiro authors' recommendation.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 100_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }
}
