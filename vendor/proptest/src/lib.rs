//! Offline stand-in for `proptest`.
//!
//! Covers the surface this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`strategy::Strategy`] with `prop_map`, strategies for integer ranges,
//! tuples, regex-subset string patterns, `collection::vec`, `option::of`,
//! `sample::subsequence`, and `any::<T>()`, plus `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Differences from real proptest: no shrinking (a failing case prints its
//! inputs via the assertion message instead of minimizing them), and the
//! per-test RNG seed is a hash of the test's module path, so runs are
//! deterministic across invocations and machines.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::string::generate_pattern;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    /// String patterns are strategies over the regex subset documented in
    /// [`crate::string`].
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain generation for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniform value over the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range for collection::vec");
        VecStrategy { element, size }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.rng.gen_bool(0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some` from `inner` half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod sample {
    //! Sampling strategies over fixed collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`subsequence`].
    pub struct Subsequence<T> {
        items: Vec<T>,
        size: Range<usize>,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let max = self.size.end.min(self.items.len() + 1);
            let n = rng.rng.gen_range(self.size.start..max);
            // Draw n distinct indices, then emit them in source order.
            let mut picked: Vec<usize> = Vec::with_capacity(n);
            while picked.len() < n {
                let idx = rng.rng.gen_range(0..self.items.len());
                if !picked.contains(&idx) {
                    picked.push(idx);
                }
            }
            picked.sort_unstable();
            picked.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }

    /// A subsequence of `items` with length drawn from `size`, preserving
    /// the original order.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: Range<usize>) -> Subsequence<T> {
        assert!(!items.is_empty(), "subsequence of an empty collection");
        assert!(
            size.start <= items.len(),
            "subsequence size exceeds collection"
        );
        Subsequence { items, size }
    }
}

pub mod string {
    //! Generator for the regex subset used as string strategies.
    //!
    //! Supported: character classes `[a-z0-9-]` (ranges, literals, a
    //! trailing/leading `-`), `.` (printable ASCII plus tab and CR),
    //! literal characters, `\`-escapes, groups `(..)`, and the repetition
    //! operators `{m}`, `{m,n}`, `?`, `*`, `+`.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::iter::Peekable;
    use std::str::Chars;

    enum Kind {
        /// One character drawn from this alphabet.
        Chars(Vec<char>),
        /// A nested group.
        Group(Vec<Atom>),
    }

    struct Atom {
        kind: Kind,
        min: u32,
        max: u32,
    }

    fn dot_alphabet() -> Vec<char> {
        // Printable ASCII plus the whitespace a text protocol actually
        // meets; '\n' is excluded to match regex '.' semantics.
        let mut v: Vec<char> = (0x20u8..=0x7E).map(char::from).collect();
        v.push('\t');
        v.push('\r');
        v
    }

    fn parse_class(chars: &mut Peekable<Chars>) -> Vec<char> {
        let mut alphabet = Vec::new();
        loop {
            let c = chars
                .next()
                .expect("string strategy: unterminated character class");
            match c {
                ']' => break,
                '\\' => alphabet.push(
                    chars
                        .next()
                        .expect("string strategy: dangling escape in class"),
                ),
                _ => {
                    if chars.peek() == Some(&'-') {
                        let mut look = chars.clone();
                        look.next(); // the '-'
                        match look.peek() {
                            Some(&']') | None => alphabet.push(c), // literal '-' handled next loop
                            Some(&hi) => {
                                chars.next();
                                chars.next();
                                assert!(c <= hi, "string strategy: inverted class range");
                                alphabet
                                    .extend((c..=hi).filter(|ch| ch.is_ascii() || c > '\u{7f}'));
                            }
                        }
                    } else {
                        alphabet.push(c);
                    }
                }
            }
        }
        assert!(
            !alphabet.is_empty(),
            "string strategy: empty character class"
        );
        alphabet
    }

    fn parse_repetition(chars: &mut Peekable<Chars>) -> (u32, u32) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut min_text = String::new();
                let mut max_text = None;
                loop {
                    match chars
                        .next()
                        .expect("string strategy: unterminated repetition")
                    {
                        '}' => break,
                        ',' => max_text = Some(String::new()),
                        d => match &mut max_text {
                            Some(s) => s.push(d),
                            None => min_text.push(d),
                        },
                    }
                }
                let min: u32 = min_text.parse().expect("string strategy: bad repetition");
                let max = match max_text {
                    Some(s) => s.parse().expect("string strategy: bad repetition"),
                    None => min,
                };
                assert!(min <= max, "string strategy: inverted repetition");
                (min, max)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        }
    }

    fn parse_seq(chars: &mut Peekable<Chars>, in_group: bool) -> Vec<Atom> {
        let mut atoms = Vec::new();
        while let Some(&c) = chars.peek() {
            if c == ')' {
                assert!(in_group, "string strategy: unmatched ')'");
                return atoms;
            }
            chars.next();
            let kind = match c {
                '[' => Kind::Chars(parse_class(chars)),
                '(' => {
                    let inner = parse_seq(chars, true);
                    assert_eq!(
                        chars.next(),
                        Some(')'),
                        "string strategy: unterminated group"
                    );
                    Kind::Group(inner)
                }
                '.' => Kind::Chars(dot_alphabet()),
                '\\' => Kind::Chars(vec![chars
                    .next()
                    .expect("string strategy: dangling escape")]),
                _ => Kind::Chars(vec![c]),
            };
            let (min, max) = parse_repetition(chars);
            atoms.push(Atom { kind, min, max });
        }
        assert!(!in_group, "string strategy: unterminated group");
        atoms
    }

    fn generate_seq(atoms: &[Atom], rng: &mut TestRng, out: &mut String) {
        for atom in atoms {
            let reps = rng.rng.gen_range(atom.min..=atom.max);
            for _ in 0..reps {
                match &atom.kind {
                    Kind::Chars(alphabet) => {
                        out.push(alphabet[rng.rng.gen_range(0..alphabet.len())]);
                    }
                    Kind::Group(inner) => generate_seq(inner, rng, out),
                }
            }
        }
    }

    /// Generates one string matching `pattern`.
    pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse_seq(&mut pattern.chars().peekable(), false);
        let mut out = String::new();
        generate_seq(&atoms, rng, &mut out);
        out
    }
}

pub mod test_runner {
    //! Per-test configuration and RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the offline suite
            // quick while still exercising the generators broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test RNG (seeded from the test's path).
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// An RNG whose seed is a stable hash of `test_path`.
        pub fn for_test(test_path: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_path.bytes() {
                seed ^= byte as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(seed),
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn` body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let ($($pat,)+) =
                    ($( $crate::strategy::Strategy::generate(&($strat), &mut __rng) ,)+);
                $body
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_strings_match_their_shape() {
        let mut rng = TestRng::for_test("shape");
        for _ in 0..500 {
            let s = crate::string::generate_pattern("[a-z][a-z0-9]{0,8}", &mut rng);
            assert!((1..=9).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let host =
                crate::string::generate_pattern("[a-z][a-z0-9]{0,6}(\\.[a-z]{2,5}){1,2}", &mut rng);
            let labels: Vec<&str> = host.split('.').collect();
            assert!(labels.len() == 2 || labels.len() == 3, "{host:?}");
            assert!(labels.iter().all(|l| !l.is_empty()));

            let dashed = crate::string::generate_pattern("[a-z0-9-]{3,24}", &mut rng);
            assert!((3..=24).contains(&dashed.len()));
            assert!(dashed
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn dot_excludes_newline() {
        let mut rng = TestRng::for_test("dot");
        for _ in 0..200 {
            let s = crate::string::generate_pattern(".{0,400}", &mut rng);
            assert!(s.len() <= 400);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn subsequence_preserves_order_and_bounds() {
        let mut rng = TestRng::for_test("subseq");
        let items = vec![1, 2, 3, 4];
        let strat = crate::sample::subsequence(items.clone(), 1..5);
        for _ in 0..200 {
            let sub = strat.generate(&mut rng);
            assert!((1..=4).contains(&sub.len()));
            let mut positions = sub
                .iter()
                .map(|v| items.iter().position(|i| i == v).unwrap());
            let mut last = None;
            for p in &mut positions {
                assert!(last.is_none_or(|l| p > l), "order not preserved");
                last = Some(p);
            }
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = TestRng::for_test("opt");
        let strat = crate::option::of(0u8..10);
        let values: Vec<Option<u8>> = (0..100).map(|_| strat.generate(&mut rng)).collect();
        assert!(values.iter().any(|v| v.is_some()));
        assert!(values.iter().any(|v| v.is_none()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_patterns(x in 0u32..50, flip in any::<bool>(), s in "[ab]{2,3}") {
            prop_assert!(x < 50);
            prop_assert_ne!(s.len(), 0);
            let toggled = !flip;
            prop_assert_ne!(flip, toggled);
            prop_assert!(s.len() >= 2);
        }
    }
}
