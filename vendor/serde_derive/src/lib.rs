//! Derive macros for the offline `serde` stand-in.
//!
//! The real `serde_derive` generates full (de)serialization code; the
//! stand-in's traits are empty markers, so these derives only need to name
//! the type and emit empty impls. Generic types are not supported — nothing
//! in the workspace derives serde on a generic type.

use proc_macro::{TokenStream, TokenTree};

/// Finds the type name in a `struct`/`enum`/`union` item, skipping
/// attributes and visibility qualifiers.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(ident) = &tok {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde stand-in derive: expected a struct, enum, or union");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
