//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-harness surface this workspace uses —
//! `Criterion`, `benchmark_group`/`bench_function`, `Throughput`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! with plain wall-clock measurement: a short warm-up, then timed batches
//! whose mean ns/iter (and MiB/s when a throughput is set) is printed.
//! There is no statistical analysis or HTML report. Like the real crate,
//! `--test` mode (what `cargo test` passes to bench targets) runs each
//! benchmark body once so the target doubles as a smoke test.

use std::time::{Duration, Instant};

/// How a benchmark run measures: full sampling, or one-shot smoke test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Bench,
    Test,
}

fn mode_from_args() -> Mode {
    if std::env::args().any(|a| a == "--test") {
        Mode::Test
    } else {
        Mode::Bench
    }
}

/// Units for reporting relative throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Measures `body`, keeping its return value live via `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.mode == Mode::Test {
            std::hint::black_box(body());
            self.mean_ns = 0.0;
            return;
        }
        // Warm up and size the batch so one sample costs ~10ms.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(body());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        let batch = ((10_000_000.0 / per_iter.max(1.0)) as u64).max(1);

        // Take timed samples for ~300ms and report the mean.
        let mut total_ns: u128 = 0;
        let mut total_iters: u64 = 0;
        let budget = Instant::now();
        while budget.elapsed() < Duration::from_millis(300) {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(body());
            }
            total_ns += start.elapsed().as_nanos();
            total_iters += batch;
        }
        self.mean_ns = total_ns as f64 / total_iters as f64;
    }
}

fn report(id: &str, mean_ns: f64, throughput: Option<Throughput>, mode: Mode) {
    if mode == Mode::Test {
        println!("test {id} ... ok (smoke)");
        return;
    }
    let mut line = format!("bench {id:<44} {mean_ns:>14.1} ns/iter");
    if let Some(tp) = throughput {
        let per_sec = 1e9 / mean_ns.max(1e-9);
        match tp {
            Throughput::Bytes(n) => {
                let mib_s = n as f64 * per_sec / (1024.0 * 1024.0);
                line.push_str(&format!("  {mib_s:>10.1} MiB/s"));
            }
            Throughput::Elements(n) => {
                let elem_s = n as f64 * per_sec;
                line.push_str(&format!("  {elem_s:>12.0} elem/s"));
            }
        }
    }
    println!("{line}");
}

/// The benchmark manager; created by `criterion_group!`.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: mode_from_args(),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mode: self.mode,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(id, b.mean_ns, None, self.mode);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting by subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mode: self.criterion.mode,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.mean_ns,
            self.throughput,
            self.criterion.mode,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a bench target from its group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_positive_mean() {
        let mut b = Bencher {
            mode: Mode::Bench,
            mean_ns: 0.0,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut b = Bencher {
            mode: Mode::Test,
            mean_ns: 1.0,
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.mean_ns, 0.0);
    }
}
