#!/usr/bin/env sh
# Hot-path benchmark snapshot: runs the throughput-relevant benches and
# refreshes the "current" numbers in BENCH_hotpath.json so regressions
# against the recorded baseline are visible in review.
# Offline by design — the workspace vendors all dependencies.
set -eu

cd "$(dirname "$0")/.."

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

for bench in parser_throughput pool_scaling hot_path_alloc; do
    echo "==> cargo bench --bench $bench"
    cargo bench --offline -p vids-bench --bench "$bench" | tee -a "$out"
done

# `bench <id> <ns>/iter <elem/s> elem/s` lines from the criterion stub.
python3 - "$out" <<'PY'
import json, re, sys

rates = {}
for line in open(sys.argv[1]):
    m = re.match(r"bench\s+(\S+)\s+[\d.]+\s+ns/iter\s+(\d+)\s+elem/s", line)
    if m:
        rates[m.group(1)] = int(m.group(2))

path = "BENCH_hotpath.json"
doc = json.load(open(path))
cur = doc["current"]
mapping = {
    "vids_mixed_fig8_elem_per_s": "hot_path/vids_mixed_fig8",
    "vids_mixed_fig8_telemetry_elem_per_s": "hot_path/vids_mixed_fig8_telemetry",
    "pool_mixed_fig8_4_shards_elem_per_s": "hot_path/pool_mixed_fig8_4_shards",
    "pool_mixed_fig8_4_shards_telemetry_elem_per_s": "hot_path/pool_mixed_fig8_4_shards_telemetry",
    "sip_parse_reject_malformed_elem_per_s": "parser/sip_parse_reject_malformed",
}
for key, bench_id in mapping.items():
    if bench_id in rates:
        cur[key] = rates[bench_id]
json.dump(doc, open(path, "w"), indent=2)
open(path, "a").write("\n")
print(f"updated {path}: {cur}")
PY

echo "OK"
