#!/usr/bin/env sh
# Hot-path benchmark snapshot: runs the throughput-relevant benches and
# refreshes the "current" numbers in BENCH_hotpath.json so regressions
# against the recorded baseline are visible in review.
# Offline by design — the workspace vendors all dependencies.
set -eu

cd "$(dirname "$0")/.."

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

for bench in parser_throughput pool_scaling hot_path_alloc pcap_replay cluster_gateway; do
    echo "==> cargo bench --bench $bench"
    cargo bench --offline -p vids-bench --bench "$bench" | tee -a "$out"
done

# `bench <id> <ns>/iter <rate> elem/s|MiB/s` lines from the criterion
# stub, plus the `replay, N shard(s) ... pps`, `replay+record, N
# shard(s) ... pps`, `replay, T thread(s) x N shard(s) ... pps` and
# `gateway, ... pps` rows the pcap/cluster benches print.
python3 - "$out" <<'PY'
import json, os, re, socket, sys

rates = {}
replay = {}
recorded = {}
scaling = {}
gateway = {}
for line in open(sys.argv[1]):
    m = re.match(r"bench\s+(\S+)\s+[\d.]+\s+ns/iter\s+(\d+)\s+elem/s", line)
    if m:
        rates[m.group(1)] = int(m.group(2))
        continue
    m = re.match(r"bench\s+(\S+)\s+[\d.]+\s+ns/iter\s+([\d.]+)\s+MiB/s", line)
    if m:
        rates[m.group(1)] = float(m.group(2))
        continue
    m = re.match(r"replay,\s+(\d+)\s+shard\(s\)\s+-\s+(\d+)\s+pps", line)
    if m:
        replay[int(m.group(1))] = int(m.group(2))
        continue
    m = re.match(r"replay\+record,\s+(\d+)\s+shard\(s\)\s+-\s+(\d+)\s+pps", line)
    if m:
        recorded[int(m.group(1))] = int(m.group(2))
        continue
    m = re.match(
        r"replay,\s+(\d+)\s+thread\(s\)\s+x\s+(\d+)\s+shard\(s\)\s+-\s+(\d+)\s+pps", line
    )
    if m:
        scaling[(int(m.group(1)), int(m.group(2)))] = int(m.group(3))
        continue
    m = re.match(r"gateway,\s+direct pool\s+-\s+(\d+)\s+pps", line)
    if m:
        gateway["direct"] = int(m.group(1))
        continue
    m = re.match(r"gateway,\s+(\d+)\s+node\(s\)\s+-\s+(\d+)\s+pps", line)
    if m:
        gateway[int(m.group(1))] = int(m.group(2))

path = "BENCH_hotpath.json"
doc = json.load(open(path))
cur = doc["current"]
# Pin the measurement environment so numbers from different hosts are
# never compared as like-for-like.
cur["hostname"] = socket.gethostname()
cur["available_parallelism"] = os.cpu_count()
mapping = {
    "vids_mixed_fig8_elem_per_s": "hot_path/vids_mixed_fig8",
    "vids_mixed_fig8_telemetry_elem_per_s": "hot_path/vids_mixed_fig8_telemetry",
    "pool_mixed_fig8_4_shards_elem_per_s": "hot_path/pool_mixed_fig8_4_shards",
    "pool_mixed_fig8_4_shards_telemetry_elem_per_s": "hot_path/pool_mixed_fig8_4_shards_telemetry",
    "sip_parse_reject_malformed_elem_per_s": "parser/sip_parse_reject_malformed",
    "sip_parse_view_mib_per_s": "parser/sip_parse_view_invite_with_sdp",
    "sip_header_scan_mib_per_s": "parser/sip_header_scan_only",
    "rtp_decode_header_mib_per_s": "parser/rtp_decode_header",
}
for key, bench_id in mapping.items():
    if bench_id in rates:
        cur[key] = rates[bench_id]
for shards, pps in replay.items():
    suffix = "shard" if shards == 1 else "shards"
    cur[f"pcap_replay_{shards}_{suffix}_pps"] = pps
for shards, pps in recorded.items():
    suffix = "shard" if shards == 1 else "shards"
    cur[f"pcap_replay_record_{shards}_{suffix}_pps"] = pps
# The multi-core scaling grid (parallel classification + epoch-ring
# pipeline), keyed by the host's parallelism: single-core numbers only
# measure handoff overhead and must never be read as scaling.
if scaling:
    grid = {"hw_threads": os.cpu_count()}
    for (threads, shards), pps in sorted(scaling.items()):
        grid[f"{threads}t_x_{shards}s_pps"] = pps
    cur["pcap_replay_scaling"] = grid
# The flight recorder's ring tap budget: ≤3% pps overhead at 1 shard.
if 1 in replay and 1 in recorded:
    overhead = 1.0 - recorded[1] / replay[1]
    print(f"record tap overhead at 1 shard: {overhead * 100:.1f}%")
# The cluster gateway's budget: a 1-node/1-tenant federation ingests at
# most 5% under the direct pool (DESIGN.md §7j).
if "direct" in gateway:
    cur["cluster_gateway_direct_pps"] = gateway["direct"]
    for nodes in sorted(k for k in gateway if k != "direct"):
        cur[f"cluster_gateway_{nodes}_nodes_pps"] = gateway[nodes]
    if 1 in gateway:
        overhead = 1.0 - gateway[1] / gateway["direct"]
        cur["cluster_gateway_overhead_pct"] = round(overhead * 100, 1)
        print(f"cluster gateway overhead at 1 node: {overhead * 100:.1f}% (budget <= 5%)")
json.dump(doc, open(path, "w"), indent=2)
open(path, "a").write("\n")
print(f"updated {path}: {cur}")
PY

echo "OK"
