#!/usr/bin/env sh
# Fast pre-push gate: core engine tests + lint-clean workspace.
# Offline by design — the workspace vendors all dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo test -p vids-core"
cargo test --offline -p vids-core -q

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "OK"
