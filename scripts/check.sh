#!/usr/bin/env sh
# Fast pre-push gate: core engine tests + lint-clean workspace.
# Offline by design — the workspace vendors all dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo test -p vids-core"
cargo test --offline -p vids-core -q

echo "==> cargo test -p vids-telemetry"
cargo test --offline -p vids-telemetry -q

# Wire tier: pcap fixtures, demux proptests, and the loopback serve
# smoke (the serve test skips itself with a notice when the sandbox
# cannot bind 127.0.0.1).
echo "==> cargo test -p vids-ingest (wire tier + loopback smoke)"
cargo test --offline -p vids-ingest -q

# Federation layer: tenant map parsing, rendezvous placement, and the
# end-to-end federated loopback smoke (skips itself where the sandbox
# cannot bind 127.0.0.1 — the vids-ingest run above covers that notice).
echo "==> cargo test -p vids-cluster (federation + tenancy)"
cargo test --offline -p vids-cluster -q

# Cluster differential: cluster(1 node) == plain pool and node-count
# invariance, byte-compared on alerts, counters and merged telemetry,
# plus the tenant threshold/quota isolation gates and rebalance checks.
echo "==> cluster determinism (gateway vs pool, tenant isolation)"
cargo test --offline --test cluster_determinism -q

# Scanning substrate: exhaustive 0..=64 alignment/tail unit tests plus
# the proptest oracle asserting every SWAR finder agrees with its naive
# scalar twin on arbitrary bytes.
echo "==> cargo test -p vids-scan (SWAR equivalence oracle)"
cargo test --offline -p vids-scan -q

# Flight recorder: ring arena discipline, .vdump encode/decode/corruption
# offsets, deterministic dump replay, and the drop-one-packet minimizer.
echo "==> cargo test -p vids-record (flight recorder)"
cargo test --offline -p vids-record -q

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

# Hot-path crates additionally reject silent per-packet allocations that
# plain `-D warnings` lets through (see tests/alloc_budget.rs). The scan
# substrate and the SIP parsers it feeds are in this set: they run on
# every hostile datagram.
echo "==> cargo clippy (hot-path crates, allocation lints)"
cargo clippy --offline -p vids-scan -p vids-sip -p vids-efsm -p vids-telemetry -p vids-core -p vids-ingest -p vids-record -p vids-cluster --all-targets -- \
    -D warnings \
    -D clippy::redundant_clone \
    -D clippy::inefficient_to_string

# Allocation budget: the slab'd fact base (dense CallIdx slots, FxHash
# maps) must keep the warm per-packet path at zero allocations with
# telemetry recording enabled.
echo "==> alloc budget (slab warm path, telemetry on)"
cargo test --offline --test alloc_budget -q

# Flight-recorder budget: the ring tap on the ingest hot path must be
# allocation-free at steady state — including ring wrap/eviction — with
# telemetry both off and on.
echo "==> alloc budget (record tap steady state, telemetry off and on)"
cargo test --offline --test record_alloc -q

# Forensic determinism: a ≥100-packet recorded flood's .vdump must
# replay byte-identically (alert, counters, snapshot) on a fresh engine.
echo "==> record roundtrip (dump -> fresh-engine replay, byte-identical)"
cargo test --offline --test record_roundtrip -q

# Adversarial correctness harness (crates/harness): structure-aware wire
# fuzzing, differential oracles, the exhaustive mailbox interleaving
# checker, and the pinned regression tests — at the 10k-iteration smoke
# budget (VIDS_FUZZ_ITERS in the environment overrides it for deep runs).
echo "==> correctness harness (fuzz + oracles + model checker)"
VIDS_FUZZ_ITERS="${VIDS_FUZZ_ITERS:-10000}" \
    cargo test --offline -p vids-harness -q

# Worker-runtime stress: one persistent pool, randomized batch sizes,
# byte-compared against the plain engine at 1/4/8 shards.
echo "==> pool determinism stress"
cargo test --offline --test pool_determinism -q \
    randomized_batch_sizes_match_the_plain_engine

# Wire-tier oracle: pcap replay byte-compared against the in-process
# engine (alerts, log, counters) at 1/4/8 shards, plus the parallel
# driver byte-compared against the sequential one at 1/2/4 classifier
# threads x 1/4/8 shards (including recorder ring layout).
echo "==> replay differential (sequential + parallel drivers)"
cargo test --offline --test replay_differential -q

# On hosts with enough hardware threads the persistent workers must make
# the 4-shard pool at least as fast as the unsharded engine; on smaller
# hosts the pool degenerates to sequential draining and the ratio is noise.
HW_THREADS="$(nproc 2>/dev/null || echo 1)"
if [ "$HW_THREADS" -ge 4 ]; then
    echo "==> pool-vs-plain throughput gate (${HW_THREADS} hardware threads)"
    cargo bench --offline -p vids-bench --bench pool_scaling 2>/dev/null \
        | tee /tmp/vids_pool_scaling.txt
    python3 - <<'EOF'
import re, sys

text = open("/tmp/vids_pool_scaling.txt").read()
def pps(label):
    m = re.search(rf"^{re.escape(label)}\s.*?(\d+)\s+pps", text, re.M)
    return float(m.group(1)) if m else None

plain = pps("plain engine (no pool)")
sharded = pps("4 shard(s)")
if plain is None or sharded is None:
    sys.exit("pool_scaling output missing the plain or 4-shard row")
ratio = sharded / plain
print(f"pool-vs-plain at 4 shards: {ratio:.2f}x")
if ratio < 1.0:
    sys.exit(f"4-shard pool is slower than the plain engine ({ratio:.2f}x < 1.00x)")
EOF
else
    echo "==> pool-vs-plain throughput gate skipped (${HW_THREADS} hardware thread(s) < 4)"
fi

# Parallel-replay scaling gate: with >=4 hardware threads the 4-thread
# classifier sweep must beat single-threaded replay by >=1.5x at 4
# shards. On smaller hosts every "thread" shares one core and the grid
# only measures handoff overhead, so the gate skips.
if [ "$HW_THREADS" -ge 4 ]; then
    echo "==> parallel replay scaling gate (${HW_THREADS} hardware threads)"
    cargo bench --offline -p vids-bench --bench pcap_replay 2>/dev/null \
        | tee /tmp/vids_pcap_replay.txt
    python3 - <<'EOF'
import re, sys

text = open("/tmp/vids_pcap_replay.txt").read()
def pps(threads, shards):
    m = re.search(
        rf"^replay,\s+{threads}\s+thread\(s\)\s+x\s+{shards}\s+shard\(s\)\s+-\s+(\d+)\s+pps",
        text, re.M)
    return float(m.group(1)) if m else None

one = pps(1, 4)
four = pps(4, 4)
if one is None or four is None:
    sys.exit("pcap_replay output missing the 1-thread or 4-thread scaling row")
ratio = four / one
print(f"parallel replay at 4 threads x 4 shards: {ratio:.2f}x over 1 thread")
if ratio < 1.5:
    sys.exit(f"4-thread replay is not scaling ({ratio:.2f}x < 1.50x)")
EOF
else
    echo "==> parallel replay scaling gate skipped (${HW_THREADS} hardware thread(s) < 4)"
fi

echo "OK"
