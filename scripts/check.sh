#!/usr/bin/env sh
# Fast pre-push gate: core engine tests + lint-clean workspace.
# Offline by design — the workspace vendors all dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo test -p vids-core"
cargo test --offline -p vids-core -q

echo "==> cargo test -p vids-telemetry"
cargo test --offline -p vids-telemetry -q

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

# Hot-path crates additionally reject silent per-packet allocations that
# plain `-D warnings` lets through (see tests/alloc_budget.rs).
echo "==> cargo clippy (hot-path crates, allocation lints)"
cargo clippy --offline -p vids-efsm -p vids-telemetry -p vids-core --all-targets -- \
    -D warnings \
    -D clippy::redundant_clone \
    -D clippy::inefficient_to_string

echo "OK"
