//! # vids-cluster — multi-tenant federation of analysis pools
//!
//! Scales the interacting-protocol-state-machine IDS past a single
//! [`VidsPool`](vids_core::VidsPool) by federating N in-process nodes
//! behind a deterministic routing gateway, with per-tenant namespaces
//! layered on top.
//!
//! The load-bearing property is the same one the pool layer proved at
//! shard granularity: the paper's detectors decompose over independent
//! keys (call-id, destination IP, AOR, media coordinates), so a datagram
//! can be split into its protocol-role parts and each part analyzed
//! wherever its key lives — **as long as routing is a pure function of
//! the bytes and merge order is a pure function of arrival order**. The
//! gateway rendezvous-hashes the pool's own
//! [`route_hint`](vids_core::route_hint) keys across nodes and merges
//! key-tagged alerts back into the single pool's byte-identical sequence;
//! `tests/cluster_determinism.rs` pins `cluster(n) == pool` for every
//! node count.
//!
//! Tenancy is the second axis: a [`TenantMap`] assigns each source prefix
//! to a tenant with its own detection thresholds
//! ([`Config`](vids_core::Config)) and call-table quota, and each tenant
//! gets fully separate pools per node — one tenant's flood can neither
//! trip another's (lower) thresholds nor evict another's call state.
//!
//! ```
//! use vids_cluster::{Cluster, ClusterEvent, TenantMap};
//! use vids_core::{CollectSink, Config, CostModel};
//! use vids_netsim::time::SimTime;
//!
//! let tenants = TenantMap::parse(
//!     "tenant acme 10.1.0.0/16 invite_flood_n=5 max_calls=10000",
//!     Config::default(),
//! )
//! .unwrap();
//! let mut cluster = Cluster::with_cost(tenants, 4, CostModel::free());
//! let mut sink = CollectSink::default();
//! let mut batch: Vec<ClusterEvent> = Vec::new(); // classify datagrams in
//! cluster.process_batch(&mut batch, SimTime::from_millis(10), &mut sink);
//! assert_eq!(cluster.alerts().len(), 0);
//! ```

mod gateway;
pub mod tenant;

pub use gateway::{rendezvous, Cluster, ClusterAlert, ClusterEvent};
pub use tenant::{Tenant, TenantId, TenantMap};
