//! The cluster gateway: deterministic federation of [`VidsPool`] nodes.
//!
//! A [`Cluster`] scales the paper's engine past one pool the same way the
//! pool scaled it past one engine — by exploiting the per-call (and
//! per-destination, per-AOR) independence of the protocol state machines.
//! The gateway classifies nothing itself; it takes already-classified
//! events, splits each into its protocol-role parts, and routes every part
//! to the node that owns its key under **rendezvous hashing** of the same
//! FNV-1a key hash the pool shards by ([`vids_core::route_hint`]). Each
//! node runs one [`VidsPool`] per tenant and ingests only the parts it
//! owns ([`vids_core::PartMask`]); the union across nodes is exactly one
//! pool's work.
//!
//! Determinism is the design constraint, inherited from the pool layer:
//!
//! * **Timestamps** are clamped monotonic by the gateway across the global
//!   batch order, so every node sees the same packet clock a single pool's
//!   sequential routing pass would have assigned.
//! * **Sweeps** fire in lock-step: every node pool receives every batch
//!   (its share may be empty) with the same batch clock, so the
//!   once-per-batch idle-timer sweep triggers on all of them at the same
//!   instants.
//! * **Alerts** come back key-tagged on the *global* packet index
//!   ([`FedAlert`]) and are merged with the pool's own deterministic
//!   order; the sequence is byte-identical whatever the node count,
//!   including one node vs. a plain pool.
//! * **DRDoS misses** detected on a call-owning node are forwarded to the
//!   destination-owning node in global packet order, generalizing the
//!   pool's deferred cross-shard counting phase.
//! * **Batch-level telemetry** is recorded exactly once, on the gateway's
//!   own slab, so the merged cluster snapshot equals the single pool's.

use std::sync::Arc;

use vids_core::classify::classify;
use vids_core::pool::{key_hash, route_hint, FedAlert, FedEvent, FedMiss, PartMask, VidsPool};
use vids_core::{Alert, AlertSink, Classified, CostModel, VidsCounters};
use vids_efsm::{sym, Sym};
use vids_netsim::packet::Packet;
use vids_netsim::time::SimTime;
use vids_scan::fxhash::FxHashMap;
use vids_telemetry::{Counter, HistId, ShardSlab, SlabSnapshot, Snapshot};

use crate::tenant::{TenantId, TenantMap};

// The pool's sweep cadence, mirrored by the gateway's once-per-batch
// telemetry accounting.
use vids_core::engine::SWEEP_INTERVAL_MS;

/// One classified datagram entering the cluster: what the classifier made
/// of it, when it arrived, and the source IP the tenant mapping keys on.
#[derive(Debug, Clone)]
pub struct ClusterEvent {
    /// The classifier's verdict.
    pub classified: Classified,
    /// Receive (or capture) timestamp.
    pub at: SimTime,
    /// IPv4 source, network byte order packed — selects the tenant.
    pub src_ip: u32,
}

impl ClusterEvent {
    /// Classifies one in-process packet, stamping its send time and source.
    pub fn from_packet(packet: &Packet) -> Self {
        ClusterEvent {
            classified: classify(packet),
            at: packet.sent_at,
            src_ip: packet.src.ip,
        }
    }
}

/// An alert with the tenant whose traffic raised it. The `Alert` itself is
/// untouched (its wire encoding in forensic dumps must stay stable);
/// tenancy is carried alongside.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterAlert {
    /// The tenant the offending traffic belonged to.
    pub tenant: TenantId,
    /// The alert, exactly as a single pool would have raised it.
    pub alert: Alert,
}

/// Rendezvous (highest-random-weight) node choice for a key hash: the node
/// whose mixed score is highest. Changing the node count moves only the
/// keys whose argmax changes — about `1/n` of them — so in-flight calls on
/// unmoved keys keep their state and verdicts across a rebalance.
pub fn rendezvous(key: u64, nodes: usize) -> usize {
    if nodes <= 1 {
        return 0;
    }
    let mut best = 0usize;
    let mut best_score = mix(key, 0);
    for node in 1..nodes {
        let score = mix(key, node);
        if score > best_score {
            best = node;
            best_score = score;
        }
    }
    best
}

/// SplitMix64 finalizer over `key ⊕ node-salt`: well-mixed, platform-fixed.
fn mix(key: u64, node: usize) -> u64 {
    let mut h = key ^ (node as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h
}

/// One tenant's slice of the federation: a pool per node plus the
/// gateway-level media routing index for that tenant's calls.
struct Member {
    pools: Vec<VidsPool>,
    /// Negotiated media coordinates → owning node; the node-level twin of
    /// the pool's shard-level `media_to_shard` index. Expired after sweeps
    /// against the owning pool's fact base.
    media_to_node: FxHashMap<(Sym, u64), usize>,
}

/// A federation of `nodes` in-process [`VidsPool`]s per tenant behind a
/// deterministic routing gateway. See the module docs for the invariants.
pub struct Cluster {
    tenants: TenantMap,
    members: Vec<Member>,
    nodes: usize,
    cost: CostModel,
    /// Cluster-wide alert log in deterministic merge order, tenant-tagged.
    alerts: Vec<ClusterAlert>,
    /// Gateway's batch clock: mirrors each pool's sweep gate so the
    /// `TimerSweeps` counter is recorded exactly once per global sweep.
    last_sweep_ms: u64,
    /// Monotonic clamp over the global packet order, pre-applied before
    /// scattering so node-local clocks agree with a single pool's.
    last_packet_ms: u64,
    /// Batch-level telemetry slab (the single pool's pool-slab share of
    /// `BatchesIngested`/`PacketsIngested`/`BatchSize`/`TimerSweeps`).
    telemetry: Option<Arc<ShardSlab>>,
    telemetry_ring: usize,
    /// Reusable per-(tenant, node) scatter buffers, tenant-major.
    shares: Vec<Vec<FedEvent>>,
    /// Reusable per-tenant merge buffer.
    scratch_alerts: Vec<FedAlert>,
    /// Reusable per-tenant miss buffer.
    scratch_misses: Vec<FedMiss>,
}

impl Cluster {
    /// A cluster of `nodes` nodes under `tenants`, default cost model.
    pub fn new(tenants: TenantMap, nodes: usize) -> Self {
        Cluster::with_cost(tenants, nodes, CostModel::default())
    }

    /// A cluster with an explicit per-packet cost model (tests use
    /// [`CostModel::free`] to match wall-clock-free pool runs).
    pub fn with_cost(tenants: TenantMap, nodes: usize, cost: CostModel) -> Self {
        let nodes = nodes.max(1);
        let members = tenants
            .iter()
            .map(|t| Member {
                pools: (0..nodes)
                    .map(|_| VidsPool::with_cost(t.config, cost))
                    .collect(),
                media_to_node: FxHashMap::default(),
            })
            .collect();
        Cluster {
            tenants,
            members,
            nodes,
            cost,
            alerts: Vec::new(),
            last_sweep_ms: 0,
            last_packet_ms: 0,
            telemetry: None,
            telemetry_ring: 0,
            shares: Vec::new(),
            scratch_alerts: Vec::new(),
            scratch_misses: Vec::new(),
        }
    }

    /// Enables telemetry on every member pool plus the gateway's own
    /// batch-level slab. [`Cluster::telemetry_snapshot`] then merges them
    /// into one cluster-wide [`Snapshot`].
    pub fn enable_telemetry(&mut self, ring_capacity: usize) {
        for member in &mut self.members {
            for pool in &mut member.pools {
                pool.enable_telemetry(ring_capacity);
            }
        }
        self.telemetry = Some(Arc::new(ShardSlab::new()));
        self.telemetry_ring = ring_capacity;
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The gateway's own batch-level telemetry slab, once
    /// [`Cluster::enable_telemetry`] has run. Ingest frontends mirror
    /// their socket-side counters (datagrams received, dropped, demux
    /// verdicts) here so the merged cluster snapshot carries them, exactly
    /// as the single-pool serve path mirrors into the pool slab.
    pub fn telemetry_slab(&self) -> Option<&ShardSlab> {
        self.telemetry.as_deref()
    }

    /// The tenant table.
    pub fn tenants(&self) -> &TenantMap {
        &self.tenants
    }

    /// One tenant's pool on one node, for introspection.
    pub fn pool(&self, tenant: TenantId, node: usize) -> &VidsPool {
        &self.members[tenant as usize].pools[node]
    }

    /// Every alert raised so far, in deterministic merge order,
    /// tenant-tagged.
    pub fn alerts(&self) -> &[ClusterAlert] {
        &self.alerts
    }

    /// Aggregate traffic counters for one tenant, across its nodes.
    pub fn tenant_counters(&self, tenant: TenantId) -> VidsCounters {
        let mut total = VidsCounters::default();
        for pool in &self.members[tenant as usize].pools {
            total += pool.counters();
        }
        total
    }

    /// Aggregate traffic counters across every tenant and node.
    pub fn counters(&self) -> VidsCounters {
        let mut total = VidsCounters::default();
        for t in 0..self.members.len() {
            total += self.tenant_counters(t as TenantId);
        }
        total
    }

    /// Calls currently monitored, summed over tenants and nodes.
    pub fn monitored_calls(&self) -> usize {
        self.members
            .iter()
            .flat_map(|m| m.pools.iter())
            .map(VidsPool::monitored_calls)
            .sum()
    }

    /// Calls currently monitored for one tenant.
    pub fn tenant_monitored_calls(&self, tenant: TenantId) -> usize {
        self.members[tenant as usize]
            .pools
            .iter()
            .map(VidsPool::monitored_calls)
            .sum()
    }

    /// Rebalances to `nodes` nodes. Routing-only: keys whose rendezvous
    /// choice is unchanged (about `(n-1)/n` of them when growing by one)
    /// keep their node, state and in-flight verdicts. Keys that move leave
    /// their call state behind — those calls are effectively restarted,
    /// exactly as if the moved traffic had first appeared now. Shrinking
    /// drops the removed nodes' state outright.
    pub fn set_nodes(&mut self, nodes: usize) {
        let nodes = nodes.max(1);
        if nodes == self.nodes {
            return;
        }
        for (member, tenant) in self.members.iter_mut().zip(self.tenants.iter()) {
            while member.pools.len() > nodes {
                member.pools.pop();
            }
            while member.pools.len() < nodes {
                let mut pool = VidsPool::with_cost(tenant.config, self.cost);
                if self.telemetry.is_some() {
                    pool.enable_telemetry(self.telemetry_ring);
                }
                member.pools.push(pool);
            }
            // Index entries pointing at removed nodes are gone with their
            // state; entries for surviving nodes stay valid — the call
            // state they point at did not move.
            member.media_to_node.retain(|_, node| *node < nodes);
        }
        self.nodes = nodes;
    }

    /// Classifies and processes a batch of in-process packets — the
    /// cluster twin of [`VidsPool::process_batch`].
    pub fn process_packets<S: AlertSink + ?Sized>(
        &mut self,
        packets: &[Packet],
        now: SimTime,
        sink: &mut S,
    ) {
        // Classify straight into the share buffers — no intermediate
        // event vector, so the gateway adds one `Classified` copy over
        // the direct pool path, not two.
        self.run_batch(
            packets.len(),
            packets.iter().map(ClusterEvent::from_packet),
            now,
            sink,
        );
    }

    /// Processes one global batch of classified events: tenant mapping,
    /// part splitting, rendezvous routing, federated ingest on every node,
    /// cross-node miss forwarding, and the deterministic cluster-wide
    /// merge. Alerts go to `sink` and the tenant-tagged log.
    pub fn process_batch<S: AlertSink + ?Sized>(
        &mut self,
        events: &mut Vec<ClusterEvent>,
        now: SimTime,
        sink: &mut S,
    ) {
        let len = events.len();
        self.run_batch(len, events.drain(..), now, sink);
    }

    fn run_batch<S: AlertSink + ?Sized>(
        &mut self,
        batch_len: usize,
        events: impl Iterator<Item = ClusterEvent>,
        now: SimTime,
        sink: &mut S,
    ) {
        let now_ms = now.as_millis();

        // Batch-level telemetry, recorded exactly once for the global
        // batch (member pools skip it on the federated path).
        if let Some(slab) = &self.telemetry {
            slab.inc(Counter::BatchesIngested);
            slab.add(Counter::PacketsIngested, batch_len as u64);
            slab.record(HistId::BatchSize, batch_len as u64);
        }
        let sweeping = now_ms.saturating_sub(self.last_sweep_ms) >= SWEEP_INTERVAL_MS;
        if sweeping {
            self.last_sweep_ms = now_ms;
            if let Some(slab) = &self.telemetry {
                slab.inc(Counter::TimerSweeps);
            }
        }

        // Scatter: one sequential pass in global packet order — the
        // cluster's analogue of the pool's routing pass. Applies the
        // monotonic clamp, maintains the per-tenant media index, splits
        // SIP into call/flood parts and picks owning nodes by rendezvous.
        let tenants = self.members.len();
        let single = self.nodes == 1;
        let mut shares = std::mem::take(&mut self.shares);
        shares.resize_with(tenants * self.nodes, Vec::new);
        if single && tenants == 1 {
            // One tenant, one node: every event lands in share 0 with the
            // full mask, so the scatter collapses to a clamp + media-index
            // pass fused into one `extend` — each `Classified` is written
            // into the share buffer once, exactly like the pool's own
            // classify pass, instead of bouncing through the match below.
            let mut last = self.last_packet_ms;
            let member = &mut self.members[0];
            shares[0].extend(events.enumerate().map(|(idx, ev)| {
                let t_ms = now_ms.max(ev.at.as_millis()).max(last);
                last = t_ms;
                if let Classified::Sip { event, .. } = &ev.classified {
                    if event.bool_arg("has_sdp") {
                        if let (Some(ip), Some(port)) =
                            (event.sym_arg(sym::SDP_IP), event.uint_arg(sym::SDP_PORT))
                        {
                            member.media_to_node.insert((ip, port), 0);
                        }
                    }
                }
                FedEvent {
                    classified: ev.classified,
                    t_ms,
                    idx,
                    mask: PartMask::ALL,
                }
            }));
            self.last_packet_ms = last;
            self.ingest_and_merge(&mut shares, now, sink);
            self.shares = shares;
            if sweeping {
                self.expire_media_routes();
            }
            return;
        }
        for (idx, ev) in events.enumerate() {
            let t_ms = now_ms.max(ev.at.as_millis()).max(self.last_packet_ms);
            self.last_packet_ms = t_ms;
            let tenant = self.tenants.tenant_of(ev.src_ip) as usize;
            let member = &mut self.members[tenant];
            if single {
                // One node owns every key: skip the routing hashes — the
                // gateway is a tenant-demuxing pass-through. The media
                // index is still maintained (entries point at node 0, and
                // call state never migrates) so a later `set_nodes` keeps
                // routing established calls' media to their owner.
                if let Classified::Sip { event, .. } = &ev.classified {
                    if event.bool_arg("has_sdp") {
                        if let (Some(ip), Some(port)) =
                            (event.sym_arg(sym::SDP_IP), event.uint_arg(sym::SDP_PORT))
                        {
                            member.media_to_node.insert((ip, port), 0);
                        }
                    }
                }
                shares[tenant].push(FedEvent {
                    classified: ev.classified,
                    t_ms,
                    idx,
                    mask: PartMask::ALL,
                });
                continue;
            }
            let hint = route_hint(&ev.classified);
            let lane = |node: usize| tenant * self.nodes + node;
            match &ev.classified {
                Classified::Sip { event, .. } => {
                    if event.name == sym::SIP_REGISTER {
                        shares[lane(rendezvous(hint.call_hash(), self.nodes))].push(FedEvent {
                            classified: ev.classified,
                            t_ms,
                            idx,
                            mask: PartMask {
                                call: true,
                                flood: false,
                            },
                        });
                        continue;
                    }
                    let call_node = rendezvous(hint.call_hash(), self.nodes);
                    if event.bool_arg("has_sdp") {
                        if let (Some(ip), Some(port)) =
                            (event.sym_arg(sym::SDP_IP), event.uint_arg(sym::SDP_PORT))
                        {
                            member.media_to_node.insert((ip, port), call_node);
                        }
                    }
                    let flood_node = (event.name == sym::SIP_INVITE)
                        .then(|| rendezvous(hint.flood_hash(), self.nodes));
                    match flood_node {
                        Some(f) if f != call_node => {
                            // The destination-pinned part lives on another
                            // node: send the event to both with
                            // complementary masks.
                            shares[lane(f)].push(FedEvent {
                                classified: ev.classified.clone(),
                                t_ms,
                                idx,
                                mask: PartMask {
                                    call: false,
                                    flood: true,
                                },
                            });
                            shares[lane(call_node)].push(FedEvent {
                                classified: ev.classified,
                                t_ms,
                                idx,
                                mask: PartMask {
                                    call: true,
                                    flood: false,
                                },
                            });
                        }
                        _ => shares[lane(call_node)].push(FedEvent {
                            classified: ev.classified,
                            t_ms,
                            idx,
                            mask: PartMask::ALL,
                        }),
                    }
                }
                Classified::Rtp { event } => {
                    // Media follows the call: negotiated coordinates route
                    // to the owning node, the rest by coordinate hash so
                    // any node count flags the same packet as unassociated
                    // exactly once.
                    let node = event
                        .sym_arg(sym::DST_IP)
                        .zip(event.uint_arg(sym::DST_PORT))
                        .and_then(|key| member.media_to_node.get(&key).copied())
                        .unwrap_or_else(|| rendezvous(hint.call_hash(), self.nodes));
                    shares[lane(node)].push(FedEvent {
                        classified: ev.classified,
                        t_ms,
                        idx,
                        mask: PartMask {
                            call: true,
                            flood: false,
                        },
                    });
                }
                Classified::Malformed { .. } | Classified::Ignored => {
                    // No call, destination or media key: pinned to the
                    // key-0 node so the malformed dedup set lives (and
                    // deduplicates) in exactly one place.
                    shares[lane(rendezvous(0, self.nodes))].push(FedEvent {
                        classified: ev.classified,
                        t_ms,
                        idx,
                        mask: PartMask {
                            call: true,
                            flood: false,
                        },
                    });
                }
            }
        }

        self.ingest_and_merge(&mut shares, now, sink);
        self.shares = shares;

        // A sweep may have evicted finished calls: expire their media
        // routes, as the pool does for its shard-level index.
        if sweeping {
            self.expire_media_routes();
        }
    }

    /// Ingest + merge, one tenant at a time (tenants are hard-isolated:
    /// separate pools, separate logs, ordered output by tenant id).
    /// Every pool sees every batch — empty shares included — so the
    /// sweep clock stays in lock-step across nodes.
    fn ingest_and_merge<S: AlertSink + ?Sized>(
        &mut self,
        shares: &mut [Vec<FedEvent>],
        now: SimTime,
        sink: &mut S,
    ) {
        let tenants = self.members.len();
        for tenant in 0..tenants {
            let mut tagged = std::mem::take(&mut self.scratch_alerts);
            let mut misses = std::mem::take(&mut self.scratch_misses);
            for node in 0..self.nodes {
                let share = &mut shares[tenant * self.nodes + node];
                let mut out = self.members[tenant].pools[node].process_federated_batch(share, now);
                tagged.append(&mut out.alerts);
                misses.append(&mut out.misses);
            }
            // Cross-node DRDoS forwarding, in global packet order — the
            // federation-wide spelling of the pool's deferred phase 4.
            misses.sort_unstable_by_key(|m| m.idx);
            for node in 0..self.nodes {
                let share: Vec<FedMiss> = misses
                    .iter()
                    .filter(|m| rendezvous(key_hash(&m.dst_ip.to_le_bytes()), self.nodes) == node)
                    .copied()
                    .collect();
                if !share.is_empty() {
                    tagged.extend(self.members[tenant].pools[node].apply_federated_misses(&share));
                }
            }
            misses.clear();
            self.scratch_misses = misses;
            self.emit(tenant as TenantId, &mut tagged, sink);
        }
    }

    /// Advances idle timers and evicts finished calls on every node —
    /// the cluster twin of [`VidsPool::tick`].
    pub fn tick<S: AlertSink + ?Sized>(&mut self, now: SimTime, sink: &mut S) {
        let now_ms = now.as_millis();
        if now_ms < SWEEP_INTERVAL_MS {
            return;
        }
        self.last_sweep_ms = now_ms;
        if let Some(slab) = &self.telemetry {
            slab.inc(Counter::TimerSweeps);
        }
        for tenant in 0..self.members.len() {
            let mut tagged = std::mem::take(&mut self.scratch_alerts);
            for node in 0..self.nodes {
                tagged.extend(self.members[tenant].pools[node].federated_tick(now));
            }
            self.emit(tenant as TenantId, &mut tagged, sink);
        }
        self.expire_media_routes();
    }

    /// Sorts one tenant's key-tagged alerts into the deterministic merge
    /// order, then logs and sinks them.
    fn emit<S: AlertSink + ?Sized>(
        &mut self,
        tenant: TenantId,
        tagged: &mut Vec<FedAlert>,
        sink: &mut S,
    ) {
        // Stable sort: equal keys (possible only for scope-less sweep
        // alerts) keep node order, which is itself deterministic.
        tagged.sort_by(FedAlert::merge_order);
        for fed in tagged.drain(..) {
            sink.accept(fed.alert.clone());
            self.alerts.push(ClusterAlert {
                tenant,
                alert: fed.alert,
            });
        }
        self.scratch_alerts = std::mem::take(tagged);
    }

    /// Drops media routes whose calls no longer exist on their owning node.
    fn expire_media_routes(&mut self) {
        for member in &mut self.members {
            let pools = &member.pools;
            member
                .media_to_node
                .retain(|(ip, port), node| pools[*node].media_negotiated(ip.as_str(), *port));
        }
    }

    /// A cluster-wide telemetry snapshot: every node pool's shard slabs
    /// concatenated (tenant-major, node-minor), with the pool-level slabs
    /// of all nodes plus the gateway's batch slab merged into one. Its
    /// [`Snapshot::deterministic`] view equals the single pool's for the
    /// same traffic, whatever the node count.
    pub fn telemetry_snapshot(&self, now: SimTime) -> Option<Snapshot> {
        let gateway = self.telemetry.as_ref()?;
        let mut shards: Vec<SlabSnapshot> = Vec::new();
        let mut pool_slab = gateway.snapshot();
        for member in &self.members {
            for pool in &member.pools {
                let snap = pool.telemetry_snapshot(now)?;
                shards.extend(snap.shards);
                pool_slab.merge(&snap.pool);
            }
        }
        Some(Snapshot {
            time_ms: now.as_millis(),
            shards,
            pool: pool_slab,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_is_stable_and_moves_few_keys() {
        // Growing 3 → 4 nodes must only move keys onto the new node.
        let mut moved = 0;
        for key in 0..10_000u64 {
            let before = rendezvous(key, 3);
            let after = rendezvous(key, 4);
            if before != after {
                assert_eq!(after, 3, "key {key} moved to an old node");
                moved += 1;
            }
        }
        // Expect about 1/4 of keys on the new node.
        assert!((1_500..3_500).contains(&moved), "moved {moved} of 10000");
        // Single node is always 0 and never hashes.
        assert_eq!(rendezvous(u64::MAX, 1), 0);
    }

    #[test]
    fn rendezvous_spreads_keys_evenly() {
        let mut counts = [0usize; 5];
        for key in 0..10_000u64 {
            counts[rendezvous(key, 5)] += 1;
        }
        for (node, &n) in counts.iter().enumerate() {
            assert!(
                (1_600..=2_400).contains(&n),
                "node {node} owns {n} of 10000"
            );
        }
    }
}
