//! Per-tenant namespaces: source-prefix → tenant mapping with per-tenant
//! detection thresholds and state quotas.
//!
//! A multi-tenant monitor watches several customers' VoIP estates through
//! one perimeter. Each tenant is identified by the source prefix its
//! traffic arrives from, and carries its own [`Config`]: a carrier-grade
//! tenant can tolerate hundreds of INVITEs per second where a small PBX
//! should alert at ten, and each tenant gets a bounded call-table budget
//! (`max_tracked_calls`) so one tenant's flood can never evict another's
//! call state. Tenant 0 is the always-present `default` catch-all.

use vids_core::Config;
use vids_netsim::time::SimTime;

/// Index into the tenant table; tenant `0` is the default catch-all.
pub type TenantId = u16;

/// One tenant: a source prefix and the detection configuration its
/// traffic is analyzed under.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Operator-facing name, unique within the map.
    pub name: String,
    /// Network-order IPv4 prefix bits (already masked).
    pub prefix: u32,
    /// Prefix length, `0..=32`; `0` matches everything.
    pub prefix_len: u8,
    /// The tenant's detection thresholds, timers and quotas.
    pub config: Config,
}

impl Tenant {
    fn matches(&self, src_ip: u32) -> bool {
        if self.prefix_len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - self.prefix_len as u32);
        (src_ip & mask) == self.prefix
    }
}

/// The tenant table: longest-prefix source matching onto per-tenant
/// configurations. Construct with [`TenantMap::single`] for an untenanted
/// cluster or [`TenantMap::parse`] from an operator file.
#[derive(Debug, Clone)]
pub struct TenantMap {
    tenants: Vec<Tenant>,
}

impl TenantMap {
    /// A map with only the default tenant: every source belongs to it and
    /// is analyzed under `base`. This is the untenanted spelling — a
    /// cluster built on it behaves exactly like one pool per node.
    pub fn single(base: Config) -> Self {
        TenantMap {
            tenants: vec![Tenant {
                name: "default".to_owned(),
                prefix: 0,
                prefix_len: 0,
                config: base,
            }],
        }
    }

    /// Parses an operator tenant file on top of `base`. Line format:
    ///
    /// ```text
    /// # comment
    /// tenant <name> <a.b.c.d/len> [key=value ...]
    /// ```
    ///
    /// Recognized keys: `invite_flood_n`, `invite_flood_t1_ms`,
    /// `bye_dos_t_ms`, `spam_seq_gap`, `spam_ts_gap`,
    /// `rtp_flood_max_packets`, `rtp_flood_window_ms`, `max_calls`.
    /// Unset keys inherit `base`. The name `default` re-configures the
    /// catch-all tenant (its prefix is ignored — it always matches last).
    pub fn parse(text: &str, base: Config) -> Result<Self, String> {
        let mut map = TenantMap::single(base);
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next() {
                Some("tenant") => {}
                Some(other) => {
                    return Err(format!("line {}: unknown directive `{other}`", lineno + 1))
                }
                None => continue,
            }
            let name = words
                .next()
                .ok_or_else(|| format!("line {}: tenant needs a name", lineno + 1))?;
            let cidr = words
                .next()
                .ok_or_else(|| format!("line {}: tenant `{name}` needs a CIDR", lineno + 1))?;
            let (prefix, prefix_len) = parse_cidr(cidr)
                .map_err(|e| format!("line {}: bad CIDR `{cidr}`: {e}", lineno + 1))?;
            let mut config = base;
            for kv in words {
                apply_override(&mut config, kv).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            }
            validate(&config).map_err(|e| format!("line {}: tenant `{name}`: {e}", lineno + 1))?;
            if name == "default" {
                map.tenants[0].config = config;
                continue;
            }
            if map.tenants.iter().any(|t| t.name == name) {
                return Err(format!("line {}: duplicate tenant `{name}`", lineno + 1));
            }
            if map.tenants.len() > TenantId::MAX as usize {
                return Err(format!("line {}: too many tenants", lineno + 1));
            }
            map.tenants.push(Tenant {
                name: name.to_owned(),
                prefix,
                prefix_len,
                config,
            });
        }
        Ok(map)
    }

    /// Which tenant a source IP belongs to: the longest matching prefix,
    /// first-defined on equal lengths, falling back to the default.
    pub fn tenant_of(&self, src_ip: u32) -> TenantId {
        let mut best = 0usize;
        let mut best_len = 0u8;
        for (i, t) in self.tenants.iter().enumerate().skip(1) {
            if t.matches(src_ip) && t.prefix_len > best_len {
                best = i;
                best_len = t.prefix_len;
            }
        }
        best as TenantId
    }

    /// Number of tenants, default included.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the map holds only the default tenant.
    pub fn is_empty(&self) -> bool {
        false // the default tenant always exists
    }

    /// The tenant with this id.
    pub fn get(&self, id: TenantId) -> &Tenant {
        &self.tenants[id as usize]
    }

    /// All tenants in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.iter()
    }
}

/// `a.b.c.d/len` → masked prefix bits + length.
fn parse_cidr(text: &str) -> Result<(u32, u8), String> {
    let (addr, len) = text
        .split_once('/')
        .ok_or_else(|| "expected a.b.c.d/len".to_owned())?;
    let len: u8 = len.parse().map_err(|_| format!("bad length `{len}`"))?;
    if len > 32 {
        return Err(format!("prefix length {len} > 32"));
    }
    let mut octets = [0u8; 4];
    let mut count = 0;
    for part in addr.split('.') {
        if count == 4 {
            return Err("too many octets".to_owned());
        }
        octets[count] = part.parse().map_err(|_| format!("bad octet `{part}`"))?;
        count += 1;
    }
    if count != 4 {
        return Err("expected four octets".to_owned());
    }
    let ip = u32::from_be_bytes(octets);
    let mask = if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    };
    Ok((ip & mask, len))
}

fn apply_override(config: &mut Config, kv: &str) -> Result<(), String> {
    let (key, value) = kv
        .split_once('=')
        .ok_or_else(|| format!("expected key=value, got `{kv}`"))?;
    let as_u64 = || -> Result<u64, String> {
        value
            .parse()
            .map_err(|_| format!("bad value `{value}` for {key}"))
    };
    let as_i64 = || -> Result<i64, String> {
        value
            .parse()
            .map_err(|_| format!("bad value `{value}` for {key}"))
    };
    match key {
        "invite_flood_n" => config.invite_flood_n = as_u64()?,
        "invite_flood_t1_ms" => config.invite_flood_t1 = SimTime::from_millis(as_u64()?),
        "bye_dos_t_ms" => config.bye_dos_t = SimTime::from_millis(as_u64()?),
        "spam_seq_gap" => config.spam_seq_gap = as_i64()?,
        "spam_ts_gap" => config.spam_ts_gap = as_i64()?,
        "rtp_flood_max_packets" => config.rtp_flood_max_packets = as_u64()?,
        "rtp_flood_window_ms" => config.rtp_flood_window = SimTime::from_millis(as_u64()?),
        "max_calls" => {
            config.max_tracked_calls = value
                .parse()
                .map_err(|_| format!("bad value `{value}` for {key}"))?
        }
        other => return Err(format!("unknown tenant key `{other}`")),
    }
    Ok(())
}

/// The subset of [`vids_core::ConfigBuilder`]'s validation reachable
/// through tenant overrides.
fn validate(config: &Config) -> Result<(), String> {
    if config.invite_flood_n == 0 {
        return Err("invite_flood_n must be at least 1".to_owned());
    }
    if config.rtp_flood_max_packets == 0 {
        return Err("rtp_flood_max_packets must be at least 1".to_owned());
    }
    if config.spam_seq_gap <= 0 || config.spam_ts_gap <= 0 {
        return Err("spam gaps must be positive".to_owned());
    }
    if config.invite_flood_t1.is_zero() || config.rtp_flood_window.is_zero() {
        return Err("windows must be non-zero".to_owned());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn longest_prefix_wins_and_default_catches_the_rest() {
        let text = "\
# two customers
tenant acme 10.1.0.0/16 invite_flood_n=100
tenant acme-pbx 10.1.7.0/24 invite_flood_n=5
tenant globex 10.2.0.0/16
";
        let map = TenantMap::parse(text, Config::default()).unwrap();
        assert_eq!(map.len(), 4);
        assert_eq!(map.tenant_of(ip(10, 1, 3, 9)), 1, "acme /16");
        assert_eq!(map.tenant_of(ip(10, 1, 7, 9)), 2, "acme-pbx /24 beats /16");
        assert_eq!(map.tenant_of(ip(10, 2, 0, 1)), 3, "globex");
        assert_eq!(map.tenant_of(ip(192, 168, 0, 1)), 0, "default");
        assert_eq!(map.get(1).config.invite_flood_n, 100);
        assert_eq!(map.get(2).config.invite_flood_n, 5);
        assert_eq!(
            map.get(3).config.invite_flood_n,
            Config::default().invite_flood_n
        );
    }

    #[test]
    fn overrides_parse_and_validate() {
        let map = TenantMap::parse(
            "tenant t 10.0.0.0/8 bye_dos_t_ms=500 max_calls=32 spam_seq_gap=9",
            Config::default(),
        )
        .unwrap();
        let c = &map.get(1).config;
        assert_eq!(c.bye_dos_t, SimTime::from_millis(500));
        assert_eq!(c.max_tracked_calls, 32);
        assert_eq!(c.spam_seq_gap, 9);

        assert!(
            TenantMap::parse("tenant t 10.0.0.0/8 invite_flood_n=0", Config::default()).is_err()
        );
        assert!(TenantMap::parse("tenant t 10.0.0.0/33", Config::default()).is_err());
        assert!(TenantMap::parse("tenant t 10.0.0.0/8 nope=1", Config::default()).is_err());
        assert!(TenantMap::parse("widget t 10.0.0.0/8", Config::default()).is_err());
        assert!(TenantMap::parse(
            "tenant t 10.0.0.0/8\ntenant t 10.1.0.0/16",
            Config::default()
        )
        .is_err());
    }

    #[test]
    fn default_tenant_can_be_reconfigured() {
        let map = TenantMap::parse(
            "tenant default 0.0.0.0/0 invite_flood_n=42",
            Config::default(),
        )
        .unwrap();
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(0).config.invite_flood_n, 42);
    }

    #[test]
    fn masked_prefix_bits_are_canonical() {
        // 10.1.7.9/24 must behave as 10.1.7.0/24.
        let map = TenantMap::parse("tenant t 10.1.7.9/24", Config::default()).unwrap();
        assert_eq!(map.tenant_of(ip(10, 1, 7, 200)), 1);
        assert_eq!(map.tenant_of(ip(10, 1, 8, 9)), 0);
    }
}
