//! # vids-attacks — attack traffic injectors
//!
//! Scripted implementations of every threat in the paper's §3:
//!
//! | §3 threat | [`AttackKind`] variant |
//! |---|---|
//! | CANCEL DoS | [`AttackKind::SpoofedCancel`] |
//! | BYE DoS | [`AttackKind::SpoofedBye`] |
//! | INVITE request flooding | [`AttackKind::InviteFlood`] |
//! | Call hijacking (re-INVITE) | [`AttackKind::ReinviteHijack`] |
//! | Billing fraud (BYE + RTP) | `UaConfig::fraud_media_after_bye` in `vids-agents` |
//! | DRDoS via reflectors | [`AttackKind::Drdos`] |
//! | Media spamming | [`AttackKind::MediaSpam`] |
//! | RTP flooding / codec change | [`AttackKind::RtpFlood`] |
//!
//! The [`Attacker`] application runs on an Internet host of the Fig. 7
//! topology. Scenario code typically runs the simulation until a victim
//! call reaches the state the attack needs, reads the dialog/media
//! identifiers off the victim UA (standing in for an on-path sniffer), arms
//! the attacker with [`Attacker::schedule`], and resumes the run.

pub mod craft;

use rand::Rng;

use vids_netsim::node::{AppCtx, Application};
use vids_netsim::packet::{Address, Packet, Payload};
use vids_netsim::time::SimTime;
use vids_rtp::packet::RtpPacket;
use vids_sip::SipUri;

pub use craft::{spoofed_bye, spoofed_cancel, spoofed_reinvite, DialogSnapshot};

/// One attack behavior, with everything needed to launch it.
#[derive(Debug, Clone)]
pub enum AttackKind {
    /// §3.1: overwhelm a terminal with INVITEs. Each carries a fresh
    /// Call-ID and random caller identity, sent straight at the victim.
    InviteFlood {
        /// The victim's SIP URI (used in To / request-URI).
        target_uri: SipUri,
        /// Where to send the INVITEs (victim's host, or its proxy).
        target_addr: Address,
        /// Packets per second.
        rate_pps: f64,
        /// Number of INVITEs.
        count: u32,
    },
    /// §3.1: tear down an established call with a forged BYE.
    SpoofedBye {
        /// Where to deliver the BYE.
        victim: Address,
        /// Pre-crafted BYE text (see [`craft::spoofed_bye`]).
        message: String,
        /// Spoofed source address (the impersonated peer).
        spoof_src: Address,
    },
    /// §3.1: kill a pending call attempt with a forged CANCEL.
    SpoofedCancel {
        /// Where to deliver the CANCEL.
        victim: Address,
        /// Pre-crafted CANCEL text (see [`craft::spoofed_cancel`]).
        message: String,
        /// Spoofed source address.
        spoof_src: Address,
    },
    /// §3.1: hijack a call by injecting a re-INVITE that redirects media.
    ReinviteHijack {
        /// Where to deliver the re-INVITE.
        victim: Address,
        /// Pre-crafted re-INVITE (see [`craft::spoofed_reinvite`]).
        message: String,
        /// Spoofed source address.
        spoof_src: Address,
    },
    /// §3.2: inject fabricated RTP into a session using the sniffed SSRC
    /// with a jump in sequence number and timestamp.
    MediaSpam {
        /// The victim's media address (ip + negotiated RTP port).
        victim: Address,
        /// The legitimate stream's SSRC.
        ssrc: u32,
        /// Payload type to claim.
        payload_type: u8,
        /// First forged sequence number (legit seq + gap).
        start_seq: u16,
        /// First forged timestamp (legit ts + gap).
        start_timestamp: u32,
        /// Spoofed source (the impersonated sender's media address).
        spoof_src: Address,
        /// Packets per second.
        rate_pps: f64,
        /// Number of packets.
        count: u32,
    },
    /// §3.2: flood the victim's media port with RTP (optionally with a
    /// different encoding, deteriorating QoS).
    RtpFlood {
        /// The victim's media address.
        victim: Address,
        /// Payload type to claim (e.g. PCMU instead of the negotiated G729).
        payload_type: u8,
        /// Bytes of payload per packet.
        payload_bytes: usize,
        /// Packets per second.
        rate_pps: f64,
        /// Number of packets.
        count: u32,
    },
    /// §3.1: distributed reflection DoS — spray requests at reflector
    /// proxies with a Via naming the victim, so the responses converge on
    /// the victim.
    Drdos {
        /// The reflector proxies.
        reflectors: Vec<Address>,
        /// The victim whose address goes into the spoofed Via.
        victim: Address,
        /// Requests sent to each reflector.
        per_reflector: u32,
        /// Packets per second (across the whole spray).
        rate_pps: f64,
    },
}

struct ActiveBurst {
    kind: AttackKind,
    sent: u32,
    interval: SimTime,
}

/// Statistics an attacker exposes after the run.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttackerStats {
    /// Attack packets transmitted.
    pub packets_sent: u64,
    /// Bursts launched.
    pub attacks_launched: u64,
    /// Packets that arrived at the attacker (hijacked media, reflected
    /// responses, victim replies).
    pub packets_received: u64,
}

const K_HEARTBEAT: u64 = 1;
const K_BURST_BASE: u64 = 1000;

/// The attacker application. Attach to the topology with
/// [`vids_netsim::topology::Enterprise::add_internet_host`], then
/// [`Attacker::schedule`] attacks (before the run, or between `run_until`
/// phases once the victim state is known).
pub struct Attacker {
    scheduled: Vec<(SimTime, AttackKind)>,
    active: Vec<ActiveBurst>,
    stats: AttackerStats,
    id_counter: u64,
}

impl Default for Attacker {
    fn default() -> Self {
        Attacker::new()
    }
}

impl Attacker {
    /// Creates an idle attacker.
    pub fn new() -> Self {
        Attacker {
            scheduled: Vec::new(),
            active: Vec::new(),
            stats: AttackerStats::default(),
            id_counter: 0,
        }
    }

    /// Schedules an attack to launch at absolute simulation time `at`.
    /// Safe to call between simulation phases; the attacker polls a
    /// heartbeat to notice newly armed attacks.
    pub fn schedule(&mut self, at: SimTime, kind: AttackKind) {
        self.scheduled.push((at, kind));
    }

    /// Attack statistics.
    pub fn stats(&self) -> AttackerStats {
        self.stats
    }

    fn fresh_id(&mut self) -> u64 {
        self.id_counter += 1;
        self.id_counter
    }

    fn launch_due(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let now = ctx.now();
        let due: Vec<AttackKind> = {
            let (ready, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut self.scheduled)
                .into_iter()
                .partition(|(at, _)| *at <= now);
            self.scheduled = rest;
            ready.into_iter().map(|(_, k)| k).collect()
        };
        for kind in due {
            self.stats.attacks_launched += 1;
            let rate = match &kind {
                AttackKind::InviteFlood { rate_pps, .. }
                | AttackKind::MediaSpam { rate_pps, .. }
                | AttackKind::RtpFlood { rate_pps, .. }
                | AttackKind::Drdos { rate_pps, .. } => *rate_pps,
                AttackKind::SpoofedBye { .. }
                | AttackKind::SpoofedCancel { .. }
                | AttackKind::ReinviteHijack { .. } => 0.0,
            };
            let interval = if rate > 0.0 {
                SimTime::from_secs_f64(1.0 / rate)
            } else {
                SimTime::ZERO
            };
            let idx = self.active.len();
            self.active.push(ActiveBurst {
                kind,
                sent: 0,
                interval,
            });
            // Fire the first shot immediately.
            self.burst_tick(idx, ctx);
        }
    }

    fn burst_total(kind: &AttackKind) -> u32 {
        match kind {
            AttackKind::InviteFlood { count, .. }
            | AttackKind::MediaSpam { count, .. }
            | AttackKind::RtpFlood { count, .. } => *count,
            AttackKind::Drdos {
                reflectors,
                per_reflector,
                ..
            } => reflectors.len() as u32 * per_reflector,
            AttackKind::SpoofedBye { .. }
            | AttackKind::SpoofedCancel { .. }
            | AttackKind::ReinviteHijack { .. } => 1,
        }
    }

    fn burst_tick(&mut self, idx: usize, ctx: &mut AppCtx<'_, '_>) {
        let total = Self::burst_total(&self.active[idx].kind);
        if self.active[idx].sent >= total {
            return;
        }
        let shot_no = self.active[idx].sent;
        let kind = self.active[idx].kind.clone();
        self.fire(&kind, shot_no, ctx);
        self.active[idx].sent += 1;
        if self.active[idx].sent < total {
            let interval = self.active[idx].interval;
            ctx.set_timer(interval, K_BURST_BASE + idx as u64);
        }
    }

    fn fire(&mut self, kind: &AttackKind, shot_no: u32, ctx: &mut AppCtx<'_, '_>) {
        match kind {
            AttackKind::InviteFlood {
                target_uri,
                target_addr,
                ..
            } => {
                let id = self.fresh_id();
                let caller: u32 = ctx.rng().gen();
                let invite = craft::flood_invite(
                    target_uri,
                    ctx.local_addr(),
                    &format!("zombie{caller:08x}"),
                    &format!("flood-{id}@{}", ctx.local_addr().ip_string()),
                );
                ctx.send_to(*target_addr, Payload::Sip(invite));
                self.stats.packets_sent += 1;
            }
            AttackKind::SpoofedBye {
                victim,
                message,
                spoof_src,
            }
            | AttackKind::SpoofedCancel {
                victim,
                message,
                spoof_src,
            }
            | AttackKind::ReinviteHijack {
                victim,
                message,
                spoof_src,
            } => {
                ctx.send_from(*spoof_src, *victim, Payload::Sip(message.clone()));
                self.stats.packets_sent += 1;
            }
            AttackKind::MediaSpam {
                victim,
                ssrc,
                payload_type,
                start_seq,
                start_timestamp,
                spoof_src,
                ..
            } => {
                let pkt = RtpPacket::new(
                    *payload_type,
                    start_seq.wrapping_add(shot_no as u16),
                    start_timestamp.wrapping_add(shot_no * 80),
                    *ssrc,
                )
                .with_payload(vec![0xAA; 10]);
                ctx.send_from(*spoof_src, *victim, Payload::Rtp(pkt.to_bytes()));
                self.stats.packets_sent += 1;
            }
            AttackKind::RtpFlood {
                victim,
                payload_type,
                payload_bytes,
                ..
            } => {
                let ssrc: u32 = ctx.rng().gen();
                let pkt = RtpPacket::new(*payload_type, shot_no as u16, shot_no * 160, ssrc)
                    .with_payload(vec![0x55; *payload_bytes]);
                ctx.send_from_port(40_000, *victim, Payload::Rtp(pkt.to_bytes()));
                self.stats.packets_sent += 1;
            }
            AttackKind::Drdos {
                reflectors,
                victim,
                per_reflector,
                ..
            } => {
                let n = reflectors.len() as u32;
                if n == 0 || *per_reflector == 0 {
                    return;
                }
                let reflector = reflectors[(shot_no % n) as usize];
                let id = self.fresh_id();
                let options = craft::reflector_options(reflector, *victim, &format!("drdos-{id}"));
                ctx.send_to(reflector, Payload::Sip(options));
                self.stats.packets_sent += 1;
            }
        }
    }
}

impl Application for Attacker {
    fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
        ctx.set_timer(SimTime::from_millis(50), K_HEARTBEAT);
    }

    fn on_datagram(&mut self, _packet: &Packet, _ctx: &mut AppCtx<'_, '_>) {
        self.stats.packets_received += 1;
    }

    fn on_timer(&mut self, token: u64, ctx: &mut AppCtx<'_, '_>) {
        if token == K_HEARTBEAT {
            self.launch_due(ctx);
            ctx.set_timer(SimTime::from_millis(50), K_HEARTBEAT);
        } else if token >= K_BURST_BASE {
            self.burst_tick((token - K_BURST_BASE) as usize, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_totals() {
        let flood = AttackKind::RtpFlood {
            victim: Address::default(),
            payload_type: 0,
            payload_bytes: 160,
            rate_pps: 100.0,
            count: 42,
        };
        assert_eq!(Attacker::burst_total(&flood), 42);
        let drdos = AttackKind::Drdos {
            reflectors: vec![Address::default(); 3],
            victim: Address::default(),
            per_reflector: 5,
            rate_pps: 10.0,
        };
        assert_eq!(Attacker::burst_total(&drdos), 15);
        let bye = AttackKind::SpoofedBye {
            victim: Address::default(),
            message: String::new(),
            spoof_src: Address::default(),
        };
        assert_eq!(Attacker::burst_total(&bye), 1);
    }

    #[test]
    fn schedule_accumulates() {
        let mut a = Attacker::new();
        a.schedule(
            SimTime::from_secs(1),
            AttackKind::SpoofedBye {
                victim: Address::default(),
                message: "x".into(),
                spoof_src: Address::default(),
            },
        );
        a.schedule(
            SimTime::from_secs(2),
            AttackKind::SpoofedCancel {
                victim: Address::default(),
                message: "y".into(),
                spoof_src: Address::default(),
            },
        );
        assert_eq!(a.scheduled.len(), 2);
        assert_eq!(a.stats().attacks_launched, 0);
    }
}
