//! Forged-message construction.
//!
//! The paper's spoofing attacks work because "without proper authentication,
//! the receiving UA cannot differentiate the spoofed CANCEL message from the
//! genuine one" (§3.1). These helpers build byte-exact impersonations from a
//! [`DialogSnapshot`] — the identifiers an on-path attacker would sniff.

use vids_agents::call::CallCtx;
use vids_netsim::packet::Address;
use vids_sdp::{Codec, SessionDescription};
use vids_sip::headers::{CSeq, Header, NameAddr, Via};
use vids_sip::message::Request;
use vids_sip::{Method, SipUri};

/// Which dialog party the forged message is delivered to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Attack the caller's UA.
    Caller,
    /// Attack the callee's UA.
    Callee,
}

/// Everything an attacker needs to impersonate a party of a live dialog.
#[derive(Debug, Clone)]
pub struct DialogSnapshot {
    /// The dialog's Call-ID.
    pub call_id: String,
    /// Caller identity: From header with its tag.
    pub caller_from: NameAddr,
    /// Callee identity: To header with its tag.
    pub callee_to: NameAddr,
    /// Caller's signaling address.
    pub caller_addr: Address,
    /// Callee's signaling address.
    pub callee_addr: Address,
    /// Where the *callee* receives media (caller's RTP destination).
    pub callee_media: Option<Address>,
    /// Where the *caller* receives media.
    pub caller_media: Option<Address>,
    /// SSRC of the caller's outgoing stream.
    pub caller_ssrc: Option<u32>,
    /// Caller's current outgoing RTP sequence number / timestamp.
    pub caller_rtp_cursor: Option<(u16, u32)>,
    /// Via branch of the original INVITE.
    pub invite_branch: String,
}

impl DialogSnapshot {
    /// Sniffs a dialog from the *caller's* call context (the caller knows
    /// every identifier: its own tag, the answered To tag, the SDP media
    /// coordinates and its stream's SSRC and cursor).
    pub fn from_caller(call: &CallCtx, caller_addr: Address, callee_addr: Address) -> Self {
        let caller_from = call
            .invite
            .headers
            .from_header()
            .cloned()
            .unwrap_or_else(|| NameAddr::new(SipUri::new("unknown", "invalid")));
        let mut callee_to = call
            .invite
            .headers
            .to_header()
            .cloned()
            .unwrap_or_else(|| NameAddr::new(SipUri::new("unknown", "invalid")));
        if !call.dialog.remote_tag.is_empty() {
            callee_to.set_tag(call.dialog.remote_tag.clone());
        }
        let media = call.media.as_ref();
        DialogSnapshot {
            call_id: call.dialog.call_id.clone(),
            caller_from,
            callee_to,
            caller_addr,
            callee_addr,
            callee_media: media.map(|m| m.peer),
            caller_media: media.map(|m| Address {
                ip: caller_addr.ip,
                port: m.local_port,
            }),
            caller_ssrc: media.map(|m| m.ssrc),
            caller_rtp_cursor: media.map(|m| (m.seq, m.timestamp)),
            invite_branch: call
                .invite
                .headers
                .top_via()
                .and_then(|v| v.branch())
                .unwrap_or("z9hG4bK-unknown")
                .to_owned(),
        }
    }

    /// The party addresses for a given target: `(victim, impersonated)`.
    pub fn endpoints(&self, target: Target) -> (Address, Address) {
        match target {
            Target::Caller => (self.caller_addr, self.callee_addr),
            Target::Callee => (self.callee_addr, self.caller_addr),
        }
    }
}

fn base_in_dialog(snap: &DialogSnapshot, target: Target, method: Method, cseq: u32) -> Request {
    let (from, to, spoof_ip) = match target {
        // Attacking the callee: impersonate the caller.
        Target::Callee => (
            snap.caller_from.clone(),
            snap.callee_to.clone(),
            snap.caller_addr.ip_string(),
        ),
        // Attacking the caller: impersonate the callee (dialog reversed).
        Target::Caller => (
            snap.callee_to.clone(),
            snap.caller_from.clone(),
            snap.callee_addr.ip_string(),
        ),
    };
    let mut req = Request::new(method, to.uri().clone());
    req.headers.push(Header::Via(Via::udp(
        spoof_ip,
        vids_sip::DEFAULT_SIP_PORT,
        format!(
            "z9hG4bK-atk-{}-{}",
            method.as_str().to_ascii_lowercase(),
            cseq
        ),
    )));
    req.headers.push(Header::MaxForwards(70));
    req.headers.push(Header::From(from));
    req.headers.push(Header::To(to));
    req.headers.push(Header::CallId(snap.call_id.clone()));
    req.headers.push(Header::CSeq(CSeq::new(cseq, method)));
    req.headers.push(Header::ContentLength(0));
    req
}

/// Forges the BYE of §3.1's BYE DoS: "suddenly malicious UA-C sends a BYE
/// message to either UAs, A or B. The receiving UA will prematurely
/// teardown the established call assuming that it is requested by the
/// partner UA."
pub fn spoofed_bye(snap: &DialogSnapshot, target: Target) -> String {
    base_in_dialog(snap, target, Method::Bye, 20).to_string()
}

/// Forges the CANCEL of §3.1's CANCEL DoS, matching the pending INVITE.
pub fn spoofed_cancel(snap: &DialogSnapshot) -> String {
    let mut req = base_in_dialog(snap, Target::Callee, Method::Cancel, 1);
    // A CANCEL matches the INVITE transaction: reuse its branch.
    req.headers.pop_via();
    req.headers.push_front(Header::Via(Via::udp(
        snap.caller_addr.ip_string(),
        vids_sip::DEFAULT_SIP_PORT,
        snap.invite_branch.clone(),
    )));
    req.to_string()
}

/// Forges the call-hijacking re-INVITE of §3.1: "a new INVITE request could
/// be send within a pre-existing dialog", redirecting the victim's media to
/// the attacker.
pub fn spoofed_reinvite(snap: &DialogSnapshot, attacker_media: Address) -> String {
    let mut req = base_in_dialog(snap, Target::Callee, Method::Invite, 30);
    let sdp = SessionDescription::audio_offer(
        "hijack",
        &attacker_media.ip_string(),
        attacker_media.port,
        &[Codec::G729],
    );
    let req = {
        req.headers.push(Header::Contact(NameAddr::new(SipUri::new(
            "hijack",
            attacker_media.ip_string(),
        ))));
        req.with_body(vids_sdp::MIME_TYPE, sdp.to_string())
    };
    req.to_string()
}

/// Builds one flooding INVITE (fresh identity and Call-ID per packet).
pub fn flood_invite(
    target_uri: &SipUri,
    attacker_addr: Address,
    caller_user: &str,
    call_id: &str,
) -> String {
    let from_uri = SipUri::new(caller_user, attacker_addr.ip_string());
    let mut req = Request::new(Method::Invite, target_uri.clone());
    req.headers.push(Header::Via(Via::udp(
        attacker_addr.ip_string(),
        attacker_addr.port,
        format!("z9hG4bK-{call_id}"),
    )));
    req.headers.push(Header::MaxForwards(70));
    req.headers.push(Header::From(
        NameAddr::new(from_uri.clone()).with_tag(format!("t-{call_id}")),
    ));
    req.headers
        .push(Header::To(NameAddr::new(target_uri.clone())));
    req.headers.push(Header::CallId(call_id.to_owned()));
    req.headers.push(Header::CSeq(CSeq::new(1, Method::Invite)));
    req.headers.push(Header::Contact(NameAddr::new(from_uri)));
    let sdp = SessionDescription::audio_offer(
        caller_user,
        &attacker_addr.ip_string(),
        40_000,
        &[Codec::G729],
    );
    req.with_body(vids_sdp::MIME_TYPE, sdp.to_string())
        .to_string()
}

/// Builds a reflector probe: OPTIONS addressed to the reflector proxy with
/// a Via naming the victim, so the 200 is "reflected" onto the victim.
pub fn reflector_options(reflector: Address, victim: Address, call_id: &str) -> String {
    let mut req = Request::new(Method::Options, SipUri::host_only(reflector.ip_string()));
    req.headers.push(Header::Via(Via::udp(
        victim.ip_string(),
        victim.port,
        format!("z9hG4bK-{call_id}"),
    )));
    req.headers.push(Header::MaxForwards(70));
    req.headers.push(Header::From(
        NameAddr::new(SipUri::new("scanner", victim.ip_string())).with_tag("t1"),
    ));
    req.headers.push(Header::To(NameAddr::new(SipUri::host_only(
        reflector.ip_string(),
    ))));
    req.headers.push(Header::CallId(call_id.to_owned()));
    req.headers
        .push(Header::CSeq(CSeq::new(1, Method::Options)));
    req.headers.push(Header::ContentLength(0));
    req.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vids_netsim::time::SimTime;
    use vids_sip::parse::parse_message;

    fn snapshot() -> DialogSnapshot {
        let invite = Request::invite(
            &SipUri::new("ua1", "a.example.com"),
            &SipUri::new("ua0", "b.example.com"),
            "victim-call",
        );
        let mut call = CallCtx::caller(invite, SimTime::ZERO, SimTime::from_secs(60), 0);
        call.dialog.remote_tag = "callee-tag".to_owned();
        call.media = Some(vids_agents::call::MediaSession::new(
            Address::new(10, 2, 0, 10, 30_000),
            20_000,
            0xFEEDFACE,
            Codec::G729,
        ));
        DialogSnapshot::from_caller(
            &call,
            Address::new(10, 1, 0, 11, 5060),
            Address::new(10, 2, 0, 10, 5060),
        )
    }

    #[test]
    fn snapshot_captures_dialog_identifiers() {
        let snap = snapshot();
        assert_eq!(snap.call_id, "victim-call");
        assert_eq!(snap.caller_from.tag(), Some("tag-ua1"));
        assert_eq!(snap.callee_to.tag(), Some("callee-tag"));
        assert_eq!(snap.caller_ssrc, Some(0xFEEDFACE));
        assert_eq!(snap.callee_media, Some(Address::new(10, 2, 0, 10, 30_000)));
        assert_eq!(snap.caller_media, Some(Address::new(10, 1, 0, 11, 20_000)));
    }

    #[test]
    fn spoofed_bye_parses_and_matches_dialog() {
        let snap = snapshot();
        let bye = spoofed_bye(&snap, Target::Callee);
        let msg = parse_message(&bye).unwrap();
        assert_eq!(msg.method(), Some(Method::Bye));
        assert_eq!(msg.call_id(), "victim-call");
        // Impersonates the caller toward the callee.
        assert_eq!(msg.headers().from_header().unwrap().tag(), Some("tag-ua1"));
        assert_eq!(msg.headers().to_header().unwrap().tag(), Some("callee-tag"));
    }

    #[test]
    fn spoofed_bye_toward_caller_reverses_identities() {
        let snap = snapshot();
        let bye = spoofed_bye(&snap, Target::Caller);
        let msg = parse_message(&bye).unwrap();
        assert_eq!(
            msg.headers().from_header().unwrap().tag(),
            Some("callee-tag")
        );
        let (victim, impersonated) = snap.endpoints(Target::Caller);
        assert_eq!(victim, snap.caller_addr);
        assert_eq!(impersonated, snap.callee_addr);
    }

    #[test]
    fn spoofed_cancel_reuses_invite_branch() {
        let snap = snapshot();
        let cancel = spoofed_cancel(&snap);
        let msg = parse_message(&cancel).unwrap();
        assert_eq!(msg.method(), Some(Method::Cancel));
        assert_eq!(
            msg.headers().top_via().unwrap().branch(),
            Some(snap.invite_branch.as_str())
        );
    }

    #[test]
    fn spoofed_reinvite_redirects_media_to_attacker() {
        let snap = snapshot();
        let attacker_media = Address::new(10, 0, 0, 10, 44_000);
        let reinvite = spoofed_reinvite(&snap, attacker_media);
        let msg = parse_message(&reinvite).unwrap();
        assert_eq!(msg.method(), Some(Method::Invite));
        let sdp: SessionDescription = msg.body().parse().unwrap();
        assert_eq!(sdp.media_addr(), "10.0.0.10");
        assert_eq!(sdp.first_audio().unwrap().port, 44_000);
    }

    #[test]
    fn flood_invite_has_unique_identity() {
        let target = SipUri::new("ua0", "b.example.com");
        let a = flood_invite(&target, Address::new(10, 0, 0, 10, 5060), "z1", "f-1");
        let b = flood_invite(&target, Address::new(10, 0, 0, 10, 5060), "z2", "f-2");
        let ma = parse_message(&a).unwrap();
        let mb = parse_message(&b).unwrap();
        assert_ne!(ma.call_id(), mb.call_id());
        assert!(!ma.body().is_empty(), "flood INVITE carries SDP");
    }

    #[test]
    fn reflector_options_names_victim_in_via() {
        let reflector = Address::new(10, 2, 0, 5, 5060);
        let victim = Address::new(10, 2, 0, 20, 5060);
        let opts = reflector_options(reflector, victim, "d1");
        let msg = parse_message(&opts).unwrap();
        assert_eq!(msg.method(), Some(Method::Options));
        assert_eq!(msg.headers().top_via().unwrap().host(), "10.2.0.20");
    }
}
