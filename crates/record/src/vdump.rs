//! The `.vdump` forensic dump format: self-describing, section-framed,
//! checksummed binary — hand-rolled like the pcap reader, no serde.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "VDMP"  u16 version  u16 reserved
//! repeated sections:
//!   [u8;4] tag   u32 len   len payload bytes   u32 crc32(payload)
//! terminated by the END section (len 0)
//! ```
//!
//! Sections of version 1:
//!
//! | tag    | payload                                                     |
//! |--------|-------------------------------------------------------------|
//! | `CONF` | every detection/ingestion knob of [`Config`] + ring size    |
//! | `PKTS` | the captured datagram window, oldest → newest               |
//! | `ALRT` | the triggering [`Alert`], via [`encode_alert`]              |
//! | `SNAP` | VarMap/state snapshot of the triggering call (optional)     |
//! | `CTRS` | engine counters + total alerts at dump time                 |
//! | `END`  | empty terminator                                            |
//!
//! Unknown tags are skipped (their CRC is still verified), so later
//! versions can append sections without breaking old readers. Every decode
//! failure is a [`VdumpError`] carrying the byte offset where parsing
//! stopped, pcap-reader style.

use std::fmt;
use std::path::Path;

use vids_core::alert::{Alert, AlertKind};
use vids_core::config::Config;
use vids_core::engine::VidsCounters;
use vids_core::snapshot::{CallSnapshot, MachineSnapshot};
use vids_netsim::time::SimTime;

use crate::crc::crc32;
use crate::ring::{RecordedClass, SlotMeta};

/// Format magic.
pub const MAGIC: &[u8; 4] = b"VDMP";
/// Current format version.
pub const VERSION: u16 = 1;

/// One captured datagram inside a dump: the ring's [`SlotMeta`] plus the
/// raw wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedPacket {
    /// Ring metadata (timestamps, addresses, demux verdict, batch id).
    pub meta: SlotMeta,
    /// Raw UDP payload as it arrived on the wire.
    pub payload: Vec<u8>,
}

/// Engine counters frozen at dump time, compared byte-for-byte on replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DumpCounters {
    /// The pool's traffic counters.
    pub counters: VidsCounters,
    /// Alerts the original run had raised up to (and including) the
    /// triggering batch.
    pub alerts_total: u64,
}

/// A parsed (or about-to-be-written) forensic dump.
#[derive(Debug, Clone, PartialEq)]
pub struct Vdump {
    /// The engine configuration the original run used. Replay rebuilds the
    /// pool from exactly this.
    pub config: Config,
    /// Transition-ring capacity telemetry was enabled with (0 = telemetry
    /// off). Alert traces only reproduce when this matches.
    pub telemetry_ring: u32,
    /// The captured datagram window, oldest → newest.
    pub packets: Vec<RecordedPacket>,
    /// The alert that triggered the dump.
    pub alert: Alert,
    /// Machine states and variables of the triggering call at batch end
    /// (absent when the alert is not call-scoped or the call was already
    /// evicted).
    pub snapshot: Option<CallSnapshot>,
    /// Counters at dump time.
    pub counters: DumpCounters,
}

/// Where and why a dump failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VdumpError {
    /// Byte offset into the dump at which parsing stopped.
    pub offset: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for VdumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid .vdump at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for VdumpError {}

// ---------------------------------------------------------------- writing

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

fn section(out: &mut Vec<u8>, tag: &[u8; 4], payload: &[u8]) {
    out.extend_from_slice(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

fn encode_config(c: &Config, telemetry_ring: u32) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.u64(c.invite_flood_n);
    e.u64(c.invite_flood_t1.as_nanos());
    e.u64(c.bye_dos_t.as_nanos());
    e.i64(c.spam_seq_gap);
    e.i64(c.spam_ts_gap);
    e.u64(c.rtp_flood_max_packets);
    e.u64(c.rtp_flood_window.as_nanos());
    e.u64(c.response_flood_n);
    e.u64(c.response_flood_window.as_nanos());
    e.u64(c.teardown_linger.as_nanos());
    e.u64(c.eviction_delay.as_nanos());
    e.u8(c.cross_protocol_sync as u8);
    e.u64(c.shards as u64);
    e.u64(c.batch_flush_packets as u64);
    e.u64(c.batch_flush_interval.as_nanos());
    e.u64(c.replay_grace.as_nanos());
    e.u32(telemetry_ring);
    e.buf
}

fn encode_packets(packets: &[RecordedPacket]) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.u32(packets.len() as u32);
    for p in packets {
        e.u64(p.meta.seq);
        e.u64(p.meta.at_ns);
        e.u64(p.meta.batch);
        e.u8(p.meta.class as u8);
        e.u32(p.meta.src_ip);
        e.u16(p.meta.src_port);
        e.u32(p.meta.dst_ip);
        e.u16(p.meta.dst_port);
        e.bytes(&p.payload);
    }
    e.buf
}

/// Canonical byte encoding of one [`Alert`] — the unit of the replay
/// gate's byte-identity comparison (trace lines included).
pub fn encode_alert(a: &Alert) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.u64(a.time_ms);
    e.u8(match a.kind {
        AlertKind::Attack => 0,
        AlertKind::Deviation => 1,
        AlertKind::Nondeterminism => 2,
    });
    e.str(&a.label);
    match &a.call_id {
        None => e.u8(0),
        Some(c) => {
            e.u8(1);
            e.str(c);
        }
    }
    e.str(&a.machine);
    e.str(&a.detail);
    e.u32(a.trace.len() as u32);
    for line in &a.trace {
        e.str(line);
    }
    e.buf
}

fn encode_snapshot(s: &CallSnapshot) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.str(&s.call_id);
    e.u32(s.machines.len() as u32);
    for m in &s.machines {
        e.str(&m.name);
        e.str(&m.state);
        e.u32(m.locals.len() as u32);
        for (k, v) in &m.locals {
            e.str(k);
            e.str(v);
        }
    }
    e.u32(s.globals.len() as u32);
    for (k, v) in &s.globals {
        e.str(k);
        e.str(v);
    }
    e.buf
}

fn encode_counters(c: &DumpCounters) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.u64(c.counters.sip_packets);
    e.u64(c.counters.rtp_packets);
    e.u64(c.counters.malformed);
    e.u64(c.counters.ignored);
    e.u64(c.counters.unassociated_rtp);
    e.u64(c.counters.unassociated_sip_requests);
    e.u64(c.counters.unassociated_sip_responses);
    e.u64(c.alerts_total);
    e.buf
}

impl Vdump {
    /// Serializes the dump to its wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        section(
            &mut out,
            b"CONF",
            &encode_config(&self.config, self.telemetry_ring),
        );
        section(&mut out, b"PKTS", &encode_packets(&self.packets));
        section(&mut out, b"ALRT", &encode_alert(&self.alert));
        if let Some(s) = &self.snapshot {
            section(&mut out, b"SNAP", &encode_snapshot(s));
        }
        section(&mut out, b"CTRS", &encode_counters(&self.counters));
        section(&mut out, b"END\0", &[]);
        out
    }

    /// Writes the dump to `path` (creating parent directories).
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.encode())
    }

    /// Reads and parses a dump file.
    pub fn read_from(path: &Path) -> Result<Vdump, VdumpReadError> {
        let bytes = std::fs::read(path).map_err(VdumpReadError::Io)?;
        Vdump::parse(&bytes).map_err(VdumpReadError::Format)
    }

    /// Parses a dump from its wire form.
    pub fn parse(bytes: &[u8]) -> Result<Vdump, VdumpError> {
        let mut d = Dec::new(bytes);
        if d.take(4)? != MAGIC {
            return Err(d.err_at(0, "bad magic (not a .vdump file)"));
        }
        let version = d.u16()?;
        if version != VERSION {
            return Err(d.err_at(4, "unsupported version"));
        }
        d.u16()?; // reserved

        let mut config = None;
        let mut telemetry_ring = 0u32;
        let mut packets = None;
        let mut alert = None;
        let mut snapshot = None;
        let mut counters = None;
        loop {
            let tag_off = d.off;
            let tag: [u8; 4] = d.take(4)?.try_into().unwrap();
            let len = d.u32()? as usize;
            let payload_off = d.off;
            let payload = d.take(len)?;
            let stored_crc = d.u32()?;
            if crc32(payload) != stored_crc {
                return Err(d.err_at(payload_off, "section checksum mismatch"));
            }
            let mut s = Dec::at(payload, payload_off);
            match &tag {
                b"CONF" => {
                    let (c, ring) = parse_config(&mut s)?;
                    config = Some(c);
                    telemetry_ring = ring;
                }
                b"PKTS" => packets = Some(parse_packets(&mut s)?),
                b"ALRT" => alert = Some(parse_alert(&mut s)?),
                b"SNAP" => snapshot = Some(parse_snapshot(&mut s)?),
                b"CTRS" => counters = Some(parse_counters(&mut s)?),
                b"END\0" => break,
                _ if tag.iter().all(|b| b.is_ascii_graphic() || *b == 0) => {
                    // Future section: checksum verified above, skip.
                }
                _ => return Err(d.err_at(tag_off, "garbage section tag")),
            }
        }
        Ok(Vdump {
            config: config.ok_or(VdumpError {
                offset: bytes.len(),
                reason: "missing CONF section",
            })?,
            telemetry_ring,
            packets: packets.ok_or(VdumpError {
                offset: bytes.len(),
                reason: "missing PKTS section",
            })?,
            alert: alert.ok_or(VdumpError {
                offset: bytes.len(),
                reason: "missing ALRT section",
            })?,
            snapshot,
            counters: counters.ok_or(VdumpError {
                offset: bytes.len(),
                reason: "missing CTRS section",
            })?,
        })
    }

    /// One-paragraph human summary (the `vids inspect` body).
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let span_ns = match (self.packets.first(), self.packets.last()) {
            (Some(a), Some(b)) => b.meta.at_ns.saturating_sub(a.meta.at_ns),
            _ => 0,
        };
        let batches = {
            let mut n = 0u64;
            let mut last = None;
            for p in &self.packets {
                if last != Some(p.meta.batch) {
                    n += 1;
                    last = Some(p.meta.batch);
                }
            }
            n
        };
        let bytes: usize = self.packets.iter().map(|p| p.payload.len()).sum();
        writeln!(
            out,
            "window:   {} datagrams, {} bytes, {} batch(es), spanning {:.3}s",
            self.packets.len(),
            bytes,
            batches,
            span_ns as f64 / 1e9,
        )
        .unwrap();
        writeln!(
            out,
            "engine:   {} shard(s), flush {} pkts, telemetry ring {}",
            self.config.shards, self.config.batch_flush_packets, self.telemetry_ring
        )
        .unwrap();
        writeln!(out, "alert:    {}", self.alert).unwrap();
        for line in &self.alert.trace {
            writeln!(out, "  trace:  {line}").unwrap();
        }
        match &self.snapshot {
            Some(s) => {
                writeln!(out, "call:     {}", s.call_id).unwrap();
                for m in &s.machines {
                    let vars: Vec<String> =
                        m.locals.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    writeln!(out, "  {:<6} state={} {}", m.name, m.state, vars.join(" ")).unwrap();
                }
                if !s.globals.is_empty() {
                    let vars: Vec<String> =
                        s.globals.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    writeln!(out, "  globals {}", vars.join(" ")).unwrap();
                }
            }
            None => writeln!(out, "call:     (no snapshot — not call-scoped)").unwrap(),
        }
        let c = self.counters.counters;
        writeln!(
            out,
            "counters: sip={} rtp={} malformed={} ignored={} unassoc={}|{}|{} alerts={}",
            c.sip_packets,
            c.rtp_packets,
            c.malformed,
            c.ignored,
            c.unassociated_rtp,
            c.unassociated_sip_requests,
            c.unassociated_sip_responses,
            self.counters.alerts_total
        )
        .unwrap();
        out
    }
}

/// Error reading a dump from disk: I/O or format.
#[derive(Debug)]
pub enum VdumpReadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The bytes were not a valid dump.
    Format(VdumpError),
}

impl fmt::Display for VdumpReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VdumpReadError::Io(e) => write!(f, "cannot read dump: {e}"),
            VdumpReadError::Format(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VdumpReadError {}

// ---------------------------------------------------------------- parsing

struct Dec<'a> {
    bytes: &'a [u8],
    /// Offset within `bytes`.
    pos: usize,
    /// Global offset of `bytes[0]` in the original file (for errors).
    base: usize,
    /// Global offset of the next unread byte.
    off: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec {
            bytes,
            pos: 0,
            base: 0,
            off: 0,
        }
    }

    fn at(bytes: &'a [u8], base: usize) -> Self {
        Dec {
            bytes,
            pos: 0,
            base,
            off: base,
        }
    }

    fn err(&self, reason: &'static str) -> VdumpError {
        VdumpError {
            offset: self.off,
            reason,
        }
    }

    fn err_at(&self, offset: usize, reason: &'static str) -> VdumpError {
        VdumpError { offset, reason }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], VdumpError> {
        if self.bytes.len() - self.pos < n {
            return Err(self.err("truncated"));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        self.off = self.base + self.pos;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, VdumpError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, VdumpError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, VdumpError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, VdumpError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, VdumpError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn blob(&mut self) -> Result<&'a [u8], VdumpError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn string(&mut self) -> Result<String, VdumpError> {
        let at = self.off;
        let raw = self.blob()?;
        match std::str::from_utf8(raw) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => Err(self.err_at(at, "string is not UTF-8")),
        }
    }
}

fn parse_config(d: &mut Dec) -> Result<(Config, u32), VdumpError> {
    let invite_flood_n = d.u64()?;
    let invite_flood_t1 = SimTime::from_nanos(d.u64()?);
    let bye_dos_t = SimTime::from_nanos(d.u64()?);
    let spam_seq_gap = d.i64()?;
    let spam_ts_gap = d.i64()?;
    let rtp_flood_max_packets = d.u64()?;
    let rtp_flood_window = SimTime::from_nanos(d.u64()?);
    let response_flood_n = d.u64()?;
    let response_flood_window = SimTime::from_nanos(d.u64()?);
    let teardown_linger = SimTime::from_nanos(d.u64()?);
    let eviction_delay = SimTime::from_nanos(d.u64()?);
    let cross_protocol_sync = d.u8()? != 0;
    let shards = d.u64()? as usize;
    let batch_flush_packets = d.u64()? as usize;
    let batch_flush_interval = SimTime::from_nanos(d.u64()?);
    let replay_grace = SimTime::from_nanos(d.u64()?);
    let telemetry_ring = d.u32()?;
    let at = d.off;
    let config = Config::builder()
        .invite_flood_threshold(invite_flood_n)
        .invite_flood_window(invite_flood_t1)
        .bye_dos_linger(bye_dos_t)
        .spam_seq_gap(spam_seq_gap)
        .spam_ts_gap(spam_ts_gap)
        .rtp_flood_max_packets(rtp_flood_max_packets)
        .rtp_flood_window(rtp_flood_window)
        .response_flood_threshold(response_flood_n)
        .response_flood_window(response_flood_window)
        .teardown_linger(teardown_linger)
        .eviction_delay(eviction_delay)
        .cross_protocol_sync(cross_protocol_sync)
        .shards(shards)
        .batch_flush_packets(batch_flush_packets)
        .batch_flush_interval(batch_flush_interval)
        .replay_grace(replay_grace)
        .build()
        .map_err(|_| VdumpError {
            offset: at,
            reason: "recorded configuration fails validation",
        })?;
    Ok((config, telemetry_ring))
}

fn parse_packets(d: &mut Dec) -> Result<Vec<RecordedPacket>, VdumpError> {
    let count = d.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let seq = d.u64()?;
        let at_ns = d.u64()?;
        let batch = d.u64()?;
        let class_at = d.off;
        let class = RecordedClass::from_u8(d.u8()?)
            .ok_or_else(|| d.err_at(class_at, "unknown demux class"))?;
        let src_ip = d.u32()?;
        let src_port = d.u16()?;
        let dst_ip = d.u32()?;
        let dst_port = d.u16()?;
        let payload = d.blob()?.to_vec();
        out.push(RecordedPacket {
            meta: SlotMeta {
                seq,
                at_ns,
                batch,
                src_ip,
                src_port,
                dst_ip,
                dst_port,
                class,
            },
            payload,
        });
    }
    Ok(out)
}

fn parse_alert(d: &mut Dec) -> Result<Alert, VdumpError> {
    let time_ms = d.u64()?;
    let kind_at = d.off;
    let kind = match d.u8()? {
        0 => AlertKind::Attack,
        1 => AlertKind::Deviation,
        2 => AlertKind::Nondeterminism,
        _ => return Err(d.err_at(kind_at, "unknown alert kind")),
    };
    let label = d.string()?;
    let call_id = match d.u8()? {
        0 => None,
        _ => Some(d.string()?),
    };
    let machine = d.string()?;
    let detail = d.string()?;
    let trace_len = d.u32()? as usize;
    let mut trace = Vec::with_capacity(trace_len.min(1 << 12));
    for _ in 0..trace_len {
        trace.push(d.string()?);
    }
    Ok(Alert {
        time_ms,
        kind,
        label,
        call_id,
        machine,
        detail,
        trace,
    })
}

fn parse_snapshot(d: &mut Dec) -> Result<CallSnapshot, VdumpError> {
    let call_id = d.string()?;
    let machine_count = d.u32()? as usize;
    let mut machines = Vec::with_capacity(machine_count.min(64));
    for _ in 0..machine_count {
        let name = d.string()?;
        let state = d.string()?;
        let local_count = d.u32()? as usize;
        let mut locals = Vec::with_capacity(local_count.min(1 << 10));
        for _ in 0..local_count {
            locals.push((d.string()?, d.string()?));
        }
        machines.push(MachineSnapshot {
            name,
            state,
            locals,
        });
    }
    let global_count = d.u32()? as usize;
    let mut globals = Vec::with_capacity(global_count.min(1 << 10));
    for _ in 0..global_count {
        globals.push((d.string()?, d.string()?));
    }
    Ok(CallSnapshot {
        call_id,
        machines,
        globals,
    })
}

fn parse_counters(d: &mut Dec) -> Result<DumpCounters, VdumpError> {
    Ok(DumpCounters {
        counters: VidsCounters {
            sip_packets: d.u64()?,
            rtp_packets: d.u64()?,
            malformed: d.u64()?,
            ignored: d.u64()?,
            unassociated_rtp: d.u64()?,
            unassociated_sip_requests: d.u64()?,
            unassociated_sip_responses: d.u64()?,
        },
        alerts_total: d.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vdump {
        Vdump {
            config: Config::builder().shards(2).build().unwrap(),
            telemetry_ring: 256,
            packets: vec![
                RecordedPacket {
                    meta: SlotMeta {
                        seq: 0,
                        at_ns: 1_000_000,
                        batch: 1,
                        src_ip: 0x0a01_000a,
                        src_port: 5060,
                        dst_ip: 0x0a02_000a,
                        dst_port: 5060,
                        class: RecordedClass::Sip,
                    },
                    payload: b"INVITE sip:bob@b SIP/2.0\r\n\r\n".to_vec(),
                },
                RecordedPacket {
                    meta: SlotMeta {
                        seq: 1,
                        at_ns: 2_000_000,
                        batch: 2,
                        src_ip: 0,
                        src_port: 0,
                        dst_ip: 0,
                        dst_port: 0,
                        class: RecordedClass::NonIp,
                    },
                    payload: Vec::new(),
                },
            ],
            alert: Alert {
                time_ms: 42,
                kind: AlertKind::Attack,
                label: "invite-flood".to_owned(),
                call_id: Some("c1".to_owned()),
                machine: "flood".to_owned(),
                detail: "dst=10.2.0.10".to_owned(),
                trace: vec!["t=0ms flood: a -> b".to_owned()],
            },
            snapshot: Some(CallSnapshot {
                call_id: "c1".to_owned(),
                machines: vec![MachineSnapshot {
                    name: "sip".to_owned(),
                    state: "calling".to_owned(),
                    locals: vec![("n".to_owned(), "3".to_owned())],
                }],
                globals: vec![("shared".to_owned(), "1".to_owned())],
            }),
            counters: DumpCounters {
                counters: VidsCounters {
                    sip_packets: 11,
                    ..VidsCounters::default()
                },
                alerts_total: 1,
            },
        }
    }

    #[test]
    fn encode_parse_round_trip() {
        let d = sample();
        let bytes = d.encode();
        let back = Vdump::parse(&bytes).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn round_trip_without_snapshot() {
        let mut d = sample();
        d.snapshot = None;
        d.alert.call_id = None;
        let back = Vdump::parse(&d.encode()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }

    #[test]
    fn corruption_is_caught_with_an_offset() {
        let mut bytes = sample().encode();
        // Flip a byte inside the PKTS payload (past header + CONF).
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0xff;
        let err = Vdump::parse(&bytes).unwrap_err();
        assert!(
            err.reason.contains("checksum") || err.reason.contains("truncated"),
            "unexpected reason: {err}"
        );
    }

    #[test]
    fn truncation_is_caught() {
        let bytes = sample().encode();
        for cut in [3, 7, 20, bytes.len() - 1] {
            let err = Vdump::parse(&bytes[..cut]).unwrap_err();
            assert!(err.offset <= bytes.len(), "offset within file: {err}");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        let err = Vdump::parse(&bytes).unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.reason.contains("magic"));
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let d = sample();
        let mut bytes = d.encode();
        // Splice an unknown (but well-formed) section just before END.
        let end_tag = b"END\0";
        let end_pos = bytes
            .windows(4)
            .rposition(|w| w == end_tag)
            .expect("END present");
        let mut extra = Vec::new();
        section(&mut extra, b"XTRA", b"future data");
        bytes.splice(end_pos..end_pos, extra);
        let back = Vdump::parse(&bytes).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn describe_mentions_the_alert_and_window() {
        let text = sample().describe();
        assert!(text.contains("invite-flood"));
        assert!(text.contains("2 datagrams"));
        assert!(text.contains("state=calling"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("vids-vdump-test");
        let path = dir.join("sample.vdump");
        let d = sample();
        d.write_to(&path).unwrap();
        let back = Vdump::read_from(&path).unwrap();
        assert_eq!(back, d);
        std::fs::remove_dir_all(&dir).ok();
    }
}
