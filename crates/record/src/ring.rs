//! The bounded datagram ring: a preallocated circular byte arena plus a
//! slot table, overwriting oldest-first.
//!
//! Every ingested datagram's raw wire bytes land here with its timestamp,
//! addresses, demux verdict and batch number. All storage is allocated at
//! construction; [`DatagramRing::push`] copies the payload into the arena
//! and touches nothing on the heap, so the record tap stays on the
//! engine's zero-allocation steady-state path (held by
//! `tests/record_alloc.rs` in the root crate).
//!
//! Arena discipline: payloads are stored contiguously. The write cursor
//! advances through the arena; when the tail cannot hold the next payload
//! contiguously the cursor wraps to offset 0. Either way, the slots whose
//! bytes the new payload would overwrite are exactly the *oldest* live
//! slots (slot age follows arena position cyclically from the write
//! cursor), so eviction always pops from the front of the slot ring.

/// What the demultiplexer decided about a recorded datagram, frozen into
/// the dump so replay can rebuild the identical [`Classified`] without
/// re-running the port heuristics.
///
/// [`Classified`]: vids_core::classify::Classified
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RecordedClass {
    /// SIP signaling.
    Sip = 0,
    /// RTP media.
    Rtp = 1,
    /// RTCP control (engine ignores it).
    Rtcp = 2,
    /// Unclassifiable UDP (engine ignores it).
    Unknown = 3,
    /// Non-IPv4 traffic the engine does not model (ignored, and the
    /// recorded addresses are zeroed).
    NonIp = 4,
}

impl RecordedClass {
    /// Decodes the wire byte.
    pub fn from_u8(b: u8) -> Option<RecordedClass> {
        Some(match b {
            0 => RecordedClass::Sip,
            1 => RecordedClass::Rtp,
            2 => RecordedClass::Rtcp,
            3 => RecordedClass::Unknown,
            4 => RecordedClass::NonIp,
            _ => return None,
        })
    }
}

/// Metadata of one recorded datagram (the payload lives in the arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotMeta {
    /// Global arrival sequence number (monotonic across rings).
    pub seq: u64,
    /// Capture timestamp, nanoseconds on the source's clock.
    pub at_ns: u64,
    /// Ingest batch this datagram was flushed in.
    pub batch: u64,
    /// Source IPv4 address (big-endian octets as one `u32`).
    pub src_ip: u32,
    /// Source UDP port.
    pub src_port: u16,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Destination UDP port.
    pub dst_port: u16,
    /// Demux verdict.
    pub class: RecordedClass,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    meta: SlotMeta,
    off: usize,
    len: usize,
}

const EMPTY_SLOT: Slot = Slot {
    meta: SlotMeta {
        seq: 0,
        at_ns: 0,
        batch: 0,
        src_ip: 0,
        src_port: 0,
        dst_ip: 0,
        dst_port: 0,
        class: RecordedClass::Unknown,
    },
    off: 0,
    len: 0,
};

/// Lifetime statistics of one ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Datagrams ever pushed.
    pub recorded: u64,
    /// Slots overwritten before a dump claimed them.
    pub overwritten: u64,
    /// Payloads larger than the whole arena, dropped outright.
    pub oversize: u64,
    /// Payload bytes currently live.
    pub bytes_live: usize,
    /// Slots currently live.
    pub slots_live: usize,
}

/// One bounded, overwriting datagram ring. See the module docs for the
/// arena discipline.
pub struct DatagramRing {
    arena: Box<[u8]>,
    slots: Box<[Slot]>,
    /// Next slot index to write.
    head: usize,
    /// Live slot count.
    live: usize,
    /// Next arena byte offset to write.
    write: usize,
    bytes_live: usize,
    recorded: u64,
    overwritten: u64,
    oversize: u64,
}

impl DatagramRing {
    /// A ring holding at most `slots` datagrams and `bytes` payload bytes.
    /// Both are allocated here, up front.
    pub fn new(slots: usize, bytes: usize) -> Self {
        DatagramRing {
            arena: vec![0u8; bytes.max(1)].into_boxed_slice(),
            slots: vec![EMPTY_SLOT; slots.max(1)].into_boxed_slice(),
            head: 0,
            live: 0,
            write: 0,
            bytes_live: 0,
            recorded: 0,
            overwritten: 0,
            oversize: 0,
        }
    }

    /// Records one datagram, evicting the oldest entries as needed.
    /// Returns how many live slots were overwritten to make room.
    /// Allocation-free.
    pub fn push(&mut self, meta: SlotMeta, payload: &[u8]) -> u64 {
        if payload.len() > self.arena.len() {
            self.oversize += 1;
            return 0;
        }
        let mut evicted = 0u64;
        if self.write + payload.len() > self.arena.len() {
            // The arena tail cannot hold the payload contiguously: retire
            // whatever still lives there and wrap the cursor.
            evicted += self.evict_overlapping(self.write, self.arena.len());
            self.write = 0;
        }
        let off = self.write;
        evicted += self.evict_overlapping(off, off + payload.len());
        if self.live == self.slots.len() {
            self.evict_oldest();
            evicted += 1;
        }
        self.arena[off..off + payload.len()].copy_from_slice(payload);
        self.slots[self.head] = Slot {
            meta,
            off,
            len: payload.len(),
        };
        self.head = (self.head + 1) % self.slots.len();
        self.live += 1;
        self.write = off + payload.len();
        self.bytes_live += payload.len();
        self.recorded += 1;
        self.overwritten += evicted;
        evicted
    }

    /// Evicts oldest slots while they overlap the byte range `[lo, hi)`.
    fn evict_overlapping(&mut self, lo: usize, hi: usize) -> u64 {
        let mut n = 0;
        while self.live > 0 {
            let s = &self.slots[self.oldest_index()];
            let overlaps = s.off < hi && s.off + s.len > lo;
            if !overlaps {
                break;
            }
            self.evict_oldest();
            n += 1;
        }
        n
    }

    fn oldest_index(&self) -> usize {
        (self.head + self.slots.len() - self.live) % self.slots.len()
    }

    fn evict_oldest(&mut self) {
        debug_assert!(self.live > 0);
        let idx = self.oldest_index();
        self.bytes_live -= self.slots[idx].len;
        self.live -= 1;
    }

    /// Iterates the live window oldest → newest as `(meta, payload)`.
    pub fn iter(&self) -> impl Iterator<Item = (&SlotMeta, &[u8])> {
        let cap = self.slots.len();
        let start = self.oldest_index();
        (0..self.live).map(move |i| {
            let s = &self.slots[(start + i) % cap];
            (&s.meta, &self.arena[s.off..s.off + s.len])
        })
    }

    /// Drops the live window (counts nothing as overwritten).
    pub fn clear(&mut self) {
        self.live = 0;
        self.bytes_live = 0;
        self.write = 0;
        self.head = 0;
    }

    /// Current statistics.
    pub fn stats(&self) -> RingStats {
        RingStats {
            recorded: self.recorded,
            overwritten: self.overwritten,
            oversize: self.oversize,
            bytes_live: self.bytes_live,
            slots_live: self.live,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(seq: u64) -> SlotMeta {
        SlotMeta {
            seq,
            at_ns: seq * 1_000_000,
            batch: 0,
            src_ip: 0x0a01_000a,
            src_port: 5060,
            dst_ip: 0x0a02_000a,
            dst_port: 5060,
            class: RecordedClass::Sip,
        }
    }

    #[test]
    fn keeps_everything_until_full() {
        let mut r = DatagramRing::new(8, 1024);
        for i in 0..5u64 {
            r.push(meta(i), &[i as u8; 16]);
        }
        let seqs: Vec<u64> = r.iter().map(|(m, _)| m.seq).collect();
        assert_eq!(seqs, [0, 1, 2, 3, 4]);
        assert_eq!(r.stats().bytes_live, 80);
        assert_eq!(r.stats().overwritten, 0);
        for (m, p) in r.iter() {
            assert!(p.iter().all(|&b| b == m.seq as u8));
        }
    }

    #[test]
    fn slot_exhaustion_evicts_oldest() {
        let mut r = DatagramRing::new(4, 4096);
        for i in 0..6u64 {
            r.push(meta(i), &[i as u8; 8]);
        }
        let seqs: Vec<u64> = r.iter().map(|(m, _)| m.seq).collect();
        assert_eq!(seqs, [2, 3, 4, 5]);
        assert_eq!(r.stats().overwritten, 2);
    }

    #[test]
    fn arena_exhaustion_evicts_oldest_and_payloads_stay_intact() {
        let mut r = DatagramRing::new(64, 100);
        for i in 0..10u64 {
            r.push(meta(i), &[i as u8; 30]);
        }
        // 100/30 = at most 3 live payloads at a time.
        assert!(r.stats().slots_live <= 3);
        let entries: Vec<(u64, Vec<u8>)> = r.iter().map(|(m, p)| (m.seq, p.to_vec())).collect();
        // Newest survives, window is a contiguous suffix, bytes intact.
        assert_eq!(entries.last().unwrap().0, 9);
        for w in entries.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1);
        }
        for (seq, p) in &entries {
            assert_eq!(p.len(), 30);
            assert!(p.iter().all(|&b| b == *seq as u8));
        }
    }

    #[test]
    fn oversize_payloads_are_dropped_not_recorded() {
        let mut r = DatagramRing::new(4, 64);
        r.push(meta(0), &[0; 16]);
        r.push(meta(1), &[1; 65]);
        assert_eq!(r.stats().oversize, 1);
        assert_eq!(r.stats().slots_live, 1);
        assert_eq!(r.iter().next().unwrap().0.seq, 0);
    }

    #[test]
    fn zero_length_payloads_round_trip() {
        let mut r = DatagramRing::new(4, 64);
        r.push(meta(0), b"");
        r.push(meta(1), b"x");
        let got: Vec<(u64, usize)> = r.iter().map(|(m, p)| (m.seq, p.len())).collect();
        assert_eq!(got, [(0, 0), (1, 1)]);
    }

    #[test]
    fn clear_resets_the_window_but_not_lifetime_stats() {
        let mut r = DatagramRing::new(4, 64);
        r.push(meta(0), &[0; 8]);
        r.clear();
        assert_eq!(r.stats().slots_live, 0);
        assert_eq!(r.stats().bytes_live, 0);
        assert_eq!(r.stats().recorded, 1);
        assert_eq!(r.iter().count(), 0);
    }
}
