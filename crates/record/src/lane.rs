//! Shared-reference recorder for multi-receiver ingest.
//!
//! The single-lane [`crate::Recorder`] needs `&mut self` for every call,
//! which forced `vids serve` to funnel all receiver threads through one
//! `Mutex<Recorder>` — one global lock acquisition per datagram, exactly
//! on the receive hot path. [`LaneRecorder`] is the sharded replacement:
//! every method takes `&self`, each ingest lane owns its own ring behind
//! its own mutex (uncontended when one receiver thread feeds one lane),
//! and the cross-lane bookkeeping (global arrival sequence, batch id,
//! pending alerts, dump budget) lives in atomics touched with relaxed
//! ordering. Receivers record concurrently; the coordinator marks batch
//! boundaries and writes dumps at pipeline quiesce points.
//!
//! The dump format and window semantics are identical to the single-lane
//! recorder: dumps interleave all lanes by the global sequence number, so
//! a `.vdump` from a parallel session replays exactly like one from a
//! sequential session over the same arrival order.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use vids_core::alert::{Alert, AlertKind};
use vids_core::pool::VidsPool;
use vids_netsim::time::SimTime;
use vids_telemetry::metrics::{Counter, Gauge};
use vids_telemetry::slab::ShardSlab;

use crate::recorder::{sanitize, RecorderStats, DEFAULT_BYTES, DEFAULT_MAX_DUMPS, DEFAULT_SLOTS};
use crate::ring::{DatagramRing, RecordedClass, RingStats, SlotMeta};
use crate::vdump::{DumpCounters, RecordedPacket, Vdump};

/// One ingest lane: a ring behind its own lock plus a mirror of the
/// ring's live byte count, readable without the lock.
struct Lane {
    ring: Mutex<DatagramRing>,
    bytes_live: AtomicU64,
}

/// A flight recorder shared by reference across receiver threads. See
/// the module docs for the locking discipline.
pub struct LaneRecorder {
    lanes: Vec<Lane>,
    /// Next global arrival sequence number.
    seq: AtomicU64,
    /// Current ingest batch id (starts at 1; [`LaneRecorder::mark_batch`]
    /// advances it).
    batch: AtomicU64,
    pending: Mutex<Vec<Alert>>,
    dumps_written: AtomicU64,
    max_dumps: u64,
    telemetry: Option<Arc<ShardSlab>>,
    telemetry_ring: u32,
}

impl LaneRecorder {
    /// A recorder with `lanes` rings of explicit capacity.
    pub fn new(lanes: usize, slots_per_lane: usize, bytes_per_lane: usize) -> Self {
        LaneRecorder {
            lanes: (0..lanes.max(1))
                .map(|_| Lane {
                    ring: Mutex::new(DatagramRing::new(slots_per_lane, bytes_per_lane)),
                    bytes_live: AtomicU64::new(0),
                })
                .collect(),
            seq: AtomicU64::new(0),
            batch: AtomicU64::new(1),
            pending: Mutex::new(Vec::new()),
            dumps_written: AtomicU64::new(0),
            max_dumps: DEFAULT_MAX_DUMPS,
            telemetry: None,
            telemetry_ring: 0,
        }
    }

    /// A recorder with the default ring sizing.
    pub fn with_defaults(lanes: usize) -> Self {
        LaneRecorder::new(lanes, DEFAULT_SLOTS, DEFAULT_BYTES)
    }

    /// Caps lifetime dump output (disk-fill guard).
    pub fn max_dumps(mut self, max: u64) -> Self {
        self.max_dumps = max;
        self
    }

    /// Mirrors ring occupancy and dump counts into a telemetry slab
    /// ([`Counter::RingOverwrites`], [`Gauge::RingBytes`],
    /// [`Counter::DumpsWritten`]).
    pub fn attach_telemetry(&mut self, slab: Arc<ShardSlab>) {
        self.telemetry = Some(slab);
    }

    /// Records the transition-ring capacity the engine's telemetry was
    /// enabled with (0 = off); stored in every dump.
    pub fn set_telemetry_ring(&mut self, capacity: u32) {
        self.telemetry_ring = capacity;
    }

    /// Records one datagram into lane `lane` (clamped). Allocation-free;
    /// the only lock taken is the lane's own ring mutex, which is
    /// uncontended while one receiver thread owns one lane.
    pub fn record(
        &self,
        lane: usize,
        at: SimTime,
        src: SocketAddr,
        dst: SocketAddr,
        class: RecordedClass,
        payload: &[u8],
    ) {
        let (class, src_ip, src_port, dst_ip, dst_port) = match (v4_parts(&src), v4_parts(&dst)) {
            (Some((si, sp)), Some((di, dp))) => (class, si, sp, di, dp),
            // Traffic the engine cannot address is recorded for the
            // window but replays as ignored, like the live path.
            _ => (RecordedClass::NonIp, 0, 0, 0, 0),
        };
        let meta = SlotMeta {
            seq: self.seq.fetch_add(1, Relaxed),
            at_ns: at.as_nanos(),
            batch: self.batch.load(Relaxed),
            src_ip,
            src_port,
            dst_ip,
            dst_port,
            class,
        };
        let lane = &self.lanes[lane % self.lanes.len()];
        let (evicted, live) = {
            let mut ring = lane.ring.lock().expect("lane ring poisoned");
            let evicted = ring.push(meta, payload);
            (evicted, ring.stats().bytes_live as u64)
        };
        lane.bytes_live.store(live, Relaxed);
        if let Some(slab) = &self.telemetry {
            slab.add(Counter::RingOverwrites, evicted);
            let total: u64 = self.lanes.iter().map(|l| l.bytes_live.load(Relaxed)).sum();
            slab.set_gauge(Gauge::RingBytes, total);
        }
    }

    /// Advances the batch id; the coordinator calls this once per batch
    /// handed to the engine.
    pub fn mark_batch(&self) {
        self.batch.fetch_add(1, Relaxed);
    }

    /// Queues an alert for dumping.
    pub fn note_alert(&self, alert: &Alert) {
        self.pending
            .lock()
            .expect("pending alerts poisoned")
            .push(alert.clone());
    }

    /// The current capture window across all lanes, oldest → newest by
    /// global arrival order.
    pub fn window(&self) -> Vec<RecordedPacket> {
        let mut out: Vec<RecordedPacket> = Vec::new();
        for lane in &self.lanes {
            let ring = lane.ring.lock().expect("lane ring poisoned");
            out.extend(ring.iter().map(|(meta, payload)| RecordedPacket {
                meta: *meta,
                payload: payload.to_vec(),
            }));
        }
        out.sort_unstable_by_key(|p| p.meta.seq);
        out
    }

    /// Writes one `.vdump` per queued alert into `dir`. The caller must
    /// present a quiescent pool (the serve coordinator calls this at
    /// pipeline flush points). Returns the paths written.
    pub fn dump_pending(&self, pool: &VidsPool, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        let alerts = {
            let mut pending = self.pending.lock().expect("pending alerts poisoned");
            if pending.is_empty() {
                return Ok(Vec::new());
            }
            std::mem::take(&mut *pending)
        };
        let window = self.window();
        let mut written = Vec::new();
        for alert in alerts {
            match self.write_one(pool, dir, &alert, &window)? {
                Some(path) => written.push(path),
                None => break, // dump cap reached
            }
        }
        Ok(written)
    }

    /// Writes one operator-requested `.vdump` of the current window (the
    /// `SIGUSR1` snapshot), under a synthetic alert labeled
    /// `operator-snapshot`. Returns `None` when the dump cap is reached.
    pub fn dump_snapshot(
        &self,
        pool: &VidsPool,
        dir: &Path,
        at: SimTime,
    ) -> std::io::Result<Option<PathBuf>> {
        let alert = Alert {
            time_ms: at.as_millis(),
            kind: AlertKind::Deviation,
            label: "operator-snapshot".to_owned(),
            call_id: None,
            machine: "operator".to_owned(),
            detail: "on-demand ring snapshot (SIGUSR1)".to_owned(),
            trace: Vec::new(),
        };
        let window = self.window();
        self.write_one(pool, dir, &alert, &window)
    }

    fn write_one(
        &self,
        pool: &VidsPool,
        dir: &Path,
        alert: &Alert,
        window: &[RecordedPacket],
    ) -> std::io::Result<Option<PathBuf>> {
        let index = self.dumps_written.load(Relaxed);
        if index >= self.max_dumps {
            return Ok(None);
        }
        let snapshot = alert
            .call_id
            .as_deref()
            .and_then(|id| pool.call_snapshot(id));
        let dump = Vdump {
            config: *pool.config(),
            telemetry_ring: self.telemetry_ring,
            packets: window.to_vec(),
            alert: alert.clone(),
            snapshot,
            counters: DumpCounters {
                counters: pool.counters(),
                alerts_total: pool.alerts().len() as u64,
            },
        };
        let path = dir.join(format!("{:06}-{}.vdump", index, sanitize(&alert.label)));
        dump.write_to(&path)?;
        self.dumps_written.store(index + 1, Relaxed);
        if let Some(slab) = &self.telemetry {
            slab.inc(Counter::DumpsWritten);
        }
        Ok(Some(path))
    }

    /// Aggregate statistics across every lane.
    pub fn stats(&self) -> RecorderStats {
        let mut rings = RingStats::default();
        for lane in &self.lanes {
            let s = lane.ring.lock().expect("lane ring poisoned").stats();
            rings.recorded += s.recorded;
            rings.overwritten += s.overwritten;
            rings.oversize += s.oversize;
            rings.bytes_live += s.bytes_live;
            rings.slots_live += s.slots_live;
        }
        RecorderStats {
            rings,
            dumps_written: self.dumps_written.load(Relaxed),
            pending: self.pending.lock().expect("pending alerts poisoned").len(),
        }
    }
}

fn v4_parts(addr: &SocketAddr) -> Option<(u32, u16)> {
    match addr {
        SocketAddr::V4(v4) => Some((u32::from_be_bytes(v4.ip().octets()), v4.port())),
        SocketAddr::V6(v6) => v6
            .ip()
            .to_ipv4_mapped()
            .map(|ip| (u32::from_be_bytes(ip.octets()), v6.port())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vids_core::config::Config;
    use vids_core::sink::NullSink;

    fn addr(last: u8, port: u16) -> SocketAddr {
        SocketAddr::from(([10, 0, 0, last], port))
    }

    #[test]
    fn lanes_share_one_global_sequence() {
        let r = LaneRecorder::with_defaults(3);
        r.record(
            0,
            SimTime::from_millis(1),
            addr(1, 5060),
            addr(2, 5060),
            RecordedClass::Sip,
            b"a",
        );
        r.mark_batch();
        r.record(
            2,
            SimTime::from_millis(2),
            addr(1, 4000),
            addr(2, 4000),
            RecordedClass::Rtp,
            b"bb",
        );
        let w = r.window();
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].meta.seq, w[0].meta.batch), (0, 1));
        assert_eq!((w[1].meta.seq, w[1].meta.batch), (1, 2));
        assert_eq!(w[1].payload, b"bb");
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let r = LaneRecorder::with_defaults(4);
        std::thread::scope(|scope| {
            for lane in 0..4usize {
                let r = &r;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        r.record(
                            lane,
                            SimTime::from_millis(i),
                            addr(lane as u8 + 1, 5060),
                            addr(9, 5060),
                            RecordedClass::Sip,
                            b"x",
                        );
                    }
                });
            }
        });
        let w = r.window();
        assert_eq!(w.len(), 800);
        // The global sequence is dense: every number 0..800 exactly once.
        let mut seqs: Vec<u64> = w.iter().map(|p| p.meta.seq).collect();
        seqs.sort_unstable();
        assert!(seqs.iter().enumerate().all(|(i, s)| i as u64 == *s));
    }

    #[test]
    fn snapshot_dump_writes_and_respects_the_cap() {
        let r = LaneRecorder::with_defaults(1).max_dumps(1);
        r.record(
            0,
            SimTime::ZERO,
            addr(1, 5060),
            addr(2, 5060),
            RecordedClass::Sip,
            b"INVITE",
        );
        let mut pool = VidsPool::new(Config::default());
        pool.tick(SimTime::from_secs(1), &mut NullSink);
        let dir = std::env::temp_dir().join("vids-lane-recorder-test");
        std::fs::remove_dir_all(&dir).ok();
        let path = r
            .dump_snapshot(&pool, &dir, SimTime::from_secs(1))
            .unwrap()
            .expect("under the cap");
        let dump = Vdump::read_from(&path).unwrap();
        assert_eq!(dump.alert.label, "operator-snapshot");
        assert_eq!(dump.packets.len(), 1);
        // Cap of one: the second snapshot is declined, not an error.
        assert!(r
            .dump_snapshot(&pool, &dir, SimTime::from_secs(2))
            .unwrap()
            .is_none());
        assert_eq!(r.stats().dumps_written, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
