//! Greedy dump minimization: shrink a captured window to the fewest
//! packets that still reproduce the alert.
//!
//! The minimizer walks the window newest → oldest, dropping one packet
//! at a time and replaying; a drop is kept when an alert with the same
//! identity (kind, label, machine, call scope — [`loose_matcher`]) still
//! fires. Identity rather than byte equality is required while
//! shrinking, because removing packets legitimately changes timestamps,
//! counters and traces. After the loop a final replay re-freezes the
//! minimized run's own alert, snapshot and counters into the dump, so
//! the result passes the *strict* [`replay_vdump`] gate again and can be
//! committed as a self-checking regression artifact.

use crate::replay::{loose_matcher, replay_vdump, replay_with_match};
use crate::vdump::Vdump;

/// What [`minimize`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct MinimizeReport {
    /// Packets in the input window.
    pub original_packets: usize,
    /// Packets in the minimized window.
    pub minimized_packets: usize,
    /// Replays executed while shrinking (including the final re-freeze).
    pub replays: usize,
    /// The minimized, re-frozen dump. `replay_vdump` on it is identical.
    pub dump: Vdump,
}

/// Shrinks `dump` to a minimal window still reproducing its alert.
/// Returns `None` when the input dump does not reproduce its own alert
/// even loosely (e.g. the ring had overwritten load-bearing packets).
pub fn minimize(dump: &Vdump) -> Option<MinimizeReport> {
    let mut replays = 0usize;
    let reproduces = |candidate: &Vdump, replays: &mut usize| {
        *replays += 1;
        replay_with_match(candidate, loose_matcher(&dump.alert))
            .capture
            .is_some()
    };
    if !reproduces(dump, &mut replays) {
        return None;
    }

    let mut current = dump.clone();
    let mut i = current.packets.len();
    while i > 0 {
        i -= 1;
        let mut candidate = current.clone();
        candidate.packets.remove(i);
        if reproduces(&candidate, &mut replays) {
            current = candidate;
        }
    }

    // Re-freeze: the minimized run's own alert/snapshot/counters become
    // the dump's stored truth, so strict byte-identity replay holds.
    replays += 1;
    let cap = replay_with_match(&current, loose_matcher(&dump.alert))
        .capture
        .expect("kept drops preserved the alert");
    current.alert = cap.alert;
    current.snapshot = cap.snapshot;
    current.counters = cap.counters;
    debug_assert!(replay_vdump(&current).identical());

    Some(MinimizeReport {
        original_packets: dump.packets.len(),
        minimized_packets: current.packets.len(),
        replays,
        dump: current,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{RecordedClass, SlotMeta};
    use crate::vdump::{DumpCounters, RecordedPacket};
    use vids_core::alert::{Alert, AlertKind};
    use vids_core::config::Config;

    fn invite(call: &str) -> String {
        format!(
            "INVITE sip:bob@b.example.com SIP/2.0\r\n\
             Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bK{call}\r\n\
             From: <sip:alice@a.example.com>;tag=t{call}\r\n\
             To: <sip:bob@b.example.com>\r\n\
             Call-ID: {call}\r\nCSeq: 1 INVITE\r\nContent-Length: 0\r\n\r\n"
        )
    }

    fn sip_packet(seq: u64, at_ms: u64, text: &str) -> RecordedPacket {
        RecordedPacket {
            meta: SlotMeta {
                seq,
                at_ns: at_ms * 1_000_000,
                batch: 1,
                src_ip: u32::from_be_bytes([10, 1, 0, 10]),
                src_port: 5060,
                dst_ip: u32::from_be_bytes([10, 2, 0, 10]),
                dst_port: 5060,
                class: RecordedClass::Sip,
            },
            payload: text.as_bytes().to_vec(),
        }
    }

    /// A 40-INVITE flood window must shrink to just past the threshold
    /// (N+1 INVITEs raise the alert) and still replay byte-identically.
    #[test]
    fn flood_window_shrinks_to_threshold_plus_one() {
        let config = Config::default();
        let mut packets = Vec::new();
        for k in 0..40u64 {
            packets.push(sip_packet(k, 10 + k, &invite(&format!("min-{k}"))));
        }
        let dump = Vdump {
            config,
            telemetry_ring: 0,
            packets,
            alert: Alert {
                time_ms: 0,
                kind: AlertKind::Attack,
                label: vids_core::alert::labels::INVITE_FLOOD.to_owned(),
                call_id: None,
                machine: "flood".to_owned(),
                detail: String::new(),
                trace: Vec::new(),
            },
            snapshot: None,
            counters: DumpCounters::default(),
        };
        let report = minimize(&dump).expect("flood reproduces loosely");
        assert_eq!(report.original_packets, 40);
        assert!(
            report.minimized_packets as u64 <= config.invite_flood_n + 2,
            "minimized to {} packets",
            report.minimized_packets
        );
        assert!(
            report.minimized_packets as u64 > config.invite_flood_n,
            "cannot reproduce below the threshold"
        );
        assert!(replay_vdump(&report.dump).identical());
    }

    #[test]
    fn non_reproducing_dump_returns_none() {
        let dump = Vdump {
            config: Config::default(),
            telemetry_ring: 0,
            packets: vec![sip_packet(0, 10, &invite("solo"))],
            alert: Alert {
                time_ms: 0,
                kind: AlertKind::Attack,
                label: "never-happens".to_owned(),
                call_id: None,
                machine: "flood".to_owned(),
                detail: String::new(),
                trace: Vec::new(),
            },
            snapshot: None,
            counters: DumpCounters::default(),
        };
        assert!(minimize(&dump).is_none());
    }
}
