//! CRC-32 (IEEE 802.3 polynomial), table-driven, no dependencies.
//!
//! Every `.vdump` section carries a CRC over its payload so a truncated
//! or bit-rotted dump is rejected with an offset instead of replaying
//! garbage through the engine.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (the common zlib/IEEE parameterization).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = (c >> 8) ^ TABLE[((c ^ b as u32) & 0xff) as usize];
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for this parameterization.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }
}
