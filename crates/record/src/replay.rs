//! Deterministic re-execution of a captured window through a fresh engine.
//!
//! A dump stores, for every datagram: the raw wire bytes, the demux
//! verdict, the addresses, the arrival timestamp, and the ingest batch it
//! was flushed in. That is everything the engine's behavior depends on:
//!
//! * events are re-classified with [`classify_wire`], which is pinned
//!   byte-identical to the live demux path;
//! * batches are re-formed from the recorded batch ids, and each batch's
//!   clock is its first event's timestamp — exactly the rule both ingest
//!   paths use;
//! * the final timer sweep runs at `last_at + replay_grace` from the
//!   recorded [`Config`], like offline replay does.
//!
//! Replay is *exact* (alert, trace, counters, call snapshot all
//! byte-identical) whenever the captured window covers the engine's
//! relevant history — i.e. the ring did not overwrite packets that fed
//! the triggering pattern. [`replay_vdump`] checks all of that and
//! reports which parts reproduced.
//!
//! [`Config`]: vids_core::config::Config

use vids_core::alert::Alert;
use vids_core::classify::{classify_wire, Classified, WireProto};
use vids_core::cost::CostModel;
use vids_core::pool::{VidsPool, WireEvent};
use vids_core::sink::CollectSink;
use vids_core::snapshot::CallSnapshot;
use vids_netsim::packet::Address;
use vids_netsim::time::SimTime;

use crate::ring::RecordedClass;
use crate::vdump::{encode_alert, DumpCounters, RecordedPacket, Vdump};

/// Rebuilds the engine-facing classification of a recorded datagram,
/// replicating the live demux mapping: SIP and RTP re-classify from the
/// raw bytes; RTCP, unknown and non-IP traffic is ignored (it still
/// counts in the engine's `ignored` counter, like the live path).
pub fn classify_recorded(p: &RecordedPacket) -> Classified {
    match p.meta.class {
        RecordedClass::Sip => classify_wire(
            WireProto::Sip,
            &p.payload,
            address(p.meta.src_ip, p.meta.src_port),
            address(p.meta.dst_ip, p.meta.dst_port),
        ),
        RecordedClass::Rtp => classify_wire(
            WireProto::Rtp,
            &p.payload,
            address(p.meta.src_ip, p.meta.src_port),
            address(p.meta.dst_ip, p.meta.dst_port),
        ),
        RecordedClass::Rtcp | RecordedClass::Unknown | RecordedClass::NonIp => Classified::Ignored,
    }
}

fn address(ip: u32, port: u16) -> Address {
    let [a, b, c, d] = ip.to_be_bytes();
    Address::new(a, b, c, d, port)
}

/// State captured at the moment the matching alert's batch finished —
/// mirror of what [`crate::recorder::Recorder::dump_pending`] froze.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchCapture {
    /// The alert that satisfied the matcher.
    pub alert: Alert,
    /// Counters right after the triggering batch (or final sweep).
    pub counters: DumpCounters,
    /// The triggering call's snapshot at the same instant.
    pub snapshot: Option<CallSnapshot>,
}

/// Everything a replay produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Every alert the replay raised, in deterministic merge order.
    pub alerts: Vec<Alert>,
    /// The first matching alert with its at-match state, if any matched.
    pub capture: Option<MatchCapture>,
    /// Batches re-formed from the recorded grouping.
    pub batches: u64,
    /// Datagrams fed through the engine.
    pub packets: usize,
}

/// Replays `dump` through a fresh engine built from its recorded
/// configuration, watching for the first alert `matcher` accepts. State
/// is captured at the end of the batch that raised it (or after the
/// final timer sweep), matching the original dump-at-batch-end timing.
pub fn replay_with_match(dump: &Vdump, matcher: impl Fn(&Alert) -> bool) -> ReplayOutcome {
    let mut pool = VidsPool::with_cost(dump.config, CostModel::free());
    if dump.telemetry_ring > 0 {
        pool.enable_telemetry(dump.telemetry_ring as usize);
    }
    let mut sink = CollectSink::new();
    let mut capture: Option<MatchCapture> = None;
    let mut seen = 0usize;
    let mut batches = 0u64;
    let mut last_at = SimTime::ZERO;
    let mut events: Vec<WireEvent> = Vec::new();

    let mut i = 0;
    while i < dump.packets.len() {
        let batch_id = dump.packets[i].meta.batch;
        let clock = SimTime::from_nanos(dump.packets[i].meta.at_ns);
        while i < dump.packets.len() && dump.packets[i].meta.batch == batch_id {
            let p = &dump.packets[i];
            let at = SimTime::from_nanos(p.meta.at_ns);
            if at > last_at {
                last_at = at;
            }
            events.push(WireEvent {
                classified: classify_recorded(p),
                at,
            });
            i += 1;
        }
        pool.process_wire_batch(&mut events, clock, &mut sink);
        events.clear();
        batches += 1;
        scan_for_match(&pool, &sink, &matcher, &mut capture, &mut seen);
    }
    pool.tick(last_at + dump.config.replay_grace, &mut sink);
    scan_for_match(&pool, &sink, &matcher, &mut capture, &mut seen);

    ReplayOutcome {
        alerts: sink.into_alerts(),
        capture,
        batches,
        packets: dump.packets.len(),
    }
}

fn scan_for_match(
    pool: &VidsPool,
    sink: &CollectSink,
    matcher: &impl Fn(&Alert) -> bool,
    capture: &mut Option<MatchCapture>,
    seen: &mut usize,
) {
    if capture.is_none() {
        for a in &sink.alerts()[*seen..] {
            if matcher(a) {
                *capture = Some(MatchCapture {
                    alert: a.clone(),
                    counters: DumpCounters {
                        counters: pool.counters(),
                        alerts_total: pool.alerts().len() as u64,
                    },
                    snapshot: a.call_id.as_deref().and_then(|id| pool.call_snapshot(id)),
                });
                break;
            }
        }
    }
    *seen = sink.len();
}

/// A matcher accepting alerts with the same identity (kind, label,
/// machine, call scope) as `target` — byte-level fields like the trace
/// and timestamps are allowed to drift. The minimizer shrinks under this.
pub fn loose_matcher(target: &Alert) -> impl Fn(&Alert) -> bool + '_ {
    move |a: &Alert| {
        a.kind == target.kind
            && a.label == target.label
            && a.machine == target.machine
            && a.call_id == target.call_id
    }
}

/// The strict replay verdict: did the recorded run reproduce exactly?
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayVerdict {
    /// The replay's raw outcome.
    pub outcome: ReplayOutcome,
    /// A byte-identical alert (encoding included trace and timestamps)
    /// was raised.
    pub alert_identical: bool,
    /// Counters at match time equal the recorded ones.
    pub counters_identical: bool,
    /// The call snapshot at match time equals the recorded one.
    pub snapshot_identical: bool,
}

impl ReplayVerdict {
    /// True when every compared dimension reproduced byte-identically.
    pub fn identical(&self) -> bool {
        self.alert_identical && self.counters_identical && self.snapshot_identical
    }
}

/// Replays `dump` and checks that the recorded alert reproduces
/// byte-identically, with the same counters and call snapshot at the
/// moment it fired.
pub fn replay_vdump(dump: &Vdump) -> ReplayVerdict {
    let want = encode_alert(&dump.alert);
    let outcome = replay_with_match(dump, |a| encode_alert(a) == want);
    let (alert_identical, counters_identical, snapshot_identical) = match &outcome.capture {
        Some(cap) => (
            true,
            cap.counters == dump.counters,
            cap.snapshot == dump.snapshot,
        ),
        None => (false, false, false),
    };
    ReplayVerdict {
        outcome,
        alert_identical,
        counters_identical,
        snapshot_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::ring::SlotMeta;
    use vids_core::config::Config;

    fn sip_packet(seq: u64, batch: u64, at_ms: u64, text: &str) -> RecordedPacket {
        RecordedPacket {
            meta: SlotMeta {
                seq,
                at_ns: at_ms * 1_000_000,
                batch,
                src_ip: u32::from_be_bytes([10, 1, 0, 10]),
                src_port: 5060,
                dst_ip: u32::from_be_bytes([10, 2, 0, 10]),
                dst_port: 5060,
                class: RecordedClass::Sip,
            },
            payload: text.as_bytes().to_vec(),
        }
    }

    fn invite(call: &str) -> String {
        format!(
            "INVITE sip:bob@b.example.com SIP/2.0\r\n\
             Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bK{call}\r\n\
             From: <sip:alice@a.example.com>;tag=t{call}\r\n\
             To: <sip:bob@b.example.com>\r\n\
             Call-ID: {call}\r\nCSeq: 1 INVITE\r\nContent-Length: 0\r\n\r\n"
        )
    }

    /// End-to-end inside the crate: record an INVITE flood through a real
    /// pool, dump on the alert, replay the dump, demand byte identity.
    #[test]
    fn recorded_flood_replays_byte_identically() {
        let config = Config::default();
        let mut pool = VidsPool::with_cost(config, CostModel::free());
        pool.enable_telemetry(128);
        let mut recorder = Recorder::with_defaults(1);
        recorder.set_telemetry_ring(128);

        let n = config.invite_flood_n + 2; // cross the threshold
        let mut sink = CollectSink::new();
        let mut events = Vec::new();
        for k in 0..n {
            let text = invite(&format!("flood-{k}"));
            let at = SimTime::from_millis(10 + k);
            recorder.record(
                0,
                at,
                std::net::SocketAddr::from(([10, 1, 0, 10], 5060)),
                std::net::SocketAddr::from(([10, 2, 0, 10], 5060)),
                RecordedClass::Sip,
                text.as_bytes(),
            );
            events.push(WireEvent {
                classified: classify_wire(
                    WireProto::Sip,
                    text.as_bytes(),
                    Address::new(10, 1, 0, 10, 5060),
                    Address::new(10, 2, 0, 10, 5060),
                ),
                at,
            });
        }
        let clock = events.first().map(|e| e.at).unwrap();
        pool.process_wire_batch(&mut events, clock, &mut sink);
        recorder.mark_batch();
        assert!(!sink.is_empty(), "flood must raise");
        for a in sink.alerts() {
            recorder.note_alert(a);
        }
        let dir = std::env::temp_dir().join("vids-record-replay-test");
        std::fs::remove_dir_all(&dir).ok();
        let written = recorder.dump_pending(&pool, &dir).unwrap();
        assert!(!written.is_empty());

        let dump = Vdump::read_from(&written[0]).unwrap();
        assert_eq!(dump.packets.len() as u64, n);
        let verdict = replay_vdump(&dump);
        assert!(
            verdict.identical(),
            "alert={} counters={} snapshot={} alerts={:?}",
            verdict.alert_identical,
            verdict.counters_identical,
            verdict.snapshot_identical,
            verdict.outcome.alerts
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_grouping_is_reconstructed() {
        // Three packets in two recorded batches → two replay batches.
        let dump = Vdump {
            config: Config::default(),
            telemetry_ring: 0,
            packets: vec![
                sip_packet(0, 1, 10, &invite("a")),
                sip_packet(1, 1, 11, &invite("b")),
                sip_packet(2, 2, 20, &invite("c")),
            ],
            alert: Alert {
                time_ms: 0,
                kind: vids_core::alert::AlertKind::Attack,
                label: "never-raised".to_owned(),
                call_id: None,
                machine: "flood".to_owned(),
                detail: String::new(),
                trace: Vec::new(),
            },
            snapshot: None,
            counters: DumpCounters::default(),
        };
        let out = replay_with_match(&dump, |_| false);
        assert_eq!(out.batches, 2);
        assert_eq!(out.packets, 3);
        assert!(out.capture.is_none());
    }

    #[test]
    fn ignored_classes_still_count_as_ignored_traffic() {
        let mut p = sip_packet(0, 1, 10, "garbage");
        p.meta.class = RecordedClass::Unknown;
        let dump = Vdump {
            config: Config::default(),
            telemetry_ring: 0,
            packets: vec![p],
            alert: Alert {
                time_ms: 0,
                kind: vids_core::alert::AlertKind::Attack,
                label: "x".to_owned(),
                call_id: None,
                machine: "flood".to_owned(),
                detail: String::new(),
                trace: Vec::new(),
            },
            snapshot: None,
            counters: DumpCounters::default(),
        };
        let out = replay_with_match(&dump, |_| false);
        assert!(out.alerts.is_empty());
        assert_eq!(out.batches, 1);
    }
}
