//! The flight recorder proper: rings + alert-triggered dump writing.
//!
//! A [`Recorder`] owns one [`DatagramRing`] per ingest lane (replay uses
//! one; `vids serve` uses one per receiver thread). The ingest tap calls
//! [`Recorder::record`] for every datagram *before* it reaches the engine
//! — that call is allocation-free — and [`Recorder::mark_batch`] at every
//! batch flush so the dump can reconstruct the engine's batch clocks.
//!
//! When a batch raises alerts (observed through [`TeeSink`]), the driver
//! hands them to [`Recorder::note_alert`] and then calls
//! [`Recorder::dump_pending`], which freezes the ring window, the
//! triggering call's machine/variable snapshot and the engine counters
//! into one `.vdump` file per alert.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use vids_core::alert::Alert;
use vids_core::pool::VidsPool;
use vids_core::sink::AlertSink;
use vids_netsim::time::SimTime;
use vids_telemetry::metrics::{Counter, Gauge};
use vids_telemetry::slab::ShardSlab;

use crate::ring::{DatagramRing, RecordedClass, RingStats, SlotMeta};
use crate::vdump::{DumpCounters, RecordedPacket, Vdump};

/// Default slot capacity per ring.
pub const DEFAULT_SLOTS: usize = 4096;
/// Default payload-arena capacity per ring (4 MiB).
pub const DEFAULT_BYTES: usize = 4 << 20;
/// Default cap on dumps written over a recorder's lifetime, so a
/// pathological alert storm cannot fill the disk.
pub const DEFAULT_MAX_DUMPS: u64 = 64;

/// Aggregate statistics across every ring, plus dump accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Sum of the per-ring stats.
    pub rings: RingStats,
    /// `.vdump` files written so far.
    pub dumps_written: u64,
    /// Alerts noted but not yet dumped.
    pub pending: usize,
}

/// The always-on flight recorder. See the module docs for the protocol.
pub struct Recorder {
    rings: Vec<DatagramRing>,
    /// Next global arrival sequence number.
    seq: u64,
    /// Current ingest batch id (starts at 1; [`Recorder::mark_batch`]
    /// advances it).
    batch: u64,
    pending: Vec<Alert>,
    dumps_written: u64,
    max_dumps: u64,
    telemetry: Option<Arc<ShardSlab>>,
    telemetry_ring: u32,
}

impl Recorder {
    /// A recorder with `rings` rings of explicit capacity.
    pub fn new(rings: usize, slots_per_ring: usize, bytes_per_ring: usize) -> Self {
        Recorder {
            rings: (0..rings.max(1))
                .map(|_| DatagramRing::new(slots_per_ring, bytes_per_ring))
                .collect(),
            seq: 0,
            batch: 1,
            pending: Vec::new(),
            dumps_written: 0,
            max_dumps: DEFAULT_MAX_DUMPS,
            telemetry: None,
            telemetry_ring: 0,
        }
    }

    /// A recorder with the default ring sizing.
    pub fn with_defaults(rings: usize) -> Self {
        Recorder::new(rings, DEFAULT_SLOTS, DEFAULT_BYTES)
    }

    /// Caps lifetime dump output (disk-fill guard).
    pub fn max_dumps(mut self, max: u64) -> Self {
        self.max_dumps = max;
        self
    }

    /// Mirrors ring occupancy and dump counts into a telemetry slab
    /// ([`Counter::RingOverwrites`], [`Gauge::RingBytes`],
    /// [`Counter::DumpsWritten`]).
    pub fn attach_telemetry(&mut self, slab: Arc<ShardSlab>) {
        self.telemetry = Some(slab);
    }

    /// Records the transition-ring capacity the engine's telemetry was
    /// enabled with (0 = off). Stored in every dump so replay can enable
    /// telemetry identically and reproduce alert traces byte-for-byte.
    pub fn set_telemetry_ring(&mut self, capacity: u32) {
        self.telemetry_ring = capacity;
    }

    /// Records one datagram into ring `ring` (clamped). Allocation-free:
    /// the payload is copied into the ring's preallocated arena and
    /// telemetry updates are relaxed atomics.
    pub fn record(
        &mut self,
        ring: usize,
        at: SimTime,
        src: SocketAddr,
        dst: SocketAddr,
        class: RecordedClass,
        payload: &[u8],
    ) {
        let (class, src_ip, src_port, dst_ip, dst_port) = match (v4_parts(&src), v4_parts(&dst)) {
            (Some((si, sp)), Some((di, dp))) => (class, si, sp, di, dp),
            // Traffic the engine cannot address is recorded for the
            // window but replays as ignored, like the live path.
            _ => (RecordedClass::NonIp, 0, 0, 0, 0),
        };
        let meta = SlotMeta {
            seq: self.seq,
            at_ns: at.as_nanos(),
            batch: self.batch,
            src_ip,
            src_port,
            dst_ip,
            dst_port,
            class,
        };
        self.seq += 1;
        let idx = ring % self.rings.len();
        let evicted = self.rings[idx].push(meta, payload);
        if let Some(slab) = &self.telemetry {
            slab.add(Counter::RingOverwrites, evicted);
            let live: usize = self.rings.iter().map(|r| r.stats().bytes_live).sum();
            slab.set_gauge(Gauge::RingBytes, live as u64);
        }
    }

    /// Advances the batch id. The ingest paths call this once per flushed
    /// batch, right after `process_wire_batch` returns.
    pub fn mark_batch(&mut self) {
        self.batch += 1;
    }

    /// Queues an alert for dumping (called once per alert a batch raised).
    pub fn note_alert(&mut self, alert: &Alert) {
        self.pending.push(alert.clone());
    }

    /// Removes and returns the queued alerts without dumping them.
    pub fn take_pending(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.pending)
    }

    /// The current capture window across all rings, oldest → newest by
    /// global arrival order.
    pub fn window(&self) -> Vec<RecordedPacket> {
        let mut out: Vec<RecordedPacket> = self
            .rings
            .iter()
            .flat_map(|r| r.iter())
            .map(|(meta, payload)| RecordedPacket {
                meta: *meta,
                payload: payload.to_vec(),
            })
            .collect();
        out.sort_unstable_by_key(|p| p.meta.seq);
        out
    }

    /// Writes one `.vdump` per queued alert into `dir`, freezing the
    /// current window, the triggering call's snapshot and the pool's
    /// counters. Returns the paths written (empty when nothing was
    /// pending or the dump cap is reached).
    pub fn dump_pending(&mut self, pool: &VidsPool, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        if self.pending.is_empty() {
            return Ok(Vec::new());
        }
        let alerts = std::mem::take(&mut self.pending);
        let window = self.window();
        let mut written = Vec::new();
        for alert in alerts {
            if self.dumps_written >= self.max_dumps {
                break;
            }
            let snapshot = alert
                .call_id
                .as_deref()
                .and_then(|id| pool.call_snapshot(id));
            let dump = Vdump {
                config: *pool.config(),
                telemetry_ring: self.telemetry_ring,
                packets: window.clone(),
                alert: alert.clone(),
                snapshot,
                counters: DumpCounters {
                    counters: pool.counters(),
                    alerts_total: pool.alerts().len() as u64,
                },
            };
            let path = dir.join(format!(
                "{:06}-{}.vdump",
                self.dumps_written,
                sanitize(&alert.label)
            ));
            dump.write_to(&path)?;
            self.dumps_written += 1;
            if let Some(slab) = &self.telemetry {
                slab.inc(Counter::DumpsWritten);
            }
            written.push(path);
        }
        Ok(written)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> RecorderStats {
        let mut rings = RingStats::default();
        for r in &self.rings {
            let s = r.stats();
            rings.recorded += s.recorded;
            rings.overwritten += s.overwritten;
            rings.oversize += s.oversize;
            rings.bytes_live += s.bytes_live;
            rings.slots_live += s.slots_live;
        }
        RecorderStats {
            rings,
            dumps_written: self.dumps_written,
            pending: self.pending.len(),
        }
    }
}

fn v4_parts(addr: &SocketAddr) -> Option<(u32, u16)> {
    match addr {
        SocketAddr::V4(v4) => Some((u32::from_be_bytes(v4.ip().octets()), v4.port())),
        SocketAddr::V6(v6) => v6
            .ip()
            .to_ipv4_mapped()
            .map(|ip| (u32::from_be_bytes(ip.octets()), v6.port())),
    }
}

pub(crate) fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .take(48)
        .collect()
}

/// An [`AlertSink`] adapter that forwards every alert to the wrapped sink
/// while also cloning it into a side buffer, so the ingest driver can see
/// which alerts a batch raised without disturbing the user's sink.
pub struct TeeSink<'a, S: ?Sized> {
    inner: &'a mut S,
    seen: &'a mut Vec<Alert>,
}

impl<'a, S: AlertSink + ?Sized> TeeSink<'a, S> {
    /// Wraps `inner`, copying alerts into `seen`.
    pub fn new(inner: &'a mut S, seen: &'a mut Vec<Alert>) -> Self {
        TeeSink { inner, seen }
    }
}

impl<S: AlertSink + ?Sized> AlertSink for TeeSink<'_, S> {
    fn accept(&mut self, alert: Alert) {
        self.seen.push(alert.clone());
        self.inner.accept(alert);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vids_core::alert::AlertKind;
    use vids_core::sink::CollectSink;

    fn addr(last: u8, port: u16) -> SocketAddr {
        SocketAddr::from(([10, 0, 0, last], port))
    }

    fn alert(label: &str) -> Alert {
        Alert {
            time_ms: 5,
            kind: AlertKind::Attack,
            label: label.to_owned(),
            call_id: None,
            machine: "flood".to_owned(),
            detail: String::new(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn record_assigns_global_sequence_and_batches() {
        let mut r = Recorder::with_defaults(2);
        r.record(
            0,
            SimTime::from_millis(1),
            addr(1, 5060),
            addr(2, 5060),
            RecordedClass::Sip,
            b"a",
        );
        r.mark_batch();
        r.record(
            1,
            SimTime::from_millis(2),
            addr(1, 4000),
            addr(2, 4000),
            RecordedClass::Rtp,
            b"bb",
        );
        let w = r.window();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].meta.seq, 0);
        assert_eq!(w[0].meta.batch, 1);
        assert_eq!(w[1].meta.seq, 1);
        assert_eq!(w[1].meta.batch, 2);
        assert_eq!(w[0].meta.src_ip, u32::from_be_bytes([10, 0, 0, 1]));
        assert_eq!(w[1].payload, b"bb");
    }

    #[test]
    fn non_v4_traffic_is_downgraded_to_non_ip() {
        let mut r = Recorder::with_defaults(1);
        let v6: SocketAddr = "[2001:db8::1]:5060".parse().unwrap();
        r.record(
            0,
            SimTime::ZERO,
            v6,
            addr(2, 5060),
            RecordedClass::Sip,
            b"x",
        );
        let w = r.window();
        assert_eq!(w[0].meta.class, RecordedClass::NonIp);
        assert_eq!(w[0].meta.src_ip, 0);
    }

    #[test]
    fn v4_mapped_v6_keeps_its_address() {
        let mut r = Recorder::with_defaults(1);
        let mapped: SocketAddr = "[::ffff:10.0.0.9]:5060".parse().unwrap();
        r.record(
            0,
            SimTime::ZERO,
            mapped,
            addr(2, 5060),
            RecordedClass::Sip,
            b"x",
        );
        let w = r.window();
        assert_eq!(w[0].meta.class, RecordedClass::Sip);
        assert_eq!(w[0].meta.src_ip, u32::from_be_bytes([10, 0, 0, 9]));
    }

    #[test]
    fn dump_pending_writes_one_file_per_alert_and_respects_the_cap() {
        use vids_core::prelude::*;
        let mut r = Recorder::with_defaults(1).max_dumps(2);
        r.record(
            0,
            SimTime::ZERO,
            addr(1, 5060),
            addr(2, 5060),
            RecordedClass::Sip,
            b"INVITE",
        );
        r.note_alert(&alert("one"));
        r.note_alert(&alert("two"));
        r.note_alert(&alert("three"));
        let mut pool = VidsPool::new(Config::default());
        // Exercise the pool so counters are non-trivial.
        let mut sink = NullSink;
        pool.tick(SimTime::from_secs(1), &mut sink);
        let dir = std::env::temp_dir().join("vids-recorder-test");
        std::fs::remove_dir_all(&dir).ok();
        let written = r.dump_pending(&pool, &dir).unwrap();
        assert_eq!(written.len(), 2, "third alert hits the cap");
        assert!(written[0]
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("one"));
        for p in &written {
            let d = Vdump::read_from(p).unwrap();
            assert_eq!(d.packets.len(), 1);
            assert_eq!(d.config, Config::default());
        }
        assert_eq!(r.stats().dumps_written, 2);
        assert_eq!(r.stats().pending, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tee_sink_forwards_and_copies() {
        let mut inner = CollectSink::new();
        let mut seen = Vec::new();
        {
            let mut tee = TeeSink::new(&mut inner, &mut seen);
            tee.accept(alert("x"));
        }
        assert_eq!(inner.len(), 1);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].label, "x");
    }

    #[test]
    fn telemetry_mirrors_ring_occupancy() {
        let mut r = Recorder::new(1, 4, 64);
        let slab = Arc::new(ShardSlab::new());
        r.attach_telemetry(Arc::clone(&slab));
        for i in 0..6u8 {
            r.record(
                0,
                SimTime::from_millis(i as u64),
                addr(1, 5060),
                addr(2, 5060),
                RecordedClass::Sip,
                &[i; 20],
            );
        }
        // 64-byte arena, 20-byte payloads: at most 3 live, so overwrites
        // must have happened and the gauge tracks live bytes.
        assert!(slab.get(Counter::RingOverwrites) > 0);
        assert_eq!(
            slab.gauge(Gauge::RingBytes) as usize,
            r.stats().rings.bytes_live
        );
    }
}
