//! # vids-record — the flight recorder
//!
//! Always-on forensic capture for the VoIP IDS (DESIGN.md §7h). The
//! paper's engine raises an alert and hands the administrator a label
//! and a trace; this crate preserves the *evidence*: the raw datagram
//! window that led to the alert, the batch boundaries the engine saw it
//! through, and the triggering call's machine/variable state — packaged
//! so the whole incident re-executes deterministically on another
//! machine.
//!
//! * [`ring`] — per-lane bounded [`ring::DatagramRing`]s: raw wire bytes
//!   in a preallocated circular arena, overwriting oldest-first,
//!   allocation-free on the hot path.
//! * [`recorder`] — the [`recorder::Recorder`]: rings + batch marking +
//!   alert-triggered dump writing; [`recorder::TeeSink`] lets ingest
//!   drivers observe a batch's alerts without disturbing the user sink.
//! * [`lane`] — [`lane::LaneRecorder`]: the shared-reference variant for
//!   multi-receiver ingest; per-lane ring locks instead of one global
//!   recorder mutex, plus operator-requested snapshot dumps.
//! * [`vdump`] — the self-describing, CRC-checked `.vdump` format
//!   ([`vdump::Vdump`]), hand-rolled framing in the pcap-reader style.
//! * [`replay`] — [`replay::replay_vdump`]: re-runs a captured window
//!   through a fresh engine with the captured batch clocks and demands
//!   the original alert byte-for-byte.
//! * [`minimize`] — [`minimize::minimize`]: greedy drop-one-packet
//!   shrinking that preserves the alert, for turning multi-hundred-packet
//!   captures into committable regression artifacts.
//!
//! ```
//! use vids_record::{Recorder, RecordedClass};
//! use vids_netsim::time::SimTime;
//!
//! let mut recorder = Recorder::with_defaults(1);
//! recorder.record(
//!     0,
//!     SimTime::from_millis(1),
//!     std::net::SocketAddr::from(([10, 1, 0, 10], 5060)),
//!     std::net::SocketAddr::from(([10, 2, 0, 10], 5060)),
//!     RecordedClass::Sip,
//!     b"INVITE sip:bob@b SIP/2.0\r\n\r\n",
//! );
//! assert_eq!(recorder.stats().rings.recorded, 1);
//! ```

pub mod crc;
pub mod lane;
pub mod minimize;
pub mod recorder;
pub mod replay;
pub mod ring;
pub mod vdump;

pub use lane::LaneRecorder;
pub use minimize::{minimize, MinimizeReport};
pub use recorder::{Recorder, RecorderStats, TeeSink};
pub use replay::{
    classify_recorded, loose_matcher, replay_vdump, replay_with_match, MatchCapture, ReplayOutcome,
    ReplayVerdict,
};
pub use ring::{DatagramRing, RecordedClass, RingStats, SlotMeta};
pub use vdump::{encode_alert, DumpCounters, RecordedPacket, Vdump, VdumpError, VdumpReadError};
