//! The per-process telemetry handle: one slab per shard plus one
//! pool-level slab, all allocated up front.

use std::sync::Arc;

use crate::slab::ShardSlab;
use crate::snapshot::Snapshot;

/// Owns every metric slab. Shards hold `Arc`s to their slab and record
/// independently; the registry merges them deterministically at snapshot
/// time.
#[derive(Debug)]
pub struct Registry {
    shards: Vec<Arc<ShardSlab>>,
    pool: Arc<ShardSlab>,
}

impl Registry {
    /// Allocate `shards` shard slabs plus the pool-level slab.
    ///
    /// # Panics
    /// If `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "registry needs at least one shard slab");
        Self {
            shards: (0..shards).map(|_| Arc::new(ShardSlab::new())).collect(),
            pool: Arc::new(ShardSlab::new()),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Borrow shard `i`'s slab.
    ///
    /// # Panics
    /// If `i >= shard_count()`.
    pub fn shard(&self, i: usize) -> &ShardSlab {
        &self.shards[i]
    }

    /// Clone shard `i`'s slab handle, for handing to a worker.
    pub fn shard_slab(&self, i: usize) -> Arc<ShardSlab> {
        Arc::clone(&self.shards[i])
    }

    /// The pool-level slab (batch sizes, merge time, central sweeps).
    pub fn pool(&self) -> &ShardSlab {
        &self.pool
    }

    /// Clone the pool-level slab handle, for components that record
    /// pool-wide metrics off-thread (e.g. the flight recorder).
    pub fn pool_slab(&self) -> Arc<ShardSlab> {
        Arc::clone(&self.pool)
    }

    /// Copy every slab into an owned, serializable snapshot stamped with
    /// the caller's clock.
    pub fn snapshot(&self, time_ms: u64) -> Snapshot {
        Snapshot {
            time_ms,
            shards: self.shards.iter().map(|s| s.snapshot()).collect(),
            pool: self.pool.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Counter;

    #[test]
    fn shard_records_merge_into_one_total() {
        let reg = Registry::new(3);
        reg.shard(0).add(Counter::Transitions, 10);
        reg.shard(2).add(Counter::Transitions, 5);
        reg.pool().inc(Counter::BatchesIngested);

        let snap = reg.snapshot(42);
        assert_eq!(snap.time_ms, 42);
        assert_eq!(snap.shards.len(), 3);
        let merged = snap.merged();
        assert_eq!(merged.counter(Counter::Transitions), 15);
        assert_eq!(merged.counter(Counter::BatchesIngested), 1);
    }
}
