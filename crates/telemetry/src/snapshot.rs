//! Owned, serializable copies of the metric slabs.
//!
//! Export is hand-rolled JSON-lines and CSV: every value is a `u64` or a
//! static name, so a serialization dependency would buy nothing and cost
//! a crate on the build graph.

use crate::hist::HistSnapshot;
use crate::metrics::{Counter, Gauge, HistId};

/// Owned copy of one [`crate::ShardSlab`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SlabSnapshot {
    /// Counter values, indexed by `Counter as usize`.
    pub counters: Vec<u64>,
    /// Gauge values, indexed by `Gauge as usize`.
    pub gauges: Vec<u64>,
    /// Histogram snapshots, indexed by `HistId as usize`.
    pub hists: Vec<HistSnapshot>,
}

impl SlabSnapshot {
    /// Zero-filled snapshot with every slot present (unlike `Default`,
    /// whose vectors are empty).
    pub fn zeroed() -> Self {
        Self {
            counters: vec![0; Counter::COUNT],
            gauges: vec![0; Gauge::COUNT],
            hists: vec![HistSnapshot::default(); HistId::COUNT],
        }
    }

    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c as usize).copied().unwrap_or(0)
    }

    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges.get(g as usize).copied().unwrap_or(0)
    }

    pub fn hist(&self, h: HistId) -> &HistSnapshot {
        static EMPTY: HistSnapshot = HistSnapshot {
            buckets: Vec::new(),
        };
        self.hists.get(h as usize).unwrap_or(&EMPTY)
    }

    /// Fold `other` into `self`: counters and gauges add (gauges are
    /// per-shard resources, so the merged gauge is the shard sum),
    /// histograms merge bucket-wise. Commutative and associative.
    pub fn merge(&mut self, other: &SlabSnapshot) {
        if self.counters.len() < other.counters.len() {
            self.counters.resize(other.counters.len(), 0);
        }
        for (i, v) in other.counters.iter().enumerate() {
            self.counters[i] += v;
        }
        if self.gauges.len() < other.gauges.len() {
            self.gauges.resize(other.gauges.len(), 0);
        }
        for (i, v) in other.gauges.iter().enumerate() {
            self.gauges[i] += v;
        }
        if self.hists.len() < other.hists.len() {
            self.hists
                .resize(other.hists.len(), HistSnapshot::default());
        }
        for (i, h) in other.hists.iter().enumerate() {
            self.hists[i].merge(h);
        }
    }

    /// Zero the layout- and wall-clock-dependent slots (`merge_nanos`
    /// counter and histogram, `memory_bytes` gauge) so two snapshots of the
    /// same logical work compare equal regardless of scheduling or shard
    /// count.
    pub fn zero_nondeterministic(&mut self) {
        for c in Counter::ALL {
            if !c.is_deterministic() {
                if let Some(v) = self.counters.get_mut(c as usize) {
                    *v = 0;
                }
            }
        }
        for g in Gauge::ALL {
            if !g.is_deterministic() {
                if let Some(v) = self.gauges.get_mut(g as usize) {
                    *v = 0;
                }
            }
        }
        for h in HistId::ALL {
            if !h.is_deterministic() {
                if let Some(hs) = self.hists.get_mut(h as usize) {
                    *hs = HistSnapshot::default();
                }
            }
        }
    }
}

/// Point-in-time copy of every slab in a [`crate::Registry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Caller-supplied clock (engine milliseconds).
    pub time_ms: u64,
    /// One snapshot per shard slab, in shard order.
    pub shards: Vec<SlabSnapshot>,
    /// The pool-level slab.
    pub pool: SlabSnapshot,
}

impl Snapshot {
    /// Fold all shard slabs plus the pool slab into one total.
    pub fn merged(&self) -> SlabSnapshot {
        let mut out = SlabSnapshot::zeroed();
        for s in &self.shards {
            out.merge(s);
        }
        out.merge(&self.pool);
        out
    }

    /// The shard-count-invariance comparison object: merged totals with
    /// wall-clock slots zeroed. Two runs of the same trace through 1 or N
    /// shards must produce equal values here.
    pub fn deterministic(&self) -> SlabSnapshot {
        let mut out = self.merged();
        out.zero_nondeterministic();
        out
    }

    /// One line of JSON: merged counters/gauges by name, histograms as
    /// `{"total": N, "buckets": [[lower_bound, count], ...]}`.
    pub fn to_jsonl(&self) -> String {
        let m = self.merged();
        let mut out = String::with_capacity(512);
        out.push_str("{\"time_ms\":");
        push_u64(&mut out, self.time_ms);
        out.push_str(",\"shards\":");
        push_u64(&mut out, self.shards.len() as u64);
        out.push_str(",\"counters\":{");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, c.name());
            push_u64(&mut out, m.counter(*c));
        }
        out.push_str("},\"gauges\":{");
        for (i, g) in Gauge::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, g.name());
            push_u64(&mut out, m.gauge(*g));
        }
        out.push_str("},\"hists\":{");
        for (i, h) in HistId::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, h.name());
            let hs = m.hist(*h);
            out.push_str("{\"total\":");
            push_u64(&mut out, hs.total());
            out.push_str(",\"buckets\":[");
            for (j, (lo, count)) in hs.nonzero().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                push_u64(&mut out, *lo);
                out.push(',');
                push_u64(&mut out, *count);
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Header row matching [`Snapshot::to_csv_row`].
    pub fn csv_header() -> String {
        let mut out = String::from("time_ms,shards");
        for c in Counter::ALL {
            out.push(',');
            out.push_str(c.name());
        }
        for g in Gauge::ALL {
            out.push(',');
            out.push_str(g.name());
        }
        for h in HistId::ALL {
            out.push(',');
            out.push_str(h.name());
            out.push_str("_total");
        }
        out
    }

    /// One CSV row of merged values (histograms export their totals; the
    /// bucket detail is JSON-only).
    pub fn to_csv_row(&self) -> String {
        let m = self.merged();
        let mut out = String::with_capacity(256);
        push_u64(&mut out, self.time_ms);
        out.push(',');
        push_u64(&mut out, self.shards.len() as u64);
        for c in Counter::ALL {
            out.push(',');
            push_u64(&mut out, m.counter(c));
        }
        for g in Gauge::ALL {
            out.push(',');
            push_u64(&mut out, m.gauge(g));
        }
        for h in HistId::ALL {
            out.push(',');
            push_u64(&mut out, m.hist(h).total());
        }
        out
    }
}

fn push_u64(out: &mut String, v: u64) {
    // itoa without the dependency: u64::MAX is 20 digits.
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("digits are ascii"));
}

fn push_key(out: &mut String, name: &str) {
    out.push('"');
    out.push_str(name);
    out.push_str("\":");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let reg = Registry::new(2);
        reg.shard(0).add(Counter::SipPackets, 10);
        reg.shard(1).add(Counter::SipPackets, 5);
        reg.shard(0).set_gauge(Gauge::LiveCalls, 2);
        reg.shard(1).set_gauge(Gauge::LiveCalls, 1);
        reg.pool().record(HistId::BatchSize, 32);
        reg.pool().add(Counter::MergeNanos, 123_456);
        reg.pool().record(HistId::MergeNanos, 123_456);
        reg.snapshot(5_000)
    }

    #[test]
    fn jsonl_is_one_line_and_carries_merged_values() {
        let line = sample().to_jsonl();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"time_ms\":5000,\"shards\":2,"));
        assert!(line.contains("\"sip_packets\":15"));
        assert!(line.contains("\"live_calls\":3"));
        assert!(line.contains("\"batch_size\":{\"total\":1,\"buckets\":[[32,1]]}"));
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let snap = sample();
        let header = Snapshot::csv_header();
        let row = snap.to_csv_row();
        assert_eq!(
            header.split(',').count(),
            row.split(',').count(),
            "header: {header}\nrow: {row}"
        );
        assert!(header.ends_with("batch_size_total,merge_nanos_total"));
    }

    #[test]
    fn deterministic_view_zeroes_wall_clock_slots() {
        let snap = sample();
        assert_eq!(snap.merged().counter(Counter::MergeNanos), 123_456);
        let det = snap.deterministic();
        assert_eq!(det.counter(Counter::MergeNanos), 0);
        assert_eq!(det.hist(HistId::MergeNanos).total(), 0);
        // Deterministic slots survive.
        assert_eq!(det.counter(Counter::SipPackets), 15);
        assert_eq!(det.hist(HistId::BatchSize).total(), 1);
    }

    #[test]
    fn push_u64_formats_extremes() {
        let mut s = String::new();
        push_u64(&mut s, 0);
        s.push(',');
        push_u64(&mut s, u64::MAX);
        assert_eq!(s, "0,18446744073709551615");
    }
}
