//! # vids-telemetry — lock-free observability for the analysis engine
//!
//! The paper evaluates vids operationally — call-setup delay, RTP QoS
//! impact, CPU and memory overhead (§7) — and a production deployment needs
//! exactly those signals live, not post-mortem. This crate is the
//! observability layer threaded through the engine, the sharded pool and
//! the CLI:
//!
//! * [`metrics`] — the fixed metric inventory: [`metrics::Counter`],
//!   [`metrics::Gauge`] and [`metrics::HistId`] name every slot at compile
//!   time, so recording is an array index, never a hash lookup.
//! * [`slab::ShardSlab`] — one cache-friendly block of relaxed atomics per
//!   shard, allocated once at startup. The record path is wait-free and
//!   allocation-free, preserving the engine's warm-packet allocation budget
//!   (see `tests/alloc_budget.rs` in the workspace root).
//! * [`hist::AtomicHistogram`] — log₂-bucketed histograms recorded with one
//!   `fetch_add`; [`hist::LinearHistogram`] is the fixed-width evaluation
//!   histogram the netsim statistics re-export.
//! * [`ring::TransitionRing`] — a fixed-capacity ring of recent EFSM
//!   transitions, dumped into alerts so every detection carries the last
//!   transitions of the offending call for forensics.
//! * [`registry::Registry`] — the per-process handle: one slab per shard
//!   plus a pool-level slab, merged deterministically at snapshot time.
//! * [`snapshot::Snapshot`] — point-in-time export, serialized by hand as
//!   JSON-lines or CSV (no serialization dependency on the hot path).
//! * [`sampler::Sampler`] — a SimTime-friendly periodic due-checker for
//!   driving snapshots off the simulated clock.
//!
//! ```
//! use vids_telemetry::metrics::Counter;
//! use vids_telemetry::registry::Registry;
//!
//! let reg = Registry::new(4); // 4 shards + 1 pool slab
//! reg.shard(0).inc(Counter::RtpPackets);
//! reg.shard(3).inc(Counter::RtpPackets);
//! let snap = reg.snapshot(1_000);
//! assert_eq!(snap.merged().counter(Counter::RtpPackets), 2);
//! ```

pub mod hist;
pub mod metrics;
pub mod registry;
pub mod ring;
pub mod sampler;
pub mod slab;
pub mod snapshot;

pub use hist::{
    bucket_lower_bound, bucket_of, AtomicHistogram, HistSnapshot, LinearHistogram, LOG2_BUCKETS,
};
pub use metrics::{Counter, Gauge, HistId};
pub use registry::Registry;
pub use ring::{TransitionRecord, TransitionRing};
pub use sampler::Sampler;
pub use slab::ShardSlab;
pub use snapshot::{SlabSnapshot, Snapshot};
