//! Per-shard metric slab: one fixed block of relaxed atomics.
//!
//! A slab is allocated once (at `Registry::new`) and then only ever
//! touched with `Relaxed` atomic ops through `&self` — shards record
//! without locks, without allocation, and without false ordering
//! constraints. Cross-slot consistency is not needed: snapshots are
//! statistical, and the determinism guarantee is about *merged totals*
//! over a quiesced pool, not about mid-flight reads.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::AtomicHistogram;
use crate::metrics::{Counter, Gauge, HistId};
use crate::snapshot::SlabSnapshot;

/// One shard's metric storage. All methods take `&self`.
#[derive(Debug)]
pub struct ShardSlab {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    hists: [AtomicHistogram; HistId::COUNT],
}

impl Default for ShardSlab {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardSlab {
    pub fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| AtomicHistogram::new()),
        }
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&self, c: Counter) {
        self.counters[c as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Increment a counter by `n` (no-op when `n == 0`).
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if n > 0 {
            self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Overwrite a gauge with its latest value.
    #[inline]
    pub fn set_gauge(&self, g: Gauge, v: u64) {
        self.gauges[g as usize].store(v, Ordering::Relaxed);
    }

    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize].load(Ordering::Relaxed)
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn record(&self, h: HistId, v: u64) {
        self.hists[h as usize].record(v);
    }

    /// Copy every slot out into an owned snapshot.
    pub fn snapshot(&self) -> SlabSnapshot {
        SlabSnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| g.load(Ordering::Relaxed))
                .collect(),
            hists: self.hists.iter().map(|h| h.snapshot()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_through_shared_reference() {
        let slab = ShardSlab::new();
        slab.inc(Counter::SipPackets);
        slab.add(Counter::SipPackets, 4);
        slab.add(Counter::RtpPackets, 0); // no-op
        slab.set_gauge(Gauge::LiveCalls, 7);
        slab.set_gauge(Gauge::LiveCalls, 3); // gauges overwrite
        slab.record(HistId::BatchSize, 32);

        assert_eq!(slab.get(Counter::SipPackets), 5);
        assert_eq!(slab.get(Counter::RtpPackets), 0);
        assert_eq!(slab.gauge(Gauge::LiveCalls), 3);

        let snap = slab.snapshot();
        assert_eq!(snap.counter(Counter::SipPackets), 5);
        assert_eq!(snap.gauge(Gauge::LiveCalls), 3);
        assert_eq!(snap.hist(HistId::BatchSize).total(), 1);
    }
}
