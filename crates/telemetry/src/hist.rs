//! Histograms: a lock-free log₂-bucketed one for the hot path, and the
//! fixed-width linear one used by the netsim QoS evaluation (re-exported
//! there as `netsim::stats::Histogram`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i` (1..=64)
/// holds values in `[2^(i-1), 2^i)`; `u64::MAX` lands in bucket 64.
pub const LOG2_BUCKETS: usize = 65;

/// Bucket index for a value under the log₂ scheme.
///
/// Monotonic: `a <= b` implies `bucket_of(a) <= bucket_of(b)`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i` (0 for bucket 0, else `2^(i-1)`).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A log₂-bucketed histogram recorded with one relaxed `fetch_add`.
///
/// All storage is fixed at construction; `record` never allocates and
/// never takes a lock, so it is safe on the zero-allocation packet path.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; LOG2_BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current bucket counts out.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// An owned, mergeable copy of an [`AtomicHistogram`]'s buckets.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Count per log₂ bucket; always [`LOG2_BUCKETS`] long when taken from
    /// a live histogram, empty when `Default`-constructed.
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Add `other`'s counts into `self` bucket-wise. Commutative and
    /// associative, so merge order across shards cannot change the result.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
    }

    /// `(bucket_lower_bound, count)` for every non-empty bucket, ascending.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_lower_bound(i), *c))
            .collect()
    }
}

/// Fixed-width linear histogram for bounded, known-scale measurements
/// (the netsim QoS evaluation buckets latency/jitter with it).
///
/// Values below zero clamp to the first bucket; values past the last
/// bucket count as overflow.
#[derive(Debug, Clone)]
pub struct LinearHistogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
}

impl LinearHistogram {
    /// # Panics
    /// If `width <= 0` or `bins == 0`.
    pub fn new(width: f64, bins: usize) -> Self {
        assert!(
            width > 0.0 && bins > 0,
            "histogram needs width > 0, bins > 0"
        );
        Self {
            width,
            counts: vec![0; bins],
            overflow: 0,
        }
    }

    pub fn add(&mut self, x: f64) {
        let idx = (x.max(0.0) / self.width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// `(bucket_start, count)` for every non-empty bucket, ascending.
    pub fn nonzero(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (i as f64 * self.width, *c))
            .collect()
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(64), 1u64 << 63);
    }

    #[test]
    fn record_and_merge() {
        let h = AtomicHistogram::new();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        let mut a = h.snapshot();
        assert_eq!(a.total(), 5);

        let g = AtomicHistogram::new();
        g.record(1000);
        a.merge(&g.snapshot());
        assert_eq!(a.total(), 6);
        assert_eq!(a.buckets[bucket_of(1000)], 2);
    }

    #[test]
    fn linear_matches_netsim_contract() {
        let mut h = LinearHistogram::new(10.0, 3);
        h.add(-5.0); // clamps into bucket 0
        h.add(0.0);
        h.add(9.99);
        h.add(15.0);
        h.add(29.99);
        h.add(30.0); // first overflowing value
        h.add(1e9);
        assert_eq!(h.nonzero(), vec![(0.0, 3), (10.0, 1), (20.0, 1)]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
    }
}
