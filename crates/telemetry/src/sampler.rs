//! Periodic due-checker for driving snapshots off a monotonic clock.
//!
//! The netsim testbed runs on simulated time, so the sampler is a pure
//! function of the caller's clock — no threads, no wall time. Ask it
//! `due(now_ms)` whenever convenient; it fires at most once per interval
//! and catches up (without bursting) after a gap.

/// Fires every `interval_ms` of caller-supplied time.
#[derive(Debug, Clone)]
pub struct Sampler {
    interval_ms: u64,
    next_ms: u64,
}

impl Sampler {
    /// # Panics
    /// If `interval_ms == 0`.
    pub fn new(interval_ms: u64) -> Self {
        assert!(interval_ms > 0, "sampler needs interval > 0");
        Self {
            interval_ms,
            next_ms: interval_ms,
        }
    }

    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// True when a sample is due at `now_ms`. Advances the deadline past
    /// `now_ms`, so a long gap yields one sample, not a burst.
    pub fn due(&mut self, now_ms: u64) -> bool {
        if now_ms < self.next_ms {
            return false;
        }
        while self.next_ms <= now_ms {
            self.next_ms += self.interval_ms;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_per_interval() {
        let mut s = Sampler::new(100);
        assert!(!s.due(0));
        assert!(!s.due(99));
        assert!(s.due(100));
        assert!(!s.due(150));
        assert!(s.due(200));
    }

    #[test]
    fn gap_yields_single_sample_then_resumes() {
        let mut s = Sampler::new(100);
        assert!(s.due(1_050)); // missed 10 deadlines -> one sample
        assert!(!s.due(1_099));
        assert!(s.due(1_100)); // next deadline is the following multiple
    }
}
