//! The fixed metric inventory.
//!
//! Every metric the engine records has a compile-time slot here. Recording
//! is `slab.counters[c as usize].fetch_add(1, Relaxed)` — no hash lookup,
//! no registration protocol, no allocation. Adding a metric means adding a
//! variant, a name, and an `ALL` entry; the slab arrays size themselves
//! from `COUNT`.

/// Monotonic counters. One atomic slot per variant per shard slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// SIP packets accepted by the classifier (requests + responses).
    SipPackets,
    /// RTP packets accepted by the classifier.
    RtpPackets,
    /// Packets rejected as malformed (classifier or parser).
    Malformed,
    /// Packets the classifier declined to analyze (non-VoIP traffic).
    Ignored,
    /// RTP packets with no owning call in the media index.
    UnassociatedRtp,
    /// SIP requests with no owning call (ghost BYEs and friends).
    UnassociatedSipRequests,
    /// SIP responses with no owning call (DRDoS reflection candidates).
    UnassociatedSipResponses,
    /// EFSM transitions taken across all machines.
    Transitions,
    /// δ-sync events delivered between machines of one call network.
    SyncDeliveries,
    /// Timer sweeps executed (interval-gated maintenance passes).
    TimerSweeps,
    /// Call fact-base entries created.
    CallsCreated,
    /// Call fact-base entries evicted by the timer sweep.
    CallsEvicted,
    /// Batches ingested through the pool API.
    BatchesIngested,
    /// Packets ingested through the pool API.
    PacketsIngested,
    /// Alerts raised with kind `Attack` (post-dedup).
    AlertsAttack,
    /// Alerts raised with kind `Deviation` (post-dedup).
    AlertsDeviation,
    /// Alerts raised with kind `Nondeterminism` (post-dedup).
    AlertsNondeterminism,
    /// Nanoseconds spent in the pool's deterministic merge (wall clock).
    MergeNanos,
    /// Batch descriptors handed to persistent shard workers (one per worker
    /// woken per batch; zero when the pool drains inline).
    BatchHandoffs,
    /// Datagrams received from a wire source (socket or pcap replay).
    DatagramsRx,
    /// Datagrams the ingestion tier dropped before classification (socket
    /// errors, oversized payloads, receiver backpressure).
    DatagramsDropped,
    /// Datagrams the demultiplexer declined to map to SIP or RTP/RTCP.
    DemuxUnknown,
    /// Forensic `.vdump` files written by the flight recorder.
    DumpsWritten,
    /// Flight-recorder ring slots overwritten before an alert claimed them
    /// (the window was shorter than the traffic burst).
    RingOverwrites,
    /// Times the pipeline coordinator found every per-shard epoch ring
    /// full and had to wait for the shard workers before publishing the
    /// next batch (receiver-side backpressure).
    PipelineStalls,
    /// Plain-IPv6 datagrams the ingest tier dropped because the engine
    /// models IPv4 addresses only (no IPv4-mapped form).
    DatagramsIpv6,
    /// INVITEs refused a new call-table entry because the fact base was at
    /// its configured `max_tracked_calls` quota.
    CallQuotaDrops,
}

impl Counter {
    /// Number of counter slots; sizes the slab arrays.
    pub const COUNT: usize = 27;

    /// Every variant, in slot order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::SipPackets,
        Counter::RtpPackets,
        Counter::Malformed,
        Counter::Ignored,
        Counter::UnassociatedRtp,
        Counter::UnassociatedSipRequests,
        Counter::UnassociatedSipResponses,
        Counter::Transitions,
        Counter::SyncDeliveries,
        Counter::TimerSweeps,
        Counter::CallsCreated,
        Counter::CallsEvicted,
        Counter::BatchesIngested,
        Counter::PacketsIngested,
        Counter::AlertsAttack,
        Counter::AlertsDeviation,
        Counter::AlertsNondeterminism,
        Counter::MergeNanos,
        Counter::BatchHandoffs,
        Counter::DatagramsRx,
        Counter::DatagramsDropped,
        Counter::DemuxUnknown,
        Counter::DumpsWritten,
        Counter::RingOverwrites,
        Counter::PipelineStalls,
        Counter::DatagramsIpv6,
        Counter::CallQuotaDrops,
    ];

    /// Stable snake_case name used in JSON/CSV export.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SipPackets => "sip_packets",
            Counter::RtpPackets => "rtp_packets",
            Counter::Malformed => "malformed",
            Counter::Ignored => "ignored",
            Counter::UnassociatedRtp => "unassociated_rtp",
            Counter::UnassociatedSipRequests => "unassociated_sip_requests",
            Counter::UnassociatedSipResponses => "unassociated_sip_responses",
            Counter::Transitions => "transitions",
            Counter::SyncDeliveries => "sync_deliveries",
            Counter::TimerSweeps => "timer_sweeps",
            Counter::CallsCreated => "calls_created",
            Counter::CallsEvicted => "calls_evicted",
            Counter::BatchesIngested => "batches_ingested",
            Counter::PacketsIngested => "packets_ingested",
            Counter::AlertsAttack => "alerts_attack",
            Counter::AlertsDeviation => "alerts_deviation",
            Counter::AlertsNondeterminism => "alerts_nondeterminism",
            Counter::MergeNanos => "merge_nanos",
            Counter::BatchHandoffs => "batch_handoffs",
            Counter::DatagramsRx => "datagrams_rx",
            Counter::DatagramsDropped => "datagrams_dropped",
            Counter::DemuxUnknown => "demux_unknown",
            Counter::DumpsWritten => "dumps_written",
            Counter::RingOverwrites => "ring_overwrites",
            Counter::PipelineStalls => "pipeline_stalls",
            Counter::DatagramsIpv6 => "datagrams_ipv6",
            Counter::CallQuotaDrops => "call_quota_drops",
        }
    }

    /// Whether the slot is a pure function of the input trace.
    ///
    /// Wall-clock measurements vary run to run and across shard counts;
    /// [`crate::Snapshot::deterministic`] zeroes the non-deterministic
    /// slots so snapshots can be compared for shard-count invariance.
    pub fn is_deterministic(self) -> bool {
        // Handoffs depend on the host's hardware-thread count (a single-core
        // box drains inline and never hands a batch to a worker), so the
        // slot is zeroed alongside the wall-clock ones. Ingestion drops
        // depend on socket buffering and OS scheduling. Recorder slots
        // depend on ring sizing and how traffic interleaves across
        // receiver threads, not on the trace alone. Pipeline stalls depend
        // on how fast the shard workers drain relative to the coordinator,
        // i.e. on host scheduling.
        !matches!(
            self,
            Counter::MergeNanos
                | Counter::BatchHandoffs
                | Counter::DatagramsDropped
                | Counter::DumpsWritten
                | Counter::RingOverwrites
                | Counter::PipelineStalls
        )
    }
}

/// Last-value gauges, refreshed from the fact base at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// Live call fact-base entries.
    LiveCalls,
    /// Estimated resident bytes of the fact base (plus media index for the
    /// pool-level slab).
    MemoryBytes,
    /// Persistent shard workers currently parked waiting for a batch.
    WorkerParked,
    /// Bytes queued in the live receive sockets at snapshot time (0 when
    /// not serving or when the platform cannot report it).
    SocketBacklog,
    /// Payload bytes currently held live in the flight recorder's datagram
    /// rings (0 when recording is off).
    RingBytes,
    /// Batches published to the per-shard epoch rings but not yet merged
    /// (pipeline in-flight depth; 0 when ingesting synchronously).
    PipelineDepth,
}

impl Gauge {
    /// Number of gauge slots; sizes the slab arrays.
    pub const COUNT: usize = 6;

    /// Every variant, in slot order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::LiveCalls,
        Gauge::MemoryBytes,
        Gauge::WorkerParked,
        Gauge::SocketBacklog,
        Gauge::RingBytes,
        Gauge::PipelineDepth,
    ];

    /// Stable snake_case name used in JSON/CSV export.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::LiveCalls => "live_calls",
            Gauge::MemoryBytes => "memory_bytes",
            Gauge::WorkerParked => "worker_parked",
            Gauge::SocketBacklog => "socket_backlog",
            Gauge::RingBytes => "ring_bytes",
            Gauge::PipelineDepth => "pipeline_depth",
        }
    }

    /// See [`Counter::is_deterministic`]. Memory is layout-dependent: when
    /// distinct calls publish identical media coordinates, each owning
    /// shard keeps its own media-index entry, so the merged byte count
    /// varies with the shard count even though detection does not. The
    /// parked-worker gauge depends on the host's hardware threads; the
    /// socket backlog on OS buffering; the recorder's live byte count on
    /// ring sizing and receiver interleaving; the pipeline depth on how
    /// far the shard workers lag the coordinator at sample time.
    pub fn is_deterministic(self) -> bool {
        !matches!(
            self,
            Gauge::MemoryBytes
                | Gauge::WorkerParked
                | Gauge::SocketBacklog
                | Gauge::RingBytes
                | Gauge::PipelineDepth
        )
    }
}

/// Log₂-bucketed histograms. One [`crate::AtomicHistogram`] per variant
/// per slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum HistId {
    /// Packets per ingested batch.
    BatchSize,
    /// Nanoseconds per pool merge phase (wall clock).
    MergeNanos,
}

impl HistId {
    /// Number of histogram slots; sizes the slab arrays.
    pub const COUNT: usize = 2;

    /// Every variant, in slot order.
    pub const ALL: [HistId; HistId::COUNT] = [HistId::BatchSize, HistId::MergeNanos];

    /// Stable snake_case name used in JSON/CSV export.
    pub fn name(self) -> &'static str {
        match self {
            HistId::BatchSize => "batch_size",
            HistId::MergeNanos => "merge_nanos",
        }
    }

    /// See [`Counter::is_deterministic`].
    pub fn is_deterministic(self) -> bool {
        !matches!(self, HistId::MergeNanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_dense_and_named() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "counter {:?} out of slot order", c);
            assert!(!c.name().is_empty());
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i);
            assert!(!g.name().is_empty());
        }
        for (i, h) in HistId::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
            assert!(!h.name().is_empty());
        }
    }

    #[test]
    fn wall_clock_slots_are_flagged() {
        assert!(!Counter::MergeNanos.is_deterministic());
        assert!(!Counter::BatchHandoffs.is_deterministic());
        assert!(!Counter::DatagramsDropped.is_deterministic());
        assert!(!Counter::DumpsWritten.is_deterministic());
        assert!(!Counter::RingOverwrites.is_deterministic());
        assert!(!Counter::PipelineStalls.is_deterministic());
        assert!(!Gauge::WorkerParked.is_deterministic());
        assert!(!Gauge::RingBytes.is_deterministic());
        assert!(!Gauge::PipelineDepth.is_deterministic());
        assert!(Counter::Transitions.is_deterministic());
        assert!(Counter::DatagramsRx.is_deterministic());
        assert!(Counter::DemuxUnknown.is_deterministic());
        assert!(Counter::DatagramsIpv6.is_deterministic());
        assert!(Counter::CallQuotaDrops.is_deterministic());
        assert!(!HistId::MergeNanos.is_deterministic());
        assert!(HistId::BatchSize.is_deterministic());
        assert!(!Gauge::MemoryBytes.is_deterministic());
        assert!(!Gauge::SocketBacklog.is_deterministic());
        assert!(Gauge::LiveCalls.is_deterministic());
    }
}
