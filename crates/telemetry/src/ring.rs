//! Fixed-capacity ring buffer of recent EFSM transitions.
//!
//! Each engine (one per pool shard) keeps one ring. Pushing a record
//! overwrites the oldest entry once full and never allocates after
//! construction — records are `Copy` structs of interned symbols. When an
//! alert fires, the engine filters the ring by the alert's scope symbol
//! and renders those records into the alert's forensic trace.

use vids_efsm::Sym;

/// One EFSM transition, fully interned (7 words, `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Engine clock at the time of the transition, in milliseconds.
    pub time_ms: u64,
    /// Scope the transition belongs to: a Call-ID, an AOR, or a dotted
    /// destination IP, depending on which fact drove it.
    pub scope: Sym,
    /// Machine definition name (e.g. `sip_call`, `rtp_flow`).
    pub machine: Sym,
    /// Event that drove the transition.
    pub event: Sym,
    /// Source state name.
    pub from: Sym,
    /// Destination state name.
    pub to: Sym,
    /// Transition label, when the definition names one.
    pub label: Option<Sym>,
}

impl TransitionRecord {
    /// Render one human-readable trace line, e.g.
    /// `t=1500ms sip_call INVITE: idle -> proceeding [setup]`.
    pub fn render(&self) -> String {
        let mut line = format!(
            "t={}ms {} {}: {} -> {}",
            self.time_ms,
            self.machine.as_str(),
            self.event.as_str(),
            self.from.as_str(),
            self.to.as_str()
        );
        if let Some(label) = self.label {
            line.push_str(" [");
            line.push_str(label.as_str());
            line.push(']');
        }
        line
    }
}

/// Overwriting ring of [`TransitionRecord`]s. Capacity is fixed at
/// construction; `push` is allocation-free.
#[derive(Debug)]
pub struct TransitionRing {
    buf: Vec<TransitionRecord>,
    head: usize,
    capacity: usize,
}

impl TransitionRing {
    /// # Panics
    /// If `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "transition ring needs capacity > 0");
        Self {
            buf: Vec::with_capacity(capacity),
            head: 0,
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a record, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, rec: TransitionRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TransitionRecord> {
        let (newer, older) = self.buf.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64) -> TransitionRecord {
        TransitionRecord {
            time_ms: t,
            scope: Sym::intern("call-1"),
            machine: Sym::intern("sip_call"),
            event: Sym::intern("INVITE"),
            from: Sym::intern("idle"),
            to: Sym::intern("proceeding"),
            label: None,
        }
    }

    #[test]
    fn wraps_and_keeps_newest() {
        let mut ring = TransitionRing::new(3);
        for t in 0..5 {
            ring.push(rec(t));
        }
        assert_eq!(ring.len(), 3);
        let times: Vec<u64> = ring.iter().map(|r| r.time_ms).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn push_does_not_grow_past_capacity() {
        let mut ring = TransitionRing::new(2);
        for t in 0..100 {
            ring.push(rec(t));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.capacity(), 2);
    }

    #[test]
    fn renders_with_and_without_label() {
        let mut r = rec(1500);
        assert_eq!(r.render(), "t=1500ms sip_call INVITE: idle -> proceeding");
        r.label = Some(Sym::intern("setup"));
        assert_eq!(
            r.render(),
            "t=1500ms sip_call INVITE: idle -> proceeding [setup]"
        );
    }
}
