//! SIP request and response messages, plus ergonomic builders for the call
//! flows exercised by the simulated testbed (INVITE / 180 / 200 / ACK / BYE).

use std::fmt;

use crate::headers::{CSeq, Header, Headers, NameAddr, Via};
use crate::method::Method;
use crate::status::StatusCode;
use crate::uri::SipUri;

/// A SIP request: method, request-URI, headers, optional body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The request-URI the message targets.
    pub uri: SipUri,
    /// Header collection in wire order.
    pub headers: Headers,
    /// Message body (typically SDP for INVITE/200).
    pub body: String,
}

impl Request {
    /// Creates a request with empty headers and body.
    pub fn new(method: Method, uri: SipUri) -> Self {
        Request {
            method,
            uri,
            headers: Headers::new(),
            body: String::new(),
        }
    }

    /// Builds a minimal but complete INVITE from `from` to `to`.
    ///
    /// A Via with an RFC 3261 branch derived from the call id, a From tag,
    /// Max-Forwards 70 and CSeq `1 INVITE` are filled in. The caller appends
    /// an SDP body via [`Request::with_body`].
    pub fn invite(from: &SipUri, to: &SipUri, call_id: &str) -> Self {
        let mut req = Request::new(Method::Invite, to.clone());
        let branch = format!("{}-{}", crate::BRANCH_MAGIC_COOKIE, call_id);
        req.headers.push(Header::Via(Via::udp(
            from.host().to_owned(),
            from.port_or_default(),
            branch,
        )));
        req.headers.push(Header::MaxForwards(70));
        req.headers.push(Header::From(
            NameAddr::new(from.clone()).with_tag(format!("tag-{}", from.user().unwrap_or("ua"))),
        ));
        req.headers.push(Header::To(NameAddr::new(to.clone())));
        req.headers.push(Header::CallId(call_id.to_owned()));
        req.headers.push(Header::CSeq(CSeq::new(1, Method::Invite)));
        req.headers
            .push(Header::Contact(NameAddr::new(from.clone())));
        req.headers.push(Header::ContentLength(0));
        req
    }

    /// Builds an in-dialog request (ACK, BYE, re-INVITE) reusing the dialog
    /// identifiers of an earlier request.
    pub fn in_dialog(method: Method, template: &Request, cseq: u32, to_tag: Option<&str>) -> Self {
        let mut req = Request::new(method, template.uri.clone());
        if let Some(via) = template.headers.top_via() {
            let branch = format!(
                "{}-{}-{}",
                crate::BRANCH_MAGIC_COOKIE,
                method.as_str().to_ascii_lowercase(),
                cseq
            );
            req.headers.push(Header::Via(Via::udp(
                via.host().to_owned(),
                via.port().unwrap_or(crate::DEFAULT_SIP_PORT),
                branch,
            )));
        }
        req.headers.push(Header::MaxForwards(70));
        if let Some(from) = template.headers.from_header() {
            req.headers.push(Header::From(from.clone()));
        }
        if let Some(to) = template.headers.to_header() {
            let mut to = to.clone();
            if let Some(tag) = to_tag {
                to.set_tag(tag);
            }
            req.headers.push(Header::To(to));
        }
        if let Some(cid) = template.headers.call_id() {
            req.headers.push(Header::CallId(cid.to_owned()));
        }
        req.headers.push(Header::CSeq(CSeq::new(cseq, method)));
        req.headers.push(Header::ContentLength(0));
        req
    }

    /// Attaches a body and sets `Content-Type`/`Content-Length`, builder-style.
    #[must_use]
    pub fn with_body(mut self, content_type: &str, body: impl Into<String>) -> Self {
        self.body = body.into();
        self.headers
            .push(Header::ContentType(content_type.to_owned()));
        self.headers.set_content_length(self.body.len());
        self
    }

    /// The Call-ID, or `""` if absent (malformed traffic keeps flowing so
    /// vids can flag it).
    pub fn call_id(&self) -> &str {
        self.headers.call_id().unwrap_or("")
    }

    /// Builds a response to this request per RFC 3261 §8.2.6: Via, From, To,
    /// Call-ID and CSeq are copied from the request.
    pub fn response(&self, status: StatusCode) -> Response {
        let mut resp = Response::new(status);
        for h in self.headers.iter() {
            match h {
                Header::Via(v) => resp.headers.push(Header::Via(v.clone())),
                Header::From(v) => resp.headers.push(Header::From(v.clone())),
                Header::To(v) => resp.headers.push(Header::To(v.clone())),
                Header::CallId(v) => resp.headers.push(Header::CallId(v.clone())),
                Header::CSeq(v) => resp.headers.push(Header::CSeq(*v)),
                _ => {}
            }
        }
        resp.headers.set_content_length(0);
        resp
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} SIP/2.0\r\n", self.method, self.uri)?;
        for h in self.headers.iter() {
            write!(f, "{h}\r\n")?;
        }
        write!(f, "\r\n{}", self.body)
    }
}

/// A SIP response: status code, headers, optional body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The response status code.
    pub status: StatusCode,
    /// Header collection in wire order.
    pub headers: Headers,
    /// Message body (SDP answer on a 200 to INVITE).
    pub body: String,
}

impl Response {
    /// Creates a response with empty headers and body.
    pub fn new(status: StatusCode) -> Self {
        Response {
            status,
            headers: Headers::new(),
            body: String::new(),
        }
    }

    /// Attaches a body and sets `Content-Type`/`Content-Length`, builder-style.
    #[must_use]
    pub fn with_body(mut self, content_type: &str, body: impl Into<String>) -> Self {
        self.body = body.into();
        self.headers
            .push(Header::ContentType(content_type.to_owned()));
        self.headers.set_content_length(self.body.len());
        self
    }

    /// Sets the To tag (a UAS answering adds its tag), builder-style.
    #[must_use]
    pub fn with_to_tag(mut self, tag: &str) -> Self {
        if let Some(to) = self.headers.to_header_mut() {
            to.set_tag(tag);
        }
        self
    }

    /// The Call-ID, or `""` if absent.
    pub fn call_id(&self) -> &str {
        self.headers.call_id().unwrap_or("")
    }

    /// The method of the transaction this response belongs to (from CSeq).
    pub fn cseq_method(&self) -> Option<Method> {
        self.headers.cseq().map(|c| c.method)
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SIP/2.0 {} {}\r\n",
            self.status,
            self.status.reason_phrase()
        )?;
        for h in self.headers.iter() {
            write!(f, "{h}\r\n")?;
        }
        write!(f, "\r\n{}", self.body)
    }
}

/// Either kind of SIP message, as classified off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A request.
    Request(Request),
    /// A response.
    Response(Response),
}

impl Message {
    /// The request method, if this is a request.
    pub fn method(&self) -> Option<Method> {
        match self {
            Message::Request(r) => Some(r.method),
            Message::Response(_) => None,
        }
    }

    /// The response status, if this is a response.
    pub fn status(&self) -> Option<StatusCode> {
        match self {
            Message::Request(_) => None,
            Message::Response(r) => Some(r.status),
        }
    }

    /// The headers of either variant.
    pub fn headers(&self) -> &Headers {
        match self {
            Message::Request(r) => &r.headers,
            Message::Response(r) => &r.headers,
        }
    }

    /// The body of either variant.
    pub fn body(&self) -> &str {
        match self {
            Message::Request(r) => &r.body,
            Message::Response(r) => &r.body,
        }
    }

    /// The Call-ID, or `""` if absent.
    pub fn call_id(&self) -> &str {
        self.headers().call_id().unwrap_or("")
    }

    /// True for [`Message::Request`].
    pub fn is_request(&self) -> bool {
        matches!(self, Message::Request(_))
    }

    /// Returns the inner request, if any.
    pub fn as_request(&self) -> Option<&Request> {
        match self {
            Message::Request(r) => Some(r),
            Message::Response(_) => None,
        }
    }

    /// Returns the inner response, if any.
    pub fn as_response(&self) -> Option<&Response> {
        match self {
            Message::Request(_) => None,
            Message::Response(r) => Some(r),
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::Request(r) => r.fmt(f),
            Message::Response(r) => r.fmt(f),
        }
    }
}

impl From<Request> for Message {
    fn from(r: Request) -> Self {
        Message::Request(r)
    }
}

impl From<Response> for Message {
    fn from(r: Response) -> Self {
        Message::Response(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alice() -> SipUri {
        SipUri::new("alice", "a.example.com")
    }

    fn bob() -> SipUri {
        SipUri::new("bob", "b.example.com")
    }

    #[test]
    fn invite_has_mandatory_headers() {
        let inv = Request::invite(&alice(), &bob(), "cid-42");
        assert_eq!(inv.method, Method::Invite);
        assert!(inv.headers.top_via().unwrap().has_rfc3261_branch());
        assert_eq!(inv.headers.call_id(), Some("cid-42"));
        assert_eq!(inv.headers.cseq().unwrap().method, Method::Invite);
        assert_eq!(inv.headers.max_forwards(), Some(70));
        assert!(inv.headers.from_header().unwrap().tag().is_some());
        assert!(inv.headers.to_header().unwrap().tag().is_none());
    }

    #[test]
    fn with_body_sets_length() {
        let inv = Request::invite(&alice(), &bob(), "cid").with_body("application/sdp", "v=0\r\n");
        assert_eq!(inv.headers.content_length(), Some(5));
        assert_eq!(inv.headers.content_type(), Some("application/sdp"));
    }

    #[test]
    fn response_copies_dialog_headers() {
        let inv = Request::invite(&alice(), &bob(), "cid");
        let ok = inv.response(StatusCode::OK).with_to_tag("bob-tag");
        assert_eq!(ok.call_id(), "cid");
        assert_eq!(ok.cseq_method(), Some(Method::Invite));
        assert_eq!(ok.headers.to_header().unwrap().tag(), Some("bob-tag"));
        assert_eq!(
            ok.headers.top_via().unwrap().branch(),
            inv.headers.top_via().unwrap().branch()
        );
    }

    #[test]
    fn in_dialog_bye_reuses_identifiers() {
        let inv = Request::invite(&alice(), &bob(), "cid");
        let bye = Request::in_dialog(Method::Bye, &inv, 2, Some("bob-tag"));
        assert_eq!(bye.method, Method::Bye);
        assert_eq!(bye.headers.call_id(), Some("cid"));
        assert_eq!(bye.headers.cseq().unwrap().seq, 2);
        assert_eq!(bye.headers.to_header().unwrap().tag(), Some("bob-tag"));
        assert_eq!(
            bye.headers.from_header().unwrap().tag(),
            inv.headers.from_header().unwrap().tag()
        );
    }

    #[test]
    fn request_line_serializes() {
        let inv = Request::invite(&alice(), &bob(), "cid");
        let wire = inv.to_string();
        assert!(wire.starts_with("INVITE sip:bob@b.example.com SIP/2.0\r\n"));
        assert!(wire.contains("\r\n\r\n"));
    }

    #[test]
    fn status_line_serializes() {
        let resp = Response::new(StatusCode::RINGING);
        assert!(resp.to_string().starts_with("SIP/2.0 180 Ringing\r\n"));
    }

    #[test]
    fn message_accessors() {
        let inv: Message = Request::invite(&alice(), &bob(), "cid").into();
        assert!(inv.is_request());
        assert_eq!(inv.method(), Some(Method::Invite));
        assert_eq!(inv.status(), None);
        let ok: Message = Response::new(StatusCode::OK).into();
        assert_eq!(ok.status(), Some(StatusCode::OK));
        assert!(ok.as_response().is_some());
    }
}
