//! SIP URI representation and parsing (RFC 3261 §19.1, subset).
//!
//! A [`SipUri`] carries the pieces vids and the simulated agents care about:
//! scheme (`sip` or `sips`), optional user part, host, optional port and an
//! ordered list of URI parameters (e.g. `;transport=udp;lr`).

use std::fmt;
use std::str::FromStr;

/// URI scheme: plain or secure SIP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Scheme {
    /// `sip:` — the common case in this codebase.
    #[default]
    Sip,
    /// `sips:` — SIP over TLS.
    Sips,
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::Sip => f.write_str("sip"),
            Scheme::Sips => f.write_str("sips"),
        }
    }
}

/// A parsed SIP URI such as `sip:alice@atlanta.example.com:5060;transport=udp`.
///
/// Construct with [`SipUri::new`] or parse from text with [`str::parse`].
///
/// ```
/// use vids_sip::uri::SipUri;
/// let uri: SipUri = "sip:bob@biloxi.example.com;transport=udp".parse().unwrap();
/// assert_eq!(uri.user(), Some("bob"));
/// assert_eq!(uri.host(), "biloxi.example.com");
/// assert_eq!(uri.param("transport"), Some("udp"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SipUri {
    scheme: Scheme,
    user: Option<String>,
    host: String,
    port: Option<u16>,
    params: Vec<(String, Option<String>)>,
}

impl SipUri {
    /// Creates a `sip:` URI with a user and host, no port or parameters.
    pub fn new(user: impl Into<String>, host: impl Into<String>) -> Self {
        SipUri {
            scheme: Scheme::Sip,
            user: Some(user.into()),
            host: host.into(),
            port: None,
            params: Vec::new(),
        }
    }

    /// Creates a host-only URI (e.g. for a proxy: `sip:proxy.example.com`).
    pub fn host_only(host: impl Into<String>) -> Self {
        SipUri {
            scheme: Scheme::Sip,
            user: None,
            host: host.into(),
            port: None,
            params: Vec::new(),
        }
    }

    /// Sets the port, builder-style.
    #[must_use]
    pub fn with_port(mut self, port: u16) -> Self {
        self.port = Some(port);
        self
    }

    /// Sets the scheme, builder-style.
    #[must_use]
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Appends a `;key=value` parameter, builder-style.
    #[must_use]
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.push((key.into(), Some(value.into())));
        self
    }

    /// Appends a valueless `;flag` parameter (e.g. `;lr`), builder-style.
    #[must_use]
    pub fn with_flag(mut self, key: impl Into<String>) -> Self {
        self.params.push((key.into(), None));
        self
    }

    /// The URI scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The user part before `@`, if any.
    pub fn user(&self) -> Option<&str> {
        self.user.as_deref()
    }

    /// The host part (domain name or IP literal).
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The explicit port, if present.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// The port to contact: explicit port or the SIP default 5060.
    pub fn port_or_default(&self) -> u16 {
        self.port.unwrap_or(crate::DEFAULT_SIP_PORT)
    }

    /// Looks up a URI parameter value by (case-insensitive) key. A flag
    /// parameter present without a value yields `Some("")`.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_deref().unwrap_or(""))
    }

    /// Whether the parameter is present at all (with or without a value).
    pub fn has_param(&self, key: &str) -> bool {
        self.params.iter().any(|(k, _)| k.eq_ignore_ascii_case(key))
    }

    /// All parameters in order of appearance.
    pub fn params(&self) -> impl Iterator<Item = (&str, Option<&str>)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v.as_deref()))
    }

    /// The address-of-record form: scheme, user and host without port or
    /// parameters. Used as a registrar/location-service key.
    pub fn address_of_record(&self) -> SipUri {
        SipUri {
            scheme: self.scheme,
            user: self.user.clone(),
            host: self.host.clone(),
            port: None,
            params: Vec::new(),
        }
    }
}

impl fmt::Display for SipUri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.scheme)?;
        if let Some(user) = &self.user {
            write!(f, "{user}@")?;
        }
        f.write_str(&self.host)?;
        if let Some(port) = self.port {
            write!(f, ":{port}")?;
        }
        for (k, v) in &self.params {
            match v {
                Some(v) => write!(f, ";{k}={v}")?,
                None => write!(f, ";{k}")?,
            }
        }
        Ok(())
    }
}

/// Error returned when SIP URI text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUriError {
    reason: &'static str,
}

impl ParseUriError {
    fn new(reason: &'static str) -> Self {
        ParseUriError { reason }
    }
}

impl fmt::Display for ParseUriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SIP URI: {}", self.reason)
    }
}

impl std::error::Error for ParseUriError {}

impl FromStr for SipUri {
    type Err = ParseUriError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (scheme, rest) = if let Some(rest) = s.strip_prefix("sips:") {
            (Scheme::Sips, rest)
        } else if let Some(rest) = s.strip_prefix("sip:") {
            (Scheme::Sip, rest)
        } else {
            return Err(ParseUriError::new("missing sip: or sips: scheme"));
        };

        // Split off parameters first: everything after the first ';'.
        let (addr, param_str) = match rest.find(';') {
            Some(i) => (&rest[..i], Some(&rest[i + 1..])),
            None => (rest, None),
        };
        if addr.is_empty() {
            return Err(ParseUriError::new("empty host part"));
        }
        // RFC 3261 userinfo and hostport contain no whitespace or control
        // characters. Accepting them makes Display round trips lossy: a
        // host that kept a trailing tab re-parses without it once the
        // angle-bracket form is rendered.
        if addr.chars().any(|c| c.is_whitespace() || c.is_control()) {
            return Err(ParseUriError::new("whitespace in user/host part"));
        }

        let (user, hostport) = match addr.rfind('@') {
            Some(i) => {
                let user = &addr[..i];
                if user.is_empty() {
                    return Err(ParseUriError::new("empty user part before '@'"));
                }
                (Some(user.to_owned()), &addr[i + 1..])
            }
            None => (None, addr),
        };

        let (host, port) = match hostport.rfind(':') {
            // Guard against IPv6 literals which we keep as opaque host text.
            Some(i) if !hostport.contains(']') || i > hostport.rfind(']').unwrap_or(0) => {
                let port: u16 = hostport[i + 1..]
                    .parse()
                    .map_err(|_| ParseUriError::new("invalid port number"))?;
                (hostport[..i].to_owned(), Some(port))
            }
            _ => (hostport.to_owned(), None),
        };
        if host.is_empty() {
            return Err(ParseUriError::new("empty host part"));
        }

        let mut params = Vec::new();
        if let Some(param_str) = param_str {
            for piece in param_str.split(';') {
                if piece.is_empty() {
                    return Err(ParseUriError::new("empty URI parameter"));
                }
                match piece.split_once('=') {
                    Some((k, v)) => params.push((k.to_owned(), Some(v.to_owned()))),
                    None => params.push((piece.to_owned(), None)),
                }
            }
        }

        Ok(SipUri {
            scheme,
            user,
            host,
            port,
            params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_uri() {
        let uri: SipUri = "sip:alice@atlanta.example.com:5070;transport=udp;lr"
            .parse()
            .unwrap();
        assert_eq!(uri.scheme(), Scheme::Sip);
        assert_eq!(uri.user(), Some("alice"));
        assert_eq!(uri.host(), "atlanta.example.com");
        assert_eq!(uri.port(), Some(5070));
        assert_eq!(uri.param("transport"), Some("udp"));
        assert!(uri.has_param("lr"));
        assert_eq!(uri.param("lr"), Some(""));
    }

    #[test]
    fn parses_sips_scheme() {
        let uri: SipUri = "sips:bob@secure.example.com".parse().unwrap();
        assert_eq!(uri.scheme(), Scheme::Sips);
    }

    #[test]
    fn parses_host_only() {
        let uri: SipUri = "sip:proxy.example.com".parse().unwrap();
        assert_eq!(uri.user(), None);
        assert_eq!(uri.host(), "proxy.example.com");
        assert_eq!(uri.port_or_default(), 5060);
    }

    #[test]
    fn parses_ip_host() {
        let uri: SipUri = "sip:ua1@10.0.0.3:5062".parse().unwrap();
        assert_eq!(uri.host(), "10.0.0.3");
        assert_eq!(uri.port(), Some(5062));
    }

    #[test]
    fn rejects_bad_uris() {
        assert!("http://example.com".parse::<SipUri>().is_err());
        assert!("sip:".parse::<SipUri>().is_err());
        assert!("sip:@host".parse::<SipUri>().is_err());
        assert!("sip:u@h:badport".parse::<SipUri>().is_err());
        assert!("sip:u@h;;x".parse::<SipUri>().is_err());
    }

    #[test]
    fn rejects_whitespace_inside_user_or_host() {
        // A tab kept inside the host would survive parse but not a
        // Display round trip (found by the fuzz harness: the outer trim
        // cannot see a tab that sits before the first ';').
        assert!("sip:alice@a.example.com\t;tag=oa"
            .parse::<SipUri>()
            .is_err());
        assert!("sip:al ice@a.example.com".parse::<SipUri>().is_err());
        assert!("sip:alice@a.exam ple.com".parse::<SipUri>().is_err());
        // Leading/trailing whitespace around the whole URI is still fine.
        assert!(" sip:alice@a.example.com ".parse::<SipUri>().is_ok());
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "sip:alice@atlanta.example.com",
            "sip:alice@atlanta.example.com:5070",
            "sips:bob@b.example.com;transport=tls",
            "sip:proxy.example.com;lr",
            "sip:carol@10.1.2.3:5080;transport=udp;lr",
        ] {
            let uri: SipUri = text.parse().unwrap();
            assert_eq!(uri.to_string(), text);
            let reparsed: SipUri = uri.to_string().parse().unwrap();
            assert_eq!(reparsed, uri);
        }
    }

    #[test]
    fn address_of_record_strips_port_and_params() {
        let uri: SipUri = "sip:alice@a.example.com:5070;transport=udp"
            .parse()
            .unwrap();
        assert_eq!(
            uri.address_of_record().to_string(),
            "sip:alice@a.example.com"
        );
    }

    #[test]
    fn param_lookup_is_case_insensitive() {
        let uri: SipUri = "sip:a@h;Transport=UDP".parse().unwrap();
        assert_eq!(uri.param("transport"), Some("UDP"));
    }
}
