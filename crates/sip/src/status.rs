//! SIP response status codes (RFC 3261 §21).

use std::fmt;

/// A numeric SIP response status code, e.g. `180 Ringing` or `200 OK`.
///
/// Any code in `100..=699` is representable; constructors for the codes used
/// throughout this codebase are provided as associated constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatusCode(u16);

impl StatusCode {
    /// 100 Trying.
    pub const TRYING: StatusCode = StatusCode(100);
    /// 180 Ringing.
    pub const RINGING: StatusCode = StatusCode(180);
    /// 183 Session Progress.
    pub const SESSION_PROGRESS: StatusCode = StatusCode(183);
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 202 Accepted.
    pub const ACCEPTED: StatusCode = StatusCode(202);
    /// 301 Moved Permanently.
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    /// 302 Moved Temporarily.
    pub const MOVED_TEMPORARILY: StatusCode = StatusCode(302);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 401 Unauthorized.
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    /// 403 Forbidden.
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 408 Request Timeout.
    pub const REQUEST_TIMEOUT: StatusCode = StatusCode(408);
    /// 481 Call/Transaction Does Not Exist.
    pub const CALL_DOES_NOT_EXIST: StatusCode = StatusCode(481);
    /// 486 Busy Here.
    pub const BUSY_HERE: StatusCode = StatusCode(486);
    /// 487 Request Terminated (response to a CANCELed INVITE).
    pub const REQUEST_TERMINATED: StatusCode = StatusCode(487);
    /// 500 Server Internal Error.
    pub const SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);
    /// 600 Busy Everywhere.
    pub const BUSY_EVERYWHERE: StatusCode = StatusCode(600);
    /// 603 Decline.
    pub const DECLINE: StatusCode = StatusCode(603);

    /// Creates a status code, validating the RFC range.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidStatusCode`] if `code` is outside `100..=699`.
    pub fn new(code: u16) -> Result<StatusCode, InvalidStatusCode> {
        if (100..=699).contains(&code) {
            Ok(StatusCode(code))
        } else {
            Err(InvalidStatusCode { code })
        }
    }

    /// The numeric value.
    pub fn as_u16(&self) -> u16 {
        self.0
    }

    /// Provisional 1xx response (the transaction is still in progress).
    pub fn is_provisional(&self) -> bool {
        self.0 < 200
    }

    /// Final response (2xx–6xx): completes the transaction.
    pub fn is_final(&self) -> bool {
        self.0 >= 200
    }

    /// Successful 2xx response.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Redirect 3xx response.
    pub fn is_redirect(&self) -> bool {
        (300..400).contains(&self.0)
    }

    /// Failure response (4xx–6xx).
    pub fn is_failure(&self) -> bool {
        self.0 >= 400
    }

    /// The canonical reason phrase for well-known codes, or `"Unknown"`.
    pub fn reason_phrase(&self) -> &'static str {
        match self.0 {
            100 => "Trying",
            180 => "Ringing",
            181 => "Call Is Being Forwarded",
            183 => "Session Progress",
            200 => "OK",
            202 => "Accepted",
            301 => "Moved Permanently",
            302 => "Moved Temporarily",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            408 => "Request Timeout",
            481 => "Call/Transaction Does Not Exist",
            486 => "Busy Here",
            487 => "Request Terminated",
            500 => "Server Internal Error",
            503 => "Service Unavailable",
            600 => "Busy Everywhere",
            603 => "Decline",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Error returned by [`StatusCode::new`] for out-of-range codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidStatusCode {
    code: u16,
}

impl InvalidStatusCode {
    /// The rejected numeric value.
    pub fn code(&self) -> u16 {
        self.code
    }
}

impl fmt::Display for InvalidStatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "status code {} outside 100..=699", self.code)
    }
}

impl std::error::Error for InvalidStatusCode {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(StatusCode::TRYING.is_provisional());
        assert!(StatusCode::RINGING.is_provisional());
        assert!(StatusCode::OK.is_final());
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::MOVED_TEMPORARILY.is_redirect());
        assert!(StatusCode::BUSY_HERE.is_failure());
        assert!(StatusCode::BUSY_HERE.is_final());
        assert!(!StatusCode::BUSY_HERE.is_success());
    }

    #[test]
    fn range_validation() {
        assert!(StatusCode::new(99).is_err());
        assert!(StatusCode::new(700).is_err());
        assert_eq!(StatusCode::new(0).unwrap_err().code(), 0);
        assert_eq!(StatusCode::new(486).unwrap(), StatusCode::BUSY_HERE);
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(StatusCode::OK.reason_phrase(), "OK");
        assert_eq!(
            StatusCode::REQUEST_TERMINATED.reason_phrase(),
            "Request Terminated"
        );
        assert_eq!(StatusCode::new(599).unwrap().reason_phrase(), "Unknown");
    }
}
