//! Typed SIP headers and the ordered header collection.
//!
//! vids inspects a handful of header fields (§4.2 of the paper): `Call-ID`,
//! the `branch` parameter of `Via`, the `tag` parameters of `From`/`To`,
//! `CSeq`, and the SDP body advertised by `Content-Type`/`Content-Length`.
//! Those are modeled as typed values; all other headers survive parsing and
//! re-serialization as raw name/value pairs.

use std::fmt;
use std::str::FromStr;

use crate::method::Method;
use crate::uri::SipUri;

/// A `Via` header value: `SIP/2.0/UDP host:port;branch=z9hG4bK...`.
///
/// The branch parameter identifies the transaction (RFC 3261 §17.1.3); vids
/// stores it in the per-call local state variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Via {
    transport: String,
    host: String,
    port: Option<u16>,
    params: Vec<(String, Option<String>)>,
}

impl Via {
    /// Creates a UDP Via for `host:port` with the given branch.
    pub fn udp(host: impl Into<String>, port: u16, branch: impl Into<String>) -> Self {
        Via {
            transport: "UDP".to_owned(),
            host: host.into(),
            port: Some(port),
            params: vec![("branch".to_owned(), Some(branch.into()))],
        }
    }

    /// The transport token (`UDP`, `TCP`, `TLS`).
    pub fn transport(&self) -> &str {
        &self.transport
    }

    /// The sent-by host.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The sent-by port, if explicit.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// The `branch` transaction identifier, if present.
    pub fn branch(&self) -> Option<&str> {
        self.param("branch")
    }

    /// Looks up a Via parameter by (case-insensitive) key.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .and_then(|(_, v)| v.as_deref())
    }

    /// Adds a parameter, builder-style (used by proxies for `received`).
    #[must_use]
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.push((key.into(), Some(value.into())));
        self
    }

    /// Whether the branch starts with the RFC 3261 magic cookie.
    pub fn has_rfc3261_branch(&self) -> bool {
        self.branch()
            .is_some_and(|b| b.starts_with(crate::BRANCH_MAGIC_COOKIE))
    }
}

impl fmt::Display for Via {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SIP/2.0/{} {}", self.transport, self.host)?;
        if let Some(port) = self.port {
            write!(f, ":{port}")?;
        }
        for (k, v) in &self.params {
            match v {
                Some(v) => write!(f, ";{k}={v}")?,
                None => write!(f, ";{k}")?,
            }
        }
        Ok(())
    }
}

impl FromStr for Via {
    type Err = ParseHeaderError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let rest = s
            .strip_prefix("SIP/2.0/")
            .ok_or_else(|| ParseHeaderError::new("Via", "missing SIP/2.0/ prefix"))?;
        let (transport, rest) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| ParseHeaderError::new("Via", "missing sent-by"))?;
        let rest = rest.trim_start();
        let (hostport, param_str) = match rest.find(';') {
            Some(i) => (&rest[..i], Some(&rest[i + 1..])),
            None => (rest, None),
        };
        let (host, port) = match hostport.rsplit_once(':') {
            Some((h, p)) => (
                h.to_owned(),
                Some(
                    p.parse::<u16>()
                        .map_err(|_| ParseHeaderError::new("Via", "invalid port"))?,
                ),
            ),
            None => (hostport.to_owned(), None),
        };
        if host.is_empty() {
            return Err(ParseHeaderError::new("Via", "empty host"));
        }
        let mut params = Vec::new();
        if let Some(param_str) = param_str {
            for piece in param_str.split(';') {
                if piece.is_empty() {
                    return Err(ParseHeaderError::new("Via", "empty parameter"));
                }
                match piece.split_once('=') {
                    Some((k, v)) => params.push((k.trim().to_owned(), Some(v.trim().to_owned()))),
                    None => params.push((piece.trim().to_owned(), None)),
                }
            }
        }
        Ok(Via {
            transport: transport.to_owned(),
            host,
            port,
            params,
        })
    }
}

/// A name-addr header value used by `From`, `To` and `Contact`:
/// `"Alice" <sip:alice@a.example.com>;tag=1928301774`.
///
/// The `tag` parameter identifies the dialog side; vids stores both tags in
/// the call's local state variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NameAddr {
    display_name: Option<String>,
    uri: SipUri,
    params: Vec<(String, Option<String>)>,
}

impl NameAddr {
    /// Wraps a URI with no display name or parameters.
    pub fn new(uri: SipUri) -> Self {
        NameAddr {
            display_name: None,
            uri,
            params: Vec::new(),
        }
    }

    /// Sets the quoted display name, builder-style.
    #[must_use]
    pub fn with_display_name(mut self, name: impl Into<String>) -> Self {
        self.display_name = Some(name.into());
        self
    }

    /// Sets the `tag` parameter, builder-style.
    #[must_use]
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.set_tag(tag);
        self
    }

    /// Sets or replaces the `tag` parameter in place.
    pub fn set_tag(&mut self, tag: impl Into<String>) {
        let tag = tag.into();
        for (k, v) in &mut self.params {
            if k.eq_ignore_ascii_case("tag") {
                *v = Some(tag);
                return;
            }
        }
        self.params.push(("tag".to_owned(), Some(tag)));
    }

    /// The display name, if any.
    pub fn display_name(&self) -> Option<&str> {
        self.display_name.as_deref()
    }

    /// The wrapped URI.
    pub fn uri(&self) -> &SipUri {
        &self.uri
    }

    /// The `tag` parameter, if present.
    pub fn tag(&self) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("tag"))
            .and_then(|(_, v)| v.as_deref())
    }
}

impl fmt::Display for NameAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.display_name {
            write!(f, "\"{name}\" ")?;
        }
        write!(f, "<{}>", self.uri)?;
        for (k, v) in &self.params {
            match v {
                Some(v) => write!(f, ";{k}={v}")?,
                None => write!(f, ";{k}")?,
            }
        }
        Ok(())
    }
}

impl FromStr for NameAddr {
    type Err = ParseHeaderError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (display_name, rest) = if let Some(rest) = s.strip_prefix('"') {
            let end = rest
                .find('"')
                .ok_or_else(|| ParseHeaderError::new("name-addr", "unterminated display name"))?;
            (Some(rest[..end].to_owned()), rest[end + 1..].trim_start())
        } else {
            (None, s)
        };

        if let Some(rest) = rest.strip_prefix('<') {
            let end = rest
                .find('>')
                .ok_or_else(|| ParseHeaderError::new("name-addr", "missing '>'"))?;
            let uri: SipUri = rest[..end]
                .parse()
                .map_err(|_| ParseHeaderError::new("name-addr", "invalid URI"))?;
            let mut params = Vec::new();
            let tail = rest[end + 1..].trim_start();
            if let Some(tail) = tail.strip_prefix(';') {
                for piece in tail.split(';') {
                    if piece.is_empty() {
                        return Err(ParseHeaderError::new("name-addr", "empty parameter"));
                    }
                    match piece.split_once('=') {
                        Some((k, v)) => {
                            params.push((k.trim().to_owned(), Some(v.trim().to_owned())))
                        }
                        None => params.push((piece.trim().to_owned(), None)),
                    }
                }
            } else if !tail.is_empty() {
                return Err(ParseHeaderError::new("name-addr", "junk after '>'"));
            }
            Ok(NameAddr {
                display_name,
                uri,
                params,
            })
        } else {
            // addr-spec form without angle brackets: URI parameters belong to
            // the header, not the URI (RFC 3261 §20.10) — but for the subset
            // this codebase generates, treating the whole string as a URI and
            // hoisting a trailing `tag` parameter is sufficient and lossless.
            //
            // Angle brackets inside an addr-spec are malformed, and accepting
            // one breaks the parse→Display→parse round trip: the stray `>`
            // would be folded into the URI and re-rendered inside a fresh
            // `<...>` wrapper as `<...>>`, which no parser accepts.
            if rest.contains('<') || rest.contains('>') {
                return Err(ParseHeaderError::new("name-addr", "stray angle bracket"));
            }
            let mut uri: SipUri = rest
                .parse()
                .map_err(|_| ParseHeaderError::new("name-addr", "invalid URI"))?;
            let mut params = Vec::new();
            if let Some(tag) = uri.param("tag").map(str::to_owned) {
                params.push(("tag".to_owned(), Some(tag)));
                let stripped: Vec<(String, Option<String>)> = uri
                    .params()
                    .filter(|(k, _)| !k.eq_ignore_ascii_case("tag"))
                    .map(|(k, v)| (k.to_owned(), v.map(str::to_owned)))
                    .collect();
                let mut rebuilt = SipUri::host_only(uri.host()).with_scheme(uri.scheme());
                if let Some(user) = uri.user() {
                    rebuilt = SipUri::new(user, uri.host()).with_scheme(uri.scheme());
                }
                if let Some(port) = uri.port() {
                    rebuilt = rebuilt.with_port(port);
                }
                for (k, v) in stripped {
                    rebuilt = match v {
                        Some(v) => rebuilt.with_param(k, v),
                        None => rebuilt.with_flag(k),
                    };
                }
                uri = rebuilt;
            }
            Ok(NameAddr {
                display_name,
                uri,
                params,
            })
        }
    }
}

/// A `CSeq` header value: sequence number and method (RFC 3261 §20.16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CSeq {
    /// The 32-bit sequence number.
    pub seq: u32,
    /// The method this CSeq refers to.
    pub method: Method,
}

impl CSeq {
    /// Creates a CSeq value.
    pub fn new(seq: u32, method: Method) -> Self {
        CSeq { seq, method }
    }
}

impl fmt::Display for CSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.seq, self.method)
    }
}

impl FromStr for CSeq {
    type Err = ParseHeaderError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (seq, method) = s
            .trim()
            .split_once(char::is_whitespace)
            .ok_or_else(|| ParseHeaderError::new("CSeq", "missing method"))?;
        Ok(CSeq {
            seq: seq
                .parse()
                .map_err(|_| ParseHeaderError::new("CSeq", "invalid sequence number"))?,
            method: method
                .trim()
                .parse()
                .map_err(|_| ParseHeaderError::new("CSeq", "unknown method"))?,
        })
    }
}

/// One SIP header: typed where vids needs structure, raw otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Header {
    /// `Via:` — one per hop; topmost identifies the transaction.
    Via(Via),
    /// `From:` — the logical initiator, carries the caller's dialog tag.
    From(NameAddr),
    /// `To:` — the logical recipient, carries the callee's dialog tag.
    To(NameAddr),
    /// `Contact:` — where subsequent requests should be sent directly.
    Contact(NameAddr),
    /// `Call-ID:` — globally unique call identifier.
    CallId(String),
    /// `CSeq:` — sequence number + method.
    CSeq(CSeq),
    /// `Max-Forwards:` — hop limit decremented by proxies.
    MaxForwards(u32),
    /// `Content-Type:` — MIME type of the body (e.g. `application/sdp`).
    ContentType(String),
    /// `Content-Length:` — byte length of the body.
    ContentLength(usize),
    /// `Expires:` — registration or subscription lifetime in seconds.
    Expires(u32),
    /// Any header this implementation does not interpret.
    Other {
        /// Header field name as it appeared on the wire.
        name: String,
        /// Raw field value.
        value: String,
    },
}

impl Header {
    /// The canonical field name used when serializing.
    pub fn name(&self) -> &str {
        match self {
            Header::Via(_) => "Via",
            Header::From(_) => "From",
            Header::To(_) => "To",
            Header::Contact(_) => "Contact",
            Header::CallId(_) => "Call-ID",
            Header::CSeq(_) => "CSeq",
            Header::MaxForwards(_) => "Max-Forwards",
            Header::ContentType(_) => "Content-Type",
            Header::ContentLength(_) => "Content-Length",
            Header::Expires(_) => "Expires",
            Header::Other { name, .. } => name,
        }
    }
}

impl fmt::Display for Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Header::Via(v) => write!(f, "Via: {v}"),
            Header::From(v) => write!(f, "From: {v}"),
            Header::To(v) => write!(f, "To: {v}"),
            Header::Contact(v) => write!(f, "Contact: {v}"),
            Header::CallId(v) => write!(f, "Call-ID: {v}"),
            Header::CSeq(v) => write!(f, "CSeq: {v}"),
            Header::MaxForwards(v) => write!(f, "Max-Forwards: {v}"),
            Header::ContentType(v) => write!(f, "Content-Type: {v}"),
            Header::ContentLength(v) => write!(f, "Content-Length: {v}"),
            Header::Expires(v) => write!(f, "Expires: {v}"),
            Header::Other { name, value } => write!(f, "{name}: {value}"),
        }
    }
}

/// An ordered collection of headers, preserving wire order and duplicates
/// (multiple `Via` headers accumulate along the proxy chain).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Headers {
    items: Vec<Header>,
}

impl Headers {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Headers::default()
    }

    /// Appends a header at the end.
    pub fn push(&mut self, header: Header) {
        self.items.push(header);
    }

    /// Inserts a header at the front (proxies prepend their own Via).
    pub fn push_front(&mut self, header: Header) {
        self.items.insert(0, header);
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the headers in wire order.
    pub fn iter(&self) -> impl Iterator<Item = &Header> {
        self.items.iter()
    }

    /// The topmost (first) `Via`, which addresses responses.
    pub fn top_via(&self) -> Option<&Via> {
        self.items.iter().find_map(|h| match h {
            Header::Via(v) => Some(v),
            _ => None,
        })
    }

    /// All `Via` headers in order.
    pub fn vias(&self) -> impl Iterator<Item = &Via> {
        self.items.iter().filter_map(|h| match h {
            Header::Via(v) => Some(v),
            _ => None,
        })
    }

    /// Removes the topmost `Via` (a proxy forwarding a response does this).
    /// Returns it if one was present.
    pub fn pop_via(&mut self) -> Option<Via> {
        let idx = self
            .items
            .iter()
            .position(|h| matches!(h, Header::Via(_)))?;
        match self.items.remove(idx) {
            Header::Via(v) => Some(v),
            _ => unreachable!(),
        }
    }

    /// The `From` header, if present.
    pub fn from_header(&self) -> Option<&NameAddr> {
        self.items.iter().find_map(|h| match h {
            Header::From(v) => Some(v),
            _ => None,
        })
    }

    /// The `To` header, if present.
    pub fn to_header(&self) -> Option<&NameAddr> {
        self.items.iter().find_map(|h| match h {
            Header::To(v) => Some(v),
            _ => None,
        })
    }

    /// Mutable access to the `To` header (UAS adds its tag when answering).
    pub fn to_header_mut(&mut self) -> Option<&mut NameAddr> {
        self.items.iter_mut().find_map(|h| match h {
            Header::To(v) => Some(v),
            _ => None,
        })
    }

    /// The `Contact` header, if present.
    pub fn contact(&self) -> Option<&NameAddr> {
        self.items.iter().find_map(|h| match h {
            Header::Contact(v) => Some(v),
            _ => None,
        })
    }

    /// The `Call-ID` value, if present.
    pub fn call_id(&self) -> Option<&str> {
        self.items.iter().find_map(|h| match h {
            Header::CallId(v) => Some(v.as_str()),
            _ => None,
        })
    }

    /// The `CSeq` value, if present.
    pub fn cseq(&self) -> Option<CSeq> {
        self.items.iter().find_map(|h| match h {
            Header::CSeq(v) => Some(*v),
            _ => None,
        })
    }

    /// The `Max-Forwards` value, if present.
    pub fn max_forwards(&self) -> Option<u32> {
        self.items.iter().find_map(|h| match h {
            Header::MaxForwards(v) => Some(*v),
            _ => None,
        })
    }

    /// Decrements `Max-Forwards`, returning the new value. `None` if the
    /// header is absent; `Some(None)` if it was already zero (the proxy must
    /// reject with 483).
    pub fn decrement_max_forwards(&mut self) -> Option<Option<u32>> {
        for h in &mut self.items {
            if let Header::MaxForwards(v) = h {
                if *v == 0 {
                    return Some(None);
                }
                *v -= 1;
                return Some(Some(*v));
            }
        }
        None
    }

    /// The declared `Content-Length`, if present.
    pub fn content_length(&self) -> Option<usize> {
        self.items.iter().find_map(|h| match h {
            Header::ContentLength(v) => Some(*v),
            _ => None,
        })
    }

    /// The `Content-Type`, if present.
    pub fn content_type(&self) -> Option<&str> {
        self.items.iter().find_map(|h| match h {
            Header::ContentType(v) => Some(v.as_str()),
            _ => None,
        })
    }

    /// Replaces any existing `Content-Length` with `len` (or appends one).
    pub fn set_content_length(&mut self, len: usize) {
        for h in &mut self.items {
            if let Header::ContentLength(v) = h {
                *v = len;
                return;
            }
        }
        self.items.push(Header::ContentLength(len));
    }

    /// Looks up the first raw value of an uninterpreted header by name
    /// (case-insensitive).
    pub fn other(&self, name: &str) -> Option<&str> {
        self.items.iter().find_map(|h| match h {
            Header::Other { name: n, value } if n.eq_ignore_ascii_case(name) => {
                Some(value.as_str())
            }
            _ => None,
        })
    }
}

impl FromIterator<Header> for Headers {
    fn from_iter<I: IntoIterator<Item = Header>>(iter: I) -> Self {
        Headers {
            items: iter.into_iter().collect(),
        }
    }
}

impl Extend<Header> for Headers {
    fn extend<I: IntoIterator<Item = Header>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Headers {
    type Item = &'a Header;
    type IntoIter = std::slice::Iter<'a, Header>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// Error produced when a typed header value fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHeaderError {
    header: &'static str,
    reason: &'static str,
}

impl ParseHeaderError {
    pub(crate) fn new(header: &'static str, reason: &'static str) -> Self {
        ParseHeaderError { header, reason }
    }

    /// Which header failed.
    pub fn header(&self) -> &'static str {
        self.header
    }
}

impl fmt::Display for ParseHeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} header: {}", self.header, self.reason)
    }
}

impl std::error::Error for ParseHeaderError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn via_round_trip() {
        let via = Via::udp("10.0.0.3", 5060, "z9hG4bKabc123");
        let text = via.to_string();
        assert_eq!(text, "SIP/2.0/UDP 10.0.0.3:5060;branch=z9hG4bKabc123");
        let parsed: Via = text.parse().unwrap();
        assert_eq!(parsed, via);
        assert!(parsed.has_rfc3261_branch());
        assert_eq!(parsed.branch(), Some("z9hG4bKabc123"));
    }

    #[test]
    fn via_with_received_param() {
        let via: Via = "SIP/2.0/UDP pc33.atlanta.com;branch=z9hG4bK776;received=192.0.2.1"
            .parse()
            .unwrap();
        assert_eq!(via.param("received"), Some("192.0.2.1"));
        assert_eq!(via.port(), None);
    }

    #[test]
    fn via_rejects_garbage() {
        assert!("HTTP/1.1 foo".parse::<Via>().is_err());
        assert!("SIP/2.0/UDP".parse::<Via>().is_err());
        assert!("SIP/2.0/UDP host:xx".parse::<Via>().is_err());
    }

    #[test]
    fn name_addr_round_trip() {
        let na = NameAddr::new(SipUri::new("alice", "a.example.com"))
            .with_display_name("Alice")
            .with_tag("1928301774");
        let text = na.to_string();
        assert_eq!(text, "\"Alice\" <sip:alice@a.example.com>;tag=1928301774");
        let parsed: NameAddr = text.parse().unwrap();
        assert_eq!(parsed, na);
        assert_eq!(parsed.tag(), Some("1928301774"));
    }

    #[test]
    fn name_addr_without_brackets() {
        let na: NameAddr = "sip:bob@b.example.com".parse().unwrap();
        assert_eq!(na.uri().user(), Some("bob"));
        assert_eq!(na.tag(), None);
    }

    #[test]
    fn set_tag_replaces_existing() {
        let mut na = NameAddr::new(SipUri::new("bob", "b.example.com")).with_tag("a1");
        na.set_tag("b2");
        assert_eq!(na.tag(), Some("b2"));
        assert_eq!(na.to_string().matches("tag=").count(), 1);
    }

    #[test]
    fn cseq_round_trip() {
        let cseq = CSeq::new(314159, Method::Invite);
        assert_eq!(cseq.to_string(), "314159 INVITE");
        assert_eq!("314159 INVITE".parse::<CSeq>().unwrap(), cseq);
        assert!("oops INVITE".parse::<CSeq>().is_err());
        assert!("1 FROB".parse::<CSeq>().is_err());
        assert!("1".parse::<CSeq>().is_err());
    }

    #[test]
    fn headers_accessors() {
        let mut hs = Headers::new();
        hs.push(Header::Via(Via::udp("h1", 5060, "z9hG4bK1")));
        hs.push(Header::Via(Via::udp("h2", 5060, "z9hG4bK2")));
        hs.push(Header::From(
            NameAddr::new(SipUri::new("a", "x")).with_tag("ta"),
        ));
        hs.push(Header::To(NameAddr::new(SipUri::new("b", "y"))));
        hs.push(Header::CallId("cid-1".to_owned()));
        hs.push(Header::CSeq(CSeq::new(1, Method::Invite)));
        hs.push(Header::MaxForwards(70));

        assert_eq!(hs.top_via().unwrap().branch(), Some("z9hG4bK1"));
        assert_eq!(hs.vias().count(), 2);
        assert_eq!(hs.call_id(), Some("cid-1"));
        assert_eq!(hs.cseq().unwrap().seq, 1);
        assert_eq!(hs.from_header().unwrap().tag(), Some("ta"));
        assert_eq!(hs.to_header().unwrap().tag(), None);

        let popped = hs.pop_via().unwrap();
        assert_eq!(popped.branch(), Some("z9hG4bK1"));
        assert_eq!(hs.top_via().unwrap().branch(), Some("z9hG4bK2"));
    }

    #[test]
    fn max_forwards_decrement() {
        let mut hs = Headers::new();
        assert_eq!(hs.decrement_max_forwards(), None);
        hs.push(Header::MaxForwards(1));
        assert_eq!(hs.decrement_max_forwards(), Some(Some(0)));
        assert_eq!(hs.decrement_max_forwards(), Some(None));
    }

    #[test]
    fn content_length_set_replaces() {
        let mut hs = Headers::new();
        hs.set_content_length(10);
        hs.set_content_length(20);
        assert_eq!(hs.content_length(), Some(20));
        assert_eq!(hs.len(), 1);
    }

    #[test]
    fn to_tag_added_via_mut_access() {
        let mut hs = Headers::new();
        hs.push(Header::To(NameAddr::new(SipUri::new("b", "y"))));
        hs.to_header_mut().unwrap().set_tag("totag");
        assert_eq!(hs.to_header().unwrap().tag(), Some("totag"));
    }
}
