//! Dialog identification (RFC 3261 §12).
//!
//! A dialog is identified by the Call-ID plus the local and remote tags.
//! vids uses the same triple (from the monitor's point of view: caller tag /
//! callee tag) to group mid-dialog requests with the call they belong to, and
//! to notice foreign BYE/CANCEL messages that carry the right Call-ID but a
//! tag never seen in the dialog — a cheap spoofing tell.

use std::fmt;

use crate::message::Message;

/// A dialog identifier triple.
///
/// `local_tag` is the From tag of the dialog-forming request as seen at the
/// monitoring point; `remote_tag` is the To tag assigned by the answering UA
/// (absent until a response carrying it is observed).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DialogId {
    /// The Call-ID header value.
    pub call_id: String,
    /// Tag of the caller (From header of the INVITE).
    pub local_tag: String,
    /// Tag of the callee (To header, assigned in responses); empty until known.
    pub remote_tag: String,
}

impl DialogId {
    /// Creates a dialog id with both tags known.
    pub fn new(
        call_id: impl Into<String>,
        local_tag: impl Into<String>,
        remote_tag: impl Into<String>,
    ) -> Self {
        DialogId {
            call_id: call_id.into(),
            local_tag: local_tag.into(),
            remote_tag: remote_tag.into(),
        }
    }

    /// Extracts the dialog id from any SIP message, orienting tags so that
    /// the From tag is `local_tag`. Works for early dialogs: a missing To
    /// tag yields an empty `remote_tag`.
    pub fn from_message(msg: &Message) -> DialogId {
        let headers = msg.headers();
        DialogId {
            call_id: headers.call_id().unwrap_or("").to_owned(),
            local_tag: headers
                .from_header()
                .and_then(|f| f.tag())
                .unwrap_or("")
                .to_owned(),
            remote_tag: headers
                .to_header()
                .and_then(|t| t.tag())
                .unwrap_or("")
                .to_owned(),
        }
    }

    /// Whether the remote tag has been learned yet.
    pub fn is_confirmed(&self) -> bool {
        !self.remote_tag.is_empty()
    }

    /// The same dialog as seen from the other UA: tags swapped.
    #[must_use]
    pub fn reversed(&self) -> DialogId {
        DialogId {
            call_id: self.call_id.clone(),
            local_tag: self.remote_tag.clone(),
            remote_tag: self.local_tag.clone(),
        }
    }

    /// Whether `other` refers to the same dialog, regardless of direction or
    /// of whether the remote tag is known yet on either side.
    pub fn matches(&self, other: &DialogId) -> bool {
        if self.call_id != other.call_id {
            return false;
        }
        let same = self.local_tag == other.local_tag
            && (self.remote_tag == other.remote_tag
                || self.remote_tag.is_empty()
                || other.remote_tag.is_empty());
        let swapped = self.local_tag == other.remote_tag
            && (self.remote_tag == other.local_tag
                || self.remote_tag.is_empty()
                || other.local_tag.is_empty());
        same || swapped
    }
}

impl fmt::Display for DialogId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{};from-tag={};to-tag={}",
            self.call_id, self.local_tag, self.remote_tag
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Request;

    use crate::status::StatusCode;
    use crate::uri::SipUri;

    fn invite() -> Request {
        Request::invite(
            &SipUri::new("alice", "a.example.com"),
            &SipUri::new("bob", "b.example.com"),
            "dlg-1",
        )
    }

    #[test]
    fn early_dialog_has_no_remote_tag() {
        let id = DialogId::from_message(&invite().into());
        assert_eq!(id.call_id, "dlg-1");
        assert!(!id.local_tag.is_empty());
        assert!(!id.is_confirmed());
    }

    #[test]
    fn confirmed_by_response_to_tag() {
        let inv = invite();
        let ok = inv.response(StatusCode::OK).with_to_tag("bob-tag");
        let id = DialogId::from_message(&ok.into());
        assert!(id.is_confirmed());
        assert_eq!(id.remote_tag, "bob-tag");
    }

    #[test]
    fn matches_early_and_confirmed() {
        let early = DialogId::new("c", "a", "");
        let confirmed = DialogId::new("c", "a", "b");
        assert!(early.matches(&confirmed));
        assert!(confirmed.matches(&early));
    }

    #[test]
    fn matches_reversed_direction() {
        let caller_view = DialogId::new("c", "a", "b");
        let callee_view = caller_view.reversed();
        assert_eq!(callee_view.local_tag, "b");
        assert!(caller_view.matches(&callee_view));
    }

    #[test]
    fn different_call_ids_do_not_match() {
        assert!(!DialogId::new("c1", "a", "b").matches(&DialogId::new("c2", "a", "b")));
    }

    #[test]
    fn foreign_tag_does_not_match() {
        let real = DialogId::new("c", "a", "b");
        let spoofed = DialogId::new("c", "evil", "other");
        assert!(!real.matches(&spoofed));
    }
}
