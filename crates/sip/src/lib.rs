//! # vids-sip — SIP protocol substrate
//!
//! A from-scratch implementation of the subset of the Session Initiation
//! Protocol (RFC 3261) needed by the vids intrusion detection system and the
//! simulated enterprise telephony testbed:
//!
//! * [`uri::SipUri`] — `sip:`/`sips:` URIs with user, host, port and parameters.
//! * [`Method`] — the six core request methods (INVITE, ACK, BYE, CANCEL,
//!   REGISTER, OPTIONS) plus common extensions.
//! * [`StatusCode`] — numeric response codes with reason phrases.
//! * [`headers`] — typed header values (Via, From/To, CSeq, Call-ID, …) and an
//!   ordered header collection that preserves unknown headers.
//! * [`message`] — [`message::Request`], [`message::Response`] and the
//!   [`message::Message`] sum type, with builders for the common call flows.
//! * [`parse`] — a text parser tolerant of compact header forms.
//! * [`transaction`] — the four RFC 3261 transaction state machines with
//!   logical timers (A–K), used by the simulated user agents and proxies.
//! * [`dialog`] — dialog identification (Call-ID + local/remote tags).
//!
//! Messages serialize via [`std::fmt::Display`] and parse back losslessly for
//! everything the model represents; property tests assert the round-trip.
//!
//! ```
//! use vids_sip::{Method, message::Request, uri::SipUri};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let to: SipUri = "sip:bob@b.example.com".parse()?;
//! let from: SipUri = "sip:alice@a.example.com:5060".parse()?;
//! let invite = Request::invite(&from, &to, "call-1@a.example.com");
//! let wire = invite.to_string();
//! let parsed = vids_sip::parse::parse_message(&wire)?;
//! assert_eq!(parsed.method(), Some(Method::Invite));
//! # Ok(())
//! # }
//! ```

pub mod auth;
pub mod dialog;
pub mod headers;
pub mod md5;
pub mod message;
pub mod method;
pub mod parse;
pub(crate) mod scan;
pub mod status;
pub mod transaction;
pub mod uri;
pub mod view;

pub use auth::{DigestChallenge, DigestCredentials};
pub use dialog::DialogId;
pub use message::{Message, Request, Response};
pub use method::Method;
pub use parse::ParseMessageError;
pub use status::StatusCode;
pub use uri::SipUri;

/// The default SIP port over UDP/TCP.
pub const DEFAULT_SIP_PORT: u16 = 5060;

/// Magic cookie that must begin every RFC 3261 Via branch parameter.
pub const BRANCH_MAGIC_COOKIE: &str = "z9hG4bK";
