//! Text parser for SIP messages.
//!
//! Accepts the RFC 3261 grammar subset produced by [`crate::message`]'s
//! `Display` impls plus common variations found on real wires: compact header
//! forms (`v`, `f`, `t`, `i`, `m`, `c`, `l`), arbitrary header case, LF-only
//! line endings, and unknown headers (preserved raw).

use std::fmt;

use crate::headers::{Header, Headers};
use crate::message::{Message, Request, Response};
use crate::method::Method;
use crate::scan;
use crate::status::StatusCode;
use crate::uri::SipUri;

/// Error returned by [`parse_message`].
///
/// The reason is a static string: building an error for the (frequent, on
/// hostile traffic) malformed-packet path costs no allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMessageError {
    line: usize,
    reason: &'static str,
}

impl ParseMessageError {
    fn new(line: usize, reason: &'static str) -> Self {
        ParseMessageError { line, reason }
    }

    /// 1-based line number where parsing failed (0 for structural errors).
    pub fn line(&self) -> usize {
        self.line
    }

    /// The static diagnosis, allocation-free by construction.
    pub fn reason(&self) -> &'static str {
        self.reason
    }
}

impl fmt::Display for ParseMessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid SIP message at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseMessageError {}

/// The validated start line, before headers are parsed.
enum StartLine {
    Request { method: Method, uri: SipUri },
    Response { status: StatusCode },
}

/// Parses a complete SIP message (request or response) from text.
///
/// The start line is validated *before* any header: hostile floods
/// overwhelmingly fail right there, and the reject stays cheap (no
/// owned-header allocations for traffic that was never SIP).
///
/// # Errors
///
/// Returns [`ParseMessageError`] when the start line is not a valid request
/// or status line, when a known header fails its typed parse, or when a
/// declared `Content-Length` exceeds the bytes actually present — a
/// truncated datagram: an IDS must flag it rather than analyze a different
/// message than the endpoint saw. Unknown headers never fail — they are
/// kept raw so vids can still classify the packet and flag anomalies at a
/// higher layer.
///
/// ```
/// let msg = vids_sip::parse::parse_message(
///     "OPTIONS sip:proxy.example.com SIP/2.0\r\nCall-ID: x1\r\nContent-Length: 0\r\n\r\n",
/// )?;
/// assert_eq!(msg.call_id(), "x1");
/// # Ok::<(), vids_sip::ParseMessageError>(())
/// ```
pub fn parse_message(text: &str) -> Result<Message, ParseMessageError> {
    // Validate the start line before the whole-message head/body scan:
    // traffic that was never SIP rejects without walking the payload.
    let start = scan::start_line(text).ok_or_else(|| ParseMessageError::new(0, "empty message"))?;
    let start = parse_start_line(start)?;

    // Split head (start line + headers) from body at the first blank line.
    let (head, body) = scan::split_head_body(text);
    let mut lines = scan::lines(head).enumerate();
    lines.next(); // the start line, already validated above

    let mut headers = Headers::new();
    for (idx, line) in lines {
        if line.is_empty() {
            break;
        }
        let header =
            parse_header_line(line).map_err(|reason| ParseMessageError::new(idx + 1, reason))?;
        headers.push(header);
    }

    // Honor Content-Length when it is no longer than the available body
    // (trailing padding is trimmed, as a datagram parser would). A length
    // *exceeding* the body means the datagram was truncated in flight:
    // reject instead of silently keeping a body the declared message does
    // not have.
    let body = match headers.content_length() {
        Some(len) if len > body.len() => {
            return Err(ParseMessageError::new(
                0,
                "Content-Length exceeds available body",
            ))
        }
        Some(len) if !body.is_char_boundary(len) => {
            return Err(ParseMessageError::new(
                0,
                "Content-Length splits a multi-byte character",
            ))
        }
        Some(len) => body[..len].to_owned(),
        None => body.to_owned(),
    };

    match start {
        StartLine::Response { status } => {
            let mut resp = Response::new(status);
            resp.headers = headers;
            resp.body = body;
            Ok(Message::Response(resp))
        }
        StartLine::Request { method, uri } => {
            let mut req = Request::new(method, uri);
            req.headers = headers;
            req.body = body;
            Ok(Message::Request(req))
        }
    }
}

fn parse_start_line(start: &str) -> Result<StartLine, ParseMessageError> {
    if let Some(rest) = start.strip_prefix("SIP/2.0 ") {
        // Status line: SIP/2.0 200 OK
        let mut parts = rest.splitn(2, ' ');
        let code_text = parts.next().unwrap_or("");
        let code: u16 = code_text
            .parse()
            .map_err(|_| ParseMessageError::new(1, "invalid status code"))?;
        let status =
            StatusCode::new(code).map_err(|_| ParseMessageError::new(1, "invalid status code"))?;
        Ok(StartLine::Response { status })
    } else {
        // Request line: METHOD uri SIP/2.0
        let mut parts = start.split_whitespace();
        let method_tok = parts
            .next()
            .ok_or_else(|| ParseMessageError::new(1, "missing method"))?;
        let uri_tok = parts
            .next()
            .ok_or_else(|| ParseMessageError::new(1, "missing request-URI"))?;
        let version = parts
            .next()
            .ok_or_else(|| ParseMessageError::new(1, "missing SIP version"))?;
        if version != "SIP/2.0" {
            return Err(ParseMessageError::new(1, "unsupported SIP version"));
        }
        let method: Method = method_tok
            .parse()
            .map_err(|_| ParseMessageError::new(1, "invalid method"))?;
        let uri: SipUri = uri_tok
            .parse()
            .map_err(|_| ParseMessageError::new(1, "invalid request-URI"))?;
        Ok(StartLine::Request { method, uri })
    }
}

/// Static error reasons keep the reject path allocation-free: a flood of
/// malformed headers costs parsing time only, never heap churn. Ownership
/// (`to_owned`) is taken only for the value a [`Header`] variant actually
/// stores.
fn parse_header_line(line: &str) -> Result<Header, &'static str> {
    let (name, value) = scan::split_header_line(line).ok_or("header line without ':'")?;
    let canonical = scan::header_id(name).canonical();
    let header = match canonical {
        "Via" => Header::Via(value.parse().map_err(|_| "invalid Via")?),
        "From" => Header::From(value.parse().map_err(|_| "invalid From")?),
        "To" => Header::To(value.parse().map_err(|_| "invalid To")?),
        "Contact" => Header::Contact(value.parse().map_err(|_| "invalid Contact")?),
        "Call-ID" => Header::CallId(value.to_owned()),
        "CSeq" => Header::CSeq(value.parse().map_err(|_| "invalid CSeq")?),
        "Max-Forwards" => Header::MaxForwards(value.parse().map_err(|_| "invalid Max-Forwards")?),
        "Content-Type" => Header::ContentType(value.to_owned()),
        "Content-Length" => {
            Header::ContentLength(value.parse().map_err(|_| "invalid Content-Length")?)
        }
        "Expires" => Header::Expires(value.parse().map_err(|_| "invalid Expires")?),
        _ => Header::Other {
            name: name.to_owned(),
            value: value.to_owned(),
        },
    };
    Ok(header)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::{CSeq, NameAddr};
    use crate::uri::SipUri;

    #[test]
    fn parses_generated_invite() {
        let inv = Request::invite(
            &SipUri::new("alice", "a.example.com"),
            &SipUri::new("bob", "b.example.com"),
            "cid-7",
        )
        .with_body("application/sdp", "v=0\r\no=- 0 0 IN IP4 10.0.0.1\r\n");
        let parsed = parse_message(&inv.to_string()).unwrap();
        assert_eq!(parsed, Message::Request(inv));
    }

    #[test]
    fn parses_generated_response() {
        let inv = Request::invite(
            &SipUri::new("alice", "a.example.com"),
            &SipUri::new("bob", "b.example.com"),
            "cid-7",
        );
        let ok = inv.response(StatusCode::OK).with_to_tag("bt");
        let parsed = parse_message(&ok.to_string()).unwrap();
        assert_eq!(parsed, Message::Response(ok));
    }

    #[test]
    fn parses_compact_headers() {
        let text = "INVITE sip:bob@b.example.com SIP/2.0\r\n\
                    v: SIP/2.0/UDP a.example.com:5060;branch=z9hG4bKx\r\n\
                    f: <sip:alice@a.example.com>;tag=1\r\n\
                    t: <sip:bob@b.example.com>\r\n\
                    i: compact-1\r\n\
                    CSeq: 1 INVITE\r\n\
                    l: 0\r\n\r\n";
        let msg = parse_message(text).unwrap();
        assert_eq!(msg.call_id(), "compact-1");
        assert_eq!(msg.headers().top_via().unwrap().branch(), Some("z9hG4bKx"));
        assert_eq!(msg.headers().from_header().unwrap().tag(), Some("1"));
    }

    #[test]
    fn tolerates_lf_only_line_endings() {
        let text = "BYE sip:bob@b.example.com SIP/2.0\nCall-ID: lf-1\nCSeq: 2 BYE\n\n";
        let msg = parse_message(text).unwrap();
        assert_eq!(msg.method(), Some(Method::Bye));
        assert_eq!(msg.call_id(), "lf-1");
    }

    #[test]
    fn keeps_unknown_headers_raw() {
        let text = "OPTIONS sip:p.example.com SIP/2.0\r\n\
                    X-Custom: hello world\r\n\
                    User-Agent: vids-test/1.0\r\n\r\n";
        let msg = parse_message(text).unwrap();
        assert_eq!(msg.headers().other("x-custom"), Some("hello world"));
        assert_eq!(msg.headers().other("User-Agent"), Some("vids-test/1.0"));
    }

    #[test]
    fn content_length_trims_body() {
        let text = "INFO sip:b@h SIP/2.0\r\nContent-Length: 3\r\n\r\nabcdef";
        let msg = parse_message(text).unwrap();
        assert_eq!(msg.body(), "abc");
    }

    /// Regression (ISSUE 5): a Content-Length larger than the available
    /// body is a truncated datagram — the endpoint saw a different message
    /// than the monitor would reconstruct, so the parse must fail.
    #[test]
    fn content_length_beyond_body_is_rejected() {
        let text = "INFO sip:b@h SIP/2.0\r\nContent-Length: 9999\r\n\r\nshort";
        let err = parse_message(text).unwrap_err();
        assert_eq!(err.reason(), "Content-Length exceeds available body");
        // Exact length still parses; one byte over does not.
        assert!(parse_message("INFO sip:b@h SIP/2.0\r\nContent-Length: 5\r\n\r\nshort").is_ok());
        assert!(parse_message("INFO sip:b@h SIP/2.0\r\nContent-Length: 6\r\n\r\nshort").is_err());
    }

    /// Found by the vids-harness fuzzer: a Content-Length that lands inside
    /// a multi-byte UTF-8 character must reject, not panic on the slice.
    #[test]
    fn content_length_inside_a_multibyte_character_is_rejected() {
        let text = "INFO sip:b@h SIP/2.0\r\nContent-Length: 1\r\n\r\né";
        let err = parse_message(text).unwrap_err();
        assert_eq!(err.reason(), "Content-Length splits a multi-byte character");
        assert!(parse_message("INFO sip:b@h SIP/2.0\r\nContent-Length: 2\r\n\r\né").is_ok());
    }

    #[test]
    fn rejects_bad_start_lines() {
        assert!(parse_message("").is_err());
        assert!(parse_message("GET / HTTP/1.1\r\n\r\n").is_err());
        assert!(parse_message("INVITE sip:b@h SIP/3.0\r\n\r\n").is_err());
        assert!(parse_message("SIP/2.0 999 Wat\r\n\r\n").is_err());
        assert!(parse_message("SIP/2.0 abc Huh\r\n\r\n").is_err());
        assert!(parse_message("INVITE\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_malformed_known_headers() {
        let text = "INVITE sip:b@h SIP/2.0\r\nCSeq: banana\r\n\r\n";
        let err = parse_message(text).unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn header_line_without_colon_fails() {
        let text = "INVITE sip:b@h SIP/2.0\r\nNoColonHere\r\n\r\n";
        assert!(parse_message(text).is_err());
    }

    #[test]
    fn full_three_way_handshake_round_trips() {
        let alice = SipUri::new("alice", "a.example.com");
        let bob = SipUri::new("bob", "b.example.com");
        let inv = Request::invite(&alice, &bob, "rt-1");
        let ringing = inv.response(StatusCode::RINGING).with_to_tag("bt");
        let ok = inv.response(StatusCode::OK).with_to_tag("bt");
        let ack = Request::in_dialog(Method::Ack, &inv, 1, Some("bt"));
        let bye = Request::in_dialog(Method::Bye, &inv, 2, Some("bt"));
        for msg in [
            Message::Request(inv),
            Message::Response(ringing),
            Message::Response(ok),
            Message::Request(ack),
            Message::Request(bye),
        ] {
            let reparsed = parse_message(&msg.to_string()).unwrap();
            assert_eq!(reparsed, msg);
        }
    }

    #[test]
    fn arbitrary_case_header_names() {
        let text = "BYE sip:b@h SIP/2.0\r\ncall-id: cc\r\ncseq: 9 BYE\r\n\r\n";
        let msg = parse_message(text).unwrap();
        assert_eq!(msg.call_id(), "cc");
        assert_eq!(msg.headers().cseq(), Some(CSeq::new(9, Method::Bye)));
    }

    #[test]
    fn name_addr_in_header_with_display_name() {
        let text = "INVITE sip:b@h SIP/2.0\r\nFrom: \"Alice W\" <sip:alice@a.com>;tag=zz\r\n\r\n";
        let msg = parse_message(text).unwrap();
        let from: &NameAddr = msg.headers().from_header().unwrap();
        assert_eq!(from.display_name(), Some("Alice W"));
        assert_eq!(from.tag(), Some("zz"));
    }
}
