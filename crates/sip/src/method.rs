//! SIP request methods (RFC 3261 §7.1 plus common extensions).

use std::fmt;
use std::str::FromStr;

/// A SIP request method.
///
/// The six original RFC 3261 methods are listed first; `Info`, `Update`,
/// `Prack`, `Subscribe`, `Notify`, `Refer` and `Message` are widely deployed
/// extensions the parser should not choke on. Anything else parses as an
/// error so that vids can flag it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Method {
    /// Initiates a session (three-way handshake with 200/ACK).
    Invite,
    /// Acknowledges a final response to an INVITE.
    Ack,
    /// Terminates an established session.
    Bye,
    /// Cancels a pending INVITE transaction.
    Cancel,
    /// Binds an address-of-record to a contact at a registrar.
    Register,
    /// Queries capabilities.
    Options,
    /// Mid-session information (RFC 6086).
    Info,
    /// Modifies session state before the final response (RFC 3311).
    Update,
    /// Provisional response acknowledgement (RFC 3262).
    Prack,
    /// Event subscription (RFC 6665).
    Subscribe,
    /// Event notification (RFC 6665).
    Notify,
    /// Call transfer (RFC 3515).
    Refer,
    /// Instant message (RFC 3428).
    MessageMethod,
}

impl Method {
    /// All methods known to this implementation.
    pub const ALL: [Method; 13] = [
        Method::Invite,
        Method::Ack,
        Method::Bye,
        Method::Cancel,
        Method::Register,
        Method::Options,
        Method::Info,
        Method::Update,
        Method::Prack,
        Method::Subscribe,
        Method::Notify,
        Method::Refer,
        Method::MessageMethod,
    ];

    /// The canonical upper-case token used on the wire.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Invite => "INVITE",
            Method::Ack => "ACK",
            Method::Bye => "BYE",
            Method::Cancel => "CANCEL",
            Method::Register => "REGISTER",
            Method::Options => "OPTIONS",
            Method::Info => "INFO",
            Method::Update => "UPDATE",
            Method::Prack => "PRACK",
            Method::Subscribe => "SUBSCRIBE",
            Method::Notify => "NOTIFY",
            Method::Refer => "REFER",
            Method::MessageMethod => "MESSAGE",
        }
    }

    /// Resolves a wire method token without allocating (unlike the
    /// [`FromStr`] impl, whose error owns the offending token). Length
    /// dispatch plus word compares; case-sensitive per RFC 3261.
    pub fn from_token(token: &[u8]) -> Option<Method> {
        crate::scan::method_from_token(token)
    }

    /// Whether this method creates an INVITE transaction (the only request
    /// that takes noticeable time to complete and thus can be CANCELed).
    pub fn is_invite(&self) -> bool {
        matches!(self, Method::Invite)
    }

    /// Whether a request with this method is answered by the server
    /// transaction (ACK is not: it is absorbed by the INVITE transaction).
    pub fn expects_response(&self) -> bool {
        !matches!(self, Method::Ack)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned for a method token this implementation does not know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMethodError {
    token: String,
}

impl ParseMethodError {
    /// The offending token.
    pub fn token(&self) -> &str {
        &self.token
    }
}

impl fmt::Display for ParseMethodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown SIP method {:?}", self.token)
    }
}

impl std::error::Error for ParseMethodError {}

impl FromStr for Method {
    type Err = ParseMethodError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Method::from_token(s.as_bytes()).ok_or_else(|| ParseMethodError {
            token: s.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_methods() {
        for m in Method::ALL {
            assert_eq!(m.as_str().parse::<Method>().unwrap(), m);
        }
    }

    #[test]
    fn is_case_sensitive_per_rfc() {
        // RFC 3261: the method token is case-sensitive.
        assert!("invite".parse::<Method>().is_err());
        assert!("INVITE".parse::<Method>().is_ok());
    }

    #[test]
    fn unknown_method_reports_token() {
        let err = "FROBNICATE".parse::<Method>().unwrap_err();
        assert_eq!(err.token(), "FROBNICATE");
    }

    #[test]
    fn ack_expects_no_response() {
        assert!(!Method::Ack.expects_response());
        assert!(Method::Bye.expects_response());
    }
}
