//! SIP-specific scanning built on the `vids-scan` SWAR primitives.
//!
//! Both parsers ([`crate::parse`] and [`crate::view`]) walk the same wire
//! shape — head/body split at the first blank line, one header per line,
//! `name: value` at the first colon — so the walking lives here once and
//! the two stay in lock-step (the harness' view-vs-owned differential
//! oracle depends on that). The scanners here are the hot ones: on the
//! monitor path every SIP datagram runs `split_head_body` + one
//! [`header_id`] per header line before anything protocol-shaped happens.

use vids_scan::{eq_ignore_case, find_byte, find_seq};

use crate::method::Method;

/// Splits a message at the first blank line: CRLF CRLF preferred, bare
/// LF LF accepted, no blank line means "all head, empty body".
#[inline]
pub(crate) fn split_head_body(text: &str) -> (&str, &str) {
    let bytes = text.as_bytes();
    if let Some(i) = find_seq(bytes, b"\r\n\r\n") {
        (&text[..i], &text[i + 4..])
    } else if let Some(i) = find_seq(bytes, b"\n\n") {
        (&text[..i], &text[i + 2..])
    } else {
        (text, "")
    }
}

/// The start line alone, without scanning past the first newline.
///
/// Both parsers validate the start line before anything else; on hostile
/// floods most rejects happen right there, so the reject path must not
/// pay the whole-message [`split_head_body`] walk first (PR 7 regressed
/// `sip_parse_reject_malformed` by exactly that reorder). `None` means
/// the head is empty — `""`, or a blank line at offset zero — which both
/// parsers report as "empty message".
#[inline]
pub(crate) fn start_line(text: &str) -> Option<&str> {
    let bytes = text.as_bytes();
    if bytes.is_empty() || bytes.starts_with(b"\n\n") || bytes.starts_with(b"\r\n\r\n") {
        return None;
    }
    let line = match find_byte(bytes, b'\n') {
        Some(i) => &text[..i],
        None => text,
    };
    Some(line.strip_suffix('\r').unwrap_or(line))
}

/// [`str::lines`] semantics (split at `\n`, strip one trailing `\r`,
/// optional final terminator) with a SWAR newline scan.
#[derive(Clone)]
pub(crate) struct Lines<'a> {
    rest: &'a str,
}

#[inline]
pub(crate) fn lines(head: &str) -> Lines<'_> {
    Lines { rest: head }
}

impl<'a> Iterator for Lines<'a> {
    type Item = &'a str;

    #[inline]
    fn next(&mut self) -> Option<&'a str> {
        if self.rest.is_empty() {
            return None;
        }
        let line = match find_byte(self.rest.as_bytes(), b'\n') {
            Some(i) => {
                let line = &self.rest[..i];
                self.rest = &self.rest[i + 1..];
                line.strip_suffix('\r').unwrap_or(line)
            }
            None => {
                // Final unterminated segment: `str::lines` keeps a lone
                // trailing `\r` here, so we do too.
                let line = self.rest;
                self.rest = "";
                line
            }
        };
        Some(line)
    }
}

/// Splits `name: value` at the first colon, both sides trimmed.
#[inline]
pub(crate) fn split_header_line(line: &str) -> Option<(&str, &str)> {
    let i = find_byte(line.as_bytes(), b':')?;
    Some((line[..i].trim(), line[i + 1..].trim()))
}

/// The header names both parsers give special treatment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HeaderId {
    Via,
    From,
    To,
    Contact,
    CallId,
    CSeq,
    ContentType,
    ContentLength,
    Expires,
    MaxForwards,
    Other,
}

impl HeaderId {
    /// Canonical wire spelling (`""` for [`HeaderId::Other`]).
    pub(crate) fn canonical(self) -> &'static str {
        match self {
            HeaderId::Via => "Via",
            HeaderId::From => "From",
            HeaderId::To => "To",
            HeaderId::Contact => "Contact",
            HeaderId::CallId => "Call-ID",
            HeaderId::CSeq => "CSeq",
            HeaderId::ContentType => "Content-Type",
            HeaderId::ContentLength => "Content-Length",
            HeaderId::Expires => "Expires",
            HeaderId::MaxForwards => "Max-Forwards",
            HeaderId::Other => "",
        }
    }
}

/// Classifies a header name: compact single letters per RFC 3261 §7.3.3,
/// otherwise dispatch on length so each name is checked against at most
/// three candidates with word-at-a-time case-insensitive compares
/// (instead of a linear `eq_ignore_ascii_case` scan over all ten).
#[inline]
pub(crate) fn header_id(name: &str) -> HeaderId {
    let b = name.as_bytes();
    match b.len() {
        1 => match b[0].to_ascii_lowercase() {
            b'v' => HeaderId::Via,
            b'f' => HeaderId::From,
            b't' => HeaderId::To,
            b'i' => HeaderId::CallId,
            b'm' => HeaderId::Contact,
            b'c' => HeaderId::ContentType,
            b'l' => HeaderId::ContentLength,
            _ => HeaderId::Other,
        },
        2 if eq_ignore_case(b, b"to") => HeaderId::To,
        3 if eq_ignore_case(b, b"via") => HeaderId::Via,
        4 if eq_ignore_case(b, b"from") => HeaderId::From,
        4 if eq_ignore_case(b, b"cseq") => HeaderId::CSeq,
        7 if eq_ignore_case(b, b"call-id") => HeaderId::CallId,
        7 if eq_ignore_case(b, b"contact") => HeaderId::Contact,
        7 if eq_ignore_case(b, b"expires") => HeaderId::Expires,
        12 if eq_ignore_case(b, b"content-type") => HeaderId::ContentType,
        12 if eq_ignore_case(b, b"max-forwards") => HeaderId::MaxForwards,
        14 if eq_ignore_case(b, b"content-length") => HeaderId::ContentLength,
        _ => HeaderId::Other,
    }
}

/// Resolves a method token by length dispatch — the equal-length byte
/// compares below compile to one or two word compares each, replacing the
/// linear scan over [`Method::ALL`]. Case-sensitive, per RFC 3261.
#[inline]
pub(crate) fn method_from_token(b: &[u8]) -> Option<Method> {
    match b.len() {
        3 if b == b"ACK" => Some(Method::Ack),
        3 if b == b"BYE" => Some(Method::Bye),
        4 if b == b"INFO" => Some(Method::Info),
        5 if b == b"PRACK" => Some(Method::Prack),
        5 if b == b"REFER" => Some(Method::Refer),
        6 if b == b"INVITE" => Some(Method::Invite),
        6 if b == b"CANCEL" => Some(Method::Cancel),
        6 if b == b"UPDATE" => Some(Method::Update),
        6 if b == b"NOTIFY" => Some(Method::Notify),
        7 if b == b"OPTIONS" => Some(Method::Options),
        7 if b == b"MESSAGE" => Some(Method::MessageMethod),
        8 if b == b"REGISTER" => Some(Method::Register),
        9 if b == b"SUBSCRIBE" => Some(Method::Subscribe),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_matches_std() {
        for text in [
            "",
            "\n",
            "\r\n",
            "a",
            "a\n",
            "a\r\n",
            "a\r",
            "a\nb",
            "a\r\nb\r\n",
            "a\rb\nc",
            "INVITE sip:x SIP/2.0\r\nVia: v\r\n\r\n",
            "one\n\nthree\r\n",
        ] {
            let ours: Vec<&str> = lines(text).collect();
            let std: Vec<&str> = text.lines().collect();
            assert_eq!(ours, std, "{text:?}");
        }
    }

    #[test]
    fn split_head_body_prefers_crlf_and_tolerates_lf() {
        assert_eq!(split_head_body("h\r\n\r\nb"), ("h", "b"));
        assert_eq!(split_head_body("h\n\nb"), ("h", "b"));
        assert_eq!(split_head_body("h"), ("h", ""));
        // A CRLF blank line wins even when a bare-LF one occurs earlier
        // (the historical `find`-then-`find` order, preserved).
        assert_eq!(split_head_body("a\n\nb\r\n\r\nc"), ("a\n\nb", "c"));
    }

    #[test]
    fn header_id_all_spellings() {
        for (name, id) in [
            ("Via", HeaderId::Via),
            ("VIA", HeaderId::Via),
            ("v", HeaderId::Via),
            ("from", HeaderId::From),
            ("f", HeaderId::From),
            ("To", HeaderId::To),
            ("t", HeaderId::To),
            ("Contact", HeaderId::Contact),
            ("m", HeaderId::Contact),
            ("CALL-id", HeaderId::CallId),
            ("i", HeaderId::CallId),
            ("cSeQ", HeaderId::CSeq),
            ("content-TYPE", HeaderId::ContentType),
            ("c", HeaderId::ContentType),
            ("Content-Length", HeaderId::ContentLength),
            ("l", HeaderId::ContentLength),
            ("expires", HeaderId::Expires),
            ("Max-Forwards", HeaderId::MaxForwards),
            ("X-Custom", HeaderId::Other),
            ("", HeaderId::Other),
            ("Call_ID", HeaderId::Other),
        ] {
            assert_eq!(header_id(name), id, "{name:?}");
        }
    }

    #[test]
    fn method_token_agrees_with_all_table() {
        for m in Method::ALL {
            assert_eq!(method_from_token(m.as_str().as_bytes()), Some(m));
        }
        assert_eq!(method_from_token(b"invite"), None);
        assert_eq!(method_from_token(b"FROBNICATE"), None);
        assert_eq!(method_from_token(b""), None);
    }

    #[test]
    fn split_header_line_first_colon_and_trims() {
        assert_eq!(
            split_header_line("Via: SIP/2.0/UDP h:5060"),
            Some(("Via", "SIP/2.0/UDP h:5060"))
        );
        assert_eq!(split_header_line("  i :  x  "), Some(("i", "x")));
        assert_eq!(split_header_line("NoColonHere"), None);
    }
}
