//! Zero-copy message view: the fields vids inspects, borrowed from the wire.
//!
//! [`crate::parse::parse_message`] builds an owned [`crate::Message`] — a
//! dozen heap allocations per datagram — which is the right tool for the
//! simulated user agents that mutate and re-serialize messages. The
//! intrusion monitor only ever *reads* a handful of fields (§4.2 of the
//! paper: Call-ID, the Via branch, the From/To tags, CSeq, and the SDP
//! body), so its classifier uses this view instead: every field is a
//! `&str` slice into the original datagram and parsing allocates nothing.
//!
//! The view accepts the same message subset the owned parser does for the
//! traffic the testbed generates; both reject the same malformed start
//! lines and known-header values, so classification verdicts agree.

use crate::method::Method;
use crate::scan::{self, HeaderId};
use crate::status::StatusCode;

/// Error returned by [`parse_view`]. The reason is a static string so
/// reporting a malformed packet never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewError(&'static str);

impl ViewError {
    /// The static diagnosis.
    pub fn reason(self) -> &'static str {
        self.0
    }
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid SIP message: {}", self.0)
    }
}

impl std::error::Error for ViewError {}

/// The start line of a viewed message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartLine<'a> {
    /// `METHOD uri SIP/2.0`.
    Request {
        /// The request method.
        method: Method,
        /// The request-URI, unparsed.
        uri: &'a str,
    },
    /// `SIP/2.0 code reason`.
    Response {
        /// The response status.
        status: StatusCode,
    },
}

/// A `From`/`To`/`Contact` value viewed in place: the URI slice plus the
/// `tag` parameter, if present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NameAddrView<'a> {
    /// The URI between `<` and `>` (or the addr-spec up to its parameters),
    /// scheme included.
    pub uri: &'a str,
    /// The `tag` header parameter.
    pub tag: Option<&'a str>,
}

impl<'a> NameAddrView<'a> {
    /// The user part of the URI, if any.
    pub fn user(&self) -> Option<&'a str> {
        let spec = strip_scheme(self.uri);
        spec.split_once('@').map(|(user, _)| user)
    }

    /// The host part of the URI (no port, no parameters).
    pub fn host(&self) -> &'a str {
        let spec = strip_scheme(self.uri);
        let hostport = spec.rsplit_once('@').map_or(spec, |(_, h)| h);
        let host = hostport.split(';').next().unwrap_or(hostport);
        match host.rsplit_once(':') {
            // Only strip a real port suffix; "host" alone stays whole.
            Some((h, p)) if p.chars().all(|c| c.is_ascii_digit()) && !p.is_empty() => h,
            _ => host,
        }
    }
}

fn strip_scheme(uri: &str) -> &str {
    uri.strip_prefix("sips:")
        .or_else(|| uri.strip_prefix("sip:"))
        .unwrap_or(uri)
}

/// The monitored fields of one SIP datagram, all borrowed from `text`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipView<'a> {
    /// Request or status line.
    pub start: StartLine<'a>,
    /// `Call-ID` value, or `""` when absent.
    pub call_id: &'a str,
    /// `From` header, if present.
    pub from: Option<NameAddrView<'a>>,
    /// `To` header, if present.
    pub to: Option<NameAddrView<'a>>,
    /// `Contact` header, if present.
    pub contact: Option<NameAddrView<'a>>,
    /// `branch` parameter of the topmost `Via`, if present.
    pub branch: Option<&'a str>,
    /// `CSeq` sequence number and method, if present.
    pub cseq: Option<(u32, Method)>,
    /// `Content-Type` value, if present.
    pub content_type: Option<&'a str>,
    /// `Expires` value, if present.
    pub expires: Option<u32>,
    /// The body, trimmed to `Content-Length` when one is declared.
    pub body: &'a str,
}

impl<'a> SipView<'a> {
    /// The request method, `None` for responses.
    pub fn method(&self) -> Option<Method> {
        match self.start {
            StartLine::Request { method, .. } => Some(method),
            StartLine::Response { .. } => None,
        }
    }

    /// The response status, `None` for requests.
    pub fn status(&self) -> Option<StatusCode> {
        match self.start {
            StartLine::Request { .. } => None,
            StartLine::Response { status } => Some(status),
        }
    }

    /// Whether the message is a request.
    pub fn is_request(&self) -> bool {
        matches!(self.start, StartLine::Request { .. })
    }
}

/// Parses the monitored fields of a SIP message without allocating.
///
/// # Errors
///
/// Returns [`ViewError`] for the same classes of damage the owned parser
/// rejects: a start line that is neither a valid request line nor a valid
/// status line, a header line without `:`, a known header whose typed
/// value fails to parse, or a `Content-Length` that exceeds the bytes
/// actually present (a truncated datagram).
pub fn parse_view(text: &str) -> Result<SipView<'_>, ViewError> {
    // Start line first, before the whole-message head/body scan — the
    // reject path on hostile floods must stay O(first line).
    let start_line = scan::start_line(text).ok_or(ViewError("empty message"))?;

    let start = if let Some(rest) = start_line.strip_prefix("SIP/2.0 ") {
        let code_text = rest.split(' ').next().unwrap_or("");
        let code: u16 = code_text
            .parse()
            .map_err(|_| ViewError("invalid status code"))?;
        let status = StatusCode::new(code).map_err(|_| ViewError("status code out of range"))?;
        StartLine::Response { status }
    } else {
        let mut parts = start_line.split_whitespace();
        let method_tok = parts.next().ok_or(ViewError("missing method"))?;
        let uri = parts.next().ok_or(ViewError("missing request-URI"))?;
        let version = parts.next().ok_or(ViewError("missing SIP version"))?;
        if version != "SIP/2.0" {
            return Err(ViewError("unsupported SIP version"));
        }
        let method =
            Method::from_token(method_tok.as_bytes()).ok_or(ViewError("unknown SIP method"))?;
        StartLine::Request { method, uri }
    };

    let (head, body) = scan::split_head_body(text);
    let mut lines = scan::lines(head);
    lines.next(); // the start line, already validated above

    let mut view = SipView {
        start,
        call_id: "",
        from: None,
        to: None,
        contact: None,
        branch: None,
        cseq: None,
        content_type: None,
        expires: None,
        body,
    };
    let mut call_id_seen = false;
    let mut content_length: Option<usize> = None;

    // Duplicate-header policy: every occurrence of a known header is still
    // *validated* (a malformed second From rejects the message, exactly as
    // the owned parser does), but the **first** occurrence wins. The owned
    // accessors are all first-match; if the view kept the last value
    // instead, a datagram carrying two Call-IDs would make the monitor
    // track a different call than the endpoint parsed — the classic
    // header-smuggling desynchronization an IDS must not have.
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) =
            scan::split_header_line(line).ok_or(ViewError("header line without ':'"))?;
        match scan::header_id(name) {
            HeaderId::Via => {
                // Only the topmost Via addresses the transaction.
                let branch = via_branch(value)?;
                if view.branch.is_none() {
                    view.branch = branch;
                }
            }
            HeaderId::From => {
                let from = name_addr(value)?;
                if view.from.is_none() {
                    view.from = Some(from);
                }
            }
            HeaderId::To => {
                let to = name_addr(value)?;
                if view.to.is_none() {
                    view.to = Some(to);
                }
            }
            HeaderId::Contact => {
                let contact = name_addr(value)?;
                if view.contact.is_none() {
                    view.contact = Some(contact);
                }
            }
            HeaderId::CallId => {
                if !call_id_seen {
                    view.call_id = value;
                    call_id_seen = true;
                }
            }
            HeaderId::CSeq => {
                let cseq = cseq(value)?;
                if view.cseq.is_none() {
                    view.cseq = Some(cseq);
                }
            }
            HeaderId::ContentType => {
                if view.content_type.is_none() {
                    view.content_type = Some(value);
                }
            }
            HeaderId::ContentLength => {
                let len = value
                    .parse()
                    .map_err(|_| ViewError("invalid Content-Length"))?;
                if content_length.is_none() {
                    content_length = Some(len);
                }
            }
            HeaderId::Expires => {
                let expires = value.parse().map_err(|_| ViewError("invalid Expires"))?;
                if view.expires.is_none() {
                    view.expires = Some(expires);
                }
            }
            HeaderId::MaxForwards => {
                let _: u32 = value
                    .parse()
                    .map_err(|_| ViewError("invalid Max-Forwards"))?;
            }
            HeaderId::Other => {}
        }
    }

    if let Some(len) = content_length {
        // A declared length beyond the available bytes is a truncated
        // datagram; flag it instead of analyzing a different message than
        // the endpoint saw (mirrors the owned parser's reject).
        if len > view.body.len() {
            return Err(ViewError("Content-Length exceeds available body"));
        }
        if !view.body.is_char_boundary(len) {
            return Err(ViewError("Content-Length splits a multi-byte character"));
        }
        view.body = &view.body[..len];
    }
    Ok(view)
}

fn via_branch(value: &str) -> Result<Option<&str>, ViewError> {
    let rest = value
        .strip_prefix("SIP/2.0/")
        .ok_or(ViewError("Via missing SIP/2.0/ prefix"))?;
    let (_, rest) = rest
        .split_once(char::is_whitespace)
        .ok_or(ViewError("Via missing sent-by"))?;
    Ok(param(rest, "branch"))
}

fn cseq(value: &str) -> Result<(u32, Method), ViewError> {
    let (seq, method_tok) = value
        .split_once(char::is_whitespace)
        .ok_or(ViewError("CSeq missing method"))?;
    let seq: u32 = seq
        .parse()
        .map_err(|_| ViewError("invalid CSeq sequence number"))?;
    let method =
        Method::from_token(method_tok.trim().as_bytes()).ok_or(ViewError("unknown CSeq method"))?;
    Ok((seq, method))
}

fn name_addr(value: &str) -> Result<NameAddrView<'_>, ViewError> {
    // Skip an optional quoted display name.
    let rest = if let Some(after_quote) = value.strip_prefix('"') {
        let end = after_quote
            .find('"')
            .ok_or(ViewError("unterminated display name"))?;
        after_quote[end + 1..].trim_start()
    } else {
        value
    };
    if let Some(after_angle) = rest.strip_prefix('<') {
        let end = after_angle.find('>').ok_or(ViewError("missing '>'"))?;
        let uri = &after_angle[..end];
        let tag = param(after_angle[end + 1..].trim_start(), "tag");
        Ok(NameAddrView { uri, tag })
    } else {
        // addr-spec form: a trailing `tag` parameter belongs to the header
        // (RFC 3261 §20.10), mirroring the owned parser's hoisting — and
        // its rejection of stray angle brackets.
        if rest.contains('<') || rest.contains('>') {
            return Err(ViewError("stray angle bracket in name-addr"));
        }
        let (uri, tag) = match rest.find(';') {
            Some(i) => (&rest[..i], param(&rest[i..], "tag")),
            None => (rest, None),
        };
        Ok(NameAddrView { uri, tag })
    }
}

/// Finds `;key=value` in a parameter tail (case-insensitive key).
fn param<'a>(tail: &'a str, key: &str) -> Option<&'a str> {
    for piece in tail.split(';') {
        if let Some((k, v)) = piece.split_once('=') {
            if k.trim().eq_ignore_ascii_case(key) {
                return Some(v.trim());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Request;
    use crate::uri::SipUri;

    fn invite() -> Request {
        Request::invite(
            &SipUri::new("alice", "a.example.com"),
            &SipUri::new("bob", "b.example.com"),
            "view-1",
        )
        .with_body("application/sdp", "v=0\r\n")
    }

    #[test]
    fn views_generated_invite() {
        let text = invite().to_string();
        let view = parse_view(&text).unwrap();
        assert_eq!(view.method(), Some(Method::Invite));
        assert!(view.is_request());
        assert_eq!(view.call_id, "view-1");
        let from = view.from.unwrap();
        assert_eq!(from.user(), Some("alice"));
        assert_eq!(from.host(), "a.example.com");
        assert!(from.tag.is_some());
        assert_eq!(view.to.unwrap().tag, None);
        assert!(view.branch.is_some());
        assert_eq!(view.cseq, Some((1, Method::Invite)));
        assert_eq!(view.content_type, Some("application/sdp"));
        assert_eq!(view.body, "v=0\r\n");
    }

    #[test]
    fn views_generated_response() {
        let ok = invite().response(StatusCode::OK).with_to_tag("tt");
        let text = ok.to_string();
        let view = parse_view(&text).unwrap();
        assert!(!view.is_request());
        assert_eq!(view.status(), Some(StatusCode::OK));
        assert_eq!(view.to.unwrap().tag, Some("tt"));
    }

    #[test]
    fn agrees_with_owned_parser_on_the_monitored_fields() {
        let msgs = [
            invite().to_string(),
            invite()
                .response(StatusCode::RINGING)
                .with_to_tag("x")
                .to_string(),
            Request::in_dialog(Method::Bye, &invite(), 2, Some("x")).to_string(),
        ];
        for text in &msgs {
            let owned = crate::parse::parse_message(text).unwrap();
            let view = parse_view(text).unwrap();
            assert_eq!(view.call_id, owned.call_id());
            assert_eq!(view.is_request(), owned.is_request());
            assert_eq!(view.method(), owned.method());
            assert_eq!(view.status(), owned.status());
            let headers = owned.headers();
            assert_eq!(
                view.from.and_then(|f| f.tag),
                headers.from_header().and_then(|f| f.tag())
            );
            assert_eq!(
                view.to.and_then(|t| t.tag),
                headers.to_header().and_then(|t| t.tag())
            );
            assert_eq!(view.branch, headers.top_via().and_then(|v| v.branch()));
            assert_eq!(view.cseq, headers.cseq().map(|c| (c.seq, c.method)));
            assert_eq!(view.body, owned.body());
        }
    }

    #[test]
    fn compact_headers_and_lf_endings() {
        let text = "BYE sip:bob@b.example.com SIP/2.0\n\
                    v: SIP/2.0/UDP a.example.com:5060;branch=z9hG4bKx\n\
                    f: <sip:alice@a.example.com>;tag=1\n\
                    i: compact-9\n\
                    CSeq: 2 BYE\n\n";
        let view = parse_view(text).unwrap();
        assert_eq!(view.call_id, "compact-9");
        assert_eq!(view.branch, Some("z9hG4bKx"));
        assert_eq!(view.from.unwrap().tag, Some("1"));
        assert_eq!(view.cseq, Some((2, Method::Bye)));
    }

    #[test]
    fn addr_spec_form_hoists_tag() {
        let view =
            parse_view("BYE sip:b@h SIP/2.0\r\nTo: sip:bob@b.example.com;tag=tt\r\n\r\n").unwrap();
        let to = view.to.unwrap();
        assert_eq!(to.tag, Some("tt"));
        assert_eq!(to.user(), Some("bob"));
        assert_eq!(to.host(), "b.example.com");
    }

    #[test]
    fn host_strips_port_and_params() {
        let na = NameAddrView {
            uri: "sip:bob@b.example.com:5062;transport=udp",
            tag: None,
        };
        assert_eq!(na.host(), "b.example.com");
        let bare = NameAddrView {
            uri: "sip:10.0.0.20",
            tag: None,
        };
        assert_eq!(bare.user(), None);
        assert_eq!(bare.host(), "10.0.0.20");
    }

    #[test]
    fn content_length_trims_body() {
        let view = parse_view("INFO sip:b@h SIP/2.0\r\nContent-Length: 3\r\n\r\nabcdef").unwrap();
        assert_eq!(view.body, "abc");
    }

    #[test]
    fn content_length_beyond_body_is_rejected() {
        let err =
            parse_view("INFO sip:b@h SIP/2.0\r\nContent-Length: 9999\r\n\r\nshort").unwrap_err();
        assert_eq!(err.reason(), "Content-Length exceeds available body");
        assert!(parse_view("INFO sip:b@h SIP/2.0\r\nContent-Length: 5\r\n\r\nshort").is_ok());
    }

    /// Found by the vids-harness fuzzer: a Content-Length that lands inside
    /// a multi-byte UTF-8 character must reject, not panic on the slice.
    #[test]
    fn content_length_inside_a_multibyte_character_is_rejected() {
        let err = parse_view("INFO sip:b@h SIP/2.0\r\nContent-Length: 1\r\n\r\né").unwrap_err();
        assert_eq!(err.reason(), "Content-Length splits a multi-byte character");
        assert!(parse_view("INFO sip:b@h SIP/2.0\r\nContent-Length: 2\r\n\r\né").is_ok());
    }

    #[test]
    fn rejects_what_the_owned_parser_rejects() {
        for bad in [
            "",
            "GET / HTTP/1.1\r\n\r\n",
            "INVITE sip:b@h SIP/3.0\r\n\r\n",
            "SIP/2.0 999 Wat\r\n\r\n",
            "SIP/2.0 abc Huh\r\n\r\n",
            "INVITE\r\n\r\n",
            "INVITE sip:b@h SIP/2.0\r\nCSeq: banana\r\n\r\n",
            "INVITE sip:b@h SIP/2.0\r\nNoColonHere\r\n\r\n",
        ] {
            assert!(parse_view(bad).is_err(), "{bad:?} should be rejected");
            assert!(crate::parse::parse_message(bad).is_err());
        }
    }
}
