//! RFC 3261 §17 transaction state machines with logical timers.
//!
//! The simulated user agents and proxies drive these machines with discrete
//! simulation time (milliseconds). Each machine consumes inputs (a message
//! from the wire or from the transaction user) and emits [`Action`]s telling
//! the host what to transmit or deliver. Timers are polled explicitly with
//! [`ClientTransaction::poll`] / [`ServerTransaction::poll`], which fits a
//! discrete-event simulator: the host schedules a wake-up at
//! `next_deadline()` and calls `poll` when it fires.
//!
//! Timer values follow RFC 3261 Table 4 with `T1 = 500 ms`, `T2 = 4 s`,
//! `T4 = 5 s`, scaled by the host if desired.

use std::fmt;

use crate::message::{Request, Response};
use crate::method::Method;

/// Default RTT estimate T1 in milliseconds (RFC 3261 §17.1.1.1).
pub const T1_MS: u64 = 500;
/// Maximum retransmit interval T2 in milliseconds.
pub const T2_MS: u64 = 4_000;
/// Maximum duration a message remains in the network, T4, in milliseconds.
pub const T4_MS: u64 = 5_000;

/// Unique key for matching messages to transactions: the topmost Via branch
/// plus the CSeq method (RFC 3261 §17.2.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransactionKey {
    /// The Via branch parameter.
    pub branch: String,
    /// The CSeq method (CANCEL forms its own transaction).
    pub method: Method,
}

impl TransactionKey {
    /// Builds the key for a request.
    pub fn for_request(req: &Request) -> Option<TransactionKey> {
        let branch = req.headers.top_via()?.branch()?.to_owned();
        // ACK for a non-2xx final response matches the INVITE transaction.
        let method = if req.method == Method::Ack {
            Method::Invite
        } else {
            req.method
        };
        Some(TransactionKey { branch, method })
    }

    /// Builds the key for a response.
    pub fn for_response(resp: &Response) -> Option<TransactionKey> {
        let branch = resp.headers.top_via()?.branch()?.to_owned();
        let method = resp.headers.cseq()?.method;
        Some(TransactionKey { branch, method })
    }
}

impl fmt::Display for TransactionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.branch, self.method)
    }
}

/// What the host must do in reaction to a transaction event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Transmit (or retransmit) this request on the wire.
    SendRequest(Request),
    /// Transmit (or retransmit) this response on the wire.
    SendResponse(Response),
    /// Deliver this response to the transaction user (the UA core).
    DeliverResponse(Response),
    /// Deliver this request to the transaction user (server side).
    DeliverRequest(Request),
    /// The transaction failed: no response before Timer B/F fired.
    Timeout,
    /// The transaction reached its terminal state and can be dropped.
    Terminated,
}

/// Client transaction states (both INVITE and non-INVITE flavors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientState {
    /// INVITE sent, no response yet (INVITE: "Calling"; non-INVITE: "Trying").
    Calling,
    /// A provisional response arrived.
    Proceeding,
    /// A final response arrived; absorbing retransmissions.
    Completed,
    /// Done; the machine can be discarded.
    Terminated,
}

/// A client transaction (RFC 3261 §17.1): retransmits the request over UDP
/// until a response arrives, enforces Timer B/F timeouts, and filters
/// response retransmissions.
#[derive(Debug, Clone)]
pub struct ClientTransaction {
    request: Request,
    state: ClientState,
    is_invite: bool,
    /// Next retransmission deadline (Timer A / E).
    retransmit_at: Option<u64>,
    /// Current retransmission interval.
    interval_ms: u64,
    /// Hard timeout (Timer B / F).
    timeout_at: u64,
    /// Linger deadline in Completed (Timer D / K).
    linger_at: Option<u64>,
    final_delivered: bool,
}

impl ClientTransaction {
    /// Starts a client transaction at `now` (ms). Emits the initial
    /// `SendRequest` action.
    pub fn start(request: Request, now: u64) -> (Self, Vec<Action>) {
        let is_invite = request.method.is_invite();
        let tx = ClientTransaction {
            request: request.clone(),
            state: ClientState::Calling,
            is_invite,
            retransmit_at: Some(now + T1_MS),
            interval_ms: T1_MS,
            timeout_at: now + 64 * T1_MS,
            linger_at: None,
            final_delivered: false,
        };
        (tx, vec![Action::SendRequest(request)])
    }

    /// The request this transaction is carrying.
    pub fn request(&self) -> &Request {
        &self.request
    }

    /// Current state.
    pub fn state(&self) -> ClientState {
        self.state
    }

    /// Whether the transaction has terminated and can be dropped.
    pub fn is_terminated(&self) -> bool {
        self.state == ClientState::Terminated
    }

    /// The earliest time at which [`ClientTransaction::poll`] needs calling.
    pub fn next_deadline(&self) -> Option<u64> {
        match self.state {
            ClientState::Calling => Some(
                self.retransmit_at
                    .map_or(self.timeout_at, |r| r.min(self.timeout_at)),
            ),
            ClientState::Proceeding => Some(self.timeout_at),
            ClientState::Completed => self.linger_at,
            ClientState::Terminated => None,
        }
    }

    /// Feeds a response matched to this transaction.
    pub fn on_response(&mut self, resp: Response, now: u64) -> Vec<Action> {
        match self.state {
            ClientState::Calling | ClientState::Proceeding => {
                if resp.status.is_provisional() {
                    self.state = ClientState::Proceeding;
                    // Provisional response stops INVITE retransmissions.
                    if self.is_invite {
                        self.retransmit_at = None;
                    }
                    vec![Action::DeliverResponse(resp)]
                } else {
                    let mut actions = vec![Action::DeliverResponse(resp.clone())];
                    self.final_delivered = true;
                    if self.is_invite && resp.status.is_success() {
                        // 2xx to INVITE: the TU sends the ACK end-to-end;
                        // the transaction terminates immediately (§17.1.1.2).
                        self.state = ClientState::Terminated;
                        actions.push(Action::Terminated);
                    } else {
                        self.state = ClientState::Completed;
                        self.retransmit_at = None;
                        let linger = if self.is_invite { 32_000 } else { T4_MS };
                        self.linger_at = Some(now + linger);
                        if self.is_invite {
                            // Non-2xx final to INVITE: transaction sends ACK.
                            let ack = Request::in_dialog(
                                Method::Ack,
                                &self.request,
                                cseq_of(&self.request),
                                to_tag_of(&resp),
                            );
                            actions.push(Action::SendRequest(ack));
                        }
                    }
                    actions
                }
            }
            ClientState::Completed => {
                // Retransmitted final response: re-ACK for INVITE, swallow otherwise.
                if self.is_invite && resp.status.is_final() && !resp.status.is_success() {
                    let ack = Request::in_dialog(
                        Method::Ack,
                        &self.request,
                        cseq_of(&self.request),
                        to_tag_of(&resp),
                    );
                    vec![Action::SendRequest(ack)]
                } else {
                    Vec::new()
                }
            }
            ClientState::Terminated => Vec::new(),
        }
    }

    /// Advances timers to `now`.
    pub fn poll(&mut self, now: u64) -> Vec<Action> {
        let mut actions = Vec::new();
        match self.state {
            ClientState::Calling => {
                if now >= self.timeout_at {
                    self.state = ClientState::Terminated;
                    actions.push(Action::Timeout);
                    actions.push(Action::Terminated);
                } else if let Some(due) = self.retransmit_at {
                    if now >= due {
                        // Timer A doubles every firing; Timer E doubles
                        // capped at T2.
                        self.interval_ms = if self.is_invite {
                            self.interval_ms * 2
                        } else {
                            (self.interval_ms * 2).min(T2_MS)
                        };
                        self.retransmit_at = Some(now + self.interval_ms);
                        actions.push(Action::SendRequest(self.request.clone()));
                    }
                }
            }
            ClientState::Proceeding => {
                if now >= self.timeout_at {
                    self.state = ClientState::Terminated;
                    actions.push(Action::Timeout);
                    actions.push(Action::Terminated);
                }
            }
            ClientState::Completed => {
                if let Some(due) = self.linger_at {
                    if now >= due {
                        self.state = ClientState::Terminated;
                        actions.push(Action::Terminated);
                    }
                }
            }
            ClientState::Terminated => {}
        }
        actions
    }
}

/// Server transaction states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerState {
    /// Request received, no final response sent (non-INVITE: "Trying").
    Proceeding,
    /// Final response sent; retransmitting until ACK / Timer J.
    Completed,
    /// (INVITE only) ACK received; absorbing ACK retransmissions.
    Confirmed,
    /// Done; the machine can be discarded.
    Terminated,
}

/// A server transaction (RFC 3261 §17.2): delivers the request to the TU,
/// retransmits the final response until acknowledged, and absorbs request
/// retransmissions.
#[derive(Debug, Clone)]
pub struct ServerTransaction {
    state: ServerState,
    is_invite: bool,
    last_response: Option<Response>,
    /// Timer G: final-response retransmission (INVITE only).
    retransmit_at: Option<u64>,
    interval_ms: u64,
    /// Timer H (wait for ACK) or Timer J (absorb retransmissions).
    expire_at: Option<u64>,
}

impl ServerTransaction {
    /// Creates a server transaction for a freshly received request, emitting
    /// `DeliverRequest` so the TU can act on it.
    pub fn start(request: Request) -> (Self, Vec<Action>) {
        let is_invite = request.method.is_invite();
        let tx = ServerTransaction {
            state: ServerState::Proceeding,
            is_invite,
            last_response: None,
            retransmit_at: None,
            interval_ms: T1_MS,
            expire_at: None,
        };
        (tx, vec![Action::DeliverRequest(request)])
    }

    /// Current state.
    pub fn state(&self) -> ServerState {
        self.state
    }

    /// Whether the transaction has terminated and can be dropped.
    pub fn is_terminated(&self) -> bool {
        self.state == ServerState::Terminated
    }

    /// The earliest time at which [`ServerTransaction::poll`] needs calling.
    pub fn next_deadline(&self) -> Option<u64> {
        match (self.retransmit_at, self.expire_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// The TU sends a response through the transaction.
    pub fn send_response(&mut self, resp: Response, now: u64) -> Vec<Action> {
        match self.state {
            ServerState::Proceeding => {
                self.last_response = Some(resp.clone());
                if resp.status.is_provisional() {
                    vec![Action::SendResponse(resp)]
                } else if self.is_invite && resp.status.is_success() {
                    // 2xx to INVITE: TU owns retransmissions; terminate (§13.3.1.4).
                    self.state = ServerState::Terminated;
                    vec![Action::SendResponse(resp), Action::Terminated]
                } else if self.is_invite {
                    self.state = ServerState::Completed;
                    self.retransmit_at = Some(now + T1_MS);
                    self.interval_ms = T1_MS;
                    self.expire_at = Some(now + 64 * T1_MS);
                    vec![Action::SendResponse(resp)]
                } else {
                    self.state = ServerState::Completed;
                    self.expire_at = Some(now + 64 * T1_MS);
                    vec![Action::SendResponse(resp)]
                }
            }
            ServerState::Completed | ServerState::Confirmed | ServerState::Terminated => Vec::new(),
        }
    }

    /// A retransmission or ACK matched to this transaction arrived.
    pub fn on_request(&mut self, req: &Request, now: u64) -> Vec<Action> {
        match self.state {
            ServerState::Proceeding => {
                // Retransmitted request before any response: re-send the last
                // provisional if we have one.
                match (&req.method, &self.last_response) {
                    (m, Some(resp)) if *m != Method::Ack => {
                        vec![Action::SendResponse(resp.clone())]
                    }
                    _ => Vec::new(),
                }
            }
            ServerState::Completed => {
                if req.method == Method::Ack && self.is_invite {
                    self.state = ServerState::Confirmed;
                    self.retransmit_at = None;
                    self.expire_at = Some(now + T4_MS);
                    Vec::new()
                } else if let Some(resp) = &self.last_response {
                    vec![Action::SendResponse(resp.clone())]
                } else {
                    Vec::new()
                }
            }
            ServerState::Confirmed | ServerState::Terminated => Vec::new(),
        }
    }

    /// Advances timers to `now`.
    pub fn poll(&mut self, now: u64) -> Vec<Action> {
        let mut actions = Vec::new();
        match self.state {
            ServerState::Completed => {
                if let Some(due) = self.expire_at {
                    if now >= due {
                        self.state = ServerState::Terminated;
                        if self.is_invite {
                            // Timer H fired: the ACK never came.
                            actions.push(Action::Timeout);
                        }
                        actions.push(Action::Terminated);
                        return actions;
                    }
                }
                if let Some(due) = self.retransmit_at {
                    if now >= due {
                        self.interval_ms = (self.interval_ms * 2).min(T2_MS);
                        self.retransmit_at = Some(now + self.interval_ms);
                        if let Some(resp) = &self.last_response {
                            actions.push(Action::SendResponse(resp.clone()));
                        }
                    }
                }
            }
            ServerState::Confirmed => {
                if let Some(due) = self.expire_at {
                    if now >= due {
                        self.state = ServerState::Terminated;
                        actions.push(Action::Terminated);
                    }
                }
            }
            ServerState::Proceeding | ServerState::Terminated => {}
        }
        actions
    }
}

fn cseq_of(req: &Request) -> u32 {
    req.headers.cseq().map(|c| c.seq).unwrap_or(1)
}

fn to_tag_of(resp: &Response) -> Option<&str> {
    resp.headers.to_header().and_then(|t| t.tag())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::StatusCode;
    use crate::uri::SipUri;

    fn invite() -> Request {
        Request::invite(
            &SipUri::new("alice", "a.example.com"),
            &SipUri::new("bob", "b.example.com"),
            "tx-1",
        )
    }

    #[test]
    fn transaction_key_matches_request_and_response() {
        let inv = invite();
        let resp = inv.response(StatusCode::RINGING);
        assert_eq!(
            TransactionKey::for_request(&inv),
            TransactionKey::for_response(&resp)
        );
    }

    #[test]
    fn ack_maps_to_invite_transaction() {
        let inv = invite();
        let mut ack = Request::in_dialog(Method::Ack, &inv, 1, Some("bt"));
        // Give the ACK the same branch as the INVITE, as for non-2xx ACKs.
        ack.headers = inv.headers;
        let key = TransactionKey::for_request(&ack).unwrap();
        assert_eq!(key.method, Method::Invite);
    }

    #[test]
    fn client_invite_retransmits_with_backoff() {
        let (mut tx, actions) = ClientTransaction::start(invite(), 0);
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], Action::SendRequest(_)));
        // Timer A at 500, then 1000 later, then 2000 later...
        assert_eq!(tx.next_deadline(), Some(500));
        let a = tx.poll(500);
        assert!(matches!(a[0], Action::SendRequest(_)));
        assert_eq!(tx.next_deadline(), Some(1500));
        let a = tx.poll(1500);
        assert!(matches!(a[0], Action::SendRequest(_)));
        assert_eq!(tx.next_deadline(), Some(3500));
    }

    #[test]
    fn client_invite_times_out_after_64_t1() {
        let (mut tx, _) = ClientTransaction::start(invite(), 0);
        let actions = tx.poll(64 * T1_MS);
        assert!(actions.contains(&Action::Timeout));
        assert!(tx.is_terminated());
    }

    #[test]
    fn provisional_stops_invite_retransmissions() {
        let (mut tx, _) = ClientTransaction::start(invite(), 0);
        let resp = tx.request().response(StatusCode::RINGING);
        let actions = tx.on_response(resp, 100);
        assert!(matches!(actions[0], Action::DeliverResponse(_)));
        assert_eq!(tx.state(), ClientState::Proceeding);
        // No retransmission pending, only Timer B.
        assert_eq!(tx.next_deadline(), Some(64 * T1_MS));
        assert!(tx.poll(500).is_empty());
    }

    #[test]
    fn success_final_terminates_invite_client() {
        let (mut tx, _) = ClientTransaction::start(invite(), 0);
        let ok = tx.request().response(StatusCode::OK).with_to_tag("bt");
        let actions = tx.on_response(ok, 200);
        assert!(matches!(actions[0], Action::DeliverResponse(_)));
        assert!(actions.contains(&Action::Terminated));
        assert!(tx.is_terminated());
    }

    #[test]
    fn failure_final_generates_ack_and_lingers() {
        let (mut tx, _) = ClientTransaction::start(invite(), 0);
        let busy = tx
            .request()
            .response(StatusCode::BUSY_HERE)
            .with_to_tag("bt");
        let actions = tx.on_response(busy.clone(), 200);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SendRequest(r) if r.method == Method::Ack)));
        assert_eq!(tx.state(), ClientState::Completed);
        // Retransmitted 486 re-triggers an ACK but no re-delivery.
        let again = tx.on_response(busy, 300);
        assert_eq!(again.len(), 1);
        assert!(matches!(&again[0], Action::SendRequest(r) if r.method == Method::Ack));
        // Timer D expiry terminates.
        let fin = tx.poll(200 + 32_000);
        assert!(fin.contains(&Action::Terminated));
    }

    #[test]
    fn non_invite_client_caps_retransmit_interval_at_t2() {
        let bye = Request::in_dialog(Method::Bye, &invite(), 2, Some("bt"));
        let (mut tx, _) = ClientTransaction::start(bye, 0);
        let mut now = 0;
        let mut intervals = Vec::new();
        for _ in 0..6 {
            let due = tx.next_deadline().unwrap();
            if due >= 64 * T1_MS {
                break;
            }
            let actions = tx.poll(due);
            if actions.iter().any(|a| matches!(a, Action::SendRequest(_))) {
                intervals.push(due - now);
                now = due;
            }
        }
        assert!(intervals.windows(2).all(|w| w[1] >= w[0]));
        assert!(intervals.iter().all(|&i| i <= T2_MS));
    }

    #[test]
    fn non_invite_client_completes_then_terminates_after_timer_k() {
        let bye = Request::in_dialog(Method::Bye, &invite(), 2, Some("bt"));
        let (mut tx, _) = ClientTransaction::start(bye, 0);
        let ok = tx.request().response(StatusCode::OK);
        tx.on_response(ok, 100);
        assert_eq!(tx.state(), ClientState::Completed);
        let fin = tx.poll(100 + T4_MS);
        assert!(fin.contains(&Action::Terminated));
    }

    #[test]
    fn server_invite_lifecycle_with_ack() {
        let inv = invite();
        let (mut tx, actions) = ServerTransaction::start(inv.clone());
        assert!(matches!(actions[0], Action::DeliverRequest(_)));

        let ringing = inv.response(StatusCode::RINGING);
        let a = tx.send_response(ringing, 10);
        assert!(matches!(a[0], Action::SendResponse(_)));
        assert_eq!(tx.state(), ServerState::Proceeding);

        let busy = inv.response(StatusCode::BUSY_HERE).with_to_tag("bt");
        let a = tx.send_response(busy, 20);
        assert!(matches!(a[0], Action::SendResponse(_)));
        assert_eq!(tx.state(), ServerState::Completed);

        // Timer G retransmission.
        let a = tx.poll(20 + T1_MS);
        assert!(matches!(a[0], Action::SendResponse(_)));

        // ACK confirms.
        let ack = Request::in_dialog(Method::Ack, &inv, 1, Some("bt"));
        tx.on_request(&ack, 600);
        assert_eq!(tx.state(), ServerState::Confirmed);

        // Timer I expiry terminates.
        let fin = tx.poll(600 + T4_MS);
        assert!(fin.contains(&Action::Terminated));
    }

    #[test]
    fn server_invite_2xx_terminates_immediately() {
        let inv = invite();
        let (mut tx, _) = ServerTransaction::start(inv.clone());
        let ok = inv.response(StatusCode::OK).with_to_tag("bt");
        let a = tx.send_response(ok, 10);
        assert!(a.contains(&Action::Terminated));
        assert!(tx.is_terminated());
    }

    #[test]
    fn server_invite_times_out_waiting_for_ack() {
        let inv = invite();
        let (mut tx, _) = ServerTransaction::start(inv.clone());
        let busy = inv.response(StatusCode::BUSY_HERE).with_to_tag("bt");
        tx.send_response(busy, 0);
        let fin = tx.poll(64 * T1_MS);
        assert!(fin.contains(&Action::Timeout));
        assert!(tx.is_terminated());
    }

    #[test]
    fn server_retransmits_response_on_repeated_request() {
        let inv = invite();
        let (mut tx, _) = ServerTransaction::start(inv.clone());
        let ringing = inv.response(StatusCode::RINGING);
        tx.send_response(ringing, 10);
        // Retransmitted INVITE in Proceeding re-sends the 180.
        let a = tx.on_request(&inv, 50);
        assert!(matches!(a[0], Action::SendResponse(_)));
    }

    #[test]
    fn server_non_invite_absorbs_retransmissions_then_expires() {
        let bye = Request::in_dialog(Method::Bye, &invite(), 2, Some("bt"));
        let (mut tx, _) = ServerTransaction::start(bye.clone());
        let ok = bye.response(StatusCode::OK);
        tx.send_response(ok, 0);
        assert_eq!(tx.state(), ServerState::Completed);
        let a = tx.on_request(&bye, 100);
        assert!(matches!(a[0], Action::SendResponse(_)));
        let fin = tx.poll(64 * T1_MS);
        assert!(fin.contains(&Action::Terminated));
        assert!(!fin.contains(&Action::Timeout));
    }
}
