//! SIP digest authentication (RFC 3261 §22, RFC 2617 no-qop form).
//!
//! The paper's threat analysis (§3.1) observes that most SIP attacks hinge
//! on "an assumption of lack of proper authentication" — while "many
//! attacks are still possible to be launched by an authenticated but
//! misbehaving UA". This module provides the challenge/response mechanics
//! so the testbed can run both regimes: with authentication off, spoofed
//! requests land; with it on, only the billing-fraud class (an
//! authenticated UA misbehaving) survives — which the cross-protocol
//! machines still catch.

use std::fmt;

use crate::md5::md5_hex;
use crate::method::Method;

/// A `WWW-Authenticate: Digest …` challenge issued by a UAS or registrar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestChallenge {
    /// Protection realm (e.g. the SIP domain).
    pub realm: String,
    /// Server-chosen nonce.
    pub nonce: String,
}

impl DigestChallenge {
    /// Creates a challenge.
    pub fn new(realm: impl Into<String>, nonce: impl Into<String>) -> Self {
        DigestChallenge {
            realm: realm.into(),
            nonce: nonce.into(),
        }
    }

    /// Parses the header value (`Digest realm="…", nonce="…"`).
    pub fn parse(value: &str) -> Option<DigestChallenge> {
        let params = digest_params(value)?;
        Some(DigestChallenge {
            realm: find(&params, "realm")?,
            nonce: find(&params, "nonce")?,
        })
    }
}

impl fmt::Display for DigestChallenge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Digest realm=\"{}\", nonce=\"{}\", algorithm=MD5",
            self.realm, self.nonce
        )
    }
}

/// An `Authorization: Digest …` credential answering a challenge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestCredentials {
    /// Authenticating user.
    pub username: String,
    /// Realm echoed from the challenge.
    pub realm: String,
    /// Nonce echoed from the challenge.
    pub nonce: String,
    /// The request-URI the response was computed over.
    pub uri: String,
    /// The 32-hex-digit response.
    pub response: String,
}

impl DigestCredentials {
    /// Computes credentials for a challenge.
    pub fn answer(
        challenge: &DigestChallenge,
        username: &str,
        password: &str,
        method: Method,
        uri: &str,
    ) -> DigestCredentials {
        let response = digest_response(
            username,
            &challenge.realm,
            password,
            method,
            uri,
            &challenge.nonce,
        );
        DigestCredentials {
            username: username.to_owned(),
            realm: challenge.realm.clone(),
            nonce: challenge.nonce.clone(),
            uri: uri.to_owned(),
            response,
        }
    }

    /// Parses the header value.
    pub fn parse(value: &str) -> Option<DigestCredentials> {
        let params = digest_params(value)?;
        Some(DigestCredentials {
            username: find(&params, "username")?,
            realm: find(&params, "realm")?,
            nonce: find(&params, "nonce")?,
            uri: find(&params, "uri")?,
            response: find(&params, "response")?,
        })
    }

    /// Verifies the response against the expected password and method.
    /// The caller must separately check the nonce is one it issued.
    pub fn verify(&self, password: &str, method: Method) -> bool {
        let expected = digest_response(
            &self.username,
            &self.realm,
            password,
            method,
            &self.uri,
            &self.nonce,
        );
        expected == self.response
    }
}

impl fmt::Display for DigestCredentials {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Digest username=\"{}\", realm=\"{}\", nonce=\"{}\", uri=\"{}\", response=\"{}\"",
            self.username, self.realm, self.nonce, self.uri, self.response
        )
    }
}

/// The RFC 2617 no-qop digest: `MD5(HA1:nonce:HA2)` with
/// `HA1 = MD5(user:realm:password)` and `HA2 = MD5(method:uri)`.
pub fn digest_response(
    username: &str,
    realm: &str,
    password: &str,
    method: Method,
    uri: &str,
    nonce: &str,
) -> String {
    let ha1 = md5_hex(format!("{username}:{realm}:{password}").as_bytes());
    let ha2 = md5_hex(format!("{method}:{uri}").as_bytes());
    md5_hex(format!("{ha1}:{nonce}:{ha2}").as_bytes())
}

/// Splits `Digest k1="v1", k2=v2, …` into key/value pairs.
fn digest_params(value: &str) -> Option<Vec<(String, String)>> {
    let rest = value.trim().strip_prefix("Digest")?.trim_start();
    let mut params = Vec::new();
    for piece in split_quoted_commas(rest) {
        let (k, v) = piece.split_once('=')?;
        let v = v.trim().trim_matches('"');
        params.push((k.trim().to_ascii_lowercase(), v.to_owned()));
    }
    Some(params)
}

/// Comma split that respects double quotes.
fn split_quoted_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let tail = s[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

fn find(params: &[(String, String)], key: &str) -> Option<String> {
    params
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn challenge_round_trips() {
        let ch = DigestChallenge::new("b.example.com", "abc123");
        let parsed = DigestChallenge::parse(&ch.to_string()).unwrap();
        assert_eq!(parsed, ch);
    }

    #[test]
    fn credentials_round_trip_and_verify() {
        let ch = DigestChallenge::new("b.example.com", "nonce-77");
        let creds =
            DigestCredentials::answer(&ch, "ua3", "s3cret", Method::Bye, "sip:ua0@b.example.com");
        let parsed = DigestCredentials::parse(&creds.to_string()).unwrap();
        assert_eq!(parsed, creds);
        assert!(parsed.verify("s3cret", Method::Bye));
    }

    #[test]
    fn wrong_password_fails_verification() {
        let ch = DigestChallenge::new("r", "n");
        let creds = DigestCredentials::answer(&ch, "u", "right", Method::Bye, "sip:x@y");
        assert!(!creds.verify("wrong", Method::Bye));
    }

    #[test]
    fn wrong_method_fails_verification() {
        // Credentials computed for BYE must not authorize an INVITE.
        let ch = DigestChallenge::new("r", "n");
        let creds = DigestCredentials::answer(&ch, "u", "pw", Method::Bye, "sip:x@y");
        assert!(!creds.verify("pw", Method::Invite));
    }

    #[test]
    fn replayed_nonce_changes_response() {
        let c1 = DigestCredentials::answer(
            &DigestChallenge::new("r", "nonce-1"),
            "u",
            "pw",
            Method::Bye,
            "sip:x@y",
        );
        let c2 = DigestCredentials::answer(
            &DigestChallenge::new("r", "nonce-2"),
            "u",
            "pw",
            Method::Bye,
            "sip:x@y",
        );
        assert_ne!(c1.response, c2.response);
    }

    #[test]
    fn parse_tolerates_unquoted_and_extra_params() {
        let value = "Digest username=\"u\", realm=\"r\", nonce=n1, uri=\"sip:x\", \
                     response=\"00000000000000000000000000000000\", algorithm=MD5, opaque=\"z\"";
        let creds = DigestCredentials::parse(value).unwrap();
        assert_eq!(creds.nonce, "n1");
        assert_eq!(creds.username, "u");
    }

    #[test]
    fn parse_rejects_non_digest() {
        assert!(DigestChallenge::parse("Basic realm=\"r\"").is_none());
        assert!(DigestCredentials::parse("garbage").is_none());
        assert!(DigestChallenge::parse("Digest realm=\"only\"").is_none());
    }

    #[test]
    fn quoted_commas_do_not_split() {
        let value = "Digest realm=\"a, b\", nonce=\"n\"";
        let ch = DigestChallenge::parse(value).unwrap();
        assert_eq!(ch.realm, "a, b");
    }
}
