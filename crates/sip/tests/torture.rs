//! Parser torture tests, in the spirit of RFC 4475 ("SIP Torture Test
//! Messages"): the monitor must digest hostile, odd, and boundary-case
//! messages without panicking, accepting what is well-formed and rejecting
//! what is not — a wrong answer either way skews the IDS.

use vids_sip::parse::parse_message;
use vids_sip::{Message, Method, StatusCode};

fn parses(text: &str) -> Message {
    parse_message(text).unwrap_or_else(|e| panic!("must parse: {e}\n---\n{text}"))
}

fn rejects(text: &str) {
    assert!(
        parse_message(text).is_err(),
        "must be rejected:\n---\n{text}"
    );
}

#[test]
fn shortest_legal_request() {
    let msg = parses("OPTIONS sip:h SIP/2.0\r\n\r\n");
    assert_eq!(msg.method(), Some(Method::Options));
}

#[test]
fn exotic_but_legal_spacing_in_headers() {
    let msg = parses(
        "INVITE sip:b@h SIP/2.0\r\n\
         Call-ID:    lots-of-leading-space\r\n\
         CSeq:\t1 INVITE\r\n\r\n",
    );
    assert_eq!(msg.call_id(), "lots-of-leading-space");
    assert_eq!(msg.headers().cseq().unwrap().seq, 1);
}

#[test]
fn unicode_in_display_names_survives() {
    let msg = parses(
        "INVITE sip:b@h SIP/2.0\r\n\
         From: \"Jörg Müller ☎\" <sip:j@h>;tag=1\r\n\r\n",
    );
    assert_eq!(
        msg.headers().from_header().unwrap().display_name(),
        Some("Jörg Müller ☎")
    );
}

#[test]
fn enormous_header_values_do_not_choke() {
    let big = "x".repeat(64 * 1024);
    let text = format!("INVITE sip:b@h SIP/2.0\r\nCall-ID: {big}\r\n\r\n");
    let msg = parses(&text);
    assert_eq!(msg.call_id().len(), 64 * 1024);
}

#[test]
fn many_via_headers_preserved_in_order() {
    let mut text = String::from("BYE sip:b@h SIP/2.0\r\n");
    for i in 0..50 {
        text.push_str(&format!("Via: SIP/2.0/UDP h{i}:5060;branch=z9hG4bK{i}\r\n"));
    }
    text.push_str("\r\n");
    let msg = parses(&text);
    assert_eq!(msg.headers().vias().count(), 50);
    assert_eq!(msg.headers().top_via().unwrap().host(), "h0");
}

#[test]
fn status_code_boundaries() {
    assert_eq!(
        parses("SIP/2.0 100 Trying\r\n\r\n").status(),
        Some(StatusCode::TRYING)
    );
    assert!(parses("SIP/2.0 699 Made Up\r\n\r\n").status().is_some());
    rejects("SIP/2.0 99 Too Low\r\n\r\n");
    rejects("SIP/2.0 700 Too High\r\n\r\n");
    rejects("SIP/2.0 2000 Way Off\r\n\r\n");
}

#[test]
fn content_length_edge_cases() {
    // Exact length.
    let msg = parses("INFO sip:b@h SIP/2.0\r\nContent-Length: 4\r\n\r\nabcd");
    assert_eq!(msg.body(), "abcd");
    // Zero length with trailing junk: body trimmed to zero.
    let msg = parses("INFO sip:b@h SIP/2.0\r\nContent-Length: 0\r\n\r\ntrailing");
    assert_eq!(msg.body(), "");
    // Declared longer than available: the datagram was truncated in
    // flight — reject rather than analyze a body the message doesn't have.
    rejects("INFO sip:b@h SIP/2.0\r\nContent-Length: 9999\r\n\r\nshort");
    rejects("INFO sip:b@h SIP/2.0\r\nContent-Length: 1\r\n\r\n");
    // Negative / garbage lengths are rejected.
    rejects("INFO sip:b@h SIP/2.0\r\nContent-Length: -1\r\n\r\n");
    rejects("INFO sip:b@h SIP/2.0\r\nContent-Length: ten\r\n\r\n");
}

#[test]
fn method_case_matters() {
    rejects("invite sip:b@h SIP/2.0\r\n\r\n");
    rejects("Invite sip:b@h SIP/2.0\r\n\r\n");
    parses("INVITE sip:b@h SIP/2.0\r\n\r\n");
}

#[test]
fn wrong_versions_rejected() {
    rejects("INVITE sip:b@h SIP/1.0\r\n\r\n");
    rejects("INVITE sip:b@h SIP/3.0\r\n\r\n");
    rejects("INVITE sip:b@h HTTP/1.1\r\n\r\n");
}

#[test]
fn request_uri_variants() {
    parses("INVITE sip:user@host:1 SIP/2.0\r\n\r\n");
    parses("INVITE sips:user@host SIP/2.0\r\n\r\n");
    parses("INVITE sip:host-only.example.com SIP/2.0\r\n\r\n");
    parses("INVITE sip:u@h;transport=udp;lr SIP/2.0\r\n\r\n");
    rejects("INVITE mailto:user@host SIP/2.0\r\n\r\n");
    rejects("INVITE sip: SIP/2.0\r\n\r\n");
}

#[test]
fn binary_garbage_never_panics() {
    for seed in 0..256u32 {
        let bytes: Vec<u8> = (0..100)
            .map(|i| ((seed.wrapping_mul(31).wrapping_add(i * 7)) % 256) as u8)
            .collect();
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_message(&text);
    }
}

#[test]
fn null_bytes_and_control_chars() {
    let _ = parse_message("\0\0\0");
    let _ = parse_message("INVITE sip:b@h SIP/2.0\r\nX: \u{7}\u{1b}\r\n\r\n");
    let _ = parse_message("\r\n\r\n\r\n");
}

#[test]
fn folded_like_garbage_is_tolerated_or_rejected_not_panicking() {
    // RFC 3261 line folding is not supported; a folded header must not
    // crash, it just fails or lands as an odd header.
    let _ = parse_message("INVITE sip:b@h SIP/2.0\r\nSubject: line one\r\n two\r\n\r\n");
}

#[test]
fn duplicated_core_headers_first_wins() {
    let msg = parses(
        "BYE sip:b@h SIP/2.0\r\n\
         Call-ID: first\r\n\
         Call-ID: second\r\n\r\n",
    );
    assert_eq!(msg.call_id(), "first");
}

#[test]
fn cseq_number_boundaries() {
    let msg = parses("BYE sip:b@h SIP/2.0\r\nCSeq: 4294967295 BYE\r\n\r\n");
    assert_eq!(msg.headers().cseq().unwrap().seq, u32::MAX);
    rejects("BYE sip:b@h SIP/2.0\r\nCSeq: 4294967296 BYE\r\n\r\n");
}

#[test]
fn escaped_quotes_in_display_name_do_not_panic() {
    // The simple parser ends the display name at the first quote; the
    // remainder must not panic, whatever it parses into.
    let _ = parse_message("INVITE sip:b@h SIP/2.0\r\nFrom: \"a\\\"b\" <sip:x@y>;tag=1\r\n\r\n");
}

#[test]
fn whole_message_round_trip_of_odd_but_valid_message() {
    let text = "SUBSCRIBE sip:watcher@example.com;lr SIP/2.0\r\n\
                Via: SIP/2.0/UDP 192.0.2.1:5060;branch=z9hG4bKx;received=192.0.2.254\r\n\
                Max-Forwards: 0\r\n\
                From: <sip:a@b>;tag=z\r\n\
                To: <sip:c@d>\r\n\
                Call-ID: odd-1\r\n\
                CSeq: 1 SUBSCRIBE\r\n\
                Expires: 0\r\n\
                Content-Length: 0\r\n\r\n";
    let msg = parses(text);
    let reparsed = parses(&msg.to_string());
    assert_eq!(reparsed, msg);
}
