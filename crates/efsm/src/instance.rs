//! Running EFSM instances: a configuration `(s, v̄)` plus the step function.

use std::fmt;

use crate::event::{Event, EventKind};
use crate::intern::{sym, Sym};
use crate::machine::{ActionCtx, Effects, MachineDef, PredicateCtx, StateId, UnmatchedPolicy};
use crate::value::VarMap;

/// The result of feeding one event to a machine instance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StepOutcome {
    /// The transition taken, as `(from, to, label)`. `None` if no transition
    /// accepted the event.
    pub taken: Option<(StateId, StateId, Option<Sym>)>,
    /// Set when the machine entered an attack state: the state's label.
    pub attack: Option<String>,
    /// Set when the event matched no transition and the machine's policy is
    /// [`UnmatchedPolicy::Deviation`]: the offending event, cloned.
    pub deviation: Option<Event>,
    /// More than one transition was enabled (predicates not mutually
    /// disjoint): the machine is not deterministic for this input. The
    /// first transition in definition order was taken.
    pub nondeterministic: bool,
    /// Side effects requested by the update action.
    pub effects: Effects,
}

impl StepOutcome {
    /// Whether a transition fired.
    pub fn transitioned(&self) -> bool {
        self.taken.is_some()
    }
}

/// A running instance of a [`MachineDef`]: current state and local variables.
///
/// The definition is passed into each call rather than stored, so one
/// definition (built once at startup) serves every concurrent call — this is
/// what keeps the paper's per-call memory cost at tens of bytes (§7.3).
#[derive(Debug, Clone)]
pub struct MachineInstance {
    state: StateId,
    locals: VarMap,
    steps: u64,
}

impl MachineInstance {
    /// Creates an instance at the definition's initial state.
    pub fn new(def: &MachineDef) -> Self {
        MachineInstance {
            state: def.initial_state(),
            locals: VarMap::new(),
            steps: 0,
        }
    }

    /// The current control state.
    pub fn state(&self) -> StateId {
        self.state
    }

    /// The current state's name.
    pub fn state_name<'d>(&self, def: &'d MachineDef) -> &'d str {
        def.state_name(self.state)
    }

    /// The machine-local variables.
    pub fn locals(&self) -> &VarMap {
        &self.locals
    }

    /// Mutable access to locals (used by hosts to seed initial context).
    pub fn locals_mut(&mut self) -> &mut VarMap {
        &mut self.locals
    }

    /// Whether the instance sits in a final state.
    pub fn is_final(&self, def: &MachineDef) -> bool {
        def.is_final_state(self.state)
    }

    /// Whether the instance sits in an attack state.
    pub fn is_attack(&self, def: &MachineDef) -> bool {
        def.attack_label(self.state).is_some()
    }

    /// How many events this instance has processed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Approximate per-instance memory footprint in bytes (configuration
    /// `(s, v̄)` only — the definition is shared). Used for E5.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.locals.memory_bytes()
    }

    /// Feeds one event at monitor time 0 with the given globals.
    /// Convenience for single-machine uses; networks call
    /// [`MachineInstance::step_at`].
    pub fn step(&mut self, def: &MachineDef, event: &Event, globals: &mut VarMap) -> StepOutcome {
        self.step_at(def, event, globals, 0)
    }

    /// Feeds one event at monitor time `now_ms`.
    ///
    /// Transition selection: among transitions out of the current state whose
    /// event name matches (exactly, or `"*"`), the first whose predicate
    /// holds is taken. If several hold, [`StepOutcome::nondeterministic`] is
    /// set (the paper requires mutually disjoint predicates; the engine
    /// surfaces violations instead of hiding them).
    pub fn step_at(
        &mut self,
        def: &MachineDef,
        event: &Event,
        globals: &mut VarMap,
        now_ms: u64,
    ) -> StepOutcome {
        self.steps += 1;
        let mut outcome = StepOutcome::default();

        let mut chosen: Option<usize> = None;
        {
            let ctx = PredicateCtx {
                event,
                locals: &self.locals,
                globals,
                now_ms,
            };
            // A machine that declared disjoint predicates stops at the
            // first enabled transition in release builds; otherwise every
            // sibling is evaluated so overlap surfaces as
            // `nondeterministic` (predicates are read-only, so the skipped
            // evaluations have no other observable effect).
            let short_circuit = def.short_circuits();
            for (idx, t) in def.transitions_from(self.state) {
                if t.event_name != sym::WILDCARD && t.event_name != event.name {
                    continue;
                }
                let enabled = match &t.predicate {
                    Some(p) => p(&ctx),
                    None => true,
                };
                if enabled {
                    if chosen.is_none() {
                        chosen = Some(idx);
                        if short_circuit {
                            break;
                        }
                    } else {
                        outcome.nondeterministic = true;
                    }
                }
            }
        }

        match chosen {
            Some(idx) => {
                let t = def.transition(idx);
                let mut effects = Effects::default();
                if let Some(action) = &t.action {
                    let mut ctx = ActionCtx {
                        event,
                        locals: &mut self.locals,
                        globals,
                        now_ms,
                        effects: &mut effects,
                    };
                    action(&mut ctx);
                }
                let from = self.state;
                self.state = t.to;
                outcome.taken = Some((from, t.to, t.label));
                outcome.attack = def.attack_label(t.to).map(str::to_owned);
                outcome.effects = effects;
            }
            None => {
                // Stale timers are never a deviation: a timer armed for a
                // state the machine has since left simply no longer applies.
                if event.kind != EventKind::Timer
                    && def.unmatched_policy() == UnmatchedPolicy::Deviation
                {
                    outcome.deviation = Some(event.clone());
                }
            }
        }
        outcome
    }
}

impl fmt::Display for MachineInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "state={} vars={}", self.state, self.locals.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineDef;

    fn counter_machine(threshold: u64) -> MachineDef {
        // INIT --pkt--> COUNTING --pkt[count<N]--> COUNTING (self loop)
        //                        --pkt[count>=N]--> ATTACK
        let mut def = MachineDef::new("ctr");
        let init = def.add_state("INIT");
        let counting = def.add_state("COUNTING");
        let attack = def.add_state("ATTACK");
        def.mark_attack(attack, "flood");
        def.add_transition(init, "pkt", counting).action(|ctx| {
            ctx.locals.set("count", 1u64);
        });
        def.add_transition(counting, "pkt", counting)
            .predicate(move |ctx| ctx.locals.uint("count").unwrap_or(0) + 1 < threshold)
            .action(|ctx| {
                ctx.locals.increment("count");
            });
        def.add_transition(counting, "pkt", attack)
            .predicate(move |ctx| ctx.locals.uint("count").unwrap_or(0) + 1 >= threshold);
        def.build().unwrap()
    }

    #[test]
    fn walks_to_attack_state_at_threshold() {
        let def = counter_machine(3);
        let mut m = MachineInstance::new(&def);
        let mut globals = VarMap::new();
        let ev = Event::data("pkt");

        let o1 = m.step(&def, &ev, &mut globals);
        assert!(o1.transitioned());
        assert!(o1.attack.is_none());
        let o2 = m.step(&def, &ev, &mut globals);
        assert!(o2.attack.is_none());
        let o3 = m.step(&def, &ev, &mut globals);
        assert_eq!(o3.attack.as_deref(), Some("flood"));
        assert!(m.is_attack(&def));
        assert_eq!(m.steps(), 3);
    }

    #[test]
    fn predicates_select_among_same_event() {
        let def = counter_machine(2);
        let mut m = MachineInstance::new(&def);
        let mut globals = VarMap::new();
        let ev = Event::data("pkt");
        m.step(&def, &ev, &mut globals);
        let o = m.step(&def, &ev, &mut globals);
        // Threshold 2: the second packet goes straight to ATTACK, not the
        // self-loop — and only one predicate may hold.
        assert!(!o.nondeterministic);
        assert_eq!(o.attack.as_deref(), Some("flood"));
    }

    #[test]
    fn unmatched_event_is_deviation_by_default() {
        let def = counter_machine(3);
        let mut m = MachineInstance::new(&def);
        let mut globals = VarMap::new();
        let o = m.step(&def, &Event::data("unexpected"), &mut globals);
        assert!(!o.transitioned());
        assert_eq!(
            o.deviation.as_ref().map(|e| e.name.as_str()),
            Some("unexpected")
        );
    }

    #[test]
    fn unmatched_timer_is_not_a_deviation() {
        let def = counter_machine(3);
        let mut m = MachineInstance::new(&def);
        let mut globals = VarMap::new();
        let o = m.step(&def, &Event::timer("T1"), &mut globals);
        assert!(!o.transitioned());
        assert!(o.deviation.is_none());
    }

    #[test]
    fn ignore_policy_suppresses_deviation() {
        let mut def = MachineDef::new("m");
        let a = def.add_state("A");
        def.add_transition(a, "x", a);
        def.set_unmatched_policy(UnmatchedPolicy::Ignore);
        let def = def.build().unwrap();
        let mut m = MachineInstance::new(&def);
        let o = m.step(&def, &Event::data("y"), &mut VarMap::new());
        assert!(o.deviation.is_none());
    }

    #[test]
    fn nondeterminism_is_reported() {
        let mut def = MachineDef::new("m");
        let a = def.add_state("A");
        let b = def.add_state("B");
        let c = def.add_state("C");
        def.add_transition(a, "x", b); // no predicate = true
        def.add_transition(a, "x", c); // also true -> overlap
        let def = def.build().unwrap();
        let mut m = MachineInstance::new(&def);
        let o = m.step(&def, &Event::data("x"), &mut VarMap::new());
        assert!(o.nondeterministic);
        // First transition in definition order wins.
        assert_eq!(m.state(), b);
    }

    #[test]
    fn wildcard_event_matches_anything() {
        let mut def = MachineDef::new("m");
        let a = def.add_state("A");
        let b = def.add_state("B");
        def.add_transition(a, "*", b);
        let def = def.build().unwrap();
        let mut m = MachineInstance::new(&def);
        assert!(m
            .step(&def, &Event::data("whatever"), &mut VarMap::new())
            .transitioned());
    }

    #[test]
    fn actions_access_globals_and_request_effects() {
        let mut def = MachineDef::new("m");
        let a = def.add_state("A");
        let b = def.add_state("B");
        def.add_transition(a, "go", b).action(|ctx| {
            ctx.globals.set("g_media_port", 49170u64);
            ctx.send_sync("rtp", Event::sync("δ"));
            ctx.set_timer("T", 500);
            ctx.cancel_timer("T1");
        });
        let def = def.build().unwrap();
        let mut m = MachineInstance::new(&def);
        let mut globals = VarMap::new();
        let o = m.step(&def, &Event::data("go"), &mut globals);
        assert_eq!(globals.uint("g_media_port"), Some(49170));
        assert_eq!(o.effects.sync_out.len(), 1);
        assert_eq!(o.effects.sync_out[0].0, "rtp");
        assert_eq!(o.effects.timers_set, [(Sym::intern("T"), 500)]);
        assert_eq!(o.effects.timers_cancelled, [Sym::intern("T1")]);
    }

    #[test]
    fn memory_footprint_reflects_variables() {
        let def = counter_machine(5);
        let mut m = MachineInstance::new(&def);
        let empty = m.memory_bytes();
        m.locals_mut()
            .set("g_call_id", "a-long-call-identifier@example.com");
        assert!(m.memory_bytes() > empty);
    }
}
