//! Symbol interning: copyable `u32` handles for the strings the hot path
//! lives on.
//!
//! Every per-packet structure in the engine — event names, argument names,
//! timer names, machine names, Call-IDs — used to be an owned `String`,
//! which meant a heap allocation (and a re-hash of the bytes) every time a
//! packet crossed a layer. [`Sym`] replaces those with an index into a
//! process-global interner: comparing two symbols is a `u32` compare,
//! hashing one hashes four bytes, and copying one is free.
//!
//! The interning boundary is the packet classifier: wire strings are
//! borrowed as `&str` slices out of the raw datagram, interned once, and
//! everything downstream (EFSM network, fact base, shard router) keys on
//! the symbol. All *static* names — event names, `l_*`/`g_*` variables,
//! timers, machines — are pre-seeded at fixed indices so the steady-state
//! path never takes the interner's write lock; see [`sym`] for the
//! compile-time constants.
//!
//! Dynamic strings (Call-IDs, tags, AORs) are leaked into the interner for
//! the life of the process. That is a deliberate trade-off: the monitor's
//! working set is bounded by the calls it watches, and the alternative —
//! reference-counted symbols — would put an atomic on every event copy.
//! A long-lived deployment facing unbounded unique Call-IDs would want an
//! epoch-based reclaim pass; that is future work, documented in DESIGN.md.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned string: a copyable handle that compares, hashes and copies
/// in O(1). Obtain one with [`Sym::intern`] (or `From<&str>`), get the
/// text back with [`Sym::as_str`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

/// Strings known at compile time, pinned to fixed interner slots.
///
/// Keeping these in one place means the steady-state path — event
/// dispatch, variable lookup, timer arming — resolves every name without
/// ever taking the interner's write lock, and `match`-style dispatch can
/// compare against constants.
pub(crate) const SEEDS: &[&str] = &[
    // Structural.
    "*",
    "",
    // SIP/RTP event names (classifier output).
    "SIP.INVITE",
    "SIP.ACK",
    "SIP.BYE",
    "SIP.CANCEL",
    "SIP.REGISTER",
    "SIP.OPTIONS",
    "SIP.1xx",
    "SIP.2xx",
    "SIP.3xx",
    "SIP.failure",
    "SIP.response.unassociated",
    "RTP.Packet",
    // δ-channel sync events between the SIP and RTP machines.
    "δ.open",
    "δ.update",
    "δ.bye",
    "δ.reopen",
    // Timers.
    "T_linger",
    "T_inflight",
    "T_window",
    "T1",
    // Machine names.
    "sip",
    "rtp",
    "flood",
    "response-flood",
    "register",
    "classifier",
    "engine",
    // Event argument names.
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "call_id",
    "from_tag",
    "to_tag",
    "branch",
    "cseq",
    "cseq_method",
    "status",
    "aor",
    "contact_ip",
    "expires",
    "has_sdp",
    "sdp_ip",
    "sdp_port",
    "sdp_pt",
    "ssrc",
    "seq",
    "ts",
    "pt",
    "size",
    // Machine-local variables.
    "l_call_id",
    "l_branch",
    "l_from_tag",
    "l_to_tag",
    "l_caller_ip",
    "l_callee_ip",
    "l_owner_ip",
    "l_contact_ip",
    "l_fwd_ssrc",
    "l_rev_ssrc",
    "l_fwd_seq",
    "l_rev_seq",
    "l_fwd_ts",
    "l_rev_ts",
    "l_fwd_count",
    "l_rev_count",
    "pck_counter",
    // Per-call globals shared across the EFSM network.
    "g_caller_media_ip",
    "g_caller_media_port",
    "g_callee_media_ip",
    "g_callee_media_port",
    "g_codec_pt",
    // CSeq method argument values.
    "INVITE",
    "ACK",
    "BYE",
    "CANCEL",
    "REGISTER",
    "OPTIONS",
    // Extension-method event names (classifier output, rarely hot).
    "SIP.INFO",
    "SIP.UPDATE",
    "SIP.PRACK",
    "SIP.SUBSCRIBE",
    "SIP.NOTIFY",
    "SIP.REFER",
    "SIP.MESSAGE",
];

/// Compile-time `&str` equality (stable-const: byte compare).
const fn str_eq(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.len() != b.len() {
        return false;
    }
    let mut i = 0;
    while i < a.len() {
        if a[i] != b[i] {
            return false;
        }
        i += 1;
    }
    true
}

/// Resolves a pre-seeded name to its fixed slot at compile time; a typo or
/// an unseeded name is a compile error, not a runtime surprise.
const fn seed(name: &str) -> Sym {
    let mut i = 0;
    while i < SEEDS.len() {
        if str_eq(SEEDS[i], name) {
            return Sym(i as u32);
        }
        i += 1;
    }
    panic!("symbol is not in the pre-seeded set");
}

/// Pre-seeded symbol constants. `sym::SIP_INVITE == Sym::intern("SIP.INVITE")`
/// holds by construction.
pub mod sym {
    use super::{seed, Sym};

    /// `"*"` — matches any event name in a transition.
    pub const WILDCARD: Sym = seed("*");
    /// `""` — the default symbol.
    pub const EMPTY: Sym = seed("");

    /// `"SIP.INVITE"`.
    pub const SIP_INVITE: Sym = seed("SIP.INVITE");
    /// `"SIP.ACK"`.
    pub const SIP_ACK: Sym = seed("SIP.ACK");
    /// `"SIP.BYE"`.
    pub const SIP_BYE: Sym = seed("SIP.BYE");
    /// `"SIP.CANCEL"`.
    pub const SIP_CANCEL: Sym = seed("SIP.CANCEL");
    /// `"SIP.REGISTER"`.
    pub const SIP_REGISTER: Sym = seed("SIP.REGISTER");
    /// `"SIP.OPTIONS"`.
    pub const SIP_OPTIONS: Sym = seed("SIP.OPTIONS");
    /// `"SIP.INFO"`.
    pub const SIP_INFO: Sym = seed("SIP.INFO");
    /// `"SIP.UPDATE"`.
    pub const SIP_UPDATE: Sym = seed("SIP.UPDATE");
    /// `"SIP.PRACK"`.
    pub const SIP_PRACK: Sym = seed("SIP.PRACK");
    /// `"SIP.SUBSCRIBE"`.
    pub const SIP_SUBSCRIBE: Sym = seed("SIP.SUBSCRIBE");
    /// `"SIP.NOTIFY"`.
    pub const SIP_NOTIFY: Sym = seed("SIP.NOTIFY");
    /// `"SIP.REFER"`.
    pub const SIP_REFER: Sym = seed("SIP.REFER");
    /// `"SIP.MESSAGE"`.
    pub const SIP_MESSAGE: Sym = seed("SIP.MESSAGE");
    /// `"SIP.response.unassociated"`.
    pub const SIP_RESPONSE_UNASSOCIATED: Sym = seed("SIP.response.unassociated");
    /// `"SIP.1xx"`.
    pub const SIP_1XX: Sym = seed("SIP.1xx");
    /// `"SIP.2xx"`.
    pub const SIP_2XX: Sym = seed("SIP.2xx");
    /// `"SIP.3xx"`.
    pub const SIP_3XX: Sym = seed("SIP.3xx");
    /// `"SIP.failure"`.
    pub const SIP_FAILURE: Sym = seed("SIP.failure");
    /// `"RTP.Packet"`.
    pub const RTP_PACKET: Sym = seed("RTP.Packet");

    /// `"src_ip"`.
    pub const SRC_IP: Sym = seed("src_ip");
    /// `"dst_ip"`.
    pub const DST_IP: Sym = seed("dst_ip");
    /// `"src_port"`.
    pub const SRC_PORT: Sym = seed("src_port");
    /// `"dst_port"`.
    pub const DST_PORT: Sym = seed("dst_port");
    /// `"call_id"`.
    pub const CALL_ID: Sym = seed("call_id");
    /// `"from_tag"`.
    pub const FROM_TAG: Sym = seed("from_tag");
    /// `"to_tag"`.
    pub const TO_TAG: Sym = seed("to_tag");
    /// `"branch"`.
    pub const BRANCH: Sym = seed("branch");
    /// `"cseq"`.
    pub const CSEQ: Sym = seed("cseq");
    /// `"cseq_method"`.
    pub const CSEQ_METHOD: Sym = seed("cseq_method");
    /// `"status"`.
    pub const STATUS: Sym = seed("status");
    /// `"aor"`.
    pub const AOR: Sym = seed("aor");
    /// `"contact_ip"`.
    pub const CONTACT_IP: Sym = seed("contact_ip");
    /// `"expires"`.
    pub const EXPIRES: Sym = seed("expires");
    /// `"has_sdp"`.
    pub const HAS_SDP: Sym = seed("has_sdp");
    /// `"sdp_ip"`.
    pub const SDP_IP: Sym = seed("sdp_ip");
    /// `"sdp_port"`.
    pub const SDP_PORT: Sym = seed("sdp_port");
    /// `"sdp_pt"`.
    pub const SDP_PT: Sym = seed("sdp_pt");
    /// `"ssrc"`.
    pub const SSRC: Sym = seed("ssrc");
    /// `"seq"`.
    pub const SEQ: Sym = seed("seq");
    /// `"ts"`.
    pub const TS: Sym = seed("ts");
    /// `"pt"`.
    pub const PT: Sym = seed("pt");
    /// `"size"`.
    pub const SIZE: Sym = seed("size");

    /// `"l_fwd_ssrc"`.
    pub const L_FWD_SSRC: Sym = seed("l_fwd_ssrc");
    /// `"l_rev_ssrc"`.
    pub const L_REV_SSRC: Sym = seed("l_rev_ssrc");
    /// `"l_fwd_seq"`.
    pub const L_FWD_SEQ: Sym = seed("l_fwd_seq");
    /// `"l_rev_seq"`.
    pub const L_REV_SEQ: Sym = seed("l_rev_seq");
    /// `"l_fwd_ts"`.
    pub const L_FWD_TS: Sym = seed("l_fwd_ts");
    /// `"l_rev_ts"`.
    pub const L_REV_TS: Sym = seed("l_rev_ts");
    /// `"l_fwd_count"`.
    pub const L_FWD_COUNT: Sym = seed("l_fwd_count");
    /// `"l_rev_count"`.
    pub const L_REV_COUNT: Sym = seed("l_rev_count");
    /// `"pck_counter"`.
    pub const PCK_COUNTER: Sym = seed("pck_counter");

    /// `"g_caller_media_ip"`.
    pub const G_CALLER_MEDIA_IP: Sym = seed("g_caller_media_ip");
    /// `"g_caller_media_port"`.
    pub const G_CALLER_MEDIA_PORT: Sym = seed("g_caller_media_port");
    /// `"g_callee_media_ip"`.
    pub const G_CALLEE_MEDIA_IP: Sym = seed("g_callee_media_ip");
    /// `"g_callee_media_port"`.
    pub const G_CALLEE_MEDIA_PORT: Sym = seed("g_callee_media_port");
    /// `"g_codec_pt"`.
    pub const G_CODEC_PT: Sym = seed("g_codec_pt");

    /// `"l_call_id"`.
    pub const L_CALL_ID: Sym = seed("l_call_id");
    /// `"l_branch"`.
    pub const L_BRANCH: Sym = seed("l_branch");
    /// `"l_from_tag"`.
    pub const L_FROM_TAG: Sym = seed("l_from_tag");
    /// `"l_to_tag"`.
    pub const L_TO_TAG: Sym = seed("l_to_tag");
    /// `"l_caller_ip"`.
    pub const L_CALLER_IP: Sym = seed("l_caller_ip");
    /// `"l_callee_ip"`.
    pub const L_CALLEE_IP: Sym = seed("l_callee_ip");

    /// `"INVITE"` (CSeq method value).
    pub const METHOD_INVITE: Sym = seed("INVITE");
    /// `"CANCEL"` (CSeq method value).
    pub const METHOD_CANCEL: Sym = seed("CANCEL");
    /// `"BYE"` (CSeq method value).
    pub const METHOD_BYE: Sym = seed("BYE");
}

struct Inner {
    map: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

/// Id→name resolution is hot enough (every `Value::as_str` comparison,
/// every alert/dedup key) that taking the interner's read lock per call
/// shows up in profiles. Names therefore also live in this append-only
/// chunked table, readable with a single atomic load: 64 lazily-allocated
/// chunks of 2^16 slots bound the interner at ~4M symbols.
const CHUNK_BITS: u32 = 16;
const CHUNK_SIZE: usize = 1 << CHUNK_BITS;
const CHUNK_COUNT: usize = 64;

#[allow(clippy::declare_interior_mutable_const)]
const NULL_CHUNK: AtomicPtr<&'static str> = AtomicPtr::new(std::ptr::null_mut());
static NAME_CHUNKS: [AtomicPtr<&'static str>; CHUNK_COUNT] = [NULL_CHUNK; CHUNK_COUNT];

fn new_chunk() -> *mut &'static str {
    let chunk: Vec<&'static str> = vec![""; CHUNK_SIZE];
    Box::into_raw(chunk.into_boxed_slice()).cast::<&'static str>()
}

/// Records `name` at slot `id` in the chunk table.
///
/// Callers must hold the interner's write lock (or be inside the one-time
/// init), so there is never more than one writer. A fresh chunk has its
/// slot written *before* the chunk pointer is published, so a reader that
/// observes the pointer observes the slot.
fn publish_name(id: u32, name: &'static str) {
    let chunk_idx = (id >> CHUNK_BITS) as usize;
    let slot = (id as usize) & (CHUNK_SIZE - 1);
    assert!(chunk_idx < CHUNK_COUNT, "interner overflow");
    let chunk = NAME_CHUNKS[chunk_idx].load(Ordering::Acquire);
    if chunk.is_null() {
        let fresh = new_chunk();
        // SAFETY: `fresh` is a live allocation of CHUNK_SIZE slots and is
        // not yet visible to any other thread.
        unsafe { fresh.add(slot).write(name) };
        NAME_CHUNKS[chunk_idx].store(fresh, Ordering::Release);
    } else {
        // SAFETY: in-bounds slot of a live chunk; exclusive write access
        // is guaranteed by the interner's write lock. Readers only touch
        // this slot via a `Sym` carrying this id, and every channel that
        // hands out the id (the return below, the map under the lock, a
        // cross-thread transfer of the handle) establishes happens-before
        // with this write.
        unsafe { chunk.add(slot).write(name) };
    }
}

fn interner() -> &'static RwLock<Inner> {
    static INTERNER: OnceLock<RwLock<Inner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        let mut map = HashMap::with_capacity(SEEDS.len() * 4);
        let mut names = Vec::with_capacity(SEEDS.len() * 4);
        for (i, s) in SEEDS.iter().enumerate() {
            map.insert(*s, i as u32);
            names.push(*s);
        }
        // Seed chunk 0 completely before publishing its pointer: a reader
        // that skips the `OnceLock` fence because it sees a non-null chunk
        // must never see a half-seeded table.
        let seeded = new_chunk();
        for (i, s) in SEEDS.iter().enumerate() {
            // SAFETY: `seeded` is a fresh, unshared chunk; SEEDS fits.
            unsafe { seeded.add(i).write(s) };
        }
        NAME_CHUNKS[0].store(seeded, Ordering::Release);
        RwLock::new(Inner { map, names })
    })
}

impl Sym {
    /// Interns `text`, allocating a slot on first sight. Pre-seeded and
    /// previously-seen strings only take the read lock.
    pub fn intern(text: &str) -> Sym {
        let lock = interner();
        if let Some(&id) = lock.read().unwrap().map.get(text) {
            return Sym(id);
        }
        let mut inner = lock.write().unwrap();
        // Double-check: another thread may have interned it between locks.
        if let Some(&id) = inner.map.get(text) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        let id = u32::try_from(inner.names.len()).expect("interner overflow");
        publish_name(id, leaked);
        inner.names.push(leaked);
        inner.map.insert(leaked, id);
        Sym(id)
    }

    /// Looks up `text` without interning it: `None` means the string has
    /// never been seen, so no keyed collection can contain it. Lets read
    /// paths (`VarMap::get`, fact-base queries) stay allocation-free on
    /// misses.
    pub fn lookup(text: &str) -> Option<Sym> {
        interner().read().unwrap().map.get(text).map(|&id| Sym(id))
    }

    /// The interned text. `'static` because interner entries are never
    /// reclaimed. Lock-free: one atomic load plus an indexed read.
    pub fn as_str(self) -> &'static str {
        let idx = self.0 as usize;
        let mut chunk = NAME_CHUNKS[idx >> CHUNK_BITS].load(Ordering::Acquire);
        if chunk.is_null() {
            // Pre-seeded constants can be read before anything was ever
            // interned; force the one-time init and retry.
            let _ = interner();
            chunk = NAME_CHUNKS[idx >> CHUNK_BITS].load(Ordering::Acquire);
        }
        assert!(!chunk.is_null(), "symbol id {} was never interned", self.0);
        // SAFETY: in-bounds read of a live, never-freed chunk. The slot was
        // written before this id could reach us (see `publish_name`).
        unsafe { *chunk.add(idx & (CHUNK_SIZE - 1)) }
    }

    /// The raw slot index. Stable for the life of the process; pre-seeded
    /// symbols have the same index in every process.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Whether this symbol was pre-seeded (compile-time constant) rather
    /// than interned dynamically from wire data.
    pub fn is_preseeded(self) -> bool {
        (self.0 as usize) < SEEDS.len()
    }

    /// Number of pre-seeded symbols (dynamic ids start here).
    pub fn preseeded_count() -> usize {
        SEEDS.len()
    }
}

impl Default for Sym {
    fn default() -> Self {
        sym::EMPTY
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(text: &str) -> Self {
        Sym::intern(text)
    }
}

impl From<&String> for Sym {
    fn from(text: &String) -> Self {
        Sym::intern(text)
    }
}

impl From<String> for Sym {
    fn from(text: String) -> Self {
        Sym::intern(&text)
    }
}

impl From<Sym> for String {
    fn from(sym: Sym) -> Self {
        sym.as_str().to_owned()
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

/// A map key that may or may not already be interned.
///
/// `to_sym` is the write-side conversion (interns on first sight);
/// `find_sym` is the read-side one (never interns, so probing a map with a
/// string nobody ever stored neither allocates nor grows the interner).
pub trait SymKey {
    /// Interning conversion, for inserts.
    fn to_sym(self) -> Sym;
    /// Non-interning lookup, for reads; `None` guarantees absence.
    fn find_sym(self) -> Option<Sym>;
}

impl SymKey for Sym {
    fn to_sym(self) -> Sym {
        self
    }
    fn find_sym(self) -> Option<Sym> {
        Some(self)
    }
}

impl SymKey for &str {
    fn to_sym(self) -> Sym {
        Sym::intern(self)
    }
    fn find_sym(self) -> Option<Sym> {
        Sym::lookup(self)
    }
}

impl SymKey for &String {
    fn to_sym(self) -> Sym {
        Sym::intern(self)
    }
    fn find_sym(self) -> Option<Sym> {
        Sym::lookup(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preseeded_constants_resolve_to_their_text() {
        assert_eq!(sym::WILDCARD.as_str(), "*");
        assert_eq!(sym::EMPTY.as_str(), "");
        assert_eq!(sym::SIP_INVITE.as_str(), "SIP.INVITE");
        assert_eq!(sym::RTP_PACKET.as_str(), "RTP.Packet");
        assert_eq!(sym::PCK_COUNTER.as_str(), "pck_counter");
        assert!(sym::SIP_INVITE.is_preseeded());
    }

    #[test]
    fn interning_is_idempotent_and_constants_agree() {
        assert_eq!(Sym::intern("SIP.INVITE"), sym::SIP_INVITE);
        let a = Sym::intern("intern-test-dynamic-1");
        let b = Sym::intern("intern-test-dynamic-1");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "intern-test-dynamic-1");
        assert!(!a.is_preseeded());
    }

    #[test]
    fn lookup_never_interns() {
        assert_eq!(Sym::lookup("SIP.BYE"), Some(sym::SIP_BYE));
        assert_eq!(Sym::lookup("intern-test-never-stored"), None);
        // Still absent: the failed lookup must not have interned it.
        assert_eq!(Sym::lookup("intern-test-never-stored"), None);
    }

    #[test]
    fn equality_against_str_and_default() {
        assert_eq!(sym::SIP_ACK, "SIP.ACK");
        assert_eq!("SIP.ACK", sym::SIP_ACK);
        assert_ne!(sym::SIP_ACK, "SIP.BYE");
        assert_eq!(Sym::default(), sym::EMPTY);
        assert_eq!(format!("{}", sym::SIP_BYE), "SIP.BYE");
        assert_eq!(format!("{:?}", sym::SIP_BYE), "\"SIP.BYE\"");
    }

    #[test]
    fn symbols_are_stable_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..64)
                        .map(|i| Sym::intern(&format!("xthread-{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for per_thread in &all[1..] {
            assert_eq!(per_thread, &all[0], "every thread must see the same ids");
        }
        for (i, s) in all[0].iter().enumerate() {
            assert_eq!(s.as_str(), format!("xthread-{i}"));
        }
    }
}
