//! The event alphabet Σ: data packets, synchronization messages and timers.

use std::fmt;

use crate::intern::{Sym, SymKey};
use crate::value::{Value, VarMap};

/// How an event reached the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EventKind {
    /// `c?event(x̄)` — a packet arrived on a protocol channel.
    #[default]
    Data,
    /// δ — an internal synchronization message from a co-operating protocol
    /// state machine, delivered through a FIFO channel. Higher priority
    /// than data events (§4.2).
    Sync,
    /// A timer set by an earlier action expired (e.g. the paper's T1 / T).
    Timer,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Data => f.write_str("data"),
            EventKind::Sync => f.write_str("sync"),
            EventKind::Timer => f.write_str("timer"),
        }
    }
}

/// An input event: a name plus an argument vector `x̄`.
///
/// Arguments are named values, mirroring the paper's use of fields like
/// `x.src_ip` and `x.time_stamp` inside predicates. The name is an
/// interned [`Sym`], so constructing, copying and matching an event never
/// allocates for the name; steady-state argument vectors stay inline in
/// the [`VarMap`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Event {
    /// The event identifier (e.g. `"SIP.INVITE"`, `"RTP.Packet"`, `"δ"`).
    pub name: Sym,
    /// How the event arrived.
    pub kind: EventKind,
    /// The argument vector `x̄`.
    pub args: VarMap,
}

impl Event {
    /// Creates a data-packet event with no arguments yet.
    pub fn data(name: impl Into<Sym>) -> Self {
        Event {
            name: name.into(),
            kind: EventKind::Data,
            args: VarMap::new(),
        }
    }

    /// Creates a synchronization (δ) event.
    pub fn sync(name: impl Into<Sym>) -> Self {
        Event {
            name: name.into(),
            kind: EventKind::Sync,
            args: VarMap::new(),
        }
    }

    /// Creates a timer-expiry event. The name is the timer's name.
    pub fn timer(name: impl Into<Sym>) -> Self {
        Event {
            name: name.into(),
            kind: EventKind::Timer,
            args: VarMap::new(),
        }
    }

    /// Adds an unsigned-integer argument, builder-style.
    #[must_use]
    pub fn with_uint(mut self, name: impl SymKey, value: u64) -> Self {
        self.args.set(name, value);
        self
    }

    /// Adds a signed-integer argument, builder-style.
    #[must_use]
    pub fn with_int(mut self, name: impl SymKey, value: i64) -> Self {
        self.args.set(name, value);
        self
    }

    /// Adds a string argument, builder-style.
    #[must_use]
    pub fn with_str(mut self, name: impl SymKey, value: impl Into<String>) -> Self {
        self.args.set(name, value.into());
        self
    }

    /// Adds an interned-string argument, builder-style (allocation-free
    /// for warm symbols).
    #[must_use]
    pub fn with_sym(mut self, name: impl SymKey, value: Sym) -> Self {
        self.args.set(name, value);
        self
    }

    /// Adds a boolean argument, builder-style.
    #[must_use]
    pub fn with_bool(mut self, name: impl SymKey, value: bool) -> Self {
        self.args.set(name, value);
        self
    }

    /// Adds an arbitrary argument, builder-style.
    #[must_use]
    pub fn with_arg(mut self, name: impl SymKey, value: impl Into<Value>) -> Self {
        self.args.set(name, value);
        self
    }

    /// Raw argument value shortcut, for actions that copy a value through
    /// without caring about its type.
    pub fn arg(&self, name: impl SymKey) -> Option<&Value> {
        self.args.get(name)
    }

    /// Unsigned-integer argument shortcut.
    pub fn uint_arg(&self, name: impl SymKey) -> Option<u64> {
        self.args.uint(name)
    }

    /// Signed-integer argument shortcut.
    pub fn int_arg(&self, name: impl SymKey) -> Option<i64> {
        self.args.int(name)
    }

    /// String argument shortcut.
    pub fn str_arg(&self, name: impl SymKey) -> Option<&str> {
        self.args.str(name)
    }

    /// Interned-symbol argument shortcut.
    pub fn sym_arg(&self, name: impl SymKey) -> Option<Sym> {
        self.args.sym(name)
    }

    /// Boolean argument shortcut (false when absent).
    pub fn bool_arg(&self, name: impl SymKey) -> bool {
        self.args.flag(name)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}?{}(", self.kind, self.name)?;
        let mut first = true;
        for (k, v) in self.args.iter() {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_accessors() {
        let ev = Event::data("SIP.INVITE")
            .with_str("src_ip", "10.0.0.3")
            .with_uint("src_port", 5060)
            .with_bool("has_sdp", true)
            .with_int("delta", -1);
        assert_eq!(ev.kind, EventKind::Data);
        assert_eq!(ev.name, "SIP.INVITE");
        assert_eq!(ev.str_arg("src_ip"), Some("10.0.0.3"));
        assert_eq!(ev.uint_arg("src_port"), Some(5060));
        assert!(ev.bool_arg("has_sdp"));
        assert_eq!(ev.int_arg("delta"), Some(-1));
        assert_eq!(ev.uint_arg("missing"), None);
    }

    #[test]
    fn kinds() {
        assert_eq!(Event::sync("δ_SIP→RTP").kind, EventKind::Sync);
        assert_eq!(Event::timer("T1").kind, EventKind::Timer);
    }

    #[test]
    fn display_is_csp_like() {
        let ev = Event::data("go").with_uint("n", 1);
        assert_eq!(ev.to_string(), "data?go(n=1)");
    }

    #[test]
    fn sym_args_read_back_as_strings() {
        let id = Sym::intern("event-test-call-1");
        let ev = Event::data(crate::intern::sym::SIP_BYE).with_sym("call_id", id);
        assert_eq!(ev.str_arg("call_id"), Some("event-test-call-1"));
        assert_eq!(ev.sym_arg("call_id"), Some(id));
        assert_eq!(ev.arg("call_id"), Some(&Value::Sym(id)));
    }
}
