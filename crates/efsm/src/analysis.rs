//! Static analysis over machine definitions.
//!
//! §4.2: "We are interested in the configurations that are reachable from
//! the initial or intermediate configuration to the attack configuration
//! through zero or more intermediate states. The paths along the
//! transitions from s_i to s_attack constitute attack patterns."
//!
//! [`attack_paths`] enumerates exactly those paths over the control-flow
//! graph (predicates are data-dependent and not unrolled — each edge is the
//! event name plus its transition label). [`reachable_states`] and
//! [`unreachable_states`] support definition lint checks in tests.

use std::collections::{BTreeSet, VecDeque};

use crate::machine::{MachineDef, StateId};

/// One hop of an attack pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// State the step leaves.
    pub from: String,
    /// Event that triggers the transition.
    pub event: String,
    /// The transition's label, if the definition provided one.
    pub label: Option<String>,
    /// State the step enters.
    pub to: String,
}

impl std::fmt::Display for PathStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}) --{}--> ({})", self.from, self.event, self.to)?;
        if let Some(label) = &self.label {
            write!(f, "  [{label}]")?;
        }
        Ok(())
    }
}

/// An attack pattern: the label of the attack state reached plus the
/// simple path (no repeated states) leading there from the initial state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackPath {
    /// The attack state's annotation.
    pub attack_label: String,
    /// The steps from the initial state to the attack state.
    pub steps: Vec<PathStep>,
}

impl std::fmt::Display for AttackPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "attack pattern: {}", self.attack_label)?;
        for s in &self.steps {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

/// Enumerates every simple path from the initial state to each attack
/// state. Self-loops are excluded (they extend but never form patterns).
///
/// The result is bounded: simple paths over a finite state set. Machines in
/// this codebase have ≲ a dozen states, so exhaustive enumeration is cheap.
pub fn attack_paths(def: &MachineDef) -> Vec<AttackPath> {
    let mut out = Vec::new();
    let start = def.initial_state();
    // Depth-first enumeration of simple paths.
    let mut stack: Vec<(StateId, Vec<PathStep>, BTreeSet<usize>)> =
        vec![(start, Vec::new(), BTreeSet::from([start.0]))];
    while let Some((state, path, visited)) = stack.pop() {
        for (_, t) in def.transitions_from(state) {
            if t.to == state || visited.contains(&t.to.0) {
                continue;
            }
            let mut steps = path.clone();
            steps.push(PathStep {
                from: def.state_name(state).to_owned(),
                event: t.event_name.as_str().to_owned(),
                label: t.label.map(String::from),
                to: def.state_name(t.to).to_owned(),
            });
            if let Some(label) = def.attack_label(t.to) {
                out.push(AttackPath {
                    attack_label: label.to_owned(),
                    steps: steps.clone(),
                });
                // Attack states absorb; don't extend past them.
                continue;
            }
            let mut v = visited.clone();
            v.insert(t.to.0);
            stack.push((t.to, steps, v));
        }
    }
    out.sort_by(|a, b| (&a.attack_label, a.steps.len()).cmp(&(&b.attack_label, b.steps.len())));
    out
}

/// States reachable from the initial state over any transitions.
pub fn reachable_states(def: &MachineDef) -> BTreeSet<StateId> {
    let mut seen = BTreeSet::from([def.initial_state()]);
    let mut queue = VecDeque::from([def.initial_state()]);
    while let Some(s) = queue.pop_front() {
        for (_, t) in def.transitions_from(s) {
            if seen.insert(t.to) {
                queue.push_back(t.to);
            }
        }
    }
    seen
}

/// States that no path from the initial state can reach — dead weight in a
/// specification machine, surfaced by lint tests.
pub fn unreachable_states(def: &MachineDef) -> Vec<String> {
    let reachable = reachable_states(def);
    (0..def.state_count())
        .map(StateId)
        .filter(|s| !reachable.contains(s))
        .map(|s| def.state_name(s).to_owned())
        .collect()
}

/// Renders the machine as a Graphviz DOT digraph: the initial state gets a
/// double border, final states grey fill, attack states red fill, and
/// transitions carry their event name (plus label when present).
pub fn to_dot(def: &MachineDef) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", def.name()));
    out.push_str("  rankdir=LR;\n  node [shape=box, style=rounded];\n");
    for i in 0..def.state_count() {
        let s = StateId(i);
        let name = def.state_name(s);
        let mut attrs = Vec::new();
        if s == def.initial_state() {
            attrs.push("peripheries=2".to_owned());
        }
        if def.is_final_state(s) {
            attrs.push("style=\"rounded,filled\"".to_owned());
            attrs.push("fillcolor=lightgrey".to_owned());
        }
        if let Some(label) = def.attack_label(s) {
            attrs.push("style=\"rounded,filled\"".to_owned());
            attrs.push("fillcolor=salmon".to_owned());
            attrs.push(format!("tooltip=\"{label}\""));
        }
        out.push_str(&format!("  \"{name}\" [{}];\n", attrs.join(", ")));
    }
    for i in 0..def.state_count() {
        let s = StateId(i);
        for (_, t) in def.transitions_from(s) {
            let mut label = t.event_name.as_str().to_owned();
            if let Some(l) = t.label {
                label.push_str("\\n");
                label.push_str(l.as_str());
            }
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
                def.state_name(s),
                def.state_name(t.to),
                label.replace('"', "\\\"")
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineDef;

    /// INIT -a-> MID -b-> ATTACK, with a self-loop on MID and a dead state.
    fn sample() -> MachineDef {
        let mut def = MachineDef::new("m");
        let init = def.add_state("INIT");
        let mid = def.add_state("MID");
        let attack = def.add_state("ATTACK");
        let _dead = def.add_state("DEAD");
        def.mark_attack(attack, "boom");
        def.add_transition(init, "a", mid).label("enter");
        def.add_transition(mid, "tick", mid); // self-loop, excluded
        def.add_transition(mid, "b", attack).label("strike");
        def.build().unwrap()
    }

    #[test]
    fn enumerates_attack_paths() {
        let def = sample();
        let paths = attack_paths(&def);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.attack_label, "boom");
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].event, "a");
        assert_eq!(p.steps[1].event, "b");
        assert_eq!(p.steps[1].label.as_deref(), Some("strike"));
        let rendered = p.to_string();
        assert!(rendered.contains("(MID) --b--> (ATTACK)"));
    }

    #[test]
    fn multiple_paths_to_one_attack_state() {
        let mut def = MachineDef::new("m");
        let init = def.add_state("I");
        let x = def.add_state("X");
        let atk = def.add_state("A");
        def.mark_attack(atk, "multi");
        def.add_transition(init, "direct", atk);
        def.add_transition(init, "via", x);
        def.add_transition(x, "hit", atk);
        let def = def.build().unwrap();
        let paths = attack_paths(&def);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].steps.len(), 1, "sorted shortest-first");
        assert_eq!(paths[1].steps.len(), 2);
    }

    #[test]
    fn reachability_finds_dead_states() {
        let def = sample();
        assert_eq!(unreachable_states(&def), vec!["DEAD".to_owned()]);
        assert_eq!(reachable_states(&def).len(), 3);
    }

    #[test]
    fn machine_without_attack_states_has_no_paths() {
        let mut def = MachineDef::new("m");
        let a = def.add_state("A");
        let b = def.add_state("B");
        def.add_transition(a, "x", b);
        let def = def.build().unwrap();
        assert!(attack_paths(&def).is_empty());
        assert!(unreachable_states(&def).is_empty());
    }

    #[test]
    fn dot_export_marks_state_roles() {
        let def = sample();
        let dot = to_dot(&def);
        assert!(dot.starts_with("digraph \"m\""));
        assert!(dot.contains("\"INIT\" [peripheries=2]"));
        assert!(dot.contains("fillcolor=salmon"));
        assert!(dot.contains("\"MID\" -> \"ATTACK\""));
        assert!(dot.contains("label=\"b\\nstrike\""));
        assert!(dot.trim_end().ends_with("}"));
    }
}
