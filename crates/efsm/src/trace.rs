//! Execution traces: a replayable record of every transition a network of
//! communicating EFSMs takes. Used by tests, by the examples for narration,
//! and by the analysis engine's alert reports ("the paths along the
//! transitions from s_i to s_attack constitute attack patterns", §4.2).

use std::fmt;

/// One recorded step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Monitor time in milliseconds.
    pub time_ms: u64,
    /// Machine that stepped.
    pub machine: String,
    /// The event that triggered the step (display form).
    pub event: String,
    /// State name before the transition.
    pub from: String,
    /// State name after the transition.
    pub to: String,
    /// Transition label, if the definition provided one.
    pub label: Option<String>,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>8} ms] {:<12} {} : ({}) -> ({})",
            self.time_ms, self.machine, self.event, self.from, self.to
        )?;
        if let Some(label) = &self.label {
            write!(f, "  # {label}")?;
        }
        Ok(())
    }
}

/// An append-only transition log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// The last entry, if any.
    pub fn last(&self) -> Option<&TraceEntry> {
        self.entries.last()
    }

    /// The entries for one machine.
    pub fn for_machine<'a>(&'a self, machine: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.machine == machine)
    }

    /// The sequence of state names one machine walked through, starting from
    /// its first recorded transition's `from` state.
    pub fn path_of(&self, machine: &str) -> Vec<String> {
        let mut path = Vec::new();
        for e in self.for_machine(machine) {
            if path.is_empty() {
                path.push(e.from.clone());
            }
            path.push(e.to.clone());
        }
        path
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(machine: &str, from: &str, to: &str) -> TraceEntry {
        TraceEntry {
            time_ms: 0,
            machine: machine.to_owned(),
            event: "e".to_owned(),
            from: from.to_owned(),
            to: to.to_owned(),
            label: None,
        }
    }

    #[test]
    fn records_paths_per_machine() {
        let mut t = Trace::new();
        t.push(entry("sip", "INIT", "INVITE_RCVD"));
        t.push(entry("rtp", "INIT", "RTP_OPEN"));
        t.push(entry("sip", "INVITE_RCVD", "CALL_ESTABLISHED"));
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.path_of("sip"),
            vec!["INIT", "INVITE_RCVD", "CALL_ESTABLISHED"]
        );
        assert_eq!(t.path_of("rtp"), vec!["INIT", "RTP_OPEN"]);
        assert!(t.path_of("nonexistent").is_empty());
    }

    #[test]
    fn display_includes_label() {
        let mut e = entry("m", "A", "B");
        e.label = Some("hello".to_owned());
        assert!(e.to_string().contains("# hello"));
    }
}
