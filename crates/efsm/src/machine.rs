//! EFSM definitions: states, transitions, predicates and update actions.

use std::fmt;
use std::sync::Arc;

use crate::event::Event;
use crate::intern::Sym;
use crate::value::{InlineVec, VarMap};

/// Index of a state within its [`MachineDef`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub(crate) usize);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Read-only context handed to transition predicates `P_t(x̄ ∪ v̄)`.
#[derive(Debug)]
pub struct PredicateCtx<'a> {
    /// The input event and its argument vector `x̄`.
    pub event: &'a Event,
    /// Machine-local state variables (`v.l_…`).
    pub locals: &'a VarMap,
    /// Call-global state variables shared with co-operating machines (`v.g_…`).
    pub globals: &'a VarMap,
    /// Monitor wall-clock time in milliseconds.
    pub now_ms: u64,
}

/// Side effects an update action can request besides mutating variables.
///
/// Stored inline ([`InlineVec`]): a transition that requests no effects —
/// the steady-state case — costs zero allocations, and the common one- or
/// two-effect actions stay on the stack too.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Effects {
    /// Synchronization events to enqueue, by target machine name.
    pub sync_out: InlineVec<(Sym, Event), 2>,
    /// Timers to (re)arm: `(timer name, delay from now in ms)`.
    pub timers_set: InlineVec<(Sym, u64), 2>,
    /// Timers to cancel.
    pub timers_cancelled: InlineVec<Sym, 2>,
}

/// Mutable context handed to update actions `A_t(v̄)`.
#[derive(Debug)]
pub struct ActionCtx<'a> {
    /// The input event and its argument vector `x̄`.
    pub event: &'a Event,
    /// Machine-local state variables.
    pub locals: &'a mut VarMap,
    /// Call-global state variables.
    pub globals: &'a mut VarMap,
    /// Monitor wall-clock time in milliseconds.
    pub now_ms: u64,
    pub(crate) effects: &'a mut Effects,
}

impl ActionCtx<'_> {
    /// Emits a synchronization message `c!δ(x̄)` to the named co-operating
    /// machine. Delivery goes through the network's FIFO queue.
    pub fn send_sync(&mut self, target_machine: impl Into<Sym>, event: Event) {
        self.effects.sync_out.push((target_machine.into(), event));
    }

    /// Arms (or re-arms) a named timer to fire `delay_ms` from now. Expiry is
    /// delivered back as an [`Event::timer`] carrying the timer's name.
    pub fn set_timer(&mut self, name: impl Into<Sym>, delay_ms: u64) {
        self.effects.timers_set.push((name.into(), delay_ms));
    }

    /// Cancels a named timer if armed.
    pub fn cancel_timer(&mut self, name: impl Into<Sym>) {
        self.effects.timers_cancelled.push(name.into());
    }
}

type Predicate = Arc<dyn Fn(&PredicateCtx<'_>) -> bool + Send + Sync>;
type Action = Arc<dyn Fn(&mut ActionCtx<'_>) + Send + Sync>;

/// One transition `<s_t, event, P_t, A_t, q_t>`.
pub(crate) struct Transition {
    pub(crate) from: StateId,
    pub(crate) event_name: Sym,
    pub(crate) to: StateId,
    pub(crate) predicate: Option<Predicate>,
    pub(crate) action: Option<Action>,
    pub(crate) label: Option<Sym>,
}

impl fmt::Debug for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transition")
            .field("from", &self.from)
            .field("event", &self.event_name)
            .field("to", &self.to)
            .field("has_predicate", &self.predicate.is_some())
            .field("has_action", &self.action.is_some())
            .field("label", &self.label)
            .finish()
    }
}

#[derive(Debug, Clone)]
pub(crate) struct StateInfo {
    pub(crate) name: String,
    pub(crate) is_final: bool,
    pub(crate) attack_label: Option<String>,
}

/// What the machine does with an event no transition accepts.
///
/// The paper treats a deviation from the specification machine as a
/// suspicious anomaly; retransmission-tolerant machines may instead declare
/// specific self-loops and keep the strict default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnmatchedPolicy {
    /// Report a specification deviation (default — anomaly detection).
    #[default]
    Deviation,
    /// Silently ignore unmatched events.
    Ignore,
}

/// A complete, validated EFSM definition. Build one with [`MachineDef::new`],
/// [`MachineDef::add_state`], [`MachineDef::add_transition`] and
/// [`MachineDef::build`]; run it with [`crate::instance::MachineInstance`].
pub struct MachineDef {
    name: Sym,
    states: Vec<StateInfo>,
    /// Interned state names, populated by [`MachineDef::build`] so the
    /// observer hook can report transitions without allocating.
    state_syms: Vec<Sym>,
    transitions: Vec<Transition>,
    /// Per-state index into `transitions`, maintained as transitions are
    /// added: the step function reads only a state's own out-edges instead
    /// of scanning the whole transition list per event.
    outgoing: Vec<Vec<u32>>,
    initial: StateId,
    unmatched_policy: UnmatchedPolicy,
    declared_deterministic: bool,
    built: bool,
}

impl fmt::Debug for MachineDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MachineDef")
            .field("name", &self.name)
            .field("states", &self.states.len())
            .field("transitions", &self.transitions.len())
            .field("initial", &self.initial)
            .finish()
    }
}

/// Chainable configuration for a transition just added to a [`MachineDef`].
pub struct TransitionBuilder<'a> {
    transition: &'a mut Transition,
}

impl TransitionBuilder<'_> {
    /// Sets the predicate `P_t`. Absent predicate means `true`.
    pub fn predicate(
        &mut self,
        p: impl Fn(&PredicateCtx<'_>) -> bool + Send + Sync + 'static,
    ) -> &mut Self {
        self.transition.predicate = Some(Arc::new(p));
        self
    }

    /// Sets the update action `A_t`. Absent action leaves variables untouched.
    pub fn action(&mut self, a: impl Fn(&mut ActionCtx<'_>) + Send + Sync + 'static) -> &mut Self {
        self.transition.action = Some(Arc::new(a));
        self
    }

    /// Attaches a human-readable label used in traces and alerts.
    pub fn label(&mut self, label: impl Into<Sym>) -> &mut Self {
        self.transition.label = Some(label.into());
        self
    }
}

impl MachineDef {
    /// Starts an empty definition. The first state added becomes the initial
    /// state.
    pub fn new(name: impl Into<Sym>) -> Self {
        MachineDef {
            name: name.into(),
            states: Vec::new(),
            state_syms: Vec::new(),
            transitions: Vec::new(),
            outgoing: Vec::new(),
            initial: StateId(0),
            unmatched_policy: UnmatchedPolicy::default(),
            declared_deterministic: false,
            built: false,
        }
    }

    /// The machine's name (used as the sync-channel address).
    pub fn name(&self) -> &'static str {
        self.name.as_str()
    }

    /// The machine's name as an interned symbol (allocation-free routing).
    pub fn name_sym(&self) -> Sym {
        self.name
    }

    /// Adds a state and returns its id.
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        self.states.push(StateInfo {
            name: name.into(),
            is_final: false,
            attack_label: None,
        });
        self.outgoing.push(Vec::new());
        StateId(self.states.len() - 1)
    }

    /// Marks a state as final: a call whose machines all sit in final states
    /// is complete and its instance is evicted from the fact base.
    pub fn mark_final(&mut self, state: StateId) {
        self.states[state.0].is_final = true;
    }

    /// Annotates a state as an attack state (`s_attack`): entering it raises
    /// an alert carrying `label`.
    pub fn mark_attack(&mut self, state: StateId, label: impl Into<String>) {
        self.states[state.0].attack_label = Some(label.into());
    }

    /// Sets the policy for events no transition accepts.
    pub fn set_unmatched_policy(&mut self, policy: UnmatchedPolicy) {
        self.unmatched_policy = policy;
    }

    /// Declares that this machine's predicates are mutually disjoint
    /// (Definition 1's determinism requirement), letting release builds
    /// stop predicate evaluation at the first enabled transition instead
    /// of evaluating every sibling to detect overlap.
    ///
    /// The declaration is an assertion, not a proof: debug builds keep the
    /// exhaustive scan and still set
    /// [`crate::instance::StepOutcome::nondeterministic`] on a violation,
    /// so test suites and fuzz harnesses (which run unoptimized) catch a
    /// machine whose declaration is wrong before a release binary silently
    /// takes first-in-definition-order.
    pub fn declare_deterministic(&mut self) {
        self.declared_deterministic = true;
    }

    /// Whether the step function may stop at the first enabled transition
    /// in this build: the builder declared disjoint predicates and this is
    /// a release build (debug builds always verify the declaration).
    pub(crate) fn short_circuits(&self) -> bool {
        self.declared_deterministic && !cfg!(debug_assertions)
    }

    /// Adds a transition on `event_name` from `from` to `to`, returning a
    /// builder for its predicate/action/label. `event_name` `"*"` matches
    /// any event.
    pub fn add_transition(
        &mut self,
        from: StateId,
        event_name: impl Into<Sym>,
        to: StateId,
    ) -> TransitionBuilder<'_> {
        self.transitions.push(Transition {
            from,
            event_name: event_name.into(),
            to,
            predicate: None,
            action: None,
            label: None,
        });
        // A `from` belonging to another machine has no slot here; leave it
        // unindexed so `build` can reject it as a dangling transition.
        if let Some(out) = self.outgoing.get_mut(from.0) {
            out.push((self.transitions.len() - 1) as u32);
        }
        TransitionBuilder {
            transition: self.transitions.last_mut().unwrap(),
        }
    }

    /// Validates the definition.
    ///
    /// # Errors
    ///
    /// * [`BuildError::NoStates`] — a machine needs at least one state.
    /// * [`BuildError::DanglingTransition`] — a transition references a
    ///   state id from another machine (impossible through the safe API but
    ///   checked for defense in depth).
    pub fn build(mut self) -> Result<MachineDef, BuildError> {
        if self.states.is_empty() {
            return Err(BuildError::NoStates);
        }
        for (i, t) in self.transitions.iter().enumerate() {
            if t.from.0 >= self.states.len() || t.to.0 >= self.states.len() {
                return Err(BuildError::DanglingTransition { index: i });
            }
        }
        self.state_syms = self.states.iter().map(|s| Sym::intern(&s.name)).collect();
        self.built = true;
        Ok(self)
    }

    /// The initial state.
    pub fn initial_state(&self) -> StateId {
        self.initial
    }

    /// The number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The name of a state.
    pub fn state_name(&self, state: StateId) -> &str {
        &self.states[state.0].name
    }

    /// The name of a state as an interned symbol (allocation-free after
    /// [`MachineDef::build`]; interns lazily on an unbuilt definition).
    pub fn state_sym(&self, state: StateId) -> Sym {
        self.state_syms
            .get(state.0)
            .copied()
            .unwrap_or_else(|| Sym::intern(&self.states[state.0].name))
    }

    /// Whether the state is final.
    pub fn is_final_state(&self, state: StateId) -> bool {
        self.states[state.0].is_final
    }

    /// The attack label of a state, if it is an attack state.
    pub fn attack_label(&self, state: StateId) -> Option<&str> {
        self.states[state.0].attack_label.as_deref()
    }

    /// Looks up a state id by name (test and tooling convenience).
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|s| s.name == name).map(StateId)
    }

    pub(crate) fn unmatched_policy(&self) -> UnmatchedPolicy {
        self.unmatched_policy
    }

    pub(crate) fn transitions_from(
        &self,
        state: StateId,
    ) -> impl Iterator<Item = (usize, &Transition)> + '_ {
        self.outgoing
            .get(state.0)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .map(move |&i| (i as usize, &self.transitions[i as usize]))
    }

    pub(crate) fn transition(&self, index: usize) -> &Transition {
        &self.transitions[index]
    }
}

/// Error returned by [`MachineDef::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// The machine has no states.
    NoStates,
    /// A transition references an out-of-range state.
    DanglingTransition {
        /// Index of the offending transition.
        index: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NoStates => f.write_str("machine has no states"),
            BuildError::DanglingTransition { index } => {
                write!(f, "transition {index} references an unknown state")
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_machine() {
        let mut def = MachineDef::new("m");
        let a = def.add_state("A");
        let b = def.add_state("B");
        def.mark_final(b);
        def.add_transition(a, "go", b).label("a->b");
        let def = def.build().unwrap();
        assert_eq!(def.state_count(), 2);
        assert_eq!(def.transition_count(), 1);
        assert_eq!(def.initial_state(), a);
        assert!(def.is_final_state(b));
        assert!(!def.is_final_state(a));
        assert_eq!(def.state_name(a), "A");
        assert_eq!(def.state_by_name("B"), Some(b));
        assert_eq!(def.state_by_name("C"), None);
    }

    #[test]
    fn attack_states_carry_labels() {
        let mut def = MachineDef::new("m");
        let a = def.add_state("A");
        let atk = def.add_state("Attack");
        def.mark_attack(atk, "INVITE flooding");
        def.add_transition(a, "flood", atk);
        let def = def.build().unwrap();
        assert_eq!(def.attack_label(atk), Some("INVITE flooding"));
        assert_eq!(def.attack_label(a), None);
    }

    #[test]
    fn empty_machine_fails_build() {
        assert_eq!(
            MachineDef::new("m").build().unwrap_err(),
            BuildError::NoStates
        );
    }
}
