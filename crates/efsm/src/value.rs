//! State-variable values `v̄` and their domains `D`.

use std::collections::BTreeMap;
use std::fmt;

/// A value a state variable or event argument can take.
///
/// The paper's Definition 1 leaves domains abstract; in a VoIP monitor the
/// variables are addresses, identifiers, counters and timestamps, all of
/// which map onto these four variants.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Signed integer (sequence deltas, gaps).
    Int(i64),
    /// Unsigned integer (counters, ports, timestamps in ms/ticks).
    Uint(u64),
    /// Text (Call-IDs, tags, branch parameters, addresses, codec names).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// The contained unsigned integer, if this is a `Uint`.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            Value::Uint(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained signed integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The contained boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes, used by the paper's §7.3
    /// per-call memory accounting.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Value::Int(_) | Value::Uint(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => s.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Uint(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Uint(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Uint(v as u64)
    }
}

impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value::Uint(v as u64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A named collection of state variables.
///
/// By convention (mirroring the paper's Fig. 2) local variable names start
/// with `l_` and global (call-shared) names with `g_`, though the map does
/// not enforce this.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VarMap {
    vars: BTreeMap<String, Value>,
}

impl VarMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        VarMap::default()
    }

    /// Sets a variable, replacing any existing value.
    pub fn set(&mut self, name: &str, value: impl Into<Value>) {
        self.vars.insert(name.to_owned(), value.into());
    }

    /// Looks up a variable.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// Unsigned integer shortcut; `None` if absent or a different type.
    pub fn uint(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(Value::as_uint)
    }

    /// Signed integer shortcut.
    pub fn int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_int)
    }

    /// String shortcut.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Boolean shortcut, defaulting to `false` when absent.
    pub fn flag(&self, name: &str) -> bool {
        self.get(name).and_then(Value::as_bool).unwrap_or(false)
    }

    /// Removes a variable, returning its value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.vars.remove(name)
    }

    /// Increments a `Uint` counter by 1, creating it at 1 if absent, and
    /// returns the new value. Used by the paper's `pck_counter`.
    pub fn increment(&mut self, name: &str) -> u64 {
        let next = self.uint(name).unwrap_or(0) + 1;
        self.set(name, next);
        next
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Approximate memory footprint: names plus values plus map overhead.
    /// Backs the §7.3 per-call memory cost evaluation (E5).
    pub fn memory_bytes(&self) -> usize {
        self.vars
            .iter()
            .map(|(k, v)| k.len() + v.memory_bytes() + 16)
            .sum()
    }
}

impl FromIterator<(String, Value)> for VarMap {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        VarMap {
            vars: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors() {
        let mut v = VarMap::new();
        v.set("l_count", 3u64);
        v.set("l_gap", -2i64);
        v.set("g_call_id", "abc");
        v.set("l_armed", true);
        assert_eq!(v.uint("l_count"), Some(3));
        assert_eq!(v.int("l_gap"), Some(-2));
        assert_eq!(v.str("g_call_id"), Some("abc"));
        assert!(v.flag("l_armed"));
        assert!(!v.flag("missing"));
        assert_eq!(v.uint("g_call_id"), None);
    }

    #[test]
    fn increment_counter() {
        let mut v = VarMap::new();
        assert_eq!(v.increment("pck_counter"), 1);
        assert_eq!(v.increment("pck_counter"), 2);
        assert_eq!(v.uint("pck_counter"), Some(2));
    }

    #[test]
    fn set_replaces() {
        let mut v = VarMap::new();
        v.set("x", 1u64);
        v.set("x", 2u64);
        assert_eq!(v.uint("x"), Some(2));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn memory_accounting_scales_with_content() {
        let mut small = VarMap::new();
        small.set("a", 1u64);
        let mut big = VarMap::new();
        big.set("a", "a-rather-long-call-identifier@host.example.com");
        assert!(big.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(5u32), Value::Uint(5));
        assert_eq!(Value::from(5u16), Value::Uint(5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(-1i64), Value::Int(-1));
    }
}
