//! State-variable values `v̄` and their domains `D`.
//!
//! `VarMap` is the storage behind machine-local (`l_*`) and call-global
//! (`g_*`) variables and behind every event's argument vector. It used to
//! be a `BTreeMap<String, Value>` — a heap-allocated key per `set()`, a
//! node allocation per entry, and byte-wise string compares per probe. It
//! is now a sorted inline array of `(Sym, Value)` pairs ([`InlineVec`])
//! that spills to the heap only past [`VARMAP_INLINE`] entries: typical
//! argument vectors never touch the allocator, and lookups are a binary
//! search over `u32` symbol ids.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem;

use crate::intern::{Sym, SymKey};

/// A value a state variable or event argument can take.
///
/// The paper's Definition 1 leaves domains abstract; in a VoIP monitor the
/// variables are addresses, identifiers, counters and timestamps. `Str`
/// owns its bytes; `Sym` is an interned handle (what the classifier
/// produces for wire strings such as Call-IDs and tags). The two compare,
/// order and hash as the same logical string, so consumers never care
/// which one a producer chose.
#[derive(Debug, Clone)]
pub enum Value {
    /// Signed integer (sequence deltas, gaps).
    Int(i64),
    /// Unsigned integer (counters, ports, timestamps in ms/ticks).
    Uint(u64),
    /// Owned text.
    Str(String),
    /// Interned text (Call-IDs, tags, addresses — see [`crate::intern`]).
    Sym(Sym),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// The contained unsigned integer, if this is a `Uint`.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            Value::Uint(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained signed integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained text, if this is textual (either representation).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            Value::Sym(v) => Some(v.as_str()),
            _ => None,
        }
    }

    /// The contained text as an interned symbol, if textual. `Str` is
    /// looked up without interning.
    pub fn as_sym(&self) -> Option<Sym> {
        match self {
            Value::Sym(v) => Some(*v),
            Value::Str(v) => Sym::lookup(v),
            _ => None,
        }
    }

    /// The contained boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes, used by the paper's §7.3
    /// per-call memory accounting. A `Str` costs its `String` header plus
    /// heap *capacity* (`len` alone undercounted by at least the 24-byte
    /// header); a `Sym` is a 4-byte handle whose text lives in the shared
    /// interner.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Value::Int(_) | Value::Uint(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => mem::size_of::<String>() + s.capacity(),
            Value::Sym(_) => 4,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Uint(_) => 1,
            Value::Str(_) | Value::Sym(_) => 2,
            Value::Bool(_) => 3,
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Bool(false)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Uint(a), Value::Uint(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            // The interner dedups, so symbol ids compare in O(1).
            (Value::Sym(a), Value::Sym(b)) => a == b,
            // Str and Sym are the same logical string.
            (a, b) if a.rank() == 2 && b.rank() == 2 => a.as_str() == b.as_str(),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Uint(a), Value::Uint(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Sym(a), Value::Sym(b)) if a == b => std::cmp::Ordering::Equal,
            (a, b) if a.rank() == 2 && b.rank() == 2 => a.as_str().cmp(&b.as_str()),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Int(v) => v.hash(state),
            Value::Uint(v) => v.hash(state),
            Value::Bool(v) => v.hash(state),
            // Must hash identically for Str and Sym since they compare equal.
            Value::Str(_) | Value::Sym(_) => self.as_str().hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Uint(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Sym(v) => write!(f, "{:?}", v.as_str()),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Uint(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Uint(v as u64)
    }
}

impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value::Uint(v as u64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        // Interning here makes even naive `set(name, text)` call sites
        // allocation-free once the string has been seen; compares equal
        // to `Value::Str` of the same text.
        Value::Sym(Sym::intern(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Sym> for Value {
    fn from(v: Sym) -> Self {
        Value::Sym(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A vector that stores its first `N` elements inline and spills to a
/// heap `Vec` only past that. `T: Default` fills unused inline slots.
#[derive(Clone)]
pub struct InlineVec<T, const N: usize> {
    len: usize,
    inline: [T; N],
    spill: Vec<T>,
}

impl<T: Default, const N: usize> InlineVec<T, N> {
    /// An empty vector (no heap allocation).
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            inline: std::array::from_fn(|_| T::default()),
            spill: Vec::new(),
        }
    }

    fn is_spilled(&self) -> bool {
        !self.spill.is_empty()
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The live elements as a slice, regardless of representation.
    pub fn as_slice(&self) -> &[T] {
        if self.is_spilled() {
            &self.spill
        } else {
            &self.inline[..self.len]
        }
    }

    /// The live elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.is_spilled() {
            &mut self.spill
        } else {
            &mut self.inline[..self.len]
        }
    }

    fn spill_now(&mut self) {
        debug_assert!(!self.is_spilled());
        self.spill.reserve(self.len + 1);
        for slot in &mut self.inline[..self.len] {
            self.spill.push(mem::take(slot));
        }
    }

    /// Appends an element, spilling to the heap if the inline space is
    /// exhausted.
    pub fn push(&mut self, value: T) {
        if self.is_spilled() {
            self.spill.push(value);
        } else if self.len < N {
            self.inline[self.len] = value;
        } else {
            self.spill_now();
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Inserts `value` at `index`, shifting later elements right.
    pub fn insert(&mut self, index: usize, value: T) {
        assert!(index <= self.len, "insert index out of bounds");
        if !self.is_spilled() && self.len == N {
            self.spill_now();
        }
        if self.is_spilled() {
            self.spill.insert(index, value);
        } else {
            self.inline[index..=self.len].rotate_right(1);
            self.inline[index] = value;
        }
        self.len += 1;
    }

    /// Removes and returns the element at `index`, shifting later
    /// elements left. A spilled vector stays spilled.
    pub fn remove(&mut self, index: usize) -> T {
        assert!(index < self.len, "remove index out of bounds");
        self.len -= 1;
        if self.is_spilled() {
            self.spill.remove(index)
        } else {
            let value = mem::take(&mut self.inline[index]);
            self.inline[index..=self.len].rotate_left(1);
            value
        }
    }

    /// Drops every element, keeping any spill capacity.
    pub fn clear(&mut self) {
        for slot in &mut self.inline[..self.len.min(N)] {
            *slot = T::default();
        }
        self.spill.clear();
        self.len = 0;
    }

    /// Iterates over the live elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    /// Heap bytes owned by the container itself (zero while inline).
    pub fn heap_bytes(&self) -> usize {
        self.spill.capacity() * mem::size_of::<T>()
    }
}

impl<T: Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: fmt::Debug + Default, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: PartialEq + Default, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq + Default, const N: usize> Eq for InlineVec<T, N> {}

impl<T: PartialEq + Default, const N: usize> PartialEq<[T]> for InlineVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T: PartialEq + Default, const N: usize, const M: usize> PartialEq<[T; M]> for InlineVec<T, N> {
    fn eq(&self, other: &[T; M]) -> bool {
        self.as_slice() == other
    }
}

impl<T: Default, const N: usize> std::ops::Index<usize> for InlineVec<T, N> {
    type Output = T;

    fn index(&self, index: usize) -> &T {
        &self.as_slice()[index]
    }
}

impl<T: Default, const N: usize> std::ops::IndexMut<usize> for InlineVec<T, N> {
    fn index_mut(&mut self, index: usize) -> &mut T {
        &mut self.as_mut_slice()[index]
    }
}

impl<T: Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

/// Consuming iterator over an [`InlineVec`].
pub struct InlineVecIntoIter<T, const N: usize> {
    inline: std::iter::Take<std::array::IntoIter<T, N>>,
    spill: std::vec::IntoIter<T>,
}

impl<T, const N: usize> Iterator for InlineVecIntoIter<T, N> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.inline.next().or_else(|| self.spill.next())
    }
}

impl<T: Default, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = InlineVecIntoIter<T, N>;

    fn into_iter(self) -> Self::IntoIter {
        let inline_live = if self.is_spilled() { 0 } else { self.len };
        InlineVecIntoIter {
            inline: self.inline.into_iter().take(inline_live),
            spill: self.spill.into_iter(),
        }
    }
}

impl<'a, T: Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Inline capacity of a [`VarMap`]: covers every classifier-produced
/// argument vector except INVITE/answer events carrying SDP (13 entries),
/// which spill once during call setup — never in steady state.
pub const VARMAP_INLINE: usize = 12;

/// A named collection of state variables, sorted by symbol id.
///
/// By convention (mirroring the paper's Fig. 2) local variable names start
/// with `l_` and global (call-shared) names with `g_`, though the map does
/// not enforce this. Keys accept either `&str` or [`Sym`] (via
/// [`SymKey`]): writes intern the name, reads only *look up* — probing
/// for a name nobody ever interned is allocation-free and grows nothing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VarMap {
    /// Sorted symbol ids, split from the values so a probe scans a dense
    /// `u32` array (48 bytes inline — one cache line) instead of striding
    /// across 40-byte `(Sym, Value)` pairs.
    keys: InlineVec<Sym, VARMAP_INLINE>,
    vals: InlineVec<Value, VARMAP_INLINE>,
}

impl VarMap {
    /// Creates an empty map (no heap allocation).
    pub fn new() -> Self {
        VarMap::default()
    }

    fn position(&self, sym: Sym) -> Result<usize, usize> {
        // Linear early-exit scan: at the map's size (≤ ~15 entries) this
        // beats binary search — the ids are contiguous and the loop is
        // predictable.
        let keys = self.keys.as_slice();
        let id = sym.id();
        let mut i = 0;
        while i < keys.len() && keys[i].id() < id {
            i += 1;
        }
        if i < keys.len() && keys[i].id() == id {
            Ok(i)
        } else {
            Err(i)
        }
    }

    /// Sets a variable, replacing any existing value.
    pub fn set(&mut self, name: impl SymKey, value: impl Into<Value>) {
        let sym = name.to_sym();
        match self.position(sym) {
            Ok(i) => self.vals.as_mut_slice()[i] = value.into(),
            Err(i) => {
                self.keys.insert(i, sym);
                self.vals.insert(i, value.into());
            }
        }
    }

    /// Looks up a variable.
    pub fn get(&self, name: impl SymKey) -> Option<&Value> {
        let sym = name.find_sym()?;
        let i = self.position(sym).ok()?;
        Some(&self.vals.as_slice()[i])
    }

    /// Unsigned integer shortcut; `None` if absent or a different type.
    pub fn uint(&self, name: impl SymKey) -> Option<u64> {
        self.get(name).and_then(Value::as_uint)
    }

    /// Signed integer shortcut.
    pub fn int(&self, name: impl SymKey) -> Option<i64> {
        self.get(name).and_then(Value::as_int)
    }

    /// String shortcut (matches both `Str` and `Sym` values).
    pub fn str(&self, name: impl SymKey) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Interned-symbol shortcut for textual values.
    pub fn sym(&self, name: impl SymKey) -> Option<Sym> {
        self.get(name).and_then(Value::as_sym)
    }

    /// Boolean shortcut, defaulting to `false` when absent.
    pub fn flag(&self, name: impl SymKey) -> bool {
        self.get(name).and_then(Value::as_bool).unwrap_or(false)
    }

    /// Removes a variable, returning its value.
    pub fn remove(&mut self, name: impl SymKey) -> Option<Value> {
        let sym = name.find_sym()?;
        let i = self.position(sym).ok()?;
        self.keys.remove(i);
        Some(self.vals.remove(i))
    }

    /// Increments a `Uint` counter by 1, creating it at 1 if absent, and
    /// returns the new value. Used by the paper's `pck_counter`.
    pub fn increment(&mut self, name: impl SymKey) -> u64 {
        let sym = name.to_sym();
        match self.position(sym) {
            Ok(i) => {
                let slot = &mut self.vals.as_mut_slice()[i];
                let next = slot.as_uint().unwrap_or(0) + 1;
                *slot = Value::Uint(next);
                next
            }
            Err(i) => {
                self.keys.insert(i, sym);
                self.vals.insert(i, Value::Uint(1));
                1
            }
        }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over `(name, value)` pairs in symbol-id order (pre-seeded
    /// names first, then dynamic names in first-interned order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .map(|(s, v)| (s.as_str(), v))
    }

    /// Iterates over `(symbol, value)` pairs in symbol-id order.
    pub fn iter_syms(&self) -> impl Iterator<Item = (Sym, &Value)> {
        self.keys.iter().zip(self.vals.iter()).map(|(s, v)| (*s, v))
    }

    /// Approximate memory footprint: entry handles plus values plus any
    /// spill-heap. Backs the §7.3 per-call memory cost evaluation (E5).
    /// Interned names are shared process-wide and counted at handle size.
    pub fn memory_bytes(&self) -> usize {
        let entries: usize = self
            .vals
            .iter()
            .map(|v| mem::size_of::<Sym>() + v.memory_bytes() + 16)
            .sum();
        entries + self.keys.heap_bytes() + self.vals.heap_bytes()
    }
}

impl FromIterator<(Sym, Value)> for VarMap {
    fn from_iter<I: IntoIterator<Item = (Sym, Value)>>(iter: I) -> Self {
        let mut map = VarMap::new();
        for (name, value) in iter {
            map.set(name, value);
        }
        map
    }
}

impl FromIterator<(String, Value)> for VarMap {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = VarMap::new();
        for (name, value) in iter {
            map.set(&name, value);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors() {
        let mut v = VarMap::new();
        v.set("l_count", 3u64);
        v.set("l_gap", -2i64);
        v.set("g_call_id", "abc");
        v.set("l_armed", true);
        assert_eq!(v.uint("l_count"), Some(3));
        assert_eq!(v.int("l_gap"), Some(-2));
        assert_eq!(v.str("g_call_id"), Some("abc"));
        assert!(v.flag("l_armed"));
        assert!(!v.flag("missing"));
        assert_eq!(v.uint("g_call_id"), None);
    }

    #[test]
    fn increment_counter() {
        let mut v = VarMap::new();
        assert_eq!(v.increment("pck_counter"), 1);
        assert_eq!(v.increment("pck_counter"), 2);
        assert_eq!(v.uint("pck_counter"), Some(2));
    }

    #[test]
    fn set_replaces() {
        let mut v = VarMap::new();
        v.set("x", 1u64);
        v.set("x", 2u64);
        assert_eq!(v.uint("x"), Some(2));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn remove_and_missing_reads_never_intern() {
        let mut v = VarMap::new();
        v.set("x", 7u64);
        assert_eq!(v.remove("x"), Some(Value::Uint(7)));
        assert_eq!(v.remove("x"), None);
        // A read miss on a never-seen name must not grow the interner.
        assert!(v.get("varmap-test-never-interned").is_none());
        assert_eq!(Sym::lookup("varmap-test-never-interned"), None);
    }

    #[test]
    fn memory_accounting_scales_with_content() {
        let mut small = VarMap::new();
        small.set("a", 1u64);
        let mut big = VarMap::new();
        // Owned strings are charged header + capacity; `len` alone
        // undercounted by at least the 24-byte String header.
        big.set(
            "a",
            "a-rather-long-call-identifier@host.example.com".to_owned(),
        );
        assert!(big.memory_bytes() > small.memory_bytes());
        assert!(Value::Str(String::new()).memory_bytes() >= mem::size_of::<String>());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(5u32), Value::Uint(5));
        assert_eq!(Value::from(5u16), Value::Uint(5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(-1i64), Value::Int(-1));
    }

    #[test]
    fn str_and_sym_are_one_logical_string() {
        use std::collections::hash_map::DefaultHasher;
        let a = Value::Str("same-text".into());
        let b = Value::Sym(Sym::intern("same-text"));
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        let hash = |v: &Value| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(b.as_sym(), a.as_sym());
    }

    #[test]
    fn inline_vec_spills_past_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.heap_bytes(), 0, "inline while len <= N");
        v.push(4);
        assert!(v.heap_bytes() > 0, "spilled past N");
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(v.remove(0), 0);
        v.insert(0, 9);
        assert_eq!(v.as_slice(), &[9, 1, 2, 3, 4]);
        assert_eq!(
            v.clone().into_iter().collect::<Vec<_>>(),
            vec![9, 1, 2, 3, 4]
        );

        let mut inline: InlineVec<u32, 4> = InlineVec::new();
        inline.push(1);
        inline.insert(0, 0);
        assert_eq!(inline.as_slice(), &[0, 1]);
        assert_eq!(inline.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn varmap_iterates_in_symbol_id_order_and_spills() {
        let mut v = VarMap::new();
        for i in 0..(VARMAP_INLINE + 3) {
            v.set(format!("spill-key-{i}").as_str(), i as u64);
        }
        assert_eq!(v.len(), VARMAP_INLINE + 3);
        let ids: Vec<u32> = v.iter_syms().map(|(s, _)| s.id()).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted by symbol id");
        for i in 0..(VARMAP_INLINE + 3) {
            assert_eq!(v.uint(format!("spill-key-{i}").as_str()), Some(i as u64));
        }
    }
}
