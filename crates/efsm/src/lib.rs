//! # vids-efsm — extended finite state machines and their composition
//!
//! The formal model of the paper's §4: an EFSM `M = (Σ, S, v, D, T)` where
//! each transition `t = <s_t, event, P_t, A_t, q_t>` carries a predicate
//! `P_t(x̄ ∪ v̄)` over the event's argument vector and the current state
//! variables, and an update action `A_t(v̄)` applied before entering the new
//! state.
//!
//! The crate provides:
//!
//! * [`value::Value`] / [`value::VarMap`] — state variables `v̄` and their
//!   domains, split into machine-local (`v.l_…`) and call-global (`v.g_…`)
//!   scopes exactly as in the paper's Fig. 2.
//! * [`event::Event`] — input alphabet Σ: data-packet events (`c?event(x̄)`),
//!   internal synchronization events (δ), and timer expirations.
//! * [`machine::MachineDef`] — a declarative builder for deterministic
//!   EFSMs, with states annotated as *final* or *attack* states.
//! * [`instance::MachineInstance`] — a running configuration `(s, v̄)`.
//! * [`network::Network`] — communicating EFSMs: the output of one machine
//!   feeds the FIFO input queue of another, and queued synchronization
//!   events have **higher priority than data packet events** (§4.2).
//! * [`trace::Trace`] — a replayable record of every transition taken.
//!
//! ```
//! use vids_efsm::machine::MachineDef;
//! use vids_efsm::event::Event;
//! use vids_efsm::instance::MachineInstance;
//!
//! let mut def = MachineDef::new("toy");
//! let init = def.add_state("INIT");
//! let done = def.add_state("DONE");
//! def.mark_final(done);
//! def.add_transition(init, "go", done)
//!     .predicate(|ctx| ctx.event.uint_arg("n").unwrap_or(0) > 0)
//!     .action(|ctx| {
//!         let n = ctx.event.uint_arg("n").unwrap();
//!         ctx.locals.set("l_count", n);
//!     });
//! let def = def.build().unwrap();
//!
//! let mut m = MachineInstance::new(&def);
//! let outcome = m.step(&def, &Event::data("go").with_uint("n", 3), &mut Default::default());
//! assert!(outcome.transitioned());
//! assert!(m.is_final(&def));
//! ```

pub mod analysis;
pub mod event;
pub mod instance;
pub mod intern;
pub mod machine;
pub mod network;
pub mod trace;
pub mod value;

pub use analysis::{attack_paths, AttackPath};
pub use event::{Event, EventKind};
pub use instance::{MachineInstance, StepOutcome};
pub use intern::{sym, Sym, SymKey};
pub use machine::{BuildError, MachineDef, StateId};
pub use network::{MachineId, Network, NetworkOutcome, NoopObserver, TransitionObserver};
pub use trace::{Trace, TraceEntry};
pub use value::{InlineVec, Value, VarMap};
