//! Communicating EFSMs (§4.2): machines wired together through reliable FIFO
//! synchronization channels, sharing call-global variables.
//!
//! Processing rule, verbatim from the paper: "The synchronization events
//! waiting in a FIFO queue have higher priority than the data packet
//! events." Before and after any data event is delivered, every queued δ
//! event is drained (which can cascade: a sync delivery may emit further
//! sync events).

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use crate::event::Event;
use crate::instance::MachineInstance;
use crate::intern::Sym;
use crate::machine::MachineDef;
use crate::trace::{Trace, TraceEntry};
use crate::value::VarMap;

/// Index of a machine within its [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(usize);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// An alert raised when some machine entered an attack state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackAlert {
    /// Monitor time of the detection.
    pub time_ms: u64,
    /// Which machine detected it.
    pub machine: String,
    /// The attack state's label.
    pub label: String,
}

impl fmt::Display for AttackAlert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} ms] {}: ATTACK {}",
            self.time_ms, self.machine, self.label
        )
    }
}

/// A specification deviation: an event no transition accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deviation {
    /// Monitor time of the deviation.
    pub time_ms: u64,
    /// Which machine rejected the event.
    pub machine: String,
    /// The offending event.
    pub event: Event,
}

impl fmt::Display for Deviation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} ms] {}: DEVIATION {}",
            self.time_ms, self.machine, self.event
        )
    }
}

/// Aggregated results of one network step (and its sync cascade).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetworkOutcome {
    /// Attack states entered, in order.
    pub alerts: Vec<AttackAlert>,
    /// Specification deviations observed, in order.
    pub deviations: Vec<Deviation>,
    /// Whether any step had multiple enabled transitions.
    pub nondeterministic: bool,
    /// Total transitions taken across all machines.
    pub transitions: usize,
    /// δ synchronization events popped off the FIFO queues and delivered.
    pub sync_deliveries: usize,
}

impl NetworkOutcome {
    /// Whether anything suspicious (attack or deviation) was observed.
    pub fn is_suspicious(&self) -> bool {
        !self.alerts.is_empty() || !self.deviations.is_empty()
    }

    fn merge(&mut self, other: NetworkOutcome) {
        self.alerts.extend(other.alerts);
        self.deviations.extend(other.deviations);
        self.nondeterministic |= other.nondeterministic;
        self.transitions += other.transitions;
        self.sync_deliveries += other.sync_deliveries;
    }
}

/// Hook invoked for every transition a network takes.
///
/// Unlike [`Trace`], which renders strings and is meant for offline
/// debugging, the observer receives only interned symbols and a clock —
/// an implementation can record telemetry or fill a ring buffer without
/// allocating, keeping the hot path on its zero-allocation budget.
pub trait TransitionObserver {
    /// Called once per taken transition, after the step is applied.
    fn on_transition(
        &mut self,
        time_ms: u64,
        machine: Sym,
        event: Sym,
        from: Sym,
        to: Sym,
        label: Option<Sym>,
    );
}

/// Observer that discards everything; the plain `deliver`/`advance_time`
/// entry points use it.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl TransitionObserver for NoopObserver {
    #[inline]
    fn on_transition(&mut self, _: u64, _: Sym, _: Sym, _: Sym, _: Sym, _: Option<Sym>) {}
}

/// A network of communicating EFSM instances for one monitored call.
///
/// Definitions are shared (`Arc`) across all concurrent calls; per-call
/// state is just each instance's configuration, the global variables, the
/// queues and the armed timers.
pub struct Network {
    defs: Vec<Arc<MachineDef>>,
    instances: Vec<MachineInstance>,
    globals: VarMap,
    sync_queues: Vec<VecDeque<Event>>,
    timers: Vec<BTreeMap<Sym, u64>>,
    trace: Option<Trace>,
    /// Ablation switch (experiment E8): when false, δ messages are dropped
    /// instead of enqueued, turning the cross-protocol monitor into a set of
    /// isolated single-protocol machines.
    sync_enabled: bool,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("machines", &self.defs.len())
            .field("globals", &self.globals.len())
            .field("sync_enabled", &self.sync_enabled)
            .finish()
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

impl Network {
    /// Creates an empty network with synchronization enabled and no tracing.
    pub fn new() -> Self {
        Network {
            defs: Vec::new(),
            instances: Vec::new(),
            globals: VarMap::new(),
            sync_queues: Vec::new(),
            timers: Vec::new(),
            trace: None,
            sync_enabled: true,
        }
    }

    /// Enables transition tracing.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// The recorded trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Disables the synchronization channels (ablation experiment E8).
    pub fn disable_sync(&mut self) {
        self.sync_enabled = false;
    }

    /// Adds a machine instance running `def`.
    pub fn add_machine(&mut self, def: Arc<MachineDef>) -> MachineId {
        self.instances.push(MachineInstance::new(&def));
        self.defs.push(def);
        self.sync_queues.push(VecDeque::new());
        self.timers.push(BTreeMap::new());
        MachineId(self.instances.len() - 1)
    }

    /// Finds a machine by its definition name.
    pub fn machine_by_name(&self, name: &str) -> Option<MachineId> {
        let sym = Sym::lookup(name)?;
        self.machine_by_sym(sym)
    }

    /// Finds a machine by its interned name (allocation- and compare-free
    /// routing on the hot path: a `u32` scan over at most a few machines).
    pub fn machine_by_sym(&self, name: Sym) -> Option<MachineId> {
        self.defs
            .iter()
            .position(|d| d.name_sym() == name)
            .map(MachineId)
    }

    /// The instance for a machine id.
    pub fn instance(&self, id: MachineId) -> &MachineInstance {
        &self.instances[id.0]
    }

    /// Mutable instance access (hosts seed initial locals through this).
    pub fn instance_mut(&mut self, id: MachineId) -> &mut MachineInstance {
        &mut self.instances[id.0]
    }

    /// The definition for a machine id.
    pub fn definition(&self, id: MachineId) -> &MachineDef {
        &self.defs[id.0]
    }

    /// Every machine of the network with its definition, in the order the
    /// machines were added (forensic snapshots walk this).
    pub fn machines(&self) -> impl Iterator<Item = (&MachineDef, &MachineInstance)> {
        self.defs
            .iter()
            .map(|d| d.as_ref())
            .zip(self.instances.iter())
    }

    /// Call-global shared variables.
    pub fn globals(&self) -> &VarMap {
        &self.globals
    }

    /// Mutable call-global shared variables.
    pub fn globals_mut(&mut self) -> &mut VarMap {
        &mut self.globals
    }

    /// Whether every machine sits in a final state (the call completed and
    /// the fact base may evict this network).
    pub fn all_final(&self) -> bool {
        self.instances
            .iter()
            .zip(&self.defs)
            .all(|(m, d)| m.is_final(d))
    }

    /// Whether any machine sits in an attack state.
    pub fn any_attack(&self) -> bool {
        self.instances
            .iter()
            .zip(&self.defs)
            .any(|(m, d)| m.is_attack(d))
    }

    /// Approximate per-call memory footprint (configurations, globals,
    /// queues and timers; definitions are shared and excluded). E5.
    pub fn memory_bytes(&self) -> usize {
        let instances: usize = self.instances.iter().map(|m| m.memory_bytes()).sum();
        let queues: usize = self
            .sync_queues
            .iter()
            .map(|q| {
                q.iter()
                    .map(|e| e.args.memory_bytes() + 8 + 8)
                    .sum::<usize>()
            })
            .sum();
        let timers: usize = self
            .timers
            .iter()
            .map(|t| t.len() * (std::mem::size_of::<Sym>() + 8))
            .sum();
        instances + queues + timers + self.globals.memory_bytes()
    }

    /// Delivers a data-packet event to `target` at time `now_ms`, then drains
    /// the sync cascade it triggers. Returns everything observed.
    pub fn deliver(&mut self, target: MachineId, event: Event, now_ms: u64) -> NetworkOutcome {
        self.deliver_observed(target, event, now_ms, &mut NoopObserver)
    }

    /// [`Network::deliver`] with a [`TransitionObserver`] notified of every
    /// transition taken (including sync-cascade steps).
    pub fn deliver_observed(
        &mut self,
        target: MachineId,
        event: Event,
        now_ms: u64,
        obs: &mut dyn TransitionObserver,
    ) -> NetworkOutcome {
        let mut outcome = NetworkOutcome::default();
        // Rule: queued sync events go first.
        outcome.merge(self.drain_sync(now_ms, obs));
        outcome.merge(self.step_one(target, &event, now_ms, obs));
        outcome.merge(self.drain_sync(now_ms, obs));
        outcome
    }

    /// The earliest armed timer deadline across all machines, if any.
    pub fn next_timer_deadline(&self) -> Option<u64> {
        self.timers.iter().flat_map(|t| t.values()).min().copied()
    }

    /// Fires every timer due at or before `now_ms`, delivering expirations as
    /// [`Event::timer`] events (and draining any sync cascade).
    pub fn advance_time(&mut self, now_ms: u64) -> NetworkOutcome {
        self.advance_time_observed(now_ms, &mut NoopObserver)
    }

    /// [`Network::advance_time`] with a [`TransitionObserver`] notified of
    /// every transition taken.
    pub fn advance_time_observed(
        &mut self,
        now_ms: u64,
        obs: &mut dyn TransitionObserver,
    ) -> NetworkOutcome {
        let mut outcome = NetworkOutcome::default();
        loop {
            // Earliest due timer across machines, for deterministic order.
            let mut due: Option<(usize, Sym, u64)> = None;
            for (i, timers) in self.timers.iter().enumerate() {
                for (name, deadline) in timers {
                    if *deadline <= now_ms
                        && due.as_ref().is_none_or(|(_, _, best)| *deadline < *best)
                    {
                        due = Some((i, *name, *deadline));
                    }
                }
            }
            let Some((machine, name, deadline)) = due else {
                break;
            };
            self.timers[machine].remove(&name);
            let event = Event::timer(name);
            outcome.merge(self.step_one(MachineId(machine), &event, deadline, obs));
            outcome.merge(self.drain_sync(deadline, obs));
        }
        outcome
    }

    fn drain_sync(&mut self, now_ms: u64, obs: &mut dyn TransitionObserver) -> NetworkOutcome {
        let mut outcome = NetworkOutcome::default();
        while let Some(machine) = self.sync_queues.iter().position(|q| !q.is_empty()) {
            let event = self.sync_queues[machine].pop_front().unwrap();
            outcome.sync_deliveries += 1;
            outcome.merge(self.step_one(MachineId(machine), &event, now_ms, obs));
        }
        outcome
    }

    fn step_one(
        &mut self,
        target: MachineId,
        event: &Event,
        now_ms: u64,
        obs: &mut dyn TransitionObserver,
    ) -> NetworkOutcome {
        // Split borrows: the definition is read-only while the instance and
        // globals mutate, so no per-step `Arc` refcount traffic is needed.
        let Network {
            defs,
            instances,
            globals,
            sync_queues,
            timers,
            trace,
            sync_enabled,
        } = self;
        let def = &defs[target.0];
        let step = instances[target.0].step_at(def, event, globals, now_ms);

        let mut outcome = NetworkOutcome {
            nondeterministic: step.nondeterministic,
            ..NetworkOutcome::default()
        };
        if let Some((from, to, label)) = step.taken {
            outcome.transitions = 1;
            obs.on_transition(
                now_ms,
                def.name_sym(),
                event.name,
                def.state_sym(from),
                def.state_sym(to),
                label,
            );
            if let Some(trace) = trace {
                trace.push(TraceEntry {
                    time_ms: now_ms,
                    machine: def.name().to_owned(),
                    event: event.to_string(),
                    from: def.state_name(from).to_owned(),
                    to: def.state_name(to).to_owned(),
                    label: label.map(String::from),
                });
            }
        }
        if let Some(label) = step.attack {
            outcome.alerts.push(AttackAlert {
                time_ms: now_ms,
                machine: def.name().to_owned(),
                label,
            });
        }
        if let Some(event) = step.deviation {
            outcome.deviations.push(Deviation {
                time_ms: now_ms,
                machine: def.name().to_owned(),
                event,
            });
        }

        // Apply requested effects.
        for (timer, delay) in step.effects.timers_set {
            timers[target.0].insert(timer, now_ms + delay);
        }
        for timer in step.effects.timers_cancelled {
            timers[target.0].remove(&timer);
        }
        if *sync_enabled {
            for (dest_name, sync_event) in step.effects.sync_out {
                if let Some(dest) = defs.iter().position(|d| d.name_sym() == dest_name) {
                    sync_queues[dest].push_back(sync_event);
                }
                // Unknown destination: dropped. The builder of the protocol
                // machines controls both sides, so this only happens in the
                // sync-disabled ablation or a misconfigured scenario.
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineDef;

    /// Two-machine network mirroring Fig. 2: the "sip" machine receives an
    /// INVITE and synchronizes the "rtp" machine, which opens using the
    /// media port the sip machine published in the globals.
    fn fig2_network() -> (Network, MachineId, MachineId) {
        let mut sip = MachineDef::new("sip");
        let init = sip.add_state("INIT");
        let rcvd = sip.add_state("INVITE_RCVD");
        sip.add_transition(init, "SIP.INVITE", rcvd).action(|ctx| {
            let port = ctx.event.uint_arg("media_port").unwrap_or(0);
            ctx.globals.set("g_media_port", port);
            ctx.locals
                .set("l_call_id", ctx.event.str_arg("call_id").unwrap_or(""));
            ctx.send_sync("rtp", Event::sync("δ_SIP→RTP"));
        });
        let sip = Arc::new(sip.build().unwrap());

        let mut rtp = MachineDef::new("rtp");
        let rinit = rtp.add_state("INIT");
        let ropen = rtp.add_state("RTP_OPEN");
        rtp.add_transition(rinit, "δ_SIP→RTP", ropen).action(|ctx| {
            let port = ctx.globals.uint("g_media_port").unwrap_or(0);
            ctx.locals.set("l_port", port);
        });
        let rtp = Arc::new(rtp.build().unwrap());

        let mut net = Network::new();
        net.enable_trace();
        let sid = net.add_machine(sip);
        let rid = net.add_machine(rtp);
        (net, sid, rid)
    }

    #[test]
    fn sync_message_propagates_global_state() {
        let (mut net, sid, rid) = fig2_network();
        let invite = Event::data("SIP.INVITE")
            .with_str("call_id", "c1")
            .with_uint("media_port", 49170);
        let outcome = net.deliver(sid, invite, 5);
        assert_eq!(outcome.transitions, 2); // sip step + rtp sync step
        assert!(!outcome.is_suspicious());
        assert_eq!(net.instance(rid).locals().uint("l_port"), Some(49170));
        assert_eq!(
            net.instance(rid).state_name(net.definition(rid)),
            "RTP_OPEN"
        );
        let trace = net.trace().unwrap();
        assert_eq!(trace.path_of("sip"), vec!["INIT", "INVITE_RCVD"]);
        assert_eq!(trace.path_of("rtp"), vec!["INIT", "RTP_OPEN"]);
    }

    #[test]
    fn disabled_sync_isolates_machines() {
        let (mut net, sid, rid) = fig2_network();
        net.disable_sync();
        let invite = Event::data("SIP.INVITE")
            .with_str("call_id", "c1")
            .with_uint("media_port", 49170);
        let outcome = net.deliver(sid, invite, 5);
        assert_eq!(outcome.transitions, 1);
        assert_eq!(net.instance(rid).state_name(net.definition(rid)), "INIT");
    }

    #[test]
    fn timer_fires_through_advance_time() {
        let mut def = MachineDef::new("m");
        let a = def.add_state("A");
        let b = def.add_state("B");
        let c = def.add_state("C");
        def.add_transition(a, "go", b)
            .action(|ctx| ctx.set_timer("T", 100));
        def.add_transition(b, "T", c);
        let def = Arc::new(def.build().unwrap());

        let mut net = Network::new();
        let id = net.add_machine(def);
        net.deliver(id, Event::data("go"), 0);
        assert_eq!(net.next_timer_deadline(), Some(100));

        // Not due yet.
        let o = net.advance_time(99);
        assert_eq!(o.transitions, 0);
        // Due now.
        let o = net.advance_time(100);
        assert_eq!(o.transitions, 1);
        assert_eq!(net.instance(id).state_name(net.definition(id)), "C");
        assert_eq!(net.next_timer_deadline(), None);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut def = MachineDef::new("m");
        let a = def.add_state("A");
        let b = def.add_state("B");
        let c = def.add_state("C");
        def.add_transition(a, "go", b)
            .action(|ctx| ctx.set_timer("T", 100));
        def.add_transition(b, "stop", b)
            .action(|ctx| ctx.cancel_timer("T"));
        def.add_transition(b, "T", c);
        let def = Arc::new(def.build().unwrap());

        let mut net = Network::new();
        let id = net.add_machine(def);
        net.deliver(id, Event::data("go"), 0);
        net.deliver(id, Event::data("stop"), 50);
        let o = net.advance_time(1_000);
        assert_eq!(o.transitions, 0);
        assert_eq!(net.instance(id).state_name(net.definition(id)), "B");
    }

    #[test]
    fn alerts_and_deviations_surface_in_outcome() {
        let mut def = MachineDef::new("m");
        let a = def.add_state("A");
        let atk = def.add_state("ATTACK");
        def.mark_attack(atk, "bye-dos");
        def.add_transition(a, "bad", atk);
        let def = Arc::new(def.build().unwrap());

        let mut net = Network::new();
        let id = net.add_machine(def);
        let o = net.deliver(id, Event::data("bad"), 7);
        assert_eq!(o.alerts.len(), 1);
        assert_eq!(o.alerts[0].label, "bye-dos");
        assert_eq!(o.alerts[0].time_ms, 7);
        assert!(net.any_attack());

        let o = net.deliver(id, Event::data("unmodeled"), 8);
        assert_eq!(o.deviations.len(), 1);
        assert!(o.is_suspicious());
    }

    #[test]
    fn all_final_reflects_every_machine() {
        let mk = |name: &str| {
            let mut d = MachineDef::new(name);
            let a = d.add_state("A");
            let z = d.add_state("Z");
            d.mark_final(z);
            d.add_transition(a, "fin", z);
            Arc::new(d.build().unwrap())
        };
        let mut net = Network::new();
        let m1 = net.add_machine(mk("m1"));
        let m2 = net.add_machine(mk("m2"));
        assert!(!net.all_final());
        net.deliver(m1, Event::data("fin"), 0);
        assert!(!net.all_final());
        net.deliver(m2, Event::data("fin"), 0);
        assert!(net.all_final());
    }

    #[test]
    fn fifo_order_is_preserved() {
        // One machine sends two syncs in one action; receiver must see them
        // in order.
        let mut tx = MachineDef::new("tx");
        let a = tx.add_state("A");
        let b = tx.add_state("B");
        tx.add_transition(a, "go", b).action(|ctx| {
            ctx.send_sync("rx", Event::sync("first"));
            ctx.send_sync("rx", Event::sync("second"));
        });
        let tx = Arc::new(tx.build().unwrap());

        let mut rx = MachineDef::new("rx");
        let r0 = rx.add_state("R0");
        let r1 = rx.add_state("R1");
        let r2 = rx.add_state("R2");
        rx.add_transition(r0, "first", r1);
        rx.add_transition(r1, "second", r2);
        let rx = Arc::new(rx.build().unwrap());

        let mut net = Network::new();
        let t = net.add_machine(tx);
        let r = net.add_machine(rx);
        let o = net.deliver(t, Event::data("go"), 0);
        assert_eq!(o.transitions, 3);
        assert!(o.deviations.is_empty(), "out-of-order sync would deviate");
        assert_eq!(net.instance(r).state_name(net.definition(r)), "R2");
    }
}
