//! Per-shard batch accumulation.
//!
//! Receiver threads classify datagrams as they arrive and push the
//! results into a [`Batcher`]; the batch is handed to the coordinator
//! when it reaches `flush_packets` events or when `flush_interval` has
//! elapsed since the oldest buffered event. The engine's batched merge
//! is deterministic under any chunking (see `tests/pool_determinism.rs`
//! in the root crate), so flush timing affects latency, never verdicts.
//!
//! The batcher is generic over the event type: the classic serve path
//! batched [`vids_core::pool::WireEvent`]s; the pipelined path batches
//! [`vids_core::pool::PreRouted`] events that already carry their
//! receiver-computed shard-routing hashes.

use std::time::Instant;

/// Accumulates classified wire events until a size or age threshold.
pub struct Batcher<T> {
    events: Vec<T>,
    flush_packets: usize,
    flush_interval_nanos: u64,
    oldest: Option<Instant>,
}

impl<T> Batcher<T> {
    /// Creates a batcher with the given thresholds (from
    /// `Config::batch_flush_packets` / `Config::batch_flush_interval`).
    pub fn new(flush_packets: usize, flush_interval_nanos: u64) -> Self {
        Batcher {
            events: Vec::with_capacity(flush_packets),
            flush_packets: flush_packets.max(1),
            flush_interval_nanos,
            oldest: None,
        }
    }

    /// Buffers one event; returns `true` if the batch is now due.
    pub fn push(&mut self, event: T) -> bool {
        if self.events.is_empty() {
            self.oldest = Some(Instant::now());
        }
        self.events.push(event);
        self.events.len() >= self.flush_packets
    }

    /// Whether the oldest buffered event has waited past the interval.
    pub fn overdue(&self, now: Instant) -> bool {
        match self.oldest {
            Some(oldest) => {
                !self.events.is_empty()
                    && now.duration_since(oldest).as_nanos() as u64 >= self.flush_interval_nanos
            }
            None => false,
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Takes the buffered batch, swapping in `spare` so the allocation
    /// keeps cycling between the receiver and the coordinator.
    pub fn take(&mut self, mut spare: Vec<T>) -> Vec<T> {
        spare.clear();
        self.oldest = None;
        std::mem::replace(&mut self.events, spare)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vids_core::classify::Classified;
    use vids_core::pool::WireEvent;
    use vids_netsim::time::SimTime;

    fn ev() -> WireEvent {
        WireEvent {
            classified: Classified::Ignored,
            at: SimTime::ZERO,
        }
    }

    #[test]
    fn flushes_on_size() {
        let mut b = Batcher::new(3, u64::MAX);
        assert!(!b.push(ev()));
        assert!(!b.push(ev()));
        assert!(b.push(ev()));
        let batch = b.take(Vec::new());
        assert_eq!(batch.len(), 3);
        assert!(b.is_empty());
    }

    #[test]
    fn overdue_tracks_the_oldest_event() {
        let mut b = Batcher::new(1_000, 0);
        assert!(!b.overdue(Instant::now()));
        b.push(ev());
        // Zero interval: due the moment anything is buffered.
        assert!(b.overdue(Instant::now()));
        b.take(Vec::new());
        assert!(!b.overdue(Instant::now()));
    }

    #[test]
    fn take_recycles_the_spare_allocation() {
        let mut b = Batcher::new(2, u64::MAX);
        b.push(ev());
        let spare = Vec::with_capacity(64);
        let cap = spare.capacity();
        let batch = b.take(spare);
        assert_eq!(batch.len(), 1);
        assert!(b.events.capacity() >= cap);
    }
}
