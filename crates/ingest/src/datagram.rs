//! The wire-level unit of ingestion.

use std::net::SocketAddr;

use vids_netsim::packet::Address;
use vids_netsim::time::SimTime;

/// A borrowed view of one UDP datagram as it came off the wire.
///
/// The payload borrows the source's receive buffer — a socket's `recv`
/// scratch space or the mapped bytes of a pcap file — so classification
/// runs with no copy. The view only lives for one delivery; anything the
/// engine keeps (interned header fields, event arguments) is extracted by
/// [`crate::demux::classify_datagram`] before the buffer is reused.
#[derive(Debug, Clone, Copy)]
pub struct Datagram<'a> {
    /// Where the datagram came from.
    pub src: SocketAddr,
    /// Where it was addressed (the local socket address for live capture).
    pub dst: SocketAddr,
    /// When it was received, on the source's clock.
    pub at: SimTime,
    /// The UDP payload, borrowed from the receive buffer.
    pub payload: &'a [u8],
}

impl Datagram<'_> {
    /// The engine's IPv4 address pair, or `None` for traffic the engine
    /// does not model (IPv6 without an IPv4-mapped form).
    pub fn engine_addrs(&self) -> Option<(Address, Address)> {
        Some((to_address(self.src)?, to_address(self.dst)?))
    }
}

fn to_address(sa: SocketAddr) -> Option<Address> {
    match sa {
        SocketAddr::V4(v4) => {
            let [a, b, c, d] = v4.ip().octets();
            Some(Address::new(a, b, c, d, v4.port()))
        }
        SocketAddr::V6(v6) => v6.ip().to_ipv4_mapped().map(|ip| {
            let [a, b, c, d] = ip.octets();
            Address::new(a, b, c, d, v6.port())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_and_mapped_v6_addresses_convert() {
        let d = Datagram {
            src: "10.1.0.10:5060".parse().unwrap(),
            dst: "[::ffff:10.2.0.10]:5060".parse().unwrap(),
            at: SimTime::ZERO,
            payload: b"",
        };
        let (src, dst) = d.engine_addrs().unwrap();
        assert_eq!(src, Address::new(10, 1, 0, 10, 5060));
        assert_eq!(dst, Address::new(10, 2, 0, 10, 5060));

        let v6 = Datagram {
            src: "[2001:db8::1]:5060".parse().unwrap(),
            dst: "10.2.0.10:5060".parse().unwrap(),
            at: SimTime::ZERO,
            payload: b"",
        };
        assert!(v6.engine_addrs().is_none());
    }
}
