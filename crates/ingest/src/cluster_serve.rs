//! The federated serve pipeline: receiver threads feeding a
//! [`Cluster`] gateway instead of a single pool.
//!
//! Same thread layout as [`crate::server`] — one receiver thread per
//! socket, batches over a crossbeam channel, the caller's thread as
//! coordinator — but each datagram is classified into a
//! [`ClusterEvent`] carrying its IPv4 source (the tenant-mapping key),
//! and the coordinator drives [`Cluster::process_batch`], which scatters
//! every batch across the per-tenant, per-node pools and merges the
//! alerts back deterministically.
//!
//! Differences from the single-pool path, on purpose:
//!
//! * No shard-worker pipeline inside the coordinator: the cluster gateway
//!   is itself the fan-out layer, and each node pool runs its batch
//!   inline. (Per-node OS threads are a deployment concern the in-process
//!   federation deliberately models without.)
//! * No flight recorder: forensic dumps stay a single-pool feature;
//!   record a tenant's traffic by serving it through `vids serve
//!   --record` undistributed.
//! * Plain-IPv6 datagrams have no IPv4 source to map, so they fall to the
//!   default tenant's drop accounting (they are dropped either way — the
//!   engine models IPv4 only).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crossbeam::channel;
use vids_cluster::{Cluster, ClusterEvent};
use vids_core::sink::AlertSink;
use vids_core::telemetry::Counter;
use vids_netsim::time::SimTime;

use crate::batch::Batcher;
use crate::demux::{classify_datagram, WireClass};
use crate::server::{ServeOptions, ServeReport};
use crate::source::IngestError;
use crate::udp::{UdpPool, UdpSource};

/// Socket-side counters, updated by receivers, read by the coordinator.
#[derive(Default)]
struct IngestStats {
    rx: AtomicU64,
    dropped: AtomicU64,
    unknown: AtomicU64,
    ipv6: AtomicU64,
}

/// Binds the receiver loops to `cluster` and serves until `stop` is set.
/// The cluster's own telemetry slab (when enabled) receives the
/// socket-side counters, so [`Cluster::telemetry_snapshot`] reports them
/// exactly as the single-pool serve path does.
pub fn serve_cluster_on<S: AlertSink + ?Sized>(
    cluster: &mut Cluster,
    udp: UdpPool,
    opts: &ServeOptions,
    stop: &AtomicBool,
    sink: &mut S,
) -> Result<ServeReport, IngestError> {
    let epoch = Instant::now();
    let sources = udp.into_sources(epoch, opts.read_timeout);

    let stats = IngestStats::default();
    let (batch_tx, batch_rx) = channel::unbounded::<Vec<ClusterEvent>>();
    let (recycle_tx, recycle_rx) = channel::unbounded::<Vec<ClusterEvent>>();
    let recycle_rx = std::sync::Mutex::new(recycle_rx);

    let report = std::thread::scope(|scope| {
        for source in sources {
            let tx = batch_tx.clone();
            let recycle = &recycle_rx;
            let stats = &stats;
            let opts = *opts;
            scope.spawn(move || receiver_loop(source, tx, recycle, stats, &opts, stop));
        }
        drop(batch_tx);
        coordinator_loop(cluster, &batch_rx, &recycle_tx, &stats, opts, epoch, sink)
    });
    Ok(report)
}

fn receiver_loop(
    mut source: UdpSource,
    tx: channel::Sender<Vec<ClusterEvent>>,
    recycle: &std::sync::Mutex<channel::Receiver<Vec<ClusterEvent>>>,
    stats: &IngestStats,
    opts: &ServeOptions,
    stop: &AtomicBool,
) {
    let mut batcher = Batcher::new(opts.flush_packets, opts.flush_interval.as_nanos() as u64);
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let mut due = false;
        let polled = source.poll_batch(&mut |d| {
            let (class, classified) = classify_datagram(&d);
            stats.rx.fetch_add(1, Ordering::Relaxed);
            if class == WireClass::Unknown {
                stats.unknown.fetch_add(1, Ordering::Relaxed);
            } else if class == WireClass::Ipv6 {
                stats.ipv6.fetch_add(1, Ordering::Relaxed);
            }
            // The IPv4 source selects the tenant; plain v6 has none and
            // falls to the default tenant (the datagram is a drop anyway).
            let src_ip = d.engine_addrs().map(|(src, _)| src.ip).unwrap_or(0);
            due |= batcher.push(ClusterEvent {
                classified,
                at: d.at,
                src_ip,
            });
        });
        match polled {
            Ok(0) => due = batcher.overdue(Instant::now()),
            Ok(_) => {}
            Err(_) => break,
        }
        if due {
            flush(&mut batcher, &tx, recycle, stats);
        }
    }
    if !batcher.is_empty() {
        flush(&mut batcher, &tx, recycle, stats);
    }
}

fn flush(
    batcher: &mut Batcher<ClusterEvent>,
    tx: &channel::Sender<Vec<ClusterEvent>>,
    recycle: &std::sync::Mutex<channel::Receiver<Vec<ClusterEvent>>>,
    stats: &IngestStats,
) {
    let spare = recycle
        .lock()
        .map(|rx| rx.try_recv().unwrap_or_default())
        .unwrap_or_default();
    let batch = batcher.take(spare);
    let len = batch.len() as u64;
    if tx.send(batch).is_err() {
        stats.dropped.fetch_add(len, Ordering::Relaxed);
    }
}

fn coordinator_loop<S: AlertSink + ?Sized>(
    cluster: &mut Cluster,
    batch_rx: &channel::Receiver<Vec<ClusterEvent>>,
    recycle_tx: &channel::Sender<Vec<ClusterEvent>>,
    stats: &IngestStats,
    opts: &ServeOptions,
    epoch: Instant,
    sink: &mut S,
) -> ServeReport {
    let mut batches = 0u64;
    let mut published = ServeReport::default();
    let mut last_tick = Instant::now();
    loop {
        match batch_rx.recv_timeout(opts.tick_interval) {
            Ok(mut events) => {
                // The batch clock is the batch's first receive time, as in
                // the single-pool path: the gateway clamps later events up
                // to it, preserving intra-batch timing for the window
                // machines.
                let now = events.first().map(|e| e.at).unwrap_or_else(|| wall(epoch));
                cluster.process_batch(&mut events, now, sink);
                batches += 1;
                let _ = recycle_tx.send(events);
            }
            Err(channel::RecvTimeoutError::Timeout) => {}
            Err(channel::RecvTimeoutError::Disconnected) => break,
        }
        let now = Instant::now();
        if now.duration_since(last_tick) >= opts.tick_interval {
            last_tick = now;
            cluster.tick(wall(epoch), sink);
        }
        publish(stats, cluster, batches, &mut published);
    }
    // All receivers flushed and exited; one final sweep fires any pending
    // timers on every node.
    let ended_at = wall(epoch);
    cluster.tick(ended_at, sink);
    publish(stats, cluster, batches, &mut published);
    ServeReport {
        ended_at,
        ..published
    }
}

fn wall(epoch: Instant) -> SimTime {
    SimTime::from_nanos(epoch.elapsed().as_nanos() as u64)
}

/// Mirrors the socket-side counters into the cluster's gateway slab as
/// deltas, the cluster twin of the single-pool publish step.
fn publish(stats: &IngestStats, cluster: &Cluster, batches: u64, published: &mut ServeReport) {
    let now = ServeReport {
        datagrams_rx: stats.rx.load(Ordering::Relaxed),
        datagrams_dropped: stats.dropped.load(Ordering::Relaxed),
        demux_unknown: stats.unknown.load(Ordering::Relaxed),
        datagrams_ipv6: stats.ipv6.load(Ordering::Relaxed),
        batches,
        ended_at: published.ended_at,
    };
    if let Some(slab) = cluster.telemetry_slab() {
        slab.add(
            Counter::DatagramsRx,
            now.datagrams_rx - published.datagrams_rx,
        );
        slab.add(
            Counter::DatagramsDropped,
            now.datagrams_dropped - published.datagrams_dropped,
        );
        slab.add(
            Counter::DemuxUnknown,
            now.demux_unknown - published.demux_unknown,
        );
        slab.add(
            Counter::DatagramsIpv6,
            now.datagrams_ipv6 - published.datagrams_ipv6,
        );
    }
    *published = now;
}
