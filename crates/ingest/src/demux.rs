//! Port + heuristic demultiplexing of SIP vs RTP/RTCP.
//!
//! The paper's monitor sits inline on the perimeter and sees every UDP
//! datagram; the first decision is which protocol machine the bytes are
//! for. Port 5060 on either side marks signaling; everything else is
//! probed with the RTP version bits, with the RTCP packet-type range
//! separating control from media.
//!
//! The decision is *total*: every payload maps to exactly one
//! [`WireClass`], and classification never panics on arbitrary bytes (a
//! proptest enforces both). Traffic that demuxes to `Rtcp` or `Unknown`
//! is handed to the engine as [`Classified::Ignored`] — exactly how the
//! in-process path treats `Payload::Raw` — so a replayed capture and the
//! simulation produce identical counters.

use vids_core::classify::{classify_wire, Classified, WireProto};
use vids_sip::Method;

use crate::datagram::Datagram;

/// The well-known SIP signaling port.
pub const SIP_PORT: u16 = 5060;

/// What the demultiplexer decided a datagram carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireClass {
    /// SIP signaling (port 5060 on either side).
    Sip,
    /// RTP media (version-2 header, non-RTCP payload type).
    Rtp,
    /// RTCP control (version-2 header, packet type in RFC 5761's reserved
    /// 192–223 range). Monitored implicitly through RTP; the engine
    /// ignores it.
    Rtcp,
    /// An address family the engine does not model: plain IPv6 without an
    /// IPv4-mapped form. Never produced by [`demux`] (which sees only the
    /// payload); only [`classify_datagram`] returns it, so the ingest tier
    /// can count v6 drops separately from payload junk.
    Ipv6,
    /// Anything else; the engine ignores it, the ingest tier counts it.
    Unknown,
}

/// Decides the protocol of one UDP payload. Total and allocation-free.
///
/// Port 5060 claims the datagram for SIP outright; otherwise the RTP
/// version bits are probed first (media vastly outnumbers signaling),
/// then a SIP start-line prefix — so a daemon listening on a
/// non-standard port still sees its signaling, matching the in-process
/// classifier which keys on payload kind, never port.
pub fn demux(src_port: u16, dst_port: u16, payload: &[u8]) -> WireClass {
    if src_port == SIP_PORT || dst_port == SIP_PORT {
        return WireClass::Sip;
    }
    // An RTP fixed header is 12 bytes and starts with version 2 in the
    // top two bits. RTCP shares the version bits; its second byte is the
    // packet type, and RFC 5761 §4 reserves the whole 192–223 range for
    // RTCP when multiplexed with RTP (192–195 legacy FIR/NACK/SMPTETC/IJ,
    // 200–204 SR through APP, 205–207 RTPFB/PSFB/XR, the rest unassigned
    // but reserved). Those values collide with RTP payload types 64–95
    // only when the marker bit is set, which real codecs do not combine
    // with payload types in that band.
    if payload.len() >= 12 && payload[0] >> 6 == 2 {
        if (192..=223).contains(&payload[1]) {
            return WireClass::Rtcp;
        }
        return WireClass::Rtp;
    }
    if starts_like_sip(payload) {
        return WireClass::Sip;
    }
    WireClass::Unknown
}

/// RFC 3261 start-line prefixes: a response status line or a request
/// method followed by a space.
///
/// Instead of fourteen prefix compares this does one 8-byte magic compare
/// for the status line, then scans the leading token run (clamped to the
/// longest method plus one, so hostile all-token payloads cost O(1)) and
/// resolves it with [`Method::from_token`]'s length dispatch. A token
/// that isn't followed by exactly one space, or that isn't a known
/// method, is not a start line — same decisions as the prefix table.
fn starts_like_sip(payload: &[u8]) -> bool {
    const STATUS_MAGIC: &[u8; 8] = b"SIP/2.0 ";
    if payload.len() >= 8 && &payload[..8] == STATUS_MAGIC {
        return true;
    }
    // No known method is longer than SUBSCRIBE (9 bytes); a 10-byte run
    // can't resolve, so nothing past byte 9 needs scanning.
    let head = &payload[..payload.len().min(10)];
    let run = vids_scan::token_run(head);
    if run == 0 || run >= payload.len() || payload[run] != b' ' {
        return false;
    }
    Method::from_token(&payload[..run]).is_some()
}

/// Demultiplexes and classifies one datagram straight off the receive
/// buffer. Returns the demux decision (so callers can count
/// `DemuxUnknown`) alongside what the engine should ingest.
pub fn classify_datagram(d: &Datagram<'_>) -> (WireClass, Classified) {
    let Some((src, dst)) = d.engine_addrs() else {
        // Plain IPv6: the engine models IPv4 addresses only. Returned as
        // its own class (not `Unknown`) so operators serving v6 traffic
        // see the drop in `datagrams_ipv6` instead of silence.
        return (WireClass::Ipv6, Classified::Ignored);
    };
    let class = demux(d.src.port(), d.dst.port(), d.payload);
    let classified = match class {
        WireClass::Sip => classify_wire(WireProto::Sip, d.payload, src, dst),
        WireClass::Rtp => classify_wire(WireProto::Rtp, d.payload, src, dst),
        WireClass::Rtcp | WireClass::Ipv6 | WireClass::Unknown => Classified::Ignored,
    };
    (class, classified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vids_netsim::time::SimTime;

    fn dg<'a>(src: &str, dst: &str, payload: &'a [u8]) -> Datagram<'a> {
        Datagram {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            at: SimTime::ZERO,
            payload,
        }
    }

    #[test]
    fn port_5060_wins_over_payload_shape() {
        let rtp_looking = [0x80u8; 12];
        assert_eq!(demux(5060, 40_000, &rtp_looking), WireClass::Sip);
        assert_eq!(demux(40_000, 5060, &rtp_looking), WireClass::Sip);
        assert_eq!(demux(40_000, 40_001, &rtp_looking), WireClass::Rtp);
    }

    #[test]
    fn rtcp_packet_types_split_from_rtp() {
        let mut pkt = [0x80u8; 12];
        for pt in 192..=223u8 {
            pkt[1] = pt;
            assert_eq!(
                demux(40_000, 40_001, &pkt),
                WireClass::Rtcp,
                "packet type {pt} is in RFC 5761's reserved RTCP range"
            );
        }
        pkt[1] = 18; // G.729
        assert_eq!(demux(40_000, 40_001, &pkt), WireClass::Rtp);
    }

    /// Regression pins for the 200–204 → 192–223 widening: the boundary
    /// values on both sides, plus the RTPFB/PSFB types (205/206) that used
    /// to reach the RTP machine as a phantom media stream.
    #[test]
    fn rtcp_range_boundaries_pin_rfc_5761() {
        let mut pkt = [0x80u8; 12];
        for (pt, want) in [
            (191u8, WireClass::Rtp), // marker + PT 63: below the range
            (192, WireClass::Rtcp),  // legacy FIR (RFC 2032)
            (205, WireClass::Rtcp),  // RTPFB (RFC 4585)
            (206, WireClass::Rtcp),  // PSFB (RFC 4585)
            (223, WireClass::Rtcp),  // top of the reserved range
            (224, WireClass::Rtp),   // marker + PT 96: dynamic payload
        ] {
            pkt[1] = pt;
            assert_eq!(demux(40_000, 40_001, &pkt), want, "packet type {pt}");
        }
    }

    #[test]
    fn sip_start_lines_are_signaling_on_any_port() {
        let invite = b"INVITE sip:bob@10.2.0.10 SIP/2.0\r\n\r\n";
        assert_eq!(demux(44_000, 15_060, invite), WireClass::Sip);
        let resp = b"SIP/2.0 200 OK\r\n\r\n";
        assert_eq!(demux(15_060, 44_000, resp), WireClass::Sip);
        // A bare method name without the trailing space is not a
        // start line.
        assert_eq!(demux(44_000, 15_060, b"INVITE"), WireClass::Unknown);
    }

    #[test]
    fn short_or_versionless_payloads_are_unknown() {
        assert_eq!(demux(40_000, 40_001, &[0x80; 11]), WireClass::Unknown);
        assert_eq!(demux(40_000, 40_001, &[0x00; 12]), WireClass::Unknown);
        assert_eq!(demux(40_000, 40_001, b""), WireClass::Unknown);
    }

    #[test]
    fn unknown_and_rtcp_are_ignored_like_raw_payloads() {
        let (class, c) = classify_datagram(&dg("10.0.0.1:9", "10.0.0.2:9", b"junk"));
        assert_eq!(class, WireClass::Unknown);
        assert_eq!(c, Classified::Ignored);

        let mut rtcp = [0x80u8; 12];
        rtcp[1] = 200;
        let (class, c) = classify_datagram(&dg("10.0.0.1:40000", "10.0.0.2:40001", &rtcp));
        assert_eq!(class, WireClass::Rtcp);
        assert_eq!(c, Classified::Ignored);
    }

    #[test]
    fn ipv6_traffic_is_counted_not_silently_unknown() {
        let (class, c) = classify_datagram(&dg("[2001:db8::1]:5060", "[2001:db8::2]:5060", b"x"));
        assert_eq!(class, WireClass::Ipv6);
        assert_eq!(c, Classified::Ignored);
        // An IPv4-mapped v6 address is engine-visible IPv4, not a drop.
        let (class, _) = classify_datagram(&dg(
            "[::ffff:10.1.0.10]:5060",
            "[::ffff:10.2.0.10]:5060",
            b"x",
        ));
        assert_eq!(class, WireClass::Sip);
    }
}
