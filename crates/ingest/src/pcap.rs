//! Hand-rolled classic libpcap (`.pcap`) reader and writer.
//!
//! Only the classic tcpdump format (magic `0xa1b2c3d4`, microsecond
//! timestamps) is supported, in both byte orders — the endianness of the
//! capturing machine is recovered from the magic. Two link layers are
//! understood: `LINKTYPE_ETHERNET` (1) and `LINKTYPE_RAW` (101, bare
//! IPv4). The reader walks a borrowed byte slice and yields borrowed
//! records; malformed input is rejected without allocating (every error
//! reason is a `&'static str`), so a hostile capture file cannot balloon
//! the monitor's memory.

use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};

use vids_netsim::time::SimTime;

use crate::datagram::Datagram;

/// Classic pcap magic, written in the reader's native order.
pub const MAGIC_NATIVE: u32 = 0xa1b2_c3d4;
/// Classic pcap magic as seen when the capturing machine's byte order
/// differs from ours.
pub const MAGIC_SWAPPED: u32 = 0xd4c3_b2a1;

/// Link-layer type: Ethernet frames.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Link-layer type: raw IPv4/IPv6 packets, no framing.
pub const LINKTYPE_RAW: u32 = 101;

const GLOBAL_HEADER_LEN: usize = 24;
const RECORD_HEADER_LEN: usize = 16;
const ETHERNET_HEADER_LEN: usize = 14;
const UDP_HEADER_LEN: usize = 8;

/// Why a capture file (or one record in it) was rejected.
///
/// The reason is always a static string: rejection never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcapError {
    /// Byte offset into the capture where the problem was found.
    pub offset: usize,
    /// What was wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pcap error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for PcapError {}

/// One captured packet, borrowed from the capture buffer.
#[derive(Debug, Clone, Copy)]
pub struct PcapRecord<'a> {
    /// Capture timestamp (seconds + microseconds from the record header).
    pub at: SimTime,
    /// The captured bytes (link-layer frame, possibly truncated).
    pub data: &'a [u8],
    /// The packet's original length on the wire.
    pub orig_len: u32,
}

/// A zero-copy iterator over the records of a classic pcap file.
pub struct PcapReader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
    pub(crate) swapped: bool,
    pub(crate) linktype: u32,
}

impl<'a> PcapReader<'a> {
    /// Parses the 24-byte global header and positions the reader at the
    /// first record.
    pub fn new(buf: &'a [u8]) -> Result<Self, PcapError> {
        if buf.len() < GLOBAL_HEADER_LEN {
            return Err(PcapError {
                offset: 0,
                reason: "capture shorter than the 24-byte pcap global header",
            });
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        let swapped = match magic {
            MAGIC_NATIVE => false,
            MAGIC_SWAPPED => true,
            _ => {
                return Err(PcapError {
                    offset: 0,
                    reason: "unrecognized pcap magic (only classic microsecond captures)",
                })
            }
        };
        let mut r = PcapReader {
            buf,
            pos: GLOBAL_HEADER_LEN,
            swapped,
            linktype: 0,
        };
        r.linktype = r.u32_at(20);
        if r.linktype != LINKTYPE_ETHERNET && r.linktype != LINKTYPE_RAW {
            return Err(PcapError {
                offset: 20,
                reason: "unsupported link type (only Ethernet and raw IPv4)",
            });
        }
        Ok(r)
    }

    /// The capture's link-layer type (`LINKTYPE_ETHERNET` or
    /// `LINKTYPE_RAW`).
    pub fn linktype(&self) -> u32 {
        self.linktype
    }

    /// Whether the capture was written by a machine of the opposite byte
    /// order.
    pub fn is_swapped(&self) -> bool {
        self.swapped
    }

    fn u32_at(&self, off: usize) -> u32 {
        let raw: [u8; 4] = self.buf[off..off + 4].try_into().unwrap();
        if self.swapped {
            u32::from_be_bytes(raw)
        } else {
            u32::from_le_bytes(raw)
        }
    }

    /// Yields the next record, `Ok(None)` at a clean end of file, or an
    /// error if the file ends mid-record.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord<'a>>, PcapError> {
        if self.pos == self.buf.len() {
            return Ok(None);
        }
        if self.buf.len() - self.pos < RECORD_HEADER_LEN {
            return Err(PcapError {
                offset: self.pos,
                reason: "capture ends inside a 16-byte record header",
            });
        }
        let ts_sec = self.u32_at(self.pos);
        let ts_usec = self.u32_at(self.pos + 4);
        let incl_len = self.u32_at(self.pos + 8) as usize;
        let orig_len = self.u32_at(self.pos + 12);
        let data_start = self.pos + RECORD_HEADER_LEN;
        if self.buf.len() - data_start < incl_len {
            return Err(PcapError {
                offset: data_start,
                reason: "capture ends inside a record body",
            });
        }
        let data = &self.buf[data_start..data_start + incl_len];
        self.pos = data_start + incl_len;
        let at = SimTime::from_micros(u64::from(ts_sec) * 1_000_000 + u64::from(ts_usec));
        Ok(Some(PcapRecord { at, data, orig_len }))
    }

    /// Yields the next record that carries a parseable IPv4/UDP datagram,
    /// skipping non-UDP records (ARP, TCP, fragments). Hard format errors
    /// — truncated records, frames cut short by the snaplen — still
    /// surface as `Err`.
    pub fn next_datagram(&mut self) -> Result<Option<Datagram<'a>>, PcapError> {
        loop {
            let Some(rec) = self.next_record()? else {
                return Ok(None);
            };
            match udp_frame(self.linktype, rec.data) {
                Ok(Some((src, dst, payload))) => {
                    return Ok(Some(Datagram {
                        src,
                        dst,
                        at: rec.at,
                        payload,
                    }))
                }
                Ok(None) => continue,
                Err(reason) => {
                    return Err(PcapError {
                        offset: self.pos,
                        reason,
                    })
                }
            }
        }
    }
}

/// Extracts the UDP payload and address pair from one link-layer frame.
///
/// `Ok(None)` means the frame is well-formed but not IPv4/UDP (the
/// caller skips it); `Err` means the frame claims to be UDP but the
/// bytes run out — most commonly a capture snaplen shorter than the
/// packet.
#[allow(clippy::type_complexity)]
pub fn udp_frame(
    linktype: u32,
    frame: &[u8],
) -> Result<Option<(SocketAddr, SocketAddr, &[u8])>, &'static str> {
    let ip = match linktype {
        LINKTYPE_ETHERNET => {
            if frame.len() < ETHERNET_HEADER_LEN {
                return Err("Ethernet frame shorter than its 14-byte header");
            }
            let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
            if ethertype != 0x0800 {
                return Ok(None); // not IPv4 (ARP, IPv6, VLAN, ...)
            }
            &frame[ETHERNET_HEADER_LEN..]
        }
        LINKTYPE_RAW => frame,
        _ => return Ok(None),
    };
    if ip.is_empty() || ip[0] >> 4 != 4 {
        return Ok(None); // not IPv4
    }
    let ihl = usize::from(ip[0] & 0x0f) * 4;
    if ihl < 20 || ip.len() < ihl {
        return Err("IPv4 header truncated");
    }
    if ip[9] != 17 {
        return Ok(None); // not UDP
    }
    let frag = u16::from_be_bytes([ip[6], ip[7]]);
    if frag & 0x3fff != 0 {
        return Ok(None); // fragmented; the monitor sees whole datagrams
    }
    let src_ip = Ipv4Addr::new(ip[12], ip[13], ip[14], ip[15]);
    let dst_ip = Ipv4Addr::new(ip[16], ip[17], ip[18], ip[19]);
    let udp = &ip[ihl..];
    if udp.len() < UDP_HEADER_LEN {
        return Err("UDP header truncated");
    }
    let src_port = u16::from_be_bytes([udp[0], udp[1]]);
    let dst_port = u16::from_be_bytes([udp[2], udp[3]]);
    let udp_len = usize::from(u16::from_be_bytes([udp[4], udp[5]]));
    if udp_len < UDP_HEADER_LEN {
        return Err("UDP length field smaller than the UDP header");
    }
    if udp.len() < udp_len {
        return Err("UDP payload truncated by snaplen");
    }
    let payload = &udp[UDP_HEADER_LEN..udp_len];
    Ok(Some((
        SocketAddr::V4(SocketAddrV4::new(src_ip, src_port)),
        SocketAddr::V4(SocketAddrV4::new(dst_ip, dst_port)),
        payload,
    )))
}

/// Builds classic pcap capture bytes in memory — the test-fixture and
/// benchmark counterpart of [`PcapReader`].
pub struct PcapWriter {
    buf: Vec<u8>,
    swapped: bool,
    linktype: u32,
}

impl PcapWriter {
    /// Starts a native-order, raw-IPv4 capture.
    pub fn new() -> Self {
        Self::with_format(false, LINKTYPE_RAW)
    }

    /// Starts a capture with an explicit byte order and link type.
    pub fn with_format(swapped: bool, linktype: u32) -> Self {
        let mut w = PcapWriter {
            buf: Vec::new(),
            swapped,
            linktype,
        };
        w.put_u32(MAGIC_NATIVE);
        w.put_u16(2); // version major
        w.put_u16(4); // version minor
        w.put_u32(0); // thiszone
        w.put_u32(0); // sigfigs
        w.put_u32(65_535); // snaplen
        w.put_u32(linktype);
        w
    }

    fn put_u16(&mut self, v: u16) {
        let raw = if self.swapped {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        };
        self.buf.extend_from_slice(&raw);
    }

    fn put_u32(&mut self, v: u32) {
        let raw = if self.swapped {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        };
        self.buf.extend_from_slice(&raw);
    }

    /// Appends one UDP datagram as a full (untruncated) record.
    pub fn push_udp(&mut self, at: SimTime, src: SocketAddrV4, dst: SocketAddrV4, payload: &[u8]) {
        let frame = build_udp_frame(self.linktype, src, dst, payload);
        self.push_record(at, &frame, frame.len() as u32);
    }

    /// Appends a raw record; `incl_len` is taken from `data`, `orig_len`
    /// is the caller's (so snaplen truncation can be simulated).
    pub fn push_record(&mut self, at: SimTime, data: &[u8], orig_len: u32) {
        let micros = at.as_nanos() / 1_000;
        self.put_u32((micros / 1_000_000) as u32);
        self.put_u32((micros % 1_000_000) as u32);
        self.put_u32(data.len() as u32);
        self.put_u32(orig_len);
        self.buf.extend_from_slice(data);
    }

    /// The finished capture bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for PcapWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds one link-layer frame holding an IPv4/UDP datagram.
pub fn build_udp_frame(
    linktype: u32,
    src: SocketAddrV4,
    dst: SocketAddrV4,
    payload: &[u8],
) -> Vec<u8> {
    let udp_len = UDP_HEADER_LEN + payload.len();
    let ip_len = 20 + udp_len;
    let mut frame = Vec::with_capacity(ETHERNET_HEADER_LEN + ip_len);
    if linktype == LINKTYPE_ETHERNET {
        frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]); // dst mac
        frame.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]); // src mac
        frame.extend_from_slice(&0x0800u16.to_be_bytes());
    }
    frame.push(0x45); // version 4, ihl 5
    frame.push(0); // dscp
    frame.extend_from_slice(&(ip_len as u16).to_be_bytes());
    frame.extend_from_slice(&[0, 0]); // identification
    frame.extend_from_slice(&[0, 0]); // flags + fragment offset
    frame.push(64); // ttl
    frame.push(17); // protocol: UDP
    frame.extend_from_slice(&[0, 0]); // header checksum (unverified)
    frame.extend_from_slice(&src.ip().octets());
    frame.extend_from_slice(&dst.ip().octets());
    frame.extend_from_slice(&src.port().to_be_bytes());
    frame.extend_from_slice(&dst.port().to_be_bytes());
    frame.extend_from_slice(&(udp_len as u16).to_be_bytes());
    frame.extend_from_slice(&[0, 0]); // UDP checksum (optional over IPv4)
    frame.extend_from_slice(payload);
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa(s: &str) -> SocketAddrV4 {
        s.parse().unwrap()
    }

    #[test]
    fn roundtrips_in_both_byte_orders_and_link_types() {
        for swapped in [false, true] {
            for linktype in [LINKTYPE_RAW, LINKTYPE_ETHERNET] {
                let mut w = PcapWriter::with_format(swapped, linktype);
                w.push_udp(
                    SimTime::from_micros(1_500_042),
                    sa("10.1.0.10:5060"),
                    sa("10.2.0.10:5060"),
                    b"OPTIONS sip:b@10.2.0.10 SIP/2.0\r\n\r\n",
                );
                let bytes = w.into_bytes();
                let mut r = PcapReader::new(&bytes).unwrap();
                assert_eq!(r.is_swapped(), swapped);
                assert_eq!(r.linktype(), linktype);
                let d = r.next_datagram().unwrap().unwrap();
                assert_eq!(d.at, SimTime::from_micros(1_500_042));
                assert_eq!(d.src, "10.1.0.10:5060".parse::<SocketAddr>().unwrap());
                assert_eq!(d.dst, "10.2.0.10:5060".parse::<SocketAddr>().unwrap());
                assert_eq!(d.payload, b"OPTIONS sip:b@10.2.0.10 SIP/2.0\r\n\r\n");
                assert!(r.next_datagram().unwrap().is_none());
            }
        }
    }

    #[test]
    fn non_udp_frames_are_skipped_not_errors() {
        let mut w = PcapWriter::new();
        // A TCP packet: same IPv4 header but protocol 6.
        let mut frame = build_udp_frame(LINKTYPE_RAW, sa("10.0.0.1:80"), sa("10.0.0.2:80"), b"x");
        frame[9] = 6;
        w.push_record(SimTime::ZERO, &frame, frame.len() as u32);
        w.push_udp(
            SimTime::from_millis(1),
            sa("10.0.0.1:5060"),
            sa("10.0.0.2:5060"),
            b"hello",
        );
        let bytes = w.into_bytes();
        let mut r = PcapReader::new(&bytes).unwrap();
        let d = r.next_datagram().unwrap().unwrap();
        assert_eq!(d.payload, b"hello");
    }
}
