//! # vids-ingest — live wire ingestion for the VoIP IDS
//!
//! The paper's monitor observes real traffic at the enterprise
//! perimeter. This crate is that observation tier: it turns UDP
//! datagrams — from live sockets or classic pcap captures — into the
//! classified wire events the engine's `process_wire_batch` consumes,
//! with no per-datagram allocation and no payload copies.
//!
//! * [`datagram`] — [`Datagram`], the borrowed wire-level view.
//! * [`source`] — the [`WireSource`] trait and [`PcapSource`].
//! * [`udp`] — live capture: [`udp::UdpPool`] (SO_REUSEPORT receiver
//!   sharding with a portable fallback) and [`udp::UdpSource`].
//! * [`pcap`] — hand-rolled classic libpcap reader/writer, both byte
//!   orders, Ethernet and raw-IPv4 link types.
//! * [`demux`] — port + heuristic SIP vs RTP/RTCP demultiplexing.
//! * [`batch`] — per-receiver batch accumulation with size and age
//!   flush thresholds.
//! * [`server`] — the `vids serve` pipeline: receiver threads classify
//!   and shard-route datagrams, the coordinator drives the engine's
//!   epoch-ring pipeline, with graceful shutdown and on-demand
//!   `SIGUSR1` ring snapshots.
//! * [`cluster_serve`] — the federated variant: the same receiver layout
//!   feeding a `vids-cluster` gateway (`vids serve --nodes N
//!   --tenants FILE`).
//! * [`replay`] — `vids replay`: run a capture through the identical
//!   pipeline at full speed, deterministically; `replay_pcap_parallel`
//!   classifies on N threads and re-sequences batches so the output
//!   stays byte-identical to the single-thread run.

pub mod batch;
pub mod cluster_serve;
pub mod datagram;
pub mod demux;
pub mod pcap;
pub mod record_tap;
pub mod replay;
pub mod server;
pub mod source;
pub mod udp;

/// The one-stop import for ingestion:
/// `use vids_ingest::prelude::*;`.
pub mod prelude {
    pub use crate::batch::Batcher;
    pub use crate::datagram::Datagram;
    pub use crate::demux::{classify_datagram, demux, WireClass, SIP_PORT};
    pub use crate::pcap::{PcapError, PcapReader, PcapRecord, PcapWriter};
    pub use crate::record_tap::{recorded_class, RecordTap, ServeRecorder};
    pub use crate::replay::{replay, replay_pcap, replay_pcap_parallel, ReplayReport};
    pub use crate::server::{serve, serve_on, ServeOptions, ServeReport};
    pub use crate::source::{IngestError, PcapSource, Polled, WireSource};
    pub use crate::udp::{PoolMode, UdpPool, UdpSource};
}

pub use batch::Batcher;
pub use cluster_serve::serve_cluster_on;
pub use datagram::Datagram;
pub use demux::{classify_datagram, demux, WireClass, SIP_PORT};
pub use pcap::{PcapError, PcapReader, PcapRecord, PcapWriter};
pub use record_tap::{recorded_class, RecordTap, ServeRecorder};
pub use replay::{replay, replay_pcap, replay_pcap_parallel, ReplayReport};
pub use server::{
    dump_flag_on_sigusr1, serve, serve_on, stop_flag_on_sigint, ServeOptions, ServeReport,
};
pub use source::{IngestError, PcapSource, Polled, WireSource};
pub use udp::{PoolMode, UdpPool, UdpSource};
