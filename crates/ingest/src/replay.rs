//! Offline replay: run a capture through the engine at full speed.
//!
//! Replay drives the exact pipeline the live daemon uses — pcap record →
//! UDP frame → demux → [`classify_datagram`] → `process_wire_batch` —
//! with the capture's own timestamps standing in for the wall clock.
//! Because the pool's batched merge is chunking-invariant, the alerts
//! and counters from a replay are byte-identical to what an in-process
//! run over the same traffic produces (`tests/replay_differential.rs`
//! in the root crate holds this at 1, 4 and 8 shards).
//!
//! An optional [`RecordTap`] mirrors every datagram into the flight
//! recorder before the engine sees it and dumps the captured window
//! whenever a batch (or the final timer sweep) raises an alert.

use vids_core::pool::{VidsPool, WireEvent};
use vids_core::sink::AlertSink;
use vids_core::telemetry::{Counter, Registry};
use vids_netsim::time::SimTime;
use vids_record::TeeSink;

use crate::demux::{classify_datagram, WireClass};
use crate::record_tap::{recorded_class, RecordTap};
use crate::source::{IngestError, PcapSource, Polled, WireSource};

/// The historical hard-coded grace period. The pipeline now reads
/// [`vids_core::config::Config::replay_grace`] (same default); this
/// constant remains for callers that need the value without a config.
pub const REPLAY_GRACE: SimTime = SimTime::from_secs(30);

/// What a replay processed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayReport {
    /// UDP datagrams decoded from the capture.
    pub datagrams: u64,
    /// Datagrams that demultiplexed to [`WireClass::Unknown`].
    pub demux_unknown: u64,
    /// Plain-IPv6 datagrams dropped because the engine models IPv4 only.
    pub datagrams_ipv6: u64,
    /// Batches handed to the engine.
    pub batches: u64,
    /// Timestamp of the last datagram (capture clock).
    pub last_at: SimTime,
}

/// Replays any [`WireSource`] to exhaustion through `pool`, batching
/// `flush_packets` events at a time. With a [`RecordTap`], every
/// datagram also lands in the flight recorder and alert batches dump
/// their window (paths accumulate in [`RecordTap::written`]).
pub fn replay<W, S>(
    source: &mut W,
    pool: &mut VidsPool,
    flush_packets: usize,
    telemetry: Option<&Registry>,
    mut tap: Option<&mut RecordTap<'_>>,
    sink: &mut S,
) -> Result<ReplayReport, IngestError>
where
    W: WireSource,
    S: AlertSink + ?Sized,
{
    let flush_packets = flush_packets.max(1);
    let mut report = ReplayReport::default();
    let mut events: Vec<WireEvent> = Vec::with_capacity(flush_packets);
    loop {
        match source.poll()? {
            Polled::Datagram(d) => {
                let (class, classified) = classify_datagram(&d);
                if let Some(t) = tap.as_deref_mut() {
                    t.recorder
                        .record(0, d.at, d.src, d.dst, recorded_class(class), d.payload);
                }
                report.datagrams += 1;
                if class == WireClass::Unknown {
                    report.demux_unknown += 1;
                } else if class == WireClass::Ipv6 {
                    report.datagrams_ipv6 += 1;
                }
                report.last_at = report.last_at.max(d.at);
                events.push(WireEvent {
                    classified,
                    at: d.at,
                });
                if events.len() >= flush_packets {
                    flush_batch(pool, &mut events, &mut report, tap.as_deref_mut(), sink)?;
                }
            }
            // Replay sources are not expected to stall, but a source
            // that does (a future live-file tail) is just polled again.
            Polled::Empty => continue,
            Polled::End => break,
        }
    }
    if !events.is_empty() {
        flush_batch(pool, &mut events, &mut report, tap.as_deref_mut(), sink)?;
    }
    let sweep_at = report.last_at + pool.config().replay_grace;
    match tap {
        Some(t) => {
            let mut seen = Vec::new();
            {
                let mut tee = TeeSink::new(sink, &mut seen);
                pool.tick(sweep_at, &mut tee);
            }
            dump_batch_alerts(pool, t, &seen)?;
        }
        None => pool.tick(sweep_at, sink),
    }
    if let Some(reg) = telemetry {
        let slab = reg.pool();
        slab.add(Counter::DatagramsRx, report.datagrams);
        slab.add(Counter::DemuxUnknown, report.demux_unknown);
        slab.add(Counter::DatagramsIpv6, report.datagrams_ipv6);
    }
    Ok(report)
}

/// Hands one batch to the engine. The batch clock is the batch's
/// *first* timestamp: the engine clamps each event's time up to at
/// least the clock, so passing a later time would collapse the
/// intra-batch timing the window and timer machines depend on.
fn flush_batch<S: AlertSink + ?Sized>(
    pool: &mut VidsPool,
    events: &mut Vec<WireEvent>,
    report: &mut ReplayReport,
    tap: Option<&mut RecordTap<'_>>,
    sink: &mut S,
) -> Result<(), IngestError> {
    let now = events.first().map(|e| e.at).unwrap_or(report.last_at);
    match tap {
        Some(t) => {
            // The tee buffer starts empty and only grows on an alert, so
            // the steady (alert-free) path stays allocation-free.
            let mut seen = Vec::new();
            {
                let mut tee = TeeSink::new(sink, &mut seen);
                pool.process_wire_batch(events, now, &mut tee);
            }
            t.recorder.mark_batch();
            dump_batch_alerts(pool, t, &seen)?;
        }
        None => pool.process_wire_batch(events, now, sink),
    }
    report.batches += 1;
    Ok(())
}

/// Queues a batch's alerts on the recorder and writes their dumps.
fn dump_batch_alerts(
    pool: &VidsPool,
    tap: &mut RecordTap<'_>,
    seen: &[vids_core::alert::Alert],
) -> Result<(), IngestError> {
    if seen.is_empty() {
        return Ok(());
    }
    if let Some(dir) = tap.dump_dir {
        for a in seen {
            tap.recorder.note_alert(a);
        }
        let written = tap
            .recorder
            .dump_pending(pool, dir)
            .map_err(IngestError::Io)?;
        tap.written.extend(written);
    }
    Ok(())
}

/// Replays classic pcap capture bytes (see [`crate::pcap::PcapReader`]
/// for the supported formats).
pub fn replay_pcap<S: AlertSink + ?Sized>(
    capture: Vec<u8>,
    pool: &mut VidsPool,
    flush_packets: usize,
    telemetry: Option<&Registry>,
    tap: Option<&mut RecordTap<'_>>,
    sink: &mut S,
) -> Result<ReplayReport, IngestError> {
    let mut source = PcapSource::new(capture)?;
    replay(&mut source, pool, flush_packets, telemetry, tap, sink)
}

/// Multi-threaded [`replay_pcap`]: `threads` classifier threads demux,
/// parse and shard-hash the capture's datagrams in parallel while the
/// calling thread decodes pcap records and drives the engine's pipelined
/// ingest ([`vids_core::pool::VidsPool::with_pipeline`]), so shard
/// workers overlap with classification of later batches.
///
/// Batches are `flush_packets` datagrams in capture order; completed
/// batches are re-sequenced and submitted strictly in order, so the
/// alerts, counters and report are **byte-identical** to a single-thread
/// replay of the same capture at the same `flush_packets` — the
/// differential gate in `tests/replay_differential.rs` holds this across
/// thread and shard counts. `threads <= 1` delegates to the sequential
/// path.
///
/// With a [`RecordTap`], datagrams are recorded on the driving thread at
/// submit time (preserving the sequential recorder layout: same global
/// sequence, same batch ids). When dumps are armed (a tap with a dump
/// directory), the driver additionally drains the pipeline after every
/// chunk so each dump's window and counters freeze at the alert's own
/// batch, exactly like the sequential tap — classifier fan-out stays
/// parallel; only the engine-side overlap is serialized — and the
/// resulting `.vdump` replays deterministically.
pub fn replay_pcap_parallel<S: AlertSink + ?Sized>(
    capture: Vec<u8>,
    pool: &mut VidsPool,
    flush_packets: usize,
    threads: usize,
    telemetry: Option<&Registry>,
    mut tap: Option<&mut RecordTap<'_>>,
    sink: &mut S,
) -> Result<ReplayReport, IngestError> {
    use std::collections::{BTreeMap, VecDeque};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc;

    use vids_core::pool::PreRouted;

    use crate::datagram::Datagram;
    use crate::demux::demux;
    use crate::pcap::PcapReader;

    if threads <= 1 {
        return replay_pcap(capture, pool, flush_packets, telemetry, tap, sink);
    }
    let flush_packets = flush_packets.max(1);
    let grace = pool.config().replay_grace;
    let mut report = ReplayReport::default();
    let demux_unknown = AtomicU64::new(0);
    let demux_ipv6 = AtomicU64::new(0);

    let result: Result<(), IngestError> = std::thread::scope(|scope| {
        // One bounded work queue per classifier keeps dispatch
        // round-robin (chunk k → thread k mod N) and bounds in-flight
        // chunks; the done channel is unbounded so classifiers never
        // block on the coordinator.
        let mut work_txs: Vec<mpsc::SyncSender<(u64, Vec<Datagram<'_>>)>> =
            Vec::with_capacity(threads);
        let (done_tx, done_rx) = mpsc::channel::<(u64, Vec<PreRouted>)>();
        for _ in 0..threads {
            let (tx, rx) = mpsc::sync_channel::<(u64, Vec<Datagram<'_>>)>(2);
            let done = done_tx.clone();
            let unknown = &demux_unknown;
            let ipv6 = &demux_ipv6;
            scope.spawn(move || {
                for (chunk_id, chunk) in rx {
                    let mut out = Vec::with_capacity(chunk.len());
                    for d in &chunk {
                        let (class, classified) = classify_datagram(d);
                        if class == WireClass::Unknown {
                            unknown.fetch_add(1, Ordering::Relaxed);
                        } else if class == WireClass::Ipv6 {
                            ipv6.fetch_add(1, Ordering::Relaxed);
                        }
                        out.push(PreRouted::new(classified, d.at));
                    }
                    if done.send((chunk_id, out)).is_err() {
                        break;
                    }
                }
            });
            work_txs.push(tx);
        }
        drop(done_tx);

        pool.with_pipeline(|p| -> Result<(), IngestError> {
            let mut reader = PcapReader::new(&capture)?;
            let mut next_dispatch: u64 = 0;
            let mut next_submit: u64 = 0;
            let mut ready: BTreeMap<u64, Vec<PreRouted>> = BTreeMap::new();
            // Raw datagram views retained (only when recording) so the
            // tap can record each chunk at submit time, in order.
            let mut raw: VecDeque<Vec<Datagram<'_>>> = VecDeque::new();
            let mut chunk: Vec<Datagram<'_>> = Vec::with_capacity(flush_packets);
            // Alerts teed off the sink; a non-empty buffer after a
            // submit or the final tick triggers a dump at quiescence.
            let mut seen: Vec<vids_core::alert::Alert> = Vec::new();
            let dumping = tap.as_ref().is_some_and(|t| t.dump_dir.is_some());
            let mut exhausted = false;
            let in_flight_cap = 2 * threads as u64;

            while !exhausted || next_submit < next_dispatch {
                // Decode and dispatch up to the in-flight cap.
                while !exhausted && next_dispatch - next_submit < in_flight_cap {
                    match reader.next_datagram()? {
                        Some(d) => {
                            report.datagrams += 1;
                            report.last_at = report.last_at.max(d.at);
                            chunk.push(d);
                            if chunk.len() < flush_packets {
                                continue;
                            }
                        }
                        None => {
                            exhausted = true;
                            if chunk.is_empty() {
                                // Dropping the senders retires the
                                // classifiers once their queues drain.
                                work_txs.clear();
                                break;
                            }
                        }
                    }
                    let send = std::mem::replace(&mut chunk, Vec::with_capacity(flush_packets));
                    if tap.is_some() {
                        raw.push_back(send.clone());
                    }
                    work_txs[(next_dispatch % threads as u64) as usize]
                        .send((next_dispatch, send))
                        .expect("classifier thread exited early");
                    next_dispatch += 1;
                    if exhausted {
                        work_txs.clear();
                    }
                }
                // Re-sequence: block for the oldest outstanding chunk,
                // then submit every consecutive completion.
                while next_submit < next_dispatch {
                    while !ready.contains_key(&next_submit) {
                        let (id, out) = done_rx.recv().expect("classifier thread exited early");
                        ready.insert(id, out);
                    }
                    let mut out = ready.remove(&next_submit).unwrap();
                    if let Some(t) = tap.as_deref_mut() {
                        let datagrams = raw.pop_front().expect("raw chunk retained");
                        for d in &datagrams {
                            let class = demux(d.src.port(), d.dst.port(), d.payload);
                            t.recorder.record(
                                0,
                                d.at,
                                d.src,
                                d.dst,
                                recorded_class(class),
                                d.payload,
                            );
                        }
                    }
                    let now = out.first().map(|e| e.at).unwrap_or(report.last_at);
                    {
                        let mut tee = TeeSink::new(&mut *sink, &mut seen);
                        p.submit(&mut out, now, &mut tee);
                        if dumping {
                            // Forensic dumps must freeze window and
                            // counters at the alert's own batch — the
                            // same invariant the sequential tap keeps
                            // and the vdump replay checks — so drain
                            // the pipeline before the next chunk is
                            // recorded.
                            p.flush(&mut tee);
                        }
                    }
                    if let Some(t) = tap.as_deref_mut() {
                        t.recorder.mark_batch();
                        if dumping && !seen.is_empty() {
                            dump_batch_alerts(p.pool(), t, &seen)?;
                        }
                    }
                    seen.clear();
                    report.batches += 1;
                    next_submit += 1;
                    if !exhausted {
                        // Keep decoding as soon as a slot frees up.
                        break;
                    }
                }
            }

            {
                let mut tee = TeeSink::new(&mut *sink, &mut seen);
                p.tick(report.last_at + grace, &mut tee);
            }
            if let Some(t) = tap {
                dump_batch_alerts(p.pool(), t, &seen)?;
            }
            Ok(())
        })
    });
    result?;

    report.demux_unknown = demux_unknown.load(std::sync::atomic::Ordering::Relaxed);
    report.datagrams_ipv6 = demux_ipv6.load(std::sync::atomic::Ordering::Relaxed);
    if let Some(reg) = telemetry {
        let slab = reg.pool();
        slab.add(Counter::DatagramsRx, report.datagrams);
        slab.add(Counter::DemuxUnknown, report.demux_unknown);
        slab.add(Counter::DatagramsIpv6, report.datagrams_ipv6);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::PcapWriter;
    use vids_core::config::Config;
    use vids_core::sink::CollectSink;
    use vids_record::Recorder;

    #[test]
    fn replays_a_capture_and_reports_totals() {
        let mut w = PcapWriter::new();
        let src = "10.1.0.10:5060".parse().unwrap();
        let dst = "10.2.0.10:5060".parse().unwrap();
        w.push_udp(SimTime::from_millis(1), src, dst, b"not really sip");
        w.push_udp(
            SimTime::from_millis(2),
            "10.1.0.10:9999".parse().unwrap(),
            "10.2.0.10:9998".parse().unwrap(),
            b"junk", // demuxes Unknown
        );
        let mut pool = VidsPool::new(Config::default());
        let mut sink = CollectSink::new();
        let report = replay_pcap(w.into_bytes(), &mut pool, 1, None, None, &mut sink).unwrap();
        assert_eq!(report.datagrams, 2);
        assert_eq!(report.demux_unknown, 1);
        assert_eq!(report.batches, 2);
        assert_eq!(report.last_at, SimTime::from_millis(2));
        // The SIP-port garbage is a malformed-signaling alert.
        assert_eq!(sink.alerts().len(), 1);
        assert_eq!(pool.counters().malformed, 1);
        assert_eq!(pool.counters().ignored, 1);
    }

    #[test]
    fn tapped_replay_records_the_window_and_dumps_on_alert() {
        let mut w = PcapWriter::new();
        let src = "10.1.0.10:5060".parse().unwrap();
        let dst = "10.2.0.10:5060".parse().unwrap();
        // Garbage on the SIP port raises a malformed-signaling alert.
        w.push_udp(SimTime::from_millis(1), src, dst, b"not really sip");
        let mut pool = VidsPool::new(Config::default());
        let mut sink = CollectSink::new();
        let mut recorder = Recorder::with_defaults(1);
        let dir = std::env::temp_dir().join("vids-ingest-tap-test");
        std::fs::remove_dir_all(&dir).ok();
        let mut tap = RecordTap::new(&mut recorder, Some(&dir));
        let report = replay_pcap(
            w.into_bytes(),
            &mut pool,
            1,
            None,
            Some(&mut tap),
            &mut sink,
        )
        .unwrap();
        assert_eq!(report.datagrams, 1);
        // The sink still sees the alert (tee, not redirect)...
        assert_eq!(sink.alerts().len(), 1);
        // ...and the tap wrote one dump for it.
        assert_eq!(tap.written.len(), 1);
        let dump = vids_record::Vdump::read_from(&tap.written[0]).unwrap();
        assert_eq!(dump.packets.len(), 1);
        assert_eq!(dump.packets[0].payload, b"not really sip");
        assert_eq!(recorder.stats().dumps_written, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
