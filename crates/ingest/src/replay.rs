//! Offline replay: run a capture through the engine at full speed.
//!
//! Replay drives the exact pipeline the live daemon uses — pcap record →
//! UDP frame → demux → [`classify_datagram`] → `process_wire_batch` —
//! with the capture's own timestamps standing in for the wall clock.
//! Because the pool's batched merge is chunking-invariant, the alerts
//! and counters from a replay are byte-identical to what an in-process
//! run over the same traffic produces (`tests/replay_differential.rs`
//! in the root crate holds this at 1, 4 and 8 shards).

use vids_core::pool::{VidsPool, WireEvent};
use vids_core::sink::AlertSink;
use vids_core::telemetry::{Counter, Registry};
use vids_netsim::time::SimTime;

use crate::demux::{classify_datagram, WireClass};
use crate::source::{IngestError, PcapSource, Polled, WireSource};

/// How far past the last captured packet the final timer sweep runs, so
/// hanging-call and media-silence timers near the end of a capture still
/// fire.
pub const REPLAY_GRACE: SimTime = SimTime::from_secs(30);

/// What a replay processed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayReport {
    /// UDP datagrams decoded from the capture.
    pub datagrams: u64,
    /// Datagrams that demultiplexed to [`WireClass::Unknown`].
    pub demux_unknown: u64,
    /// Batches handed to the engine.
    pub batches: u64,
    /// Timestamp of the last datagram (capture clock).
    pub last_at: SimTime,
}

/// Replays any [`WireSource`] to exhaustion through `pool`, batching
/// `flush_packets` events at a time.
pub fn replay<W, S>(
    source: &mut W,
    pool: &mut VidsPool,
    flush_packets: usize,
    telemetry: Option<&Registry>,
    sink: &mut S,
) -> Result<ReplayReport, IngestError>
where
    W: WireSource,
    S: AlertSink + ?Sized,
{
    let flush_packets = flush_packets.max(1);
    let mut report = ReplayReport::default();
    let mut events: Vec<WireEvent> = Vec::with_capacity(flush_packets);
    loop {
        match source.poll()? {
            Polled::Datagram(d) => {
                let (class, classified) = classify_datagram(&d);
                report.datagrams += 1;
                if class == WireClass::Unknown {
                    report.demux_unknown += 1;
                }
                report.last_at = report.last_at.max(d.at);
                events.push(WireEvent {
                    classified,
                    at: d.at,
                });
                if events.len() >= flush_packets {
                    flush_batch(pool, &mut events, &mut report, sink);
                }
            }
            // Replay sources are not expected to stall, but a source
            // that does (a future live-file tail) is just polled again.
            Polled::Empty => continue,
            Polled::End => break,
        }
    }
    if !events.is_empty() {
        flush_batch(pool, &mut events, &mut report, sink);
    }
    pool.tick(report.last_at + REPLAY_GRACE, sink);
    if let Some(reg) = telemetry {
        let slab = reg.pool();
        slab.add(Counter::DatagramsRx, report.datagrams);
        slab.add(Counter::DemuxUnknown, report.demux_unknown);
    }
    Ok(report)
}

/// Hands one batch to the engine. The batch clock is the batch's
/// *first* timestamp: the engine clamps each event's time up to at
/// least the clock, so passing a later time would collapse the
/// intra-batch timing the window and timer machines depend on.
fn flush_batch<S: AlertSink + ?Sized>(
    pool: &mut VidsPool,
    events: &mut Vec<WireEvent>,
    report: &mut ReplayReport,
    sink: &mut S,
) {
    let now = events.first().map(|e| e.at).unwrap_or(report.last_at);
    pool.process_wire_batch(events, now, sink);
    report.batches += 1;
}

/// Replays classic pcap capture bytes (see [`crate::pcap::PcapReader`]
/// for the supported formats).
pub fn replay_pcap<S: AlertSink + ?Sized>(
    capture: Vec<u8>,
    pool: &mut VidsPool,
    flush_packets: usize,
    telemetry: Option<&Registry>,
    sink: &mut S,
) -> Result<ReplayReport, IngestError> {
    let mut source = PcapSource::new(capture)?;
    replay(&mut source, pool, flush_packets, telemetry, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::PcapWriter;
    use vids_core::config::Config;
    use vids_core::sink::CollectSink;

    #[test]
    fn replays_a_capture_and_reports_totals() {
        let mut w = PcapWriter::new();
        let src = "10.1.0.10:5060".parse().unwrap();
        let dst = "10.2.0.10:5060".parse().unwrap();
        w.push_udp(SimTime::from_millis(1), src, dst, b"not really sip");
        w.push_udp(
            SimTime::from_millis(2),
            "10.1.0.10:9999".parse().unwrap(),
            "10.2.0.10:9998".parse().unwrap(),
            b"junk", // demuxes Unknown
        );
        let mut pool = VidsPool::new(Config::default());
        let mut sink = CollectSink::new();
        let report = replay_pcap(w.into_bytes(), &mut pool, 1, None, &mut sink).unwrap();
        assert_eq!(report.datagrams, 2);
        assert_eq!(report.demux_unknown, 1);
        assert_eq!(report.batches, 2);
        assert_eq!(report.last_at, SimTime::from_millis(2));
        // The SIP-port garbage is a malformed-signaling alert.
        assert_eq!(sink.alerts().len(), 1);
        assert_eq!(pool.counters().malformed, 1);
        assert_eq!(pool.counters().ignored, 1);
    }
}
