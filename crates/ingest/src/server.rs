//! The serve pipeline: receiver threads feeding the pipelined engine.
//!
//! Thread and ownership layout (one arrow = one crossbeam channel):
//!
//! ```text
//!  socket 0 ── receiver thread 0 ──┐                  ┌── recycled Vecs
//!  socket 1 ── receiver thread 1 ──┤  Vec<PreRouted>  │
//!      ⋮              ⋮            ├──────────────────▼──► coordinator ──► shard
//!  socket N ── receiver thread N ──┘    (batches)         (caller's        workers
//!                                                          thread)        (epoch
//!                                                                          rings)
//! ```
//!
//! Receiver threads own their socket and scratch buffers, drain them with
//! batched reads ([`UdpSource::poll_batch`]), classify each datagram in
//! place and — the receiver-side routing step — compute its shard-routing
//! hashes ([`vids_core::pool::PreRouted::new`]) before batching. The
//! coordinator therefore never touches payload bytes: it runs only the
//! residual sequential pass (cost charge, clamp, media index) and
//! publishes each batch as an epoch on the pool's per-shard rings
//! ([`vids_core::pool::VidsPool::with_pipeline`]), where persistent shard
//! workers drain it concurrently with the next batch's arrival. Alerts
//! still reach the sink in the engine's deterministic merge order,
//! epoch by epoch. Batch `Vec`s cycle back to the receivers through a
//! recycle channel; steady state allocates nothing per datagram.
//!
//! Shutdown: set the stop flag (the CLI wires SIGINT to
//! [`stop_flag_on_sigint`]). Receivers flush their partial batch and
//! exit; the coordinator drains every in-flight batch and epoch, runs one
//! final timer tick, and returns.
//!
//! An optional [`ServeRecorder`] taps the pipeline for the flight
//! recorder: receivers mirror each datagram into their own recorder lane
//! ([`vids_record::LaneRecorder`] — per-lane locks, no cross-receiver
//! contention) and the coordinator dumps the captured window at tick
//! boundaries for any alerts raised since the previous tick. With
//! [`dump_flag_on_sigusr1`] wired into [`ServeOptions::snapshot_flag`],
//! `SIGUSR1` requests an on-demand `.vdump` of the live rings.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel;
use vids_core::config::Config;
use vids_core::pool::{PipelineIngress, PreRouted, VidsPool};
use vids_core::sink::AlertSink;
use vids_core::telemetry::{Counter, Gauge, Registry};
use vids_netsim::time::SimTime;
use vids_record::LaneRecorder;

use crate::batch::Batcher;
use crate::demux::{classify_datagram, WireClass};
use crate::record_tap::{recorded_class, ServeRecorder};
use crate::source::IngestError;
use crate::udp::{PoolMode, UdpPool, UdpSource};

/// How often an idle receiver refreshes its kernel-backlog reading.
const BACKLOG_EVERY: u32 = 64;

/// Tuning for one serve session, lifted from [`Config`]'s ingestion
/// knobs plus wall-clock cadences the engine does not care about.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Receiver thread / socket count.
    pub receivers: usize,
    /// Flush a receiver's batch at this many events.
    pub flush_packets: usize,
    /// Flush a receiver's batch once its oldest event is this old.
    pub flush_interval: Duration,
    /// Upper bound on one blocking socket read (bounds shutdown latency).
    pub read_timeout: Duration,
    /// How often the coordinator runs the engine's timer sweep while
    /// traffic is quiet.
    pub tick_interval: Duration,
    /// When set, a true value requests one on-demand snapshot dump of the
    /// recorder rings (then resets). Wire [`dump_flag_on_sigusr1`] here to
    /// trigger it with `kill -USR1`; ignored when no recorder is attached.
    pub snapshot_flag: Option<&'static AtomicBool>,
}

impl ServeOptions {
    /// Derives serve tuning from the engine config: `shards` receiver
    /// threads, the config's batch flush knobs, and cadences derived
    /// from the flush interval.
    pub fn from_config(config: &Config) -> Self {
        let flush = Duration::from_nanos(config.batch_flush_interval.as_nanos());
        ServeOptions {
            receivers: config.shards,
            flush_packets: config.batch_flush_packets,
            flush_interval: flush,
            read_timeout: flush.max(Duration::from_millis(1)),
            tick_interval: Duration::from_millis(100),
            snapshot_flag: None,
        }
    }
}

/// What a serve session did, reported after shutdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeReport {
    /// Datagrams received and classified.
    pub datagrams_rx: u64,
    /// Datagrams lost because a batch could not reach the coordinator.
    pub datagrams_dropped: u64,
    /// Datagrams that demultiplexed to [`WireClass::Unknown`].
    pub demux_unknown: u64,
    /// Plain-IPv6 datagrams dropped because the engine models IPv4 only.
    pub datagrams_ipv6: u64,
    /// Batches handed to the engine.
    pub batches: u64,
    /// The wall-clock time of the final tick, on the session's epoch.
    pub ended_at: SimTime,
}

/// Shared ingest-side counters, updated by receivers, read by the
/// coordinator (and mirrored into telemetry when enabled).
#[derive(Default)]
struct IngestStats {
    rx: AtomicU64,
    dropped: AtomicU64,
    unknown: AtomicU64,
    ipv6: AtomicU64,
    backlog: Vec<AtomicU64>,
}

/// Binds `opts.receivers` sockets to `listen` and runs the serve loop
/// until `stop` becomes true. Blocks the calling thread; alerts stream
/// into `sink` in deterministic merge order.
pub fn serve<S: AlertSink + ?Sized>(
    pool: &mut VidsPool,
    listen: std::net::SocketAddr,
    opts: &ServeOptions,
    telemetry: Option<&Registry>,
    stop: &AtomicBool,
    recorder: Option<&mut ServeRecorder<'_>>,
    sink: &mut S,
) -> Result<ServeReport, IngestError> {
    let udp = UdpPool::bind(listen, opts.receivers)?;
    serve_on(pool, udp, opts, telemetry, stop, recorder, sink)
}

/// [`serve`] over an already-bound socket pool — the entry point for
/// tests that need the resolved port before traffic starts.
pub fn serve_on<S: AlertSink + ?Sized>(
    pool: &mut VidsPool,
    udp: UdpPool,
    opts: &ServeOptions,
    telemetry: Option<&Registry>,
    stop: &AtomicBool,
    recorder: Option<&mut ServeRecorder<'_>>,
    sink: &mut S,
) -> Result<ServeReport, IngestError> {
    let mode = udp.mode();
    let epoch = Instant::now();
    let sources = udp.into_sources(epoch, opts.read_timeout);
    let single_receiver = mode == PoolMode::Single;
    debug_assert!(!single_receiver || sources.len() == 1);

    let stats = IngestStats {
        backlog: (0..sources.len()).map(|_| AtomicU64::new(0)).collect(),
        ..Default::default()
    };
    let (batch_tx, batch_rx) = channel::unbounded::<Vec<PreRouted>>();
    let (recycle_tx, recycle_rx) = channel::unbounded::<Vec<PreRouted>>();
    // The vendored channel's receiver is single-consumer; the recycle
    // side is shared across receiver threads through a mutex (one lock
    // per batch flush, not per datagram).
    let recycle_rx = std::sync::Mutex::new(recycle_rx);

    // Split the recorder: receivers record into their own lane through
    // the shared reference, the coordinator additionally knows the dump
    // directory; written paths and write failures are folded back after
    // the scope ends.
    let lane_rec: Option<&LaneRecorder> = recorder.as_ref().map(|r| r.recorder);
    let dump_dir: Option<&Path> = recorder.as_ref().and_then(|r| r.dump_dir);
    let mut dump_log = DumpLog::default();

    let report = std::thread::scope(|scope| {
        for (i, source) in sources.into_iter().enumerate() {
            let tx = batch_tx.clone();
            let recycle = &recycle_rx;
            let stats = &stats;
            let opts = *opts;
            scope
                .spawn(move || receiver_loop(source, i, tx, recycle, stats, &opts, stop, lane_rec));
        }
        // The receivers hold the only senders now; `Disconnected` on the
        // batch channel therefore means every receiver has flushed and
        // exited.
        drop(batch_tx);

        pool.with_pipeline(|p| {
            coordinator_loop(
                p,
                &batch_rx,
                &recycle_tx,
                &stats,
                opts,
                telemetry,
                epoch,
                lane_rec.map(|rec| (rec, dump_dir)),
                &mut dump_log,
                sink,
            )
        })
    });
    if let Some(r) = recorder {
        r.written.extend(dump_log.written);
        r.io_errors += dump_log.io_errors;
    }
    Ok(report)
}

/// Dump outcomes the coordinator accumulates during a session.
#[derive(Default)]
struct DumpLog {
    written: Vec<PathBuf>,
    io_errors: u64,
}

#[allow(clippy::too_many_arguments)]
fn receiver_loop(
    mut source: UdpSource,
    index: usize,
    tx: channel::Sender<Vec<PreRouted>>,
    recycle: &std::sync::Mutex<channel::Receiver<Vec<PreRouted>>>,
    stats: &IngestStats,
    opts: &ServeOptions,
    stop: &AtomicBool,
    recorder: Option<&LaneRecorder>,
) {
    let mut batcher = Batcher::new(opts.flush_packets, opts.flush_interval.as_nanos() as u64);
    let mut polls: u32 = 0;
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        polls = polls.wrapping_add(1);
        if polls.is_multiple_of(BACKLOG_EVERY) {
            if let Some(b) = source.backlog_bytes() {
                stats.backlog[index].store(b, Ordering::Relaxed);
            }
        }
        let mut due = false;
        let polled = source.poll_batch(&mut |d| {
            // The receiver-side hot path: demux + classify + route-hash,
            // all allocation-free for media traffic, then one push into
            // the preallocated batch.
            let (class, classified) = classify_datagram(&d);
            if let Some(rec) = recorder {
                rec.record(index, d.at, d.src, d.dst, recorded_class(class), d.payload);
            }
            stats.rx.fetch_add(1, Ordering::Relaxed);
            if class == WireClass::Unknown {
                stats.unknown.fetch_add(1, Ordering::Relaxed);
            } else if class == WireClass::Ipv6 {
                stats.ipv6.fetch_add(1, Ordering::Relaxed);
            }
            due |= batcher.push(PreRouted::new(classified, d.at));
        });
        match polled {
            Ok(0) => due = batcher.overdue(Instant::now()),
            Ok(_) => {}
            // A socket error on one receiver retires that receiver; the
            // rest of the pool keeps serving.
            Err(_) => break,
        }
        if due {
            flush(&mut batcher, &tx, recycle, stats);
        }
    }
    if !batcher.is_empty() {
        flush(&mut batcher, &tx, recycle, stats);
    }
    stats.backlog[index].store(0, Ordering::Relaxed);
}

fn flush(
    batcher: &mut Batcher<PreRouted>,
    tx: &channel::Sender<Vec<PreRouted>>,
    recycle: &std::sync::Mutex<channel::Receiver<Vec<PreRouted>>>,
    stats: &IngestStats,
) {
    let spare = recycle
        .lock()
        .map(|rx| rx.try_recv().unwrap_or_default())
        .unwrap_or_default();
    let batch = batcher.take(spare);
    let len = batch.len() as u64;
    if tx.send(batch).is_err() {
        stats.dropped.fetch_add(len, Ordering::Relaxed);
    }
}

#[allow(clippy::too_many_arguments)]
fn coordinator_loop<S: AlertSink + ?Sized>(
    p: &mut PipelineIngress<'_, '_>,
    batch_rx: &channel::Receiver<Vec<PreRouted>>,
    recycle_tx: &channel::Sender<Vec<PreRouted>>,
    stats: &IngestStats,
    opts: &ServeOptions,
    telemetry: Option<&Registry>,
    epoch: Instant,
    recorder: Option<(&LaneRecorder, Option<&Path>)>,
    dump_log: &mut DumpLog,
    sink: &mut S,
) -> ServeReport {
    let mut batches = 0u64;
    let mut published = ServeReport::default();
    let mut last_tick = Instant::now();
    // Alerts already considered for dumping (index into `pool.alerts()`).
    let mut alerts_dumped = 0usize;
    loop {
        match batch_rx.recv_timeout(opts.tick_interval) {
            Ok(mut events) => {
                // The batch clock is the batch's first receive time (not
                // the current wall clock): the engine clamps events up to
                // the clock, and a later clock would flatten the
                // intra-batch timing the window machines count on.
                let now = events.first().map(|e| e.at).unwrap_or_else(|| wall(epoch));
                p.submit(&mut events, now, sink);
                if let Some((rec, _)) = recorder {
                    rec.mark_batch();
                }
                batches += 1;
                let _ = recycle_tx.send(events);
            }
            Err(channel::RecvTimeoutError::Timeout) => {}
            Err(channel::RecvTimeoutError::Disconnected) => break,
        }
        let now = Instant::now();
        if now.duration_since(last_tick) >= opts.tick_interval {
            last_tick = now;
            // The tick flushes every in-flight epoch, so the pool is
            // quiescent right after — the only point where dumps can
            // read shard state without racing the workers.
            p.tick(wall(epoch), sink);
            dump_new_alerts(p, recorder, &mut alerts_dumped, dump_log);
        }
        if let Some(flag) = opts.snapshot_flag {
            // Swap-and-clear even with no recorder, so a stale request
            // does not fire the first dump of a later session.
            if flag.swap(false, Ordering::Relaxed) {
                if let Some((rec, Some(dir))) = recorder {
                    p.flush(sink);
                    match rec.dump_snapshot(p.pool(), dir, wall(epoch)) {
                        Ok(Some(path)) => dump_log.written.push(path),
                        Ok(None) => {} // dump cap reached
                        Err(_) => dump_log.io_errors += 1,
                    }
                }
            }
        }
        publish(stats, telemetry, batches, &mut published, p.in_flight());
    }
    // All receivers flushed and exited; every batch has been submitted.
    // One final tick drains the rings and fires any pending timers.
    let ended_at = wall(epoch);
    p.tick(ended_at, sink);
    dump_new_alerts(p, recorder, &mut alerts_dumped, dump_log);
    publish(stats, telemetry, batches, &mut published, 0);
    ServeReport {
        ended_at,
        ..published
    }
}

/// Dumps the window for any alerts raised since the last quiesce point.
/// Must be called with the pipeline flushed (right after a tick). A
/// failed dump write is counted, not fatal.
fn dump_new_alerts(
    p: &mut PipelineIngress<'_, '_>,
    recorder: Option<(&LaneRecorder, Option<&Path>)>,
    alerts_dumped: &mut usize,
    dump_log: &mut DumpLog,
) {
    let Some((rec, dir)) = recorder else { return };
    let pool = p.pool();
    let alerts = pool.alerts();
    if alerts.len() <= *alerts_dumped {
        return;
    }
    if let Some(dir) = dir {
        for a in &alerts[*alerts_dumped..] {
            rec.note_alert(a);
        }
        match rec.dump_pending(pool, dir) {
            Ok(paths) => dump_log.written.extend(paths),
            Err(_) => dump_log.io_errors += 1,
        }
    }
    *alerts_dumped = alerts.len();
}

fn wall(epoch: Instant) -> SimTime {
    SimTime::from_nanos(epoch.elapsed().as_nanos() as u64)
}

/// Mirrors the ingest-side counters into telemetry as deltas, so the
/// pool slab's `datagrams_rx` / `demux_unknown` / `datagrams_dropped`
/// counters and the `socket_backlog` gauge stay current.
fn publish(
    stats: &IngestStats,
    telemetry: Option<&Registry>,
    batches: u64,
    published: &mut ServeReport,
    in_flight: u64,
) {
    let now = ServeReport {
        datagrams_rx: stats.rx.load(Ordering::Relaxed),
        datagrams_dropped: stats.dropped.load(Ordering::Relaxed),
        demux_unknown: stats.unknown.load(Ordering::Relaxed),
        datagrams_ipv6: stats.ipv6.load(Ordering::Relaxed),
        batches,
        ended_at: published.ended_at,
    };
    if let Some(reg) = telemetry {
        let slab = reg.pool();
        slab.add(
            Counter::DatagramsRx,
            now.datagrams_rx - published.datagrams_rx,
        );
        slab.add(
            Counter::DatagramsDropped,
            now.datagrams_dropped - published.datagrams_dropped,
        );
        slab.add(
            Counter::DemuxUnknown,
            now.demux_unknown - published.demux_unknown,
        );
        slab.add(
            Counter::DatagramsIpv6,
            now.datagrams_ipv6 - published.datagrams_ipv6,
        );
        let backlog: u64 = stats
            .backlog
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        slab.set_gauge(Gauge::SocketBacklog, backlog);
        slab.set_gauge(Gauge::PipelineDepth, in_flight);
    }
    *published = now;
}

/// Installs a SIGINT handler that sets a process-wide stop flag, and
/// returns the flag. Safe to call more than once. On non-Unix targets
/// the flag is returned un-wired (Ctrl-C terminates the process).
pub fn stop_flag_on_sigint() -> &'static AtomicBool {
    static STOP: AtomicBool = AtomicBool::new(false);
    #[cfg(unix)]
    {
        extern "C" fn on_sigint(_sig: i32) {
            STOP.store(true, Ordering::Relaxed);
        }
        extern "C" {
            fn signal(sig: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        // SAFETY: the handler only stores to a static atomic, which is
        // async-signal-safe.
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
    &STOP
}

/// Installs a SIGUSR1 handler that sets a process-wide snapshot-request
/// flag, and returns the flag; wire it into
/// [`ServeOptions::snapshot_flag`] so `kill -USR1 $(pidof vids)` dumps
/// the live recorder rings as a `.vdump`. Safe to call more than once.
/// On non-Unix targets the flag is returned un-wired.
pub fn dump_flag_on_sigusr1() -> &'static AtomicBool {
    static DUMP: AtomicBool = AtomicBool::new(false);
    #[cfg(unix)]
    {
        extern "C" fn on_sigusr1(_sig: i32) {
            DUMP.store(true, Ordering::Relaxed);
        }
        extern "C" {
            fn signal(sig: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGUSR1: i32 = 10;
        // SAFETY: the handler only stores to a static atomic, which is
        // async-signal-safe.
        unsafe {
            signal(SIGUSR1, on_sigusr1);
        }
    }
    &DUMP
}
