//! Bridges the ingest pipeline to the `vids-record` flight recorder.
//!
//! Both ingest paths (offline [`crate::replay::replay`] and the live
//! [`crate::server`]) accept an optional tap. When present, every
//! datagram is mirrored into the recorder's rings *before* it reaches
//! the engine (allocation-free), batch boundaries are marked as the
//! engine sees them, and any alert a batch raises triggers a `.vdump`
//! of the surrounding window.

use std::path::{Path, PathBuf};

use vids_record::{RecordedClass, Recorder};

use crate::demux::WireClass;

/// Maps the live demux verdict onto the dump's frozen class byte.
pub fn recorded_class(class: WireClass) -> RecordedClass {
    match class {
        WireClass::Sip => RecordedClass::Sip,
        WireClass::Rtp => RecordedClass::Rtp,
        WireClass::Rtcp => RecordedClass::Rtcp,
        // The dump format has no v6 class byte; v6 drops freeze as Unknown
        // (both are engine-ignored, so replay verdicts are unaffected).
        WireClass::Ipv6 | WireClass::Unknown => RecordedClass::Unknown,
    }
}

/// A flight-recorder tap for the single-lane offline replay path.
///
/// `dump_dir = None` keeps the rings hot (stats, overhead measurement)
/// without ever writing dumps; alerts then pass through untouched.
pub struct RecordTap<'a> {
    /// The recorder holding the rings.
    pub recorder: &'a mut Recorder,
    /// Where alert-triggered dumps go; `None` disables dumping.
    pub dump_dir: Option<&'a Path>,
    /// Dump files written during this run, in order.
    pub written: Vec<PathBuf>,
}

impl<'a> RecordTap<'a> {
    /// Taps `recorder`, dumping alerts into `dump_dir` when given.
    pub fn new(recorder: &'a mut Recorder, dump_dir: Option<&'a Path>) -> Self {
        RecordTap {
            recorder,
            dump_dir,
            written: Vec::new(),
        }
    }
}

/// A flight-recorder tap for the multi-threaded serve path.
///
/// Each receiver thread records into its own [`vids_record::LaneRecorder`]
/// lane (per-lane locks — no cross-receiver contention, unlike the
/// `Mutex<Recorder>` this replaced); the coordinator marks batch
/// boundaries and writes dumps at pipeline quiesce points.
pub struct ServeRecorder<'a> {
    /// The shared per-lane recorder.
    pub recorder: &'a vids_record::LaneRecorder,
    /// Where alert-triggered dumps go; `None` disables dumping.
    pub dump_dir: Option<&'a Path>,
    /// Dump files written during the session, in order.
    pub written: Vec<PathBuf>,
    /// Dump writes that failed (the session keeps serving).
    pub io_errors: u64,
}

impl<'a> ServeRecorder<'a> {
    /// Taps `recorder`, dumping alerts into `dump_dir` when given.
    pub fn new(recorder: &'a vids_record::LaneRecorder, dump_dir: Option<&'a Path>) -> Self {
        ServeRecorder {
            recorder,
            dump_dir,
            written: Vec::new(),
            io_errors: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demux_classes_map_one_to_one() {
        assert_eq!(recorded_class(WireClass::Sip), RecordedClass::Sip);
        assert_eq!(recorded_class(WireClass::Rtp), RecordedClass::Rtp);
        assert_eq!(recorded_class(WireClass::Rtcp), RecordedClass::Rtcp);
        assert_eq!(recorded_class(WireClass::Unknown), RecordedClass::Unknown);
        assert_eq!(recorded_class(WireClass::Ipv6), RecordedClass::Unknown);
    }
}
