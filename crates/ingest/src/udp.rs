//! Live UDP capture: a receiver socket pool with kernel-level sharding.
//!
//! On Linux the pool binds N sockets to the same address with
//! `SO_REUSEPORT`, letting the kernel hash inbound flows across receiver
//! threads — no user-space dispatch on the hot path. The option predates
//! the `libc` crate's stabilized bindings this workspace cannot add, so
//! the three calls involved (`socket`, `setsockopt`, `bind`) are made
//! through a minimal hand-rolled FFI shim, IPv4 only. Anywhere that shim
//! is unavailable (non-Linux, IPv6 listen address, or a kernel that
//! refuses the option) the pool degrades to a single `std` socket read
//! by a single receiver thread; correctness is unchanged, only receive
//! parallelism is lost.

use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use vids_netsim::time::SimTime;

use crate::datagram::Datagram;
use crate::source::{IngestError, Polled, WireSource};

/// Largest UDP payload a source will deliver (the practical MTU ceiling
/// plus headroom for jumbo frames).
pub const RECV_BUF_LEN: usize = 64 * 1024;

/// How the pool's sockets were bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// N `SO_REUSEPORT` sockets; the kernel shards flows across them.
    ReusePort,
    /// One plain socket; a single receiver thread reads everything.
    Single,
}

/// The bound receiver sockets for a serve session.
pub struct UdpPool {
    sockets: Vec<UdpSocket>,
    mode: PoolMode,
    local: SocketAddr,
}

impl UdpPool {
    /// Binds `want` receiver sockets to `addr`.
    ///
    /// Tries the `SO_REUSEPORT` path first (Linux, IPv4, `want > 1`);
    /// falls back to one standard socket. Never fails because of the
    /// fallback path alone — an error means even the plain bind failed.
    pub fn bind(addr: SocketAddr, want: usize) -> std::io::Result<Self> {
        if want > 1 {
            if let Some(sockets) = reuseport::bind_many(addr, want) {
                let local = sockets[0].local_addr()?;
                return Ok(UdpPool {
                    sockets,
                    mode: PoolMode::ReusePort,
                    local,
                });
            }
        }
        let socket = UdpSocket::bind(addr)?;
        let local = socket.local_addr()?;
        Ok(UdpPool {
            sockets: vec![socket],
            mode: PoolMode::Single,
            local,
        })
    }

    /// How the sockets were bound.
    pub fn mode(&self) -> PoolMode {
        self.mode
    }

    /// The bound local address (with the resolved port when `addr` used
    /// port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Splits the pool into one [`UdpSource`] per socket, all sharing
    /// the `epoch` so their timestamps are mutually comparable.
    pub fn into_sources(self, epoch: Instant, read_timeout: Duration) -> Vec<UdpSource> {
        let local = self.local;
        self.sockets
            .into_iter()
            .map(|s| UdpSource::new(s, local, epoch, read_timeout))
            .collect()
    }
}

/// A [`WireSource`] over one live UDP socket.
pub struct UdpSource {
    socket: UdpSocket,
    local: SocketAddr,
    epoch: Instant,
    buf: Box<[u8; RECV_BUF_LEN]>,
    #[cfg(target_os = "linux")]
    batch: Option<mmsg::Batch>,
}

impl UdpSource {
    /// Wraps a bound socket. `read_timeout` bounds how long one poll
    /// blocks, which bounds shutdown latency.
    pub fn new(
        socket: UdpSocket,
        local: SocketAddr,
        epoch: Instant,
        read_timeout: Duration,
    ) -> Self {
        // A zero Duration would mean "block forever" to the kernel;
        // clamp up so the timeout stays a timeout.
        let timeout = read_timeout.max(Duration::from_millis(1));
        let _ = socket.set_read_timeout(Some(timeout));
        UdpSource {
            socket,
            local,
            epoch,
            buf: Box::new([0u8; RECV_BUF_LEN]),
            #[cfg(target_os = "linux")]
            batch: None,
        }
    }

    /// Bytes queued in this socket's kernel receive buffer, if the
    /// platform exposes them (`FIONREAD`). Feeds the `socket_backlog`
    /// gauge.
    pub fn backlog_bytes(&self) -> Option<u64> {
        backlog::bytes(&self.socket)
    }

    /// Receives up to a small batch of datagrams in one syscall and
    /// invokes `f` for each, sharing one receive timestamp.
    ///
    /// On Linux (IPv4 sockets) this is `recvmmsg(2)` with
    /// `MSG_WAITFORONE`: the call blocks — bounded by the socket's read
    /// timeout — until at least one datagram arrives, then drains
    /// whatever else is already queued, up to [`mmsg::SLOTS`] messages,
    /// without re-entering the kernel per datagram. Elsewhere (and for
    /// IPv6 listeners) it degrades to one `recv_from` per call.
    ///
    /// Returns the number of datagrams delivered; 0 means the read timed
    /// out with nothing queued.
    pub fn poll_batch(&mut self, f: &mut dyn FnMut(Datagram<'_>)) -> Result<usize, IngestError> {
        #[cfg(target_os = "linux")]
        if matches!(self.local, SocketAddr::V4(_)) {
            use std::os::fd::AsRawFd;
            let fd = self.socket.as_raw_fd();
            let batch = self.batch.get_or_insert_with(mmsg::Batch::new);
            return match batch.recv(fd) {
                Ok(n) => {
                    let at = SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64);
                    for i in 0..n {
                        let (src, payload) = batch.datagram(i);
                        f(Datagram {
                            src,
                            dst: self.local,
                            at,
                            payload,
                        });
                    }
                    Ok(n)
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    Ok(0)
                }
                Err(e) => Err(IngestError::Io(e)),
            };
        }
        match self.poll()? {
            Polled::Datagram(d) => {
                f(d);
                Ok(1)
            }
            Polled::Empty | Polled::End => Ok(0),
        }
    }
}

impl WireSource for UdpSource {
    fn poll(&mut self) -> Result<Polled<'_>, IngestError> {
        match self.socket.recv_from(&mut self.buf[..]) {
            Ok((len, src)) => {
                let at = SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64);
                Ok(Polled::Datagram(Datagram {
                    src,
                    dst: self.local,
                    at,
                    payload: &self.buf[..len],
                }))
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(Polled::Empty)
            }
            Err(e) => Err(IngestError::Io(e)),
        }
    }
}

#[cfg(target_os = "linux")]
pub mod mmsg {
    //! Batched reception via `recvmmsg(2)`, same hand-rolled FFI policy
    //! as the reuseport shim: the symbol comes from the libc `std`
    //! already links, the struct layouts are written out for 64-bit
    //! Linux, and anything unexpected falls back to the portable path.

    use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};

    /// Messages drained per syscall. Eight 64 KiB buffers is 512 KiB per
    /// receiver — large enough to amortize the syscall under load, small
    /// enough to allocate lazily per source.
    pub const SLOTS: usize = 8;

    const AF_INET: u16 = 2;
    /// Block (honoring `SO_RCVTIMEO`) only until the first message.
    const MSG_WAITFORONE: i32 = 0x10000;

    /// `struct sockaddr_in`, as in the reuseport shim.
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port: [u8; 2],
        addr: [u8; 4],
        zero: [u8; 8],
    }

    /// `struct iovec`.
    #[repr(C)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    /// `struct msghdr` (64-bit layout; `repr(C)` inserts the 4-byte pads
    /// after `namelen` and `flags` that the ABI requires).
    #[repr(C)]
    struct MsgHdr {
        name: *mut SockaddrIn,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    /// `struct mmsghdr`.
    #[repr(C)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    extern "C" {
        fn recvmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32, timeout: *mut u8) -> i32;
    }

    /// The preallocated receive state: [`SLOTS`] payload buffers, source
    /// addresses, iovecs and message headers, wired together once. All
    /// pointers target heap allocations owned by this struct, so moving
    /// the struct (the `Vec` headers) never invalidates them.
    pub struct Batch {
        bufs: Vec<Box<[u8]>>,
        addrs: Vec<SockaddrIn>,
        // Never read directly — each element is referenced by a raw
        // pointer from `hdrs`, and the Vec keeps that storage alive.
        #[allow(dead_code)]
        iovecs: Vec<IoVec>,
        hdrs: Vec<MMsgHdr>,
    }

    // SAFETY: the raw pointers all point into heap memory owned by the
    // same struct; a batch is only ever used by its owning thread.
    unsafe impl Send for Batch {}

    impl Batch {
        /// Allocates the buffers and wires the header chain.
        pub fn new() -> Self {
            let mut bufs: Vec<Box<[u8]>> = (0..SLOTS)
                .map(|_| vec![0u8; super::RECV_BUF_LEN].into_boxed_slice())
                .collect();
            let mut addrs: Vec<SockaddrIn> = (0..SLOTS)
                .map(|_| SockaddrIn {
                    family: 0,
                    port: [0; 2],
                    addr: [0; 4],
                    zero: [0; 8],
                })
                .collect();
            let mut iovecs: Vec<IoVec> = bufs
                .iter_mut()
                .map(|b| IoVec {
                    base: b.as_mut_ptr(),
                    len: b.len(),
                })
                .collect();
            let hdrs: Vec<MMsgHdr> = iovecs
                .iter_mut()
                .zip(addrs.iter_mut())
                .map(|(iov, addr)| MMsgHdr {
                    hdr: MsgHdr {
                        name: addr as *mut SockaddrIn,
                        namelen: std::mem::size_of::<SockaddrIn>() as u32,
                        iov: iov as *mut IoVec,
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                })
                .collect();
            Batch {
                bufs,
                addrs,
                iovecs,
                hdrs,
            }
        }

        /// One `recvmmsg` call; returns how many messages landed.
        pub fn recv(&mut self, fd: i32) -> std::io::Result<usize> {
            for h in &mut self.hdrs {
                h.hdr.namelen = std::mem::size_of::<SockaddrIn>() as u32;
                h.hdr.flags = 0;
                h.len = 0;
            }
            // SAFETY: every header points at live, correctly sized
            // buffers owned by `self`; vlen matches the header count.
            let rc = unsafe {
                recvmmsg(
                    fd,
                    self.hdrs.as_mut_ptr(),
                    self.hdrs.len() as u32,
                    MSG_WAITFORONE,
                    std::ptr::null_mut(),
                )
            };
            if rc < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(rc as usize)
        }

        /// Source address and payload of received message `i`. A
        /// non-IPv4 source (cannot happen on the IPv4 sockets this path
        /// is gated to) reads as the unspecified address.
        pub fn datagram(&self, i: usize) -> (SocketAddr, &[u8]) {
            let a = &self.addrs[i];
            let src = if a.family == AF_INET {
                SocketAddrV4::new(Ipv4Addr::from(a.addr), u16::from_be_bytes(a.port))
            } else {
                SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0)
            };
            let len = (self.hdrs[i].len as usize).min(self.bufs[i].len());
            (SocketAddr::V4(src), &self.bufs[i][..len])
        }
    }

    impl Default for Batch {
        fn default() -> Self {
            Batch::new()
        }
    }
}

#[cfg(target_os = "linux")]
mod reuseport {
    //! `SO_REUSEPORT` socket creation via raw syscall-wrapper FFI.
    //!
    //! The symbols come from the libc that `std` already links; no crate
    //! is added. IPv4 only — the sockaddr layout is hand-built.

    use std::net::{SocketAddr, UdpSocket};
    use std::os::fd::FromRawFd;

    const AF_INET: i32 = 2;
    const SOCK_DGRAM: i32 = 2;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEPORT: i32 = 15;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// `struct sockaddr_in`: family, big-endian port, address, padding.
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port: [u8; 2],
        addr: [u8; 4],
        zero: [u8; 8],
    }

    fn bind_one(sa: &SockaddrIn) -> Option<UdpSocket> {
        // SAFETY: plain syscall wrappers; the fd is either handed to
        // UdpSocket (which owns closing it) or closed on every early
        // return.
        unsafe {
            let fd = socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
            if fd < 0 {
                return None;
            }
            let one: i32 = 1;
            if setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, 4) != 0 {
                close(fd);
                return None;
            }
            if bind(fd, sa, std::mem::size_of::<SockaddrIn>() as u32) != 0 {
                close(fd);
                return None;
            }
            Some(UdpSocket::from_raw_fd(fd))
        }
    }

    /// Binds `n` reuseport sockets to the same IPv4 address, or `None`
    /// if any step fails (caller falls back to a single socket).
    pub fn bind_many(addr: SocketAddr, n: usize) -> Option<Vec<UdpSocket>> {
        let SocketAddr::V4(v4) = addr else {
            return None;
        };
        let mut sa = SockaddrIn {
            family: AF_INET as u16,
            port: v4.port().to_be_bytes(),
            addr: v4.ip().octets(),
            zero: [0; 8],
        };
        let mut sockets = Vec::with_capacity(n);
        for _ in 0..n {
            let s = bind_one(&sa)?;
            if v4.port() == 0 && sockets.is_empty() {
                // Port 0 resolved on the first bind; the rest must share
                // the kernel-chosen port.
                let SocketAddr::V4(resolved) = s.local_addr().ok()? else {
                    return None;
                };
                sa.port = resolved.port().to_be_bytes();
            }
            sockets.push(s);
        }
        Some(sockets)
    }
}

#[cfg(not(target_os = "linux"))]
mod reuseport {
    use std::net::{SocketAddr, UdpSocket};

    /// No reuseport shim off Linux; the pool uses the single-socket
    /// fallback.
    pub fn bind_many(_addr: SocketAddr, _n: usize) -> Option<Vec<UdpSocket>> {
        None
    }
}

#[cfg(target_os = "linux")]
mod backlog {
    use std::net::UdpSocket;
    use std::os::fd::AsRawFd;

    const FIONREAD: u64 = 0x541b;

    extern "C" {
        fn ioctl(fd: i32, request: u64, ...) -> i32;
    }

    /// Bytes waiting in the socket's kernel receive queue.
    pub fn bytes(socket: &UdpSocket) -> Option<u64> {
        let mut pending: i32 = 0;
        // SAFETY: FIONREAD writes one c_int through the pointer.
        let rc = unsafe { ioctl(socket.as_raw_fd(), FIONREAD, &mut pending) };
        if rc == 0 {
            Some(pending.max(0) as u64)
        } else {
            None
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod backlog {
    use std::net::UdpSocket;

    pub fn bytes(_socket: &UdpSocket) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn can_bind_loopback() -> bool {
        UdpSocket::bind("127.0.0.1:0").is_ok()
    }

    #[test]
    fn pool_binds_and_reports_mode() {
        if !can_bind_loopback() {
            eprintln!("skipping: UDP loopback binding unavailable");
            return;
        }
        let pool = UdpPool::bind("127.0.0.1:0".parse().unwrap(), 4).unwrap();
        let n = pool.sockets.len();
        match pool.mode() {
            PoolMode::ReusePort => assert_eq!(n, 4),
            PoolMode::Single => assert_eq!(n, 1),
        }
        assert_ne!(pool.local_addr().port(), 0);
    }

    #[test]
    fn source_receives_a_datagram_and_times_out_cleanly() {
        if !can_bind_loopback() {
            eprintln!("skipping: UDP loopback binding unavailable");
            return;
        }
        let pool = UdpPool::bind("127.0.0.1:0".parse().unwrap(), 1).unwrap();
        let target = pool.local_addr();
        let mut sources = pool.into_sources(Instant::now(), Duration::from_millis(20));
        let mut src = sources.pop().unwrap();

        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        sender.send_to(b"ping", target).unwrap();

        let mut got = false;
        for _ in 0..50 {
            match src.poll().unwrap() {
                Polled::Datagram(d) => {
                    assert_eq!(d.payload, b"ping");
                    assert_eq!(d.dst, target);
                    got = true;
                    break;
                }
                Polled::Empty => continue,
                Polled::End => unreachable!("live sockets never end"),
            }
        }
        assert!(got, "datagram never arrived on loopback");
        // Queue now empty: the next poll must time out, not hang.
        assert!(matches!(src.poll().unwrap(), Polled::Empty));
    }

    #[test]
    fn poll_batch_drains_queued_datagrams_in_one_call() {
        if !can_bind_loopback() {
            eprintln!("skipping: UDP loopback binding unavailable");
            return;
        }
        let pool = UdpPool::bind("127.0.0.1:0".parse().unwrap(), 1).unwrap();
        let target = pool.local_addr();
        let mut sources = pool.into_sources(Instant::now(), Duration::from_millis(20));
        let mut src = sources.pop().unwrap();

        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        let sender_addr = sender.local_addr().unwrap();
        for msg in [b"one".as_slice(), b"two", b"three"] {
            sender.send_to(msg, target).unwrap();
        }

        let mut got: Vec<Vec<u8>> = Vec::new();
        for _ in 0..50 {
            src.poll_batch(&mut |d| {
                assert_eq!(d.src, sender_addr);
                assert_eq!(d.dst, target);
                got.push(d.payload.to_vec());
            })
            .unwrap();
            if got.len() >= 3 {
                break;
            }
        }
        assert_eq!(
            got,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        // Empty queue: a batched poll times out with zero, not an error.
        assert_eq!(
            src.poll_batch(&mut |_| panic!("no datagram expected"))
                .unwrap(),
            0
        );
    }
}
