//! The `WireSource` abstraction: anything that yields datagrams.
//!
//! A source is polled for one datagram at a time; the returned
//! [`Datagram`] borrows the source's internal receive buffer, so the
//! caller classifies it (extracting what the engine keeps) before the
//! next poll reuses the buffer. Two sources ship with the crate: live
//! UDP sockets ([`crate::udp::UdpSource`]) and classic pcap captures
//! ([`PcapSource`]) — the serve daemon and `vids replay` respectively,
//! feeding the identical demux + engine path.

use std::fmt;

use crate::datagram::Datagram;
use crate::pcap::{PcapError, PcapReader};

/// What one poll of a [`WireSource`] produced.
#[derive(Debug)]
pub enum Polled<'a> {
    /// One datagram, borrowed from the source's buffer.
    Datagram(Datagram<'a>),
    /// Nothing right now (socket read timeout); poll again.
    Empty,
    /// The source is exhausted (end of capture). Live sockets never
    /// return this.
    End,
}

/// An ingestion failure.
#[derive(Debug)]
pub enum IngestError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// A capture file was malformed.
    Pcap(PcapError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "socket error: {e}"),
            IngestError::Pcap(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<PcapError> for IngestError {
    fn from(e: PcapError) -> Self {
        IngestError::Pcap(e)
    }
}

/// A stream of wire-level datagrams.
pub trait WireSource {
    /// Polls for the next datagram. The borrow ends when the caller
    /// next touches the source, so classification must happen before
    /// the following poll.
    fn poll(&mut self) -> Result<Polled<'_>, IngestError>;
}

/// A [`WireSource`] over in-memory classic pcap capture bytes.
///
/// The global header is validated up front; records are then stepped
/// one `poll` at a time, with non-UDP frames skipped silently.
pub struct PcapSource {
    buf: Vec<u8>,
    pos: usize,
    swapped: bool,
    linktype: u32,
}

impl PcapSource {
    /// Validates the capture's global header and positions the source
    /// at the first record.
    pub fn new(bytes: Vec<u8>) -> Result<Self, PcapError> {
        let reader = PcapReader::new(&bytes)?;
        let (pos, swapped, linktype) = (reader.pos, reader.swapped, reader.linktype);
        Ok(PcapSource {
            buf: bytes,
            pos,
            swapped,
            linktype,
        })
    }
}

impl WireSource for PcapSource {
    fn poll(&mut self) -> Result<Polled<'_>, IngestError> {
        let mut reader = PcapReader {
            buf: &self.buf,
            pos: self.pos,
            swapped: self.swapped,
            linktype: self.linktype,
        };
        let polled = reader.next_datagram();
        self.pos = reader.pos;
        match polled {
            Ok(Some(d)) => Ok(Polled::Datagram(d)),
            Ok(None) => Ok(Polled::End),
            Err(e) => Err(IngestError::Pcap(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::PcapWriter;
    use vids_netsim::time::SimTime;

    #[test]
    fn pcap_source_drains_to_end() {
        let mut w = PcapWriter::new();
        for i in 0..3u64 {
            w.push_udp(
                SimTime::from_millis(i),
                "10.0.0.1:5060".parse().unwrap(),
                "10.0.0.2:5060".parse().unwrap(),
                b"x",
            );
        }
        let mut src = PcapSource::new(w.into_bytes()).unwrap();
        let mut seen = 0;
        loop {
            match src.poll().unwrap() {
                Polled::Datagram(_) => seen += 1,
                Polled::End => break,
                Polled::Empty => unreachable!("pcap sources are never empty"),
            }
        }
        assert_eq!(seen, 3);
    }
}
