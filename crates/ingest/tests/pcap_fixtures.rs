//! Pcap parsing against hand-built fixture bytes.
//!
//! Every fixture is assembled byte-by-byte (no writer round-trip), so
//! these tests pin the on-disk format itself: both magics, the 24-byte
//! global header layout, the 16-byte record header layout, and the
//! failure modes — truncated header, truncated record, snaplen shorter
//! than the UDP datagram. A counting global allocator proves every
//! reject is allocation-free: a hostile capture cannot balloon the
//! monitor's memory on the parse path.
//!
//! Everything lives in a single `#[test]` because the counter is
//! global: parallel tests would interleave counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use vids_ingest::pcap::{PcapReader, PcapWriter, LINKTYPE_ETHERNET, LINKTYPE_RAW};
use vids_netsim::time::SimTime;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with the counter armed; returns how many allocations it made.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let start = ALLOCS.load(Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let r = f();
    ARMED.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst) - start, r)
}

/// The classic global header, field by field. `u32`/`u16` are emitted
/// in the byte order the chosen magic implies.
fn global_header(swapped: bool, linktype: u32) -> Vec<u8> {
    let mut h = Vec::with_capacity(24);
    let u32b = |v: u32| {
        if swapped {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        }
    };
    let u16b = |v: u16| {
        if swapped {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        }
    };
    h.extend_from_slice(&u32b(0xa1b2_c3d4)); // magic (reads back swapped when BE)
    h.extend_from_slice(&u16b(2)); // version major
    h.extend_from_slice(&u16b(4)); // version minor
    h.extend_from_slice(&u32b(0)); // thiszone
    h.extend_from_slice(&u32b(0)); // sigfigs
    h.extend_from_slice(&u32b(65_535)); // snaplen
    h.extend_from_slice(&u32b(linktype));
    h
}

fn record_header(swapped: bool, ts_sec: u32, ts_usec: u32, incl: u32, orig: u32) -> Vec<u8> {
    let u32b = |v: u32| {
        if swapped {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        }
    };
    let mut h = Vec::with_capacity(16);
    for v in [ts_sec, ts_usec, incl, orig] {
        h.extend_from_slice(&u32b(v));
    }
    h
}

/// A hand-assembled raw-IPv4 + UDP frame: 10.1.0.10:5060 → 10.2.0.10:5060
/// carrying `payload`.
fn raw_udp_frame(payload: &[u8]) -> Vec<u8> {
    let udp_len = 8 + payload.len();
    let ip_len = 20 + udp_len;
    let mut f = Vec::with_capacity(ip_len);
    f.push(0x45); // version 4, ihl 5
    f.push(0);
    f.extend_from_slice(&(ip_len as u16).to_be_bytes());
    f.extend_from_slice(&[0, 0, 0, 0]); // id, flags/frag
    f.push(64); // ttl
    f.push(17); // UDP
    f.extend_from_slice(&[0, 0]); // checksum
    f.extend_from_slice(&[10, 1, 0, 10]);
    f.extend_from_slice(&[10, 2, 0, 10]);
    f.extend_from_slice(&5060u16.to_be_bytes());
    f.extend_from_slice(&5060u16.to_be_bytes());
    f.extend_from_slice(&(udp_len as u16).to_be_bytes());
    f.extend_from_slice(&[0, 0]); // UDP checksum
    f.extend_from_slice(payload);
    f
}

#[test]
fn fixtures_parse_and_rejects_are_alloc_free() {
    // --- Both magics: one OPTIONS datagram each, hand-assembled. ---
    for swapped in [false, true] {
        let payload = b"OPTIONS sip:b SIP/2.0\r\n\r\n";
        let frame = raw_udp_frame(payload);
        let mut capture = global_header(swapped, LINKTYPE_RAW);
        capture.extend_from_slice(&record_header(
            swapped,
            1,
            250,
            frame.len() as u32,
            frame.len() as u32,
        ));
        capture.extend_from_slice(&frame);

        let mut r = PcapReader::new(&capture).unwrap();
        assert_eq!(r.is_swapped(), swapped, "magic must set the byte order");
        let d = r.next_datagram().unwrap().unwrap();
        assert_eq!(d.at, SimTime::from_micros(1_000_250));
        assert_eq!(d.payload, payload);
        assert_eq!(d.src.port(), 5060);
        assert!(r.next_datagram().unwrap().is_none());
    }

    // --- Truncated global header: 23 of 24 bytes. ---
    let short = &global_header(false, LINKTYPE_RAW)[..23];
    let (allocs, err) = count_allocs(|| PcapReader::new(short).err().unwrap());
    assert_eq!(err.offset, 0);
    assert!(err.reason.contains("global header"), "{}", err.reason);
    assert_eq!(allocs, 0, "header reject must not allocate");

    // --- Unrecognized magic. ---
    let mut bad_magic = global_header(false, LINKTYPE_RAW);
    bad_magic[0] = 0x0a; // pcapng block type prefix, not a classic magic
    let (allocs, err) = count_allocs(|| PcapReader::new(&bad_magic).err().unwrap());
    assert!(err.reason.contains("magic"), "{}", err.reason);
    assert_eq!(allocs, 0, "magic reject must not allocate");

    // --- Truncated record header: 10 of 16 bytes. ---
    let mut trunc_rec = global_header(false, LINKTYPE_RAW);
    trunc_rec.extend_from_slice(&record_header(false, 1, 0, 64, 64)[..10]);
    let (allocs, err) = count_allocs(|| {
        let mut r = PcapReader::new(&trunc_rec).unwrap();
        r.next_record().unwrap_err()
    });
    assert_eq!(err.offset, 24);
    assert!(err.reason.contains("record header"), "{}", err.reason);
    assert_eq!(allocs, 0, "record-header reject must not allocate");

    // --- Record body shorter than incl_len claims. ---
    let frame = raw_udp_frame(b"hello");
    let mut trunc_body = global_header(false, LINKTYPE_RAW);
    trunc_body.extend_from_slice(&record_header(
        false,
        1,
        0,
        frame.len() as u32,
        frame.len() as u32,
    ));
    trunc_body.extend_from_slice(&frame[..frame.len() - 4]);
    let (allocs, err) = count_allocs(|| {
        let mut r = PcapReader::new(&trunc_body).unwrap();
        r.next_record().unwrap_err()
    });
    assert!(err.reason.contains("record body"), "{}", err.reason);
    assert_eq!(allocs, 0, "record-body reject must not allocate");

    // --- Snaplen shorter than the datagram: incl_len < orig_len cuts the
    // UDP payload, which must be an error, not a silent short payload. ---
    let full = raw_udp_frame(&[0x42; 400]);
    let snapped = &full[..64];
    let mut snap = global_header(false, LINKTYPE_RAW);
    snap.extend_from_slice(&record_header(
        false,
        2,
        0,
        snapped.len() as u32,
        full.len() as u32,
    ));
    snap.extend_from_slice(snapped);
    let (allocs, err) = count_allocs(|| {
        let mut r = PcapReader::new(&snap).unwrap();
        r.next_datagram().unwrap_err()
    });
    assert!(err.reason.contains("snaplen"), "{}", err.reason);
    assert_eq!(allocs, 0, "snaplen reject must not allocate");

    // --- The success path over a borrowed buffer is also alloc-free. ---
    let payload = b"INVITE sip:bob@b SIP/2.0\r\n\r\n";
    let frame = raw_udp_frame(payload);
    let mut ok = global_header(false, LINKTYPE_RAW);
    for _ in 0..8 {
        ok.extend_from_slice(&record_header(
            false,
            3,
            0,
            frame.len() as u32,
            frame.len() as u32,
        ));
        ok.extend_from_slice(&frame);
    }
    let (allocs, n) = count_allocs(|| {
        let mut r = PcapReader::new(&ok).unwrap();
        let mut n = 0;
        while let Some(d) = r.next_datagram().unwrap() {
            assert_eq!(d.payload, payload);
            n += 1;
        }
        n
    });
    assert_eq!(n, 8);
    assert_eq!(allocs, 0, "reading borrowed records must not allocate");
}

/// Write→read round-trip as a property, across both byte orders and
/// both link types: whatever `PcapWriter` emits, `PcapReader` must hand
/// back verbatim — addresses, ports, payload bytes and microsecond
/// timestamps — for arbitrary datagram sequences.
mod round_trip {
    use super::*;
    use proptest::prelude::*;
    use std::net::{Ipv4Addr, SocketAddrV4};

    /// One arbitrary datagram: (micros, src ip+port, dst ip+port, payload).
    /// Timestamps stay under the u32-seconds ceiling the classic format
    /// can represent; payloads cover empty through past-MTU sizes.
    type Dg = (u64, (u8, u8, u8, u8), u16, (u8, u8, u8, u8), u16, Vec<u8>);

    fn datagram() -> impl Strategy<Value = Dg> {
        (
            0u64..4_000_000_000_000_000u64,
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            1u16..=u16::MAX,
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            1u16..=u16::MAX,
            proptest::collection::vec(any::<u8>(), 0..1600),
        )
    }

    fn sock(ip: (u8, u8, u8, u8), port: u16) -> SocketAddrV4 {
        SocketAddrV4::new(Ipv4Addr::new(ip.0, ip.1, ip.2, ip.3), port)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn writer_reader_round_trip_both_orders_and_linktypes(
            datagrams in proptest::collection::vec(datagram(), 0..24),
            swapped in any::<bool>(),
            ethernet in any::<bool>(),
        ) {
            let linktype = if ethernet { LINKTYPE_ETHERNET } else { LINKTYPE_RAW };
            let mut w = PcapWriter::with_format(swapped, linktype);
            for (us, sip, sport, dip, dport, payload) in &datagrams {
                w.push_udp(
                    SimTime::from_micros(*us),
                    sock(*sip, *sport),
                    sock(*dip, *dport),
                    payload,
                );
            }
            let capture = w.into_bytes();

            let mut r = PcapReader::new(&capture).unwrap();
            prop_assert_eq!(r.is_swapped(), swapped);
            for (us, sip, sport, dip, dport, payload) in &datagrams {
                let d = r.next_datagram().unwrap().expect("fewer datagrams than written");
                prop_assert_eq!(d.at, SimTime::from_micros(*us));
                prop_assert_eq!(d.src, std::net::SocketAddr::V4(sock(*sip, *sport)));
                prop_assert_eq!(d.dst, std::net::SocketAddr::V4(sock(*dip, *dport)));
                prop_assert_eq!(d.payload, &payload[..]);
            }
            prop_assert!(r.next_datagram().unwrap().is_none(), "extra trailing datagram");
        }
    }
}
