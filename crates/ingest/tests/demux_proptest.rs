//! Demultiplexing is total: any ports, any bytes — one of the four
//! classes comes back, nothing panics, and the class is consistent with
//! the port/heuristic contract. `classify_datagram` extends totality
//! through the engine's wire classifier.

use proptest::prelude::*;

use vids_core::classify::Classified;
use vids_ingest::demux::{classify_datagram, demux, WireClass, SIP_PORT};
use vids_ingest::Datagram;
use vids_netsim::time::SimTime;

proptest! {
    #[test]
    fn demux_is_total_and_honours_the_port_contract(
        src_port in 0u16..=65_535,
        dst_port in 0u16..=65_535,
        payload in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let class = demux(src_port, dst_port, &payload);
        if src_port == SIP_PORT || dst_port == SIP_PORT {
            prop_assert_eq!(class, WireClass::Sip, "port 5060 always wins");
        }
        match class {
            WireClass::Rtp | WireClass::Rtcp => {
                prop_assert!(payload.len() >= 12, "media needs a full fixed header");
                prop_assert_eq!(payload[0] >> 6, 2, "media needs version 2");
            }
            WireClass::Ipv6 => prop_assert!(false, "demux never sees addresses"),
            WireClass::Sip | WireClass::Unknown => {}
        }
    }

    #[test]
    fn classify_datagram_never_panics(
        src_port in 0u16..=65_535,
        dst_port in 0u16..=65_535,
        payload in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let d = Datagram {
            src: std::net::SocketAddr::from(([172, 16, 0, 9], src_port)),
            dst: std::net::SocketAddr::from(([10, 2, 0, 2], dst_port)),
            at: SimTime::from_millis(1),
            payload: &payload,
        };
        let (class, classified) = classify_datagram(&d);
        // Ignored demux classes must become Ignored for the engine.
        if matches!(class, WireClass::Rtcp | WireClass::Ipv6 | WireClass::Unknown) {
            prop_assert_eq!(classified, Classified::Ignored);
        }
    }
}
