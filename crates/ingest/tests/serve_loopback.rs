//! End-to-end serve test over real loopback UDP: an INVITE flood sent
//! through the kernel's socket stack must come out of the coordinator as
//! an invite-flood alert. This is the wire-tier acceptance check — it
//! exercises socket binding, the receiver threads, demux (on a
//! non-5060 port, so the SIP start-line heuristic), batching, the
//! coordinator, and graceful stop-flag shutdown in one pass.

use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use vids_core::alert::labels;
use vids_core::config::Config;
use vids_core::cost::CostModel;
use vids_core::pool::VidsPool;
use vids_core::sink::CollectSink;
use vids_ingest::record_tap::ServeRecorder;
use vids_ingest::server::{serve_on, ServeOptions};
use vids_ingest::udp::UdpPool;
use vids_record::{LaneRecorder, Vdump};
use vids_sip::{Request, SipUri};

/// Sandboxes without network namespaces cannot bind loopback; skip
/// rather than fail there.
fn can_bind_loopback() -> bool {
    UdpSocket::bind("127.0.0.1:0").is_ok()
}

const FLOOD: usize = 30;

#[test]
fn serve_detects_an_invite_flood_over_real_udp() {
    if !can_bind_loopback() {
        eprintln!("skipping: cannot bind 127.0.0.1 in this environment");
        return;
    }

    let udp = UdpPool::bind("127.0.0.1:0".parse().unwrap(), 2).unwrap();
    let target = udp.local_addr();
    let opts = ServeOptions {
        receivers: 2,
        flush_packets: 8,
        flush_interval: Duration::from_millis(20),
        read_timeout: Duration::from_millis(5),
        tick_interval: Duration::from_millis(50),
        snapshot_flag: None,
    };
    let config = Config::builder().shards(2).build().unwrap();
    let mut pool = VidsPool::with_cost(config, CostModel::free());
    let mut sink = CollectSink::new();
    let stop = AtomicBool::new(false);

    // Flight recorder riding along: one ring per receiver, dumps into a
    // scratch directory.
    let dump_dir = std::env::temp_dir().join("vids-serve-loopback-dumps");
    std::fs::remove_dir_all(&dump_dir).ok();
    let recorder = LaneRecorder::with_defaults(2);
    let mut serve_rec = ServeRecorder::new(&recorder, Some(&dump_dir));

    let report = std::thread::scope(|scope| {
        scope.spawn(|| {
            let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
            let to = SipUri::new("bob", "b.example.com");
            for i in 0..FLOOD {
                let invite = Request::invite(
                    &SipUri::new("mallory", "a.example.com"),
                    &to,
                    &format!("loopback-flood-{i}"),
                );
                sender
                    .send_to(invite.to_string().as_bytes(), target)
                    .unwrap();
            }
            // Give the receivers time to drain the kernel buffer before
            // asking them to stop; they exit at the next poll after the
            // flag flips.
            std::thread::sleep(Duration::from_millis(600));
            stop.store(true, Ordering::Relaxed);
        });
        serve_on(
            &mut pool,
            udp,
            &opts,
            None,
            &stop,
            Some(&mut serve_rec),
            &mut sink,
        )
        .unwrap()
    });

    assert_eq!(
        report.datagrams_rx, FLOOD as u64,
        "every flood datagram must arrive"
    );
    assert_eq!(report.datagrams_dropped, 0);
    assert_eq!(report.demux_unknown, 0, "INVITEs must demux as signaling");
    assert!(report.batches >= 1);
    assert!(
        sink.alerts()
            .iter()
            .any(|a| a.label == labels::INVITE_FLOOD),
        "no invite-flood alert; got {:?}",
        sink.alerts()
    );

    // The recorder saw every datagram and the alert produced a readable
    // dump of the surrounding window.
    assert_eq!(recorder.stats().rings.recorded, FLOOD as u64);
    assert_eq!(serve_rec.io_errors, 0);
    assert!(
        !serve_rec.written.is_empty(),
        "the flood alert must trigger a dump"
    );
    let dump = Vdump::read_from(&serve_rec.written[0]).unwrap();
    assert!(dump.packets.len() as u64 <= FLOOD as u64);
    assert!(!dump.packets.is_empty());
    assert_eq!(dump.alert.label, labels::INVITE_FLOOD);
    std::fs::remove_dir_all(&dump_dir).ok();
}
