//! End-to-end federated serve over real loopback UDP: an INVITE flood
//! through the kernel's socket stack must come out of the cluster
//! coordinator as an invite-flood alert — tagged with the tenant the
//! source prefix maps to, raised under that tenant's own threshold, and
//! counted in the merged cluster telemetry.

use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use vids_cluster::{Cluster, TenantMap};
use vids_core::alert::labels;
use vids_core::config::Config;
use vids_core::cost::CostModel;
use vids_core::sink::CollectSink;
use vids_core::telemetry::Counter;
use vids_ingest::cluster_serve::serve_cluster_on;
use vids_ingest::server::ServeOptions;
use vids_ingest::udp::UdpPool;
use vids_sip::{Request, SipUri};

/// Sandboxes without network namespaces cannot bind loopback; skip
/// rather than fail there.
fn can_bind_loopback() -> bool {
    UdpSocket::bind("127.0.0.1:0").is_ok()
}

const FLOOD: usize = 30;

#[test]
fn cluster_serve_detects_a_tenant_flood_over_real_udp() {
    if !can_bind_loopback() {
        eprintln!("skipping: cannot bind 127.0.0.1 in this environment");
        return;
    }

    let udp = UdpPool::bind("127.0.0.1:0".parse().unwrap(), 2).unwrap();
    let target = udp.local_addr();
    let opts = ServeOptions {
        receivers: 2,
        flush_packets: 8,
        flush_interval: Duration::from_millis(20),
        read_timeout: Duration::from_millis(5),
        tick_interval: Duration::from_millis(50),
        snapshot_flag: None,
    };
    // Loopback traffic maps to the `local` tenant, which alerts at a
    // stricter threshold than the default.
    let base = Config::builder().shards(2).build().unwrap();
    let tenants = TenantMap::parse("tenant local 127.0.0.0/8 invite_flood_n=5", base).unwrap();
    let mut cluster = Cluster::with_cost(tenants, 3, CostModel::free());
    cluster.enable_telemetry(64);
    let mut sink = CollectSink::new();
    let stop = AtomicBool::new(false);

    let report = std::thread::scope(|scope| {
        scope.spawn(|| {
            let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
            let to = SipUri::new("bob", "b.example.com");
            for i in 0..FLOOD {
                let invite = Request::invite(
                    &SipUri::new("mallory", "a.example.com"),
                    &to,
                    &format!("cluster-flood-{i}"),
                );
                sender
                    .send_to(invite.to_string().as_bytes(), target)
                    .unwrap();
            }
            std::thread::sleep(Duration::from_millis(600));
            stop.store(true, Ordering::Relaxed);
        });
        serve_cluster_on(&mut cluster, udp, &opts, &stop, &mut sink).unwrap()
    });

    assert_eq!(
        report.datagrams_rx, FLOOD as u64,
        "every flood datagram must arrive"
    );
    assert_eq!(report.datagrams_dropped, 0);
    assert_eq!(report.demux_unknown, 0, "INVITEs must demux as signaling");
    assert_eq!(report.datagrams_ipv6, 0);
    assert!(report.batches >= 1);
    assert!(
        sink.alerts()
            .iter()
            .any(|a| a.label == labels::INVITE_FLOOD),
        "no invite-flood alert; got {:?}",
        sink.alerts()
    );
    // Every alert belongs to the `local` tenant (id 1) — the flood fired
    // under its stricter threshold.
    assert!(!cluster.alerts().is_empty());
    assert!(
        cluster.alerts().iter().all(|a| a.tenant == 1),
        "alert escaped the local tenant: {:?}",
        cluster.alerts()
    );
    assert_eq!(cluster.tenant_counters(1).sip_packets, FLOOD as u64);
    assert_eq!(cluster.tenant_counters(0).sip_packets, 0);

    // The socket-side counters landed in the merged cluster snapshot.
    let snap = cluster.telemetry_snapshot(report.ended_at).unwrap();
    let merged = snap.merged();
    assert_eq!(merged.counter(Counter::DatagramsRx), FLOOD as u64);
    assert_eq!(merged.counter(Counter::PacketsIngested), FLOOD as u64);
}
