//! Reusable network elements: routers, hubs, inline taps and hosts.

use std::any::Any;
use std::fmt;

use rand::rngs::StdRng;

use crate::engine::{LinkId, Node, NodeCtx};
use crate::packet::{Address, Packet, Payload};
use crate::time::SimTime;

/// Site-prefix routing shared by [`Router`] and [`TapNode`].
#[derive(Debug, Clone, Default)]
struct RouteTable {
    routes: Vec<(u16, LinkId)>,
    default: Option<LinkId>,
}

impl RouteTable {
    fn egress(&self, dst: Address) -> Option<LinkId> {
        self.routes
            .iter()
            .find(|(site, _)| *site == dst.site())
            .map(|(_, l)| *l)
            .or(self.default)
    }
}

/// A router forwarding by /16 site prefix, with an optional default route.
#[derive(Debug, Clone, Default)]
pub struct Router {
    table: RouteTable,
}

impl Router {
    /// Creates a router with an empty table.
    pub fn new() -> Self {
        Router::default()
    }

    /// Adds a route: packets whose destination site matches go out `link`.
    pub fn add_route(&mut self, site: u16, link: LinkId) {
        self.table.routes.push((site, link));
    }

    /// Sets the default route for unmatched sites.
    pub fn set_default_route(&mut self, link: LinkId) {
        self.table.default = Some(link);
    }
}

impl Node for Router {
    fn on_packet(&mut self, packet: Packet, ctx: &mut NodeCtx<'_>) {
        match self.table.egress(packet.dst) {
            Some(link) => ctx.transmit(link, packet),
            None => ctx.count_unroutable(),
        }
    }
}

/// A LAN hub delivering packets to the exact host ip, with an uplink for
/// everything else.
#[derive(Debug, Clone, Default)]
pub struct Hub {
    ports: Vec<(u32, LinkId)>,
    uplink: Option<LinkId>,
}

impl Hub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Hub::default()
    }

    /// Attaches a host: packets for `ip` go out `link`.
    pub fn add_port(&mut self, ip: u32, link: LinkId) {
        self.ports.push((ip, link));
    }

    /// Sets the uplink used for non-local destinations.
    pub fn set_uplink(&mut self, link: LinkId) {
        self.uplink = Some(link);
    }
}

impl Node for Hub {
    fn on_packet(&mut self, packet: Packet, ctx: &mut NodeCtx<'_>) {
        let local = self
            .ports
            .iter()
            .find(|(ip, _)| *ip == packet.dst.ip)
            .map(|(_, l)| *l);
        match local.or(self.uplink) {
            Some(link) => ctx.transmit(link, packet),
            None => ctx.count_unroutable(),
        }
    }
}

/// An inline packet observer mounted on a [`TapNode`] — this is where vids
/// lives. `observe` returns the processing delay the monitor imposes on the
/// packet before it is forwarded (zero for a passive tap).
pub trait Tap: Any {
    /// Inspects a packet in transit at time `now`; returns the hold time.
    fn observe(&mut self, packet: &Packet, now: SimTime) -> SimTime;
}

/// A no-op tap: the "without vids" baseline forwards with zero added delay.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassiveTap;

impl Tap for PassiveTap {
    fn observe(&mut self, _packet: &Packet, _now: SimTime) -> SimTime {
        SimTime::ZERO
    }
}

/// A forwarding node with an inline [`Tap`]: every packet is shown to the
/// tap, held for the returned processing delay, then routed like a
/// [`Router`]. Mounted between the edge router and the protected site's hub
/// (paper Fig. 1 / Fig. 7).
pub struct TapNode {
    table: RouteTable,
    tap: Box<dyn Tap>,
}

impl fmt::Debug for TapNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TapNode")
            .field("routes", &self.table.routes.len())
            .finish()
    }
}

impl TapNode {
    /// Creates a tap node around an observer.
    pub fn new(tap: Box<dyn Tap>) -> Self {
        TapNode {
            table: RouteTable::default(),
            tap,
        }
    }

    /// Adds a route (see [`Router::add_route`]).
    pub fn add_route(&mut self, site: u16, link: LinkId) {
        self.table.routes.push((site, link));
    }

    /// Sets the default route.
    pub fn set_default_route(&mut self, link: LinkId) {
        self.table.default = Some(link);
    }

    /// Typed access to the mounted tap (to read detection results after a
    /// run).
    ///
    /// # Panics
    ///
    /// Panics if the tap is not a `T`.
    pub fn tap_as<T: Tap>(&self) -> &T {
        let any: &dyn Any = self.tap.as_ref();
        any.downcast_ref::<T>().expect("tap type mismatch")
    }

    /// Typed mutable access to the mounted tap.
    ///
    /// # Panics
    ///
    /// Panics if the tap is not a `T`.
    pub fn tap_as_mut<T: Tap>(&mut self) -> &mut T {
        let any: &mut dyn Any = self.tap.as_mut();
        any.downcast_mut::<T>().expect("tap type mismatch")
    }
}

impl Node for TapNode {
    fn on_packet(&mut self, packet: Packet, ctx: &mut NodeCtx<'_>) {
        let hold = self.tap.observe(&packet, ctx.now());
        match self.table.egress(packet.dst) {
            Some(link) => ctx.transmit_after(link, packet, hold),
            None => ctx.count_unroutable(),
        }
    }
}

/// Capabilities available to an [`Application`] running on a [`Host`].
pub struct AppCtx<'a, 'b> {
    node: &'a mut NodeCtx<'b>,
    addr: Address,
    uplink: Option<LinkId>,
}

impl AppCtx<'_, '_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.node.now()
    }

    /// The host's network address (ip with its default port).
    pub fn local_addr(&self) -> Address {
        self.addr
    }

    /// The deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.node.rng()
    }

    /// Sends a datagram from the host's default port.
    pub fn send_to(&mut self, dst: Address, payload: Payload) {
        let src = self.addr;
        self.send_from(src, dst, payload);
    }

    /// Sends a datagram from an explicit source port (RTP media uses its
    /// negotiated port, SIP uses 5060).
    pub fn send_from_port(&mut self, src_port: u16, dst: Address, payload: Payload) {
        let src = self.addr.with_port(src_port);
        self.send_from(src, dst, payload);
    }

    /// Sends with a fully explicit source address — used by attackers to
    /// spoof (§3: "without proper authentication, the receiving UA cannot
    /// differentiate the spoofed CANCEL message from the genuine one").
    pub fn send_from(&mut self, src: Address, dst: Address, payload: Payload) {
        let Some(link) = self.uplink else {
            self.node.count_unroutable();
            return;
        };
        let id = self.node.next_packet_id();
        let now = self.node.now();
        self.node.transmit(
            link,
            Packet {
                src,
                dst,
                payload,
                id,
                sent_at: now,
            },
        );
    }

    /// Arms a timer; `token` comes back in [`Application::on_timer`].
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.node.set_timer(delay, token);
    }
}

/// Application logic running on a [`Host`]: a SIP user agent, a proxy, an
/// attacker, a media source…
pub trait Application: Any {
    /// Called once at simulation start.
    fn on_start(&mut self, _ctx: &mut AppCtx<'_, '_>) {}

    /// A datagram addressed to this host arrived.
    fn on_datagram(&mut self, packet: &Packet, ctx: &mut AppCtx<'_, '_>);

    /// A timer armed through [`AppCtx::set_timer`] expired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut AppCtx<'_, '_>) {}
}

/// An end host: one address, one uplink, one [`Application`].
pub struct Host {
    addr: Address,
    uplink: Option<LinkId>,
    app: Box<dyn Application>,
    misdelivered: u64,
}

impl fmt::Debug for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Host").field("addr", &self.addr).finish()
    }
}

impl Host {
    /// Creates a host at `addr` running `app`. Set the uplink once the
    /// access link exists ([`Host::set_uplink`]).
    pub fn new(addr: Address, app: Box<dyn Application>) -> Self {
        Host {
            addr,
            uplink: None,
            app,
            misdelivered: 0,
        }
    }

    /// Sets the host's access link.
    pub fn set_uplink(&mut self, link: LinkId) {
        self.uplink = Some(link);
    }

    /// The host's address.
    pub fn addr(&self) -> Address {
        self.addr
    }

    /// Packets that arrived at this host but were addressed elsewhere.
    pub fn misdelivered(&self) -> u64 {
        self.misdelivered
    }

    /// Typed access to the application (to read statistics after a run).
    ///
    /// # Panics
    ///
    /// Panics if the application is not a `T`.
    pub fn app_as<T: Application>(&self) -> &T {
        let any: &dyn Any = self.app.as_ref();
        any.downcast_ref::<T>().expect("application type mismatch")
    }

    /// Typed mutable access to the application.
    ///
    /// # Panics
    ///
    /// Panics if the application is not a `T`.
    pub fn app_as_mut<T: Application>(&mut self) -> &mut T {
        let any: &mut dyn Any = self.app.as_mut();
        any.downcast_mut::<T>().expect("application type mismatch")
    }
}

impl Node for Host {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let mut app_ctx = AppCtx {
            node: ctx,
            addr: self.addr,
            uplink: self.uplink,
        };
        self.app.on_start(&mut app_ctx);
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut NodeCtx<'_>) {
        if packet.dst.ip != self.addr.ip {
            self.misdelivered += 1;
            return;
        }
        let mut app_ctx = AppCtx {
            node: ctx,
            addr: self.addr,
            uplink: self.uplink,
        };
        self.app.on_datagram(&packet, &mut app_ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx<'_>) {
        let mut app_ctx = AppCtx {
            node: ctx,
            addr: self.addr,
            uplink: self.uplink,
        };
        self.app.on_timer(token, &mut app_ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LinkSpec, Simulator};

    /// Application that pings a peer once and records what comes back.
    struct Ping {
        peer: Address,
        start: bool,
        received: Vec<(SimTime, String)>,
    }

    impl Application for Ping {
        fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
            if self.start {
                ctx.send_to(self.peer, Payload::Raw(b"ping".to_vec()));
            }
        }

        fn on_datagram(&mut self, packet: &Packet, ctx: &mut AppCtx<'_, '_>) {
            let text = match &packet.payload {
                Payload::Raw(b) => String::from_utf8_lossy(b).into_owned(),
                other => other.protocol().to_owned(),
            };
            self.received.push((ctx.now(), text.clone()));
            if text == "ping" {
                ctx.send_to(packet.src, Payload::Raw(b"pong".to_vec()));
            }
        }
    }

    /// Builds: hostA -- hubA -- routerA -- internet -- routerB(tap) -- hubB -- hostB
    /// Reduced two-site topology exercising every node type.
    fn two_site_sim(
        tap: Box<dyn Tap>,
    ) -> (Simulator, crate::engine::NodeId, crate::engine::NodeId) {
        let a_addr = Address::new(10, 1, 0, 2, 5060);
        let b_addr = Address::new(10, 2, 0, 2, 5060);
        let site_a = a_addr.site();
        let site_b = b_addr.site();

        let mut sim = Simulator::new(3);
        let host_a = sim.add_node(Box::new(Host::new(
            a_addr,
            Box::new(Ping {
                peer: b_addr,
                start: true,
                received: Vec::new(),
            }),
        )));
        let hub_a = sim.add_node(Box::new(Hub::new()));
        let router_a = sim.add_node(Box::new(Router::new()));
        let tap_b = sim.add_node(Box::new(TapNode::new(tap)));
        let hub_b = sim.add_node(Box::new(Hub::new()));
        let host_b = sim.add_node(Box::new(Host::new(
            b_addr,
            Box::new(Ping {
                peer: a_addr,
                start: false,
                received: Vec::new(),
            }),
        )));

        let lan = LinkSpec::lan_100base_t();
        let wan = LinkSpec {
            delay: SimTime::from_millis(50),
            bandwidth_bps: 1_544_000,
            loss_rate: 0.0,
        };

        let (ha_hub, hub_ha) = sim.add_duplex_link(host_a, hub_a, lan);
        let (huba_ra, ra_huba) = sim.add_duplex_link(hub_a, router_a, lan);
        let (ra_tap, tap_ra) = sim.add_duplex_link(router_a, tap_b, wan);
        let (tap_hubb, hubb_tap) = sim.add_duplex_link(tap_b, hub_b, lan);
        let (hubb_hb, hb_hubb) = sim.add_duplex_link(hub_b, host_b, lan);

        sim.node_as_mut::<Host>(host_a).set_uplink(ha_hub);
        sim.node_as_mut::<Host>(host_b).set_uplink(hb_hubb);
        {
            let hub = sim.node_as_mut::<Hub>(hub_a);
            hub.add_port(a_addr.ip, hub_ha);
            hub.set_uplink(huba_ra);
        }
        {
            let hub = sim.node_as_mut::<Hub>(hub_b);
            hub.add_port(b_addr.ip, hubb_hb);
            hub.set_uplink(hubb_tap);
        }
        {
            let r = sim.node_as_mut::<Router>(router_a);
            r.add_route(site_a, ra_huba);
            r.set_default_route(ra_tap);
        }
        {
            let t = sim.node_as_mut::<TapNode>(tap_b);
            t.add_route(site_b, tap_hubb);
            t.set_default_route(tap_ra);
        }
        (sim, host_a, host_b)
    }

    #[test]
    fn end_to_end_ping_pong_through_all_node_types() {
        let (mut sim, host_a, host_b) = two_site_sim(Box::new(PassiveTap));
        sim.run_to_completion();
        let a = sim.node_as::<Host>(host_a).app_as::<Ping>();
        let b = sim.node_as::<Host>(host_b).app_as::<Ping>();
        assert_eq!(b.received.len(), 1);
        assert_eq!(b.received[0].1, "ping");
        assert_eq!(a.received.len(), 1);
        assert_eq!(a.received[0].1, "pong");
        // RTT is at least 2x the 50 ms WAN propagation.
        assert!(a.received[0].0 >= SimTime::from_millis(100));
        assert_eq!(sim.counters().unroutable, 0);
    }

    /// Tap that charges a fixed processing delay and counts packets.
    struct CountingTap {
        hold: SimTime,
        seen: u64,
    }

    impl Tap for CountingTap {
        fn observe(&mut self, _packet: &Packet, _now: SimTime) -> SimTime {
            self.seen += 1;
            self.hold
        }
    }

    #[test]
    fn tap_sees_traffic_and_adds_delay() {
        let (mut sim, host_a, _) = two_site_sim(Box::new(PassiveTap));
        sim.run_to_completion();
        let baseline = sim.node_as::<Host>(host_a).app_as::<Ping>().received[0].0;

        let (mut sim, host_a2, tap_node) = {
            let (sim2, a, _b) = two_site_sim(Box::new(CountingTap {
                hold: SimTime::from_millis(25),
                seen: 0,
            }));
            // The tap node id is 3 in construction order.
            (sim2, a, crate::engine::NodeId(3))
        };
        sim.run_to_completion();
        let with_tap = sim.node_as::<Host>(host_a2).app_as::<Ping>().received[0].0;
        let tap = sim.node_as::<TapNode>(tap_node).tap_as::<CountingTap>();
        assert_eq!(tap.seen, 2, "ping and pong both traverse the tap");
        // Two traversals at 25 ms each.
        let added = with_tap.saturating_sub(baseline);
        assert_eq!(added, SimTime::from_millis(50));
    }

    #[test]
    fn host_ignores_foreign_packets() {
        let addr = Address::new(10, 1, 0, 9, 5060);
        let mut host = Host::new(
            addr,
            Box::new(Ping {
                peer: addr,
                start: false,
                received: Vec::new(),
            }),
        );
        // Drive on_packet directly through a tiny sim.
        let mut sim = Simulator::new(1);
        let src = sim.add_node(Box::new(Router::new()));
        host.set_uplink(LinkId(0));
        let h = sim.add_node(Box::new(host));
        let l = sim.add_link(src, h, LinkSpec::lan_100base_t());
        sim.node_as_mut::<Router>(src).set_default_route(l);
        // Inject: a packet destined to a different ip via the router.
        // (Ping app would record it if it were delivered.)
        // Build a second source host to send it.
        let other = Address::new(10, 1, 0, 77, 1);
        let sender = sim.add_node(Box::new(Host::new(
            other,
            Box::new(Ping {
                peer: Address::new(10, 9, 9, 9, 9), // not the host's ip
                start: true,
                received: Vec::new(),
            }),
        )));
        let (s_up, _) = sim.add_duplex_link(sender, src, LinkSpec::lan_100base_t());
        sim.node_as_mut::<Host>(sender).set_uplink(s_up);
        sim.run_to_completion();
        let h_ref = sim.node_as::<Host>(h);
        assert_eq!(h_ref.misdelivered(), 1);
        assert!(h_ref.app_as::<Ping>().received.is_empty());
    }
}
