//! Simulated time: a monotone nanosecond counter.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// Nanosecond resolution keeps sub-millisecond link serialization delays
/// (a 50-byte RTP packet on a DS1 link takes ~259 µs) exact while `u64`
/// still covers ~584 years of simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or non-finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "time must be non-negative");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncated).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_sub(&self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Whether this is exactly time zero.
    pub const fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`SimTime::saturating_sub`] when `rhs` may exceed `self`.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(1_500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::from_micros(250).as_nanos(), 250_000);
        assert_eq!(SimTime::from_secs_f64(0.000_259).as_nanos(), 259_000);
        assert_eq!(SimTime::from_millis(1_999).as_millis(), 1_999);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(100);
        let b = SimTime::from_millis(30);
        assert_eq!(a + b, SimTime::from_millis(130));
        assert_eq!(a - b, SimTime::from_millis(70));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(130));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }
}
