//! Statistics collectors for the evaluation figures.

use std::fmt;

/// Streaming mean/variance/min/max (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = mean;
        self.m2 = m2;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6} sd={:.6} min={:.6} max={:.6}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

/// A `(time, value)` series — the raw material for Figs. 8–10.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a point (times should be non-decreasing for binning).
    pub fn push(&mut self, time_secs: f64, value: f64) {
        self.points.push((time_secs, value));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over points.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Summary of the values (ignoring time).
    pub fn summary(&self) -> Summary {
        let mut s = Summary::new();
        for (_, v) in &self.points {
            s.add(*v);
        }
        s
    }

    /// Buckets values into fixed-width time bins, returning
    /// `(bin_start, count, mean)` per non-empty bin — used to print Fig. 8's
    /// call-arrival counts and Fig. 9/10 averaged series.
    pub fn binned(&self, bin_secs: f64) -> Vec<(f64, u64, f64)> {
        assert!(bin_secs > 0.0, "bin width must be positive");
        let mut bins: Vec<(f64, u64, f64)> = Vec::new();
        for &(t, v) in &self.points {
            let start = (t / bin_secs).floor() * bin_secs;
            match bins.last_mut() {
                Some((s, n, mean)) if (*s - start).abs() < f64::EPSILON => {
                    *n += 1;
                    *mean += (v - *mean) / *n as f64;
                }
                _ => bins.push((start, 1, v)),
            }
        }
        bins
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        TimeSeries {
            points: iter.into_iter().collect(),
        }
    }
}

/// Fixed-width histogram over `[0, width * bins)` with an overflow bucket.
///
/// The implementation lives in `vids-telemetry` (one histogram codebase for
/// both the QoS evaluation and the runtime metrics); this re-export keeps
/// the historical `netsim::stats::Histogram` name and API.
pub use vids_telemetry::LinearHistogram as Histogram;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_equals_concatenation() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..37] {
            left.add(x);
        }
        for &x in &xs[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn time_series_binning() {
        let mut ts = TimeSeries::new();
        ts.push(0.1, 1.0);
        ts.push(0.9, 3.0);
        ts.push(1.5, 5.0);
        ts.push(3.2, 7.0);
        let bins = ts.binned(1.0);
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0], (0.0, 2, 2.0));
        assert_eq!(bins[1], (1.0, 1, 5.0));
        assert_eq!(bins[2], (3.0, 1, 7.0));
    }

    #[test]
    fn histogram_counts_and_overflow() {
        let mut h = Histogram::new(0.5, 4); // [0, 2)
        for x in [0.1, 0.4, 0.6, 1.9, 2.5, -0.3] {
            h.add(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.overflow(), 1);
        let nz = h.nonzero();
        assert_eq!(nz[0], (0.0, 3)); // 0.1, 0.4, -0.3
        assert_eq!(nz[1], (0.5, 1));
        assert_eq!(nz[2], (1.5, 1));
    }
}
