//! # vids-netsim — discrete-event network simulator
//!
//! The paper evaluates vids on an OPNET-simulated enterprise VoIP testbed
//! (Fig. 7). This crate is the OPNET substitute: a deterministic
//! discrete-event simulator with
//!
//! * [`time::SimTime`] — nanosecond-resolution simulated time,
//! * [`packet::Packet`] / [`packet::Address`] — datagrams with SIP text or
//!   RTP bytes as payload,
//! * [`engine::Simulator`] — the event heap, links with propagation delay,
//!   serialization (bandwidth) delay, FIFO queuing and Bernoulli loss,
//! * [`node`] — reusable node types: prefix [`node::Router`]s, exact-match
//!   [`node::Hub`]s, inline [`node::TapNode`]s (where vids is mounted) and
//!   [`node::Host`]s running an [`node::Application`],
//! * [`workload::CallWorkload`] — the random call generator of §7.1
//!   (Poisson arrivals, exponential holding times),
//! * [`stats`] — Welford summaries, time series and histograms used to
//!   regenerate Figs. 8–10,
//! * [`topology::Enterprise`] — the Fig. 7 twin-enterprise topology builder
//!   (100BaseT LANs, DS1 access links, 50 ms / 0.42 % loss Internet cloud).
//!
//! Determinism: all randomness flows from one seeded [`rand::rngs::StdRng`];
//! the event heap breaks time ties by insertion order. Two runs with the
//! same seed produce identical packet traces.

pub mod background;
pub mod engine;
pub mod node;
pub mod packet;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;
pub mod workload;

pub use background::{BackgroundSink, BackgroundSource, BackgroundSpec};
pub use engine::{LinkId, LinkSpec, NodeId, Simulator};
pub use node::{AppCtx, Application, Host, Hub, Router, Tap, TapNode};
pub use packet::{Address, Packet, Payload};
pub use time::SimTime;
pub use trace::{CaptureFilter, TraceTap};
