//! Datagrams and addressing.

use std::fmt;

use crate::time::SimTime;

/// A network address: IPv4-style 32-bit host id plus UDP port.
///
/// The upper 16 bits of the ip are the *site prefix* used by
/// [`crate::node::Router`]s; the Fig. 7 topology assigns `10.1.0.0/16` to
/// enterprise A, `10.2.0.0/16` to enterprise B and `10.0.0.0/16` to the
/// Internet core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address {
    /// 32-bit host identifier, rendered dotted-quad.
    pub ip: u32,
    /// UDP port.
    pub port: u16,
}

impl Address {
    /// Creates an address from dotted-quad octets and a port.
    pub const fn new(a: u8, b: u8, c: u8, d: u8, port: u16) -> Self {
        Address {
            ip: u32::from_be_bytes([a, b, c, d]),
            port,
        }
    }

    /// The /16 site prefix (upper 16 bits).
    pub const fn site(&self) -> u16 {
        (self.ip >> 16) as u16
    }

    /// The same host with a different port.
    #[must_use]
    pub const fn with_port(&self, port: u16) -> Self {
        Address { ip: self.ip, port }
    }

    /// Dotted-quad text without the port.
    pub fn ip_string(&self) -> String {
        let [a, b, c, d] = self.ip.to_be_bytes();
        format!("{a}.{b}.{c}.{d}")
    }

    /// Parses a dotted-quad ip (no port).
    pub fn parse_ip(text: &str) -> Option<u32> {
        let mut octets = [0u8; 4];
        let mut it = text.split('.');
        for o in &mut octets {
            *o = it.next()?.parse().ok()?;
        }
        if it.next().is_some() {
            return None;
        }
        Some(u32::from_be_bytes(octets))
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip_string(), self.port)
    }
}

/// What a datagram carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// SIP message text (parsed by endpoints and by vids).
    Sip(String),
    /// RTP packet bytes (RFC 3550 wire format).
    Rtp(Vec<u8>),
    /// Anything else (background traffic, malformed junk).
    Raw(Vec<u8>),
}

impl Payload {
    /// Application-layer length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Payload::Sip(s) => s.len(),
            Payload::Rtp(b) | Payload::Raw(b) => b.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short protocol tag for logs.
    pub fn protocol(&self) -> &'static str {
        match self {
            Payload::Sip(_) => "SIP",
            Payload::Rtp(_) => "RTP",
            Payload::Raw(_) => "RAW",
        }
    }
}

/// IPv4 + UDP header overhead added to every datagram on the wire.
pub const UDP_IP_OVERHEAD: usize = 28;

/// A UDP datagram in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source address.
    pub src: Address,
    /// Destination address.
    pub dst: Address,
    /// Application payload.
    pub payload: Payload,
    /// Monotone per-simulation packet id (assigned at send).
    pub id: u64,
    /// When the packet was handed to the network.
    pub sent_at: SimTime,
}

impl Packet {
    /// Total wire size: payload plus IP/UDP headers.
    pub fn wire_bytes(&self) -> usize {
        self.payload.len() + UDP_IP_OVERHEAD
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {} {}->{} ({} B)",
            self.id,
            self.payload.protocol(),
            self.src,
            self.dst,
            self.wire_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_site_prefix() {
        let a = Address::new(10, 1, 0, 3, 5060);
        assert_eq!(a.site(), (10 << 8) | 1);
        assert_eq!(a.to_string(), "10.1.0.3:5060");
        assert_eq!(a.with_port(4000).port, 4000);
    }

    #[test]
    fn parse_ip_round_trip() {
        let a = Address::new(192, 0, 2, 45, 0);
        assert_eq!(Address::parse_ip(&a.ip_string()), Some(a.ip));
        assert_eq!(Address::parse_ip("10.0.0"), None);
        assert_eq!(Address::parse_ip("10.0.0.0.1"), None);
        assert_eq!(Address::parse_ip("10.0.0.x"), None);
    }

    #[test]
    fn wire_size_includes_headers() {
        let p = Packet {
            src: Address::default(),
            dst: Address::default(),
            payload: Payload::Rtp(vec![0; 22]),
            id: 0,
            sent_at: SimTime::ZERO,
        };
        assert_eq!(p.wire_bytes(), 50);
    }

    #[test]
    fn payload_protocol_tags() {
        assert_eq!(Payload::Sip(String::new()).protocol(), "SIP");
        assert_eq!(Payload::Rtp(Vec::new()).protocol(), "RTP");
        assert_eq!(Payload::Raw(Vec::new()).protocol(), "RAW");
        assert!(Payload::Sip(String::new()).is_empty());
    }
}
