//! Background (non-VoIP) cross-traffic.
//!
//! The paper's opening observation is that VoIP "shares the network
//! resources with the regular Internet traffic". This module provides a
//! bulk-traffic application that loads the shared DS1/cloud path with raw
//! datagrams, creating the serialization queueing that gives RTP streams
//! their jitter — and letting experiments dial contention up and down.

use crate::node::{AppCtx, Application};
use crate::packet::{Address, Packet, Payload};
use crate::time::SimTime;
use crate::workload::exponential;

/// Parameters of one background traffic source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackgroundSpec {
    /// Destination of the bulk flow.
    pub sink: Address,
    /// Mean offered load in bits per second.
    pub mean_bps: u64,
    /// Datagram payload size in bytes.
    pub packet_bytes: usize,
    /// When to start sending.
    pub start: SimTime,
    /// When to stop.
    pub stop: SimTime,
}

impl BackgroundSpec {
    /// A flow loading roughly `fraction` of a DS1 link (1.544 Mbit/s).
    pub fn ds1_fraction(sink: Address, fraction: f64, start: SimTime, stop: SimTime) -> Self {
        BackgroundSpec {
            sink,
            mean_bps: (1_544_000.0 * fraction) as u64,
            packet_bytes: 512,
            start,
            stop,
        }
    }
}

/// An application generating Poisson bulk traffic toward a sink.
///
/// Inter-departure gaps are exponential, so the offered load is `mean_bps`
/// on average with realistic burstiness.
pub struct BackgroundSource {
    spec: BackgroundSpec,
    sent_packets: u64,
    sent_bytes: u64,
}

impl BackgroundSource {
    /// Creates a source from its spec.
    pub fn new(spec: BackgroundSpec) -> Self {
        BackgroundSource {
            spec,
            sent_packets: 0,
            sent_bytes: 0,
        }
    }

    /// Packets sent so far.
    pub fn sent_packets(&self) -> u64 {
        self.sent_packets
    }

    /// Payload bytes sent so far.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    fn mean_gap_secs(&self) -> f64 {
        let bits_per_packet = (self.spec.packet_bytes + crate::packet::UDP_IP_OVERHEAD) * 8;
        bits_per_packet as f64 / self.spec.mean_bps as f64
    }

    fn schedule_next(&self, ctx: &mut AppCtx<'_, '_>) {
        let gap = exponential(ctx.rng(), self.mean_gap_secs());
        ctx.set_timer(SimTime::from_secs_f64(gap), 0);
    }
}

impl Application for BackgroundSource {
    fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let delay = self.spec.start.saturating_sub(ctx.now());
        ctx.set_timer(delay, 0);
    }

    fn on_datagram(&mut self, _packet: &Packet, _ctx: &mut AppCtx<'_, '_>) {
        // Bulk sinks discard; sources ignore replies.
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut AppCtx<'_, '_>) {
        if ctx.now() >= self.spec.stop {
            return;
        }
        if ctx.now() >= self.spec.start {
            let size = self.spec.packet_bytes;
            // Payload content irrelevant: fill with a recognizable byte.
            ctx.send_to(self.spec.sink, Payload::Raw(vec![0xBB; size]));
            self.sent_packets += 1;
            self.sent_bytes += size as u64;
        }
        self.schedule_next(ctx);
    }
}

/// A sink that counts what reaches it (attach anywhere).
#[derive(Debug, Default)]
pub struct BackgroundSink {
    received: u64,
}

impl BackgroundSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        BackgroundSink::default()
    }

    /// Datagrams received.
    pub fn received(&self) -> u64 {
        self.received
    }
}

impl Application for BackgroundSink {
    fn on_datagram(&mut self, _packet: &Packet, _ctx: &mut AppCtx<'_, '_>) {
        self.received += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LinkSpec, Simulator};
    use crate::node::{Host, Hub};

    fn world(
        spec: BackgroundSpec,
        src_addr: Address,
        sink_addr: Address,
    ) -> (Simulator, crate::engine::NodeId, crate::engine::NodeId) {
        let mut sim = Simulator::new(5);
        let hub = sim.add_node(Box::new(Hub::new()));
        let lan = LinkSpec::lan_100base_t();
        let src = sim.add_node(Box::new(Host::new(
            src_addr,
            Box::new(BackgroundSource::new(spec)),
        )));
        let (su, sd) = sim.add_duplex_link(src, hub, lan);
        sim.node_as_mut::<Host>(src).set_uplink(su);
        sim.node_as_mut::<Hub>(hub).add_port(src_addr.ip, sd);
        let sink = sim.add_node(Box::new(Host::new(
            sink_addr,
            Box::new(BackgroundSink::new()),
        )));
        let (ku, kd) = sim.add_duplex_link(sink, hub, lan);
        sim.node_as_mut::<Host>(sink).set_uplink(ku);
        sim.node_as_mut::<Hub>(hub).add_port(sink_addr.ip, kd);
        (sim, src, sink)
    }

    #[test]
    fn offered_load_is_roughly_the_spec() {
        let sink_addr = Address::new(10, 1, 0, 2, 9);
        let spec = BackgroundSpec {
            sink: sink_addr,
            mean_bps: 400_000,
            packet_bytes: 500,
            start: SimTime::ZERO,
            stop: SimTime::from_secs(20),
        };
        let (mut sim, src, sink) = world(spec, Address::new(10, 1, 0, 1, 9), sink_addr);
        sim.run_until(SimTime::from_secs(21));
        let sent = sim
            .node_as::<Host>(src)
            .app_as::<BackgroundSource>()
            .sent_bytes();
        let bps = (sent
            + sim
                .node_as::<Host>(src)
                .app_as::<BackgroundSource>()
                .sent_packets()
                * 28) as f64
            * 8.0
            / 20.0;
        assert!((300_000.0..500_000.0).contains(&bps), "offered {bps} bps");
        let received = sim
            .node_as::<Host>(sink)
            .app_as::<BackgroundSink>()
            .received();
        assert!(received > 0);
    }

    #[test]
    fn respects_start_and_stop_window() {
        let sink_addr = Address::new(10, 1, 0, 2, 9);
        let spec = BackgroundSpec {
            sink: sink_addr,
            mean_bps: 1_000_000,
            packet_bytes: 500,
            start: SimTime::from_secs(5),
            stop: SimTime::from_secs(6),
        };
        let (mut sim, src, _) = world(spec, Address::new(10, 1, 0, 1, 9), sink_addr);
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(
            sim.node_as::<Host>(src)
                .app_as::<BackgroundSource>()
                .sent_packets(),
            0
        );
        sim.run_until(SimTime::from_secs(10));
        let sent = sim
            .node_as::<Host>(src)
            .app_as::<BackgroundSource>()
            .sent_packets();
        // ~1 s at 1 Mbit/s of 528-byte datagrams ≈ 236 packets.
        assert!((100..400).contains(&sent), "sent {sent}");
    }

    #[test]
    fn ds1_fraction_helper() {
        let spec = BackgroundSpec::ds1_fraction(
            Address::default(),
            0.5,
            SimTime::ZERO,
            SimTime::from_secs(1),
        );
        assert_eq!(spec.mean_bps, 772_000);
    }
}
