//! The discrete-event simulation kernel: event heap, links and dispatch.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::packet::Packet;
use crate::time::SimTime;

/// Index of a node within the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub(crate) usize);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Physical characteristics of a directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation delay.
    pub delay: SimTime,
    /// Serialization bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Independent (Bernoulli) packet loss probability, `0.0..=1.0`.
    pub loss_rate: f64,
}

impl LinkSpec {
    /// 100BaseT LAN segment: 100 Mbit/s, 5 µs propagation, lossless.
    pub fn lan_100base_t() -> Self {
        LinkSpec {
            delay: SimTime::from_micros(5),
            bandwidth_bps: 100_000_000,
            loss_rate: 0.0,
        }
    }

    /// DS1 access link: 1.544 Mbit/s, 1 ms propagation, lossless.
    pub fn ds1() -> Self {
        LinkSpec {
            delay: SimTime::from_millis(1),
            bandwidth_bps: 1_544_000,
            loss_rate: 0.0,
        }
    }

    /// The paper's Internet cloud between sites A and B: 50 ms one-way
    /// delay with 0.42 % packet loss (§7.1). Bandwidth is effectively
    /// unconstrained through the core.
    pub fn internet_cloud() -> Self {
        LinkSpec {
            delay: SimTime::from_millis(50),
            bandwidth_bps: 1_000_000_000,
            loss_rate: 0.0042,
        }
    }

    /// Serialization time for `bytes` on this link.
    pub fn serialization(&self, bytes: usize) -> SimTime {
        SimTime::from_nanos((bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }
}

#[derive(Debug)]
struct Link {
    to: NodeId,
    spec: LinkSpec,
    busy_until: SimTime,
    bytes_carried: u64,
    packets_carried: u64,
}

/// Aggregate packet counters for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimCounters {
    /// Packets handed to links.
    pub transmitted: u64,
    /// Packets delivered to a node.
    pub delivered: u64,
    /// Packets dropped by link loss.
    pub lost: u64,
    /// Packets dropped because no route/port matched.
    pub unroutable: u64,
}

enum Ev {
    Arrival { node: NodeId, packet: Packet },
    Timer { node: NodeId, token: u64 },
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A simulated network element.
///
/// Implementations receive packets and timer expirations and react through
/// the [`NodeCtx`]. The trait requires [`Any`] so hosts can be downcast
/// after a run to read their collected statistics.
pub trait Node: Any {
    /// A packet arrived at this node.
    fn on_packet(&mut self, packet: Packet, ctx: &mut NodeCtx<'_>);

    /// A timer armed by this node expired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut NodeCtx<'_>) {}

    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}
}

/// Capabilities available to a node while handling an event.
pub struct NodeCtx<'a> {
    now: SimTime,
    node: NodeId,
    links: &'a mut Vec<Link>,
    queue: &'a mut BinaryHeap<Reverse<Scheduled>>,
    seq: &'a mut u64,
    rng: &'a mut StdRng,
    packet_ids: &'a mut u64,
    counters: &'a mut SimCounters,
}

impl NodeCtx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Per-link carried traffic: `(packets, bytes)`.
    pub fn link_carried(&self, link: LinkId) -> (u64, u64) {
        let l = &self.links[link.0];
        (l.packets_carried, l.bytes_carried)
    }

    /// A link's mean utilization over `[0, now]`: carried bits over
    /// capacity. 1.0 means the link was saturated the whole run.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        let elapsed = self.now.as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let l = &self.links[link.0];
        (l.bytes_carried as f64 * 8.0) / (l.spec.bandwidth_bps as f64 * elapsed)
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The deterministic RNG (all randomness must come from here).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Allocates a fresh packet id.
    pub fn next_packet_id(&mut self) -> u64 {
        let id = *self.packet_ids;
        *self.packet_ids += 1;
        id
    }

    /// Record an unroutable packet drop.
    pub fn count_unroutable(&mut self) {
        self.counters.unroutable += 1;
    }

    /// Transmits a packet on a link: FIFO serialization queuing at the
    /// sender, propagation delay, then Bernoulli loss.
    pub fn transmit(&mut self, link: LinkId, packet: Packet) {
        self.transmit_after(link, packet, SimTime::ZERO);
    }

    /// Like [`NodeCtx::transmit`] but the packet is held `hold` first (e.g.
    /// an inline monitor's processing delay).
    pub fn transmit_after(&mut self, link: LinkId, packet: Packet, hold: SimTime) {
        let l = &mut self.links[link.0];
        self.counters.transmitted += 1;
        l.bytes_carried += packet.wire_bytes() as u64;
        l.packets_carried += 1;
        let ready = self.now + hold;
        let start = ready.max(l.busy_until);
        let done = start + l.spec.serialization(packet.wire_bytes());
        l.busy_until = done;
        let arrival = done + l.spec.delay;
        if l.spec.loss_rate > 0.0 && self.rng.gen_bool(l.spec.loss_rate) {
            self.counters.lost += 1;
            return;
        }
        let to = l.to;
        push(
            self.queue,
            self.seq,
            arrival,
            Ev::Arrival { node: to, packet },
        );
    }

    /// Arms a timer for this node; `token` comes back in `on_timer`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        let node = self.node;
        push(
            self.queue,
            self.seq,
            self.now + delay,
            Ev::Timer { node, token },
        );
    }
}

fn push(queue: &mut BinaryHeap<Reverse<Scheduled>>, seq: &mut u64, at: SimTime, ev: Ev) {
    queue.push(Reverse(Scheduled { at, seq: *seq, ev }));
    *seq += 1;
}

/// The discrete-event simulator: owns nodes, links, the event heap and the
/// run's deterministic RNG.
pub struct Simulator {
    nodes: Vec<Box<dyn Node>>,
    links: Vec<Link>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    now: SimTime,
    rng: StdRng,
    packet_ids: u64,
    counters: SimCounters,
    started: bool,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .finish()
    }
}

impl Simulator {
    /// Creates a simulator with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            links: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            packet_ids: 0,
            counters: SimCounters::default(),
            started: false,
        }
    }

    /// Adds a node, returning its id. A node added after the simulation has
    /// begun gets its `on_start` immediately (attackers join mid-run).
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.nodes.push(node);
        let id = NodeId(self.nodes.len() - 1);
        if self.started {
            self.dispatch_start(id);
        }
        id
    }

    /// Adds a directed link `from -> to`.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> LinkId {
        let _ = from; // topology bookkeeping only; delivery needs `to`
        self.links.push(Link {
            to,
            spec,
            busy_until: SimTime::ZERO,
            bytes_carried: 0,
            packets_carried: 0,
        });
        LinkId(self.links.len() - 1)
    }

    /// Adds a duplex link as two directed links, returning
    /// `(a_to_b, b_to_a)`.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        (self.add_link(a, b, spec), self.add_link(b, a, spec))
    }

    /// Typed mutable access to a node. Used to configure routing tables and
    /// to read application statistics after a run.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a `T`.
    pub fn node_as_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        let node: &mut dyn Any = self.nodes[id.0].as_mut();
        node.downcast_mut::<T>().expect("node type mismatch")
    }

    /// Typed shared access to a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a `T`.
    pub fn node_as<T: Node>(&self, id: NodeId) -> &T {
        let node: &dyn Any = self.nodes[id.0].as_ref();
        node.downcast_ref::<T>().expect("node type mismatch")
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Per-link carried traffic: `(packets, bytes)`.
    pub fn link_carried(&self, link: LinkId) -> (u64, u64) {
        let l = &self.links[link.0];
        (l.packets_carried, l.bytes_carried)
    }

    /// A link's mean utilization over `[0, now]`: carried bits over
    /// capacity. 1.0 means the link was saturated the whole run.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        let elapsed = self.now.as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let l = &self.links[link.0];
        (l.bytes_carried as f64 * 8.0) / (l.spec.bandwidth_bps as f64 * elapsed)
    }

    /// Aggregate packet counters.
    pub fn counters(&self) -> SimCounters {
        self.counters
    }

    /// Runs all events up to and including `until`, leaving the clock at
    /// `until`. Calls every node's `on_start` on the first run.
    pub fn run_until(&mut self, until: SimTime) {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                self.dispatch_start(NodeId(i));
            }
        }
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > until {
                break;
            }
            let Reverse(Scheduled { at, ev, .. }) = self.queue.pop().unwrap();
            self.now = at;
            self.dispatch(ev);
        }
        self.now = until;
    }

    /// Runs until the event heap is empty.
    pub fn run_to_completion(&mut self) {
        self.run_until(SimTime::from_nanos(u64::MAX));
    }

    fn dispatch_start(&mut self, id: NodeId) {
        let Simulator {
            nodes,
            links,
            queue,
            seq,
            rng,
            packet_ids,
            counters,
            now,
            ..
        } = self;
        let mut ctx = NodeCtx {
            now: *now,
            node: id,
            links,
            queue,
            seq,
            rng,
            packet_ids,
            counters,
        };
        nodes[id.0].on_start(&mut ctx);
    }

    fn dispatch(&mut self, ev: Ev) {
        let Simulator {
            nodes,
            links,
            queue,
            seq,
            rng,
            packet_ids,
            counters,
            now,
            ..
        } = self;
        match ev {
            Ev::Arrival { node, packet } => {
                counters.delivered += 1;
                let mut ctx = NodeCtx {
                    now: *now,
                    node,
                    links,
                    queue,
                    seq,
                    rng,
                    packet_ids,
                    counters,
                };
                nodes[node.0].on_packet(packet, &mut ctx);
            }
            Ev::Timer { node, token } => {
                let mut ctx = NodeCtx {
                    now: *now,
                    node,
                    links,
                    queue,
                    seq,
                    rng,
                    packet_ids,
                    counters,
                };
                nodes[node.0].on_timer(token, &mut ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Address, Payload};

    /// Node that records arrivals and can bounce the first packet back.
    struct Echo {
        received: Vec<(SimTime, u64)>,
        reply_link: Option<LinkId>,
    }

    impl Node for Echo {
        fn on_packet(&mut self, packet: Packet, ctx: &mut NodeCtx<'_>) {
            self.received.push((ctx.now(), packet.id));
            if let Some(link) = self.reply_link.take() {
                let mut back = packet;
                std::mem::swap(&mut back.src, &mut back.dst);
                ctx.transmit(link, back);
            }
        }
    }

    /// Node that sends `count` packets at start, spaced `gap` apart via timers.
    struct Source {
        out: LinkId,
        count: u64,
        sent: u64,
        gap: SimTime,
        bytes: usize,
    }

    impl Source {
        fn send_one(&mut self, ctx: &mut NodeCtx<'_>) {
            let id = ctx.next_packet_id();
            ctx.transmit(
                self.out,
                Packet {
                    src: Address::new(10, 1, 0, 1, 1000),
                    dst: Address::new(10, 2, 0, 1, 2000),
                    payload: Payload::Raw(vec![0; self.bytes]),
                    id,
                    sent_at: ctx.now(),
                },
            );
            self.sent += 1;
        }
    }

    impl Node for Source {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            self.send_one(ctx);
            if self.sent < self.count {
                ctx.set_timer(self.gap, 0);
            }
        }

        fn on_packet(&mut self, _packet: Packet, _ctx: &mut NodeCtx<'_>) {}

        fn on_timer(&mut self, _token: u64, ctx: &mut NodeCtx<'_>) {
            self.send_one(ctx);
            if self.sent < self.count {
                ctx.set_timer(self.gap, 0);
            }
        }
    }

    #[test]
    fn delivers_with_propagation_and_serialization_delay() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node(Box::new(Source {
            out: LinkId(0),
            count: 1,
            sent: 0,
            gap: SimTime::ZERO,
            bytes: 165, // + 28 overhead = 193 B = 1544 bits -> 1 ms on DS1
        }));
        let dst = sim.add_node(Box::new(Echo {
            received: Vec::new(),
            reply_link: None,
        }));
        let _l = sim.add_link(src, dst, LinkSpec::ds1());
        sim.run_to_completion();
        let echo = sim.node_as::<Echo>(dst);
        assert_eq!(echo.received.len(), 1);
        // serialization 1 ms + propagation 1 ms.
        assert_eq!(echo.received[0].0, SimTime::from_millis(2));
    }

    #[test]
    fn fifo_queuing_spaces_back_to_back_packets() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node(Box::new(Source {
            out: LinkId(0),
            count: 3,
            sent: 0,
            gap: SimTime::ZERO, // all at t=0: must serialize one after another
            bytes: 165,
        }));
        let dst = sim.add_node(Box::new(Echo {
            received: Vec::new(),
            reply_link: None,
        }));
        sim.add_link(src, dst, LinkSpec::ds1());
        sim.run_to_completion();
        let echo = sim.node_as::<Echo>(dst);
        let times: Vec<u64> = echo.received.iter().map(|(t, _)| t.as_millis()).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn loss_rate_drops_roughly_the_right_fraction() {
        let mut sim = Simulator::new(42);
        let n = 20_000;
        let src = sim.add_node(Box::new(Source {
            out: LinkId(0),
            count: n,
            sent: 0,
            gap: SimTime::from_micros(100),
            bytes: 10,
        }));
        let dst = sim.add_node(Box::new(Echo {
            received: Vec::new(),
            reply_link: None,
        }));
        sim.add_link(
            src,
            dst,
            LinkSpec {
                delay: SimTime::from_millis(1),
                bandwidth_bps: 1_000_000_000,
                loss_rate: 0.0042,
            },
        );
        sim.run_to_completion();
        let lost = sim.counters().lost;
        let rate = lost as f64 / n as f64;
        assert!((0.002..0.007).contains(&rate), "loss rate {rate}");
    }

    #[test]
    fn same_seed_same_trace() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(seed);
            let src = sim.add_node(Box::new(Source {
                out: LinkId(0),
                count: 500,
                sent: 0,
                gap: SimTime::from_micros(10),
                bytes: 100,
            }));
            let dst = sim.add_node(Box::new(Echo {
                received: Vec::new(),
                reply_link: None,
            }));
            sim.add_link(
                src,
                dst,
                LinkSpec {
                    delay: SimTime::from_millis(5),
                    bandwidth_bps: 1_544_000,
                    loss_rate: 0.05,
                },
            );
            sim.run_to_completion();
            sim.node_as::<Echo>(dst).received.clone()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn run_until_stops_the_clock() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node(Box::new(Source {
            out: LinkId(0),
            count: 100,
            sent: 0,
            gap: SimTime::from_millis(10),
            bytes: 10,
        }));
        let dst = sim.add_node(Box::new(Echo {
            received: Vec::new(),
            reply_link: None,
        }));
        sim.add_link(src, dst, LinkSpec::lan_100base_t());
        sim.run_until(SimTime::from_millis(55));
        assert_eq!(sim.now(), SimTime::from_millis(55));
        let first_half = sim.node_as::<Echo>(dst).received.len();
        assert!((5..=7).contains(&first_half), "got {first_half}");
        sim.run_to_completion();
        assert_eq!(sim.node_as::<Echo>(dst).received.len(), 100);
    }

    #[test]
    fn round_trip_through_echo() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node(Box::new(Echo {
            received: Vec::new(),
            reply_link: None,
        }));
        let dst = sim.add_node(Box::new(Echo {
            received: Vec::new(),
            reply_link: None,
        }));
        let (ab, ba) = sim.add_duplex_link(src, dst, LinkSpec::internet_cloud());
        sim.node_as_mut::<Echo>(dst).reply_link = Some(ba);
        // Manually inject a packet from src.
        sim.node_as_mut::<Echo>(src).reply_link = Some(ab);
        // Kick things off: deliver a synthetic packet to src so it forwards.
        // (Simplest: schedule through a source node instead.)
        let kick = sim.add_node(Box::new(Source {
            out: LinkId(2),
            count: 1,
            sent: 0,
            gap: SimTime::ZERO,
            bytes: 10,
        }));
        sim.add_link(kick, src, LinkSpec::lan_100base_t());
        sim.run_to_completion();
        // src echoes to dst, dst echoes back to src: 2 arrivals at src.
        assert_eq!(sim.node_as::<Echo>(src).received.len(), 2);
        assert_eq!(sim.node_as::<Echo>(dst).received.len(), 1);
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;
    use crate::packet::{Address, Payload};

    struct Blaster {
        out: LinkId,
        remaining: u32,
    }

    impl Node for Blaster {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(SimTime::from_millis(1), 0);
        }
        fn on_packet(&mut self, _p: Packet, _ctx: &mut NodeCtx<'_>) {}
        fn on_timer(&mut self, _t: u64, ctx: &mut NodeCtx<'_>) {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            let id = ctx.next_packet_id();
            ctx.transmit(
                self.out,
                Packet {
                    src: Address::new(10, 1, 0, 1, 1),
                    dst: Address::new(10, 2, 0, 1, 1),
                    payload: Payload::Raw(vec![0; 972]), // 1000 B on the wire
                    id,
                    sent_at: ctx.now(),
                },
            );
            ctx.set_timer(SimTime::from_millis(1), 0);
        }
    }

    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, _p: Packet, _ctx: &mut NodeCtx<'_>) {}
    }

    #[test]
    fn link_utilization_matches_offered_load() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node(Box::new(Blaster {
            out: LinkId(0),
            remaining: 1_000,
        }));
        let dst = sim.add_node(Box::new(Sink));
        let link = sim.add_link(
            src,
            dst,
            LinkSpec {
                delay: SimTime::from_micros(10),
                bandwidth_bps: 100_000_000,
                loss_rate: 0.0,
            },
        );
        // 1000 packets of 1000 B at 1 ms spacing = 8 Mbit over 1 s.
        sim.run_until(SimTime::from_secs(1));
        let (pkts, bytes) = sim.link_carried(link);
        assert_eq!(pkts, 1_000);
        assert_eq!(bytes, 1_000_000);
        let util = sim.link_utilization(link);
        assert!((0.07..0.09).contains(&util), "utilization {util}");
    }

    #[test]
    fn idle_link_has_zero_utilization() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Sink));
        let b = sim.add_node(Box::new(Sink));
        let link = sim.add_link(a, b, LinkSpec::ds1());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.link_utilization(link), 0.0);
        assert_eq!(sim.link_carried(link), (0, 0));
    }
}
