//! Random call workloads (§7.1): "the UAs of network A generate call
//! requests randomly and independently of each other. The call duration and
//! calling interval between calls are also assumed to be randomly
//! distributed."
//!
//! Arrivals per caller are Poisson (exponential think time between call
//! attempts), holding times are exponential with a configurable mean. A
//! [`CallPlan`] pre-draws the whole 120-minute schedule so both the
//! with-vids and without-vids runs replay identical call patterns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimTime;

/// Draws an exponential variate with the given mean (seconds).
pub fn exponential(rng: &mut StdRng, mean_secs: f64) -> f64 {
    assert!(mean_secs > 0.0, "mean must be positive");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean_secs * u.ln()
}

/// One scheduled call attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallEvent {
    /// Index of the calling UA within its site.
    pub caller: usize,
    /// Index of the callee UA within the remote site.
    pub callee: usize,
    /// When the caller sends its INVITE.
    pub start: SimTime,
    /// How long the conversation lasts once established.
    pub duration: SimTime,
}

/// Parameters of the call generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of calling UAs (paper: 20 in network A).
    pub callers: usize,
    /// Number of callee UAs (paper: 20 in network B).
    pub callees: usize,
    /// Mean think time between one caller's calls, seconds.
    pub mean_interarrival_secs: f64,
    /// Mean call holding time, seconds.
    pub mean_duration_secs: f64,
    /// Total experiment length (paper: 120 minutes).
    pub horizon: SimTime,
}

impl Default for WorkloadSpec {
    /// The §7.1 experiment: 20 callers and callees, ~3-minute mean think
    /// time, ~2-minute mean holding time, 120 simulated minutes.
    fn default() -> Self {
        WorkloadSpec {
            callers: 20,
            callees: 20,
            mean_interarrival_secs: 180.0,
            mean_duration_secs: 120.0,
            horizon: SimTime::from_secs(120 * 60),
        }
    }
}

/// A fully drawn, replayable schedule of call attempts sorted by start time.
#[derive(Debug, Clone, Default)]
pub struct CallPlan {
    calls: Vec<CallEvent>,
}

impl CallPlan {
    /// Draws a plan from the spec with a deterministic seed.
    pub fn generate(spec: &WorkloadSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut calls = Vec::new();
        for caller in 0..spec.callers {
            let mut t = exponential(&mut rng, spec.mean_interarrival_secs);
            while t < spec.horizon.as_secs_f64() {
                let callee = rng.gen_range(0..spec.callees);
                let duration = exponential(&mut rng, spec.mean_duration_secs);
                calls.push(CallEvent {
                    caller,
                    callee,
                    start: SimTime::from_secs_f64(t),
                    duration: SimTime::from_secs_f64(duration),
                });
                t += exponential(&mut rng, spec.mean_interarrival_secs);
            }
        }
        calls.sort_by_key(|c| c.start);
        CallPlan { calls }
    }

    /// The scheduled calls in start order.
    pub fn calls(&self) -> &[CallEvent] {
        &self.calls
    }

    /// Number of scheduled calls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Calls placed by one caller, in start order.
    pub fn for_caller(&self, caller: usize) -> impl Iterator<Item = &CallEvent> {
        self.calls.iter().filter(move |c| c.caller == caller)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, mean)).sum();
        let sample_mean = sum / n as f64;
        assert!((sample_mean - mean).abs() < 0.1, "mean {sample_mean}");
    }

    #[test]
    fn plan_is_sorted_and_in_horizon() {
        let spec = WorkloadSpec::default();
        let plan = CallPlan::generate(&spec, 5);
        assert!(!plan.is_empty());
        let starts: Vec<u64> = plan.calls().iter().map(|c| c.start.as_nanos()).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        assert!(plan.calls().iter().all(|c| c.start < spec.horizon));
        assert!(plan
            .calls()
            .iter()
            .all(|c| c.callee < spec.callees && c.caller < spec.callers));
    }

    #[test]
    fn plan_volume_matches_rates() {
        // 20 callers * 7200 s / 180 s mean interarrival ~= 800 calls.
        let plan = CallPlan::generate(&WorkloadSpec::default(), 1);
        let n = plan.len();
        assert!((600..1000).contains(&n), "calls = {n}");
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        let spec = WorkloadSpec::default();
        let a = CallPlan::generate(&spec, 9);
        let b = CallPlan::generate(&spec, 9);
        let c = CallPlan::generate(&spec, 10);
        assert_eq!(a.calls(), b.calls());
        assert_ne!(a.calls(), c.calls());
    }

    #[test]
    fn per_caller_filter() {
        let plan = CallPlan::generate(&WorkloadSpec::default(), 2);
        let total: usize = (0..20).map(|c| plan.for_caller(c).count()).sum();
        assert_eq!(total, plan.len());
    }
}
