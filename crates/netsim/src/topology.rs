//! The Fig. 7 twin-enterprise topology.
//!
//! ```text
//!  UA-A1..N ─┐                                             ┌─ UA-B1..N
//!  proxy-A  ─┤ hub-A ── router-A ══ DS1 ══ core ══ cloud ══ router-B ── tap(vids) ── hub-B ├─ proxy-B
//!            └ (100BaseT LAN)          (1.544 Mb/s)  (50 ms, 0.42 % loss)    (100BaseT LAN) ┘
//! ```
//!
//! Enterprise A owns `10.1.0.0/16`, enterprise B `10.2.0.0/16`, the Internet
//! core `10.0.0.0/16` (where attackers attach). The vids monitor mounts on
//! the tap node between B's edge router and hub, exactly as in the paper's
//! Fig. 1: it sees all signaling and media crossing B's perimeter.

use crate::engine::{LinkSpec, NodeId, Simulator};
use crate::node::{Application, Host, Hub, Router, Tap, TapNode};
use crate::packet::Address;
use crate::time::SimTime;

/// Well-known SIP port used by all agents.
pub const SIP_PORT: u16 = 5060;

/// Octet pattern: UA `i` of a site lives at `10.site.0.(10+i)`.
pub const UA_HOST_BASE: u8 = 10;
/// Proxies live at `10.site.0.5`.
pub const PROXY_HOST: u8 = 5;

/// Site numbers (second octet).
pub const SITE_A: u8 = 1;
/// Site B second octet.
pub const SITE_B: u8 = 2;
/// Internet core second octet.
pub const SITE_INTERNET: u8 = 0;

/// Address of UA `i` in site `site` (0-based index).
pub fn ua_addr(site: u8, i: usize) -> Address {
    Address::new(10, site, 0, UA_HOST_BASE + i as u8, SIP_PORT)
}

/// Address of the site's SIP proxy.
pub fn proxy_addr(site: u8) -> Address {
    Address::new(10, site, 0, PROXY_HOST, SIP_PORT)
}

/// Address of Internet host `i` (attackers, reflectors).
pub fn internet_addr(i: usize) -> Address {
    Address::new(10, SITE_INTERNET, 0, UA_HOST_BASE + i as u8, SIP_PORT)
}

/// The assembled topology: the simulator plus the node ids a caller needs to
/// install applications and read results.
pub struct Enterprise {
    /// The simulator holding all nodes and links.
    pub sim: Simulator,
    /// UA host nodes of site A, in index order.
    pub ua_a: Vec<NodeId>,
    /// UA host nodes of site B, in index order.
    pub ua_b: Vec<NodeId>,
    /// Site A's proxy host node.
    pub proxy_a: NodeId,
    /// Site B's proxy host node.
    pub proxy_b: NodeId,
    /// The tap node carrying vids (between router-B and hub-B).
    pub tap: NodeId,
    core: NodeId,
    inet_hub: NodeId,
    inet_hub_uplink_to_core: crate::engine::LinkId,
    next_internet_host: usize,
}

impl Enterprise {
    /// Builds the topology with `n_a` UAs in site A and `n_b` in site B.
    ///
    /// Applications are produced by the factory closures, which receive the
    /// UA index and its assigned address. `tap` is the inline observer for
    /// the vids mount point (use [`crate::node::PassiveTap`] for the
    /// "without vids" baseline).
    #[allow(clippy::too_many_arguments)] // topology wiring: explicit is clearer
    pub fn build(
        seed: u64,
        n_a: usize,
        n_b: usize,
        tap: Box<dyn Tap>,
        mut ua_a_app: impl FnMut(usize, Address) -> Box<dyn Application>,
        mut ua_b_app: impl FnMut(usize, Address) -> Box<dyn Application>,
        proxy_a_app: impl FnOnce(Address) -> Box<dyn Application>,
        proxy_b_app: impl FnOnce(Address) -> Box<dyn Application>,
    ) -> Enterprise {
        let mut sim = Simulator::new(seed);
        let lan = LinkSpec::lan_100base_t();
        let ds1 = LinkSpec::ds1();
        // DS1-rate cloud hop carrying the Internet's 49 ms + 1 ms access
        // propagation and the paper's 0.42 % loss: end-to-end one-way
        // propagation A->B is 50 ms before serialization.
        let cloud = LinkSpec {
            delay: SimTime::from_millis(49),
            bandwidth_bps: 1_544_000,
            loss_rate: 0.0042,
        };

        // Backbone nodes.
        let hub_a = sim.add_node(Box::new(Hub::new()));
        let router_a = sim.add_node(Box::new(Router::new()));
        let core = sim.add_node(Box::new(Router::new()));
        let router_b = sim.add_node(Box::new(Router::new()));
        let tap_node = sim.add_node(Box::new(TapNode::new(tap)));
        let hub_b = sim.add_node(Box::new(Hub::new()));
        let inet_hub = sim.add_node(Box::new(Hub::new()));

        // Backbone links.
        let (huba_ra, ra_huba) = sim.add_duplex_link(hub_a, router_a, lan);
        let (ra_core, core_ra) = sim.add_duplex_link(router_a, core, ds1);
        let (core_rb, rb_core) = sim.add_duplex_link(core, router_b, cloud);
        let (rb_tap, tap_rb) = sim.add_duplex_link(router_b, tap_node, lan);
        let (tap_hubb, hubb_tap) = sim.add_duplex_link(tap_node, hub_b, lan);
        let (core_ihub, ihub_core) = sim.add_duplex_link(core, inet_hub, lan);

        // Hosts.
        let attach =
            |sim: &mut Simulator, hub: NodeId, addr: Address, app: Box<dyn Application>| {
                let host = sim.add_node(Box::new(Host::new(addr, app)));
                let (up, down) = sim.add_duplex_link(host, hub, lan);
                sim.node_as_mut::<Host>(host).set_uplink(up);
                sim.node_as_mut::<Hub>(hub).add_port(addr.ip, down);
                host
            };

        let ua_a: Vec<NodeId> = (0..n_a)
            .map(|i| {
                let addr = ua_addr(SITE_A, i);
                attach(&mut sim, hub_a, addr, ua_a_app(i, addr))
            })
            .collect();
        let proxy_a = {
            let addr = proxy_addr(SITE_A);
            attach(&mut sim, hub_a, addr, proxy_a_app(addr))
        };
        let ua_b: Vec<NodeId> = (0..n_b)
            .map(|i| {
                let addr = ua_addr(SITE_B, i);
                attach(&mut sim, hub_b, addr, ua_b_app(i, addr))
            })
            .collect();
        let proxy_b = {
            let addr = proxy_addr(SITE_B);
            attach(&mut sim, hub_b, addr, proxy_b_app(addr))
        };

        // Routing.
        let site_a = ua_addr(SITE_A, 0).site();
        let site_b = ua_addr(SITE_B, 0).site();
        let site_inet = internet_addr(0).site();
        sim.node_as_mut::<Hub>(hub_a).set_uplink(huba_ra);
        sim.node_as_mut::<Hub>(hub_b).set_uplink(hubb_tap);
        sim.node_as_mut::<Hub>(inet_hub).set_uplink(ihub_core);
        {
            let r = sim.node_as_mut::<Router>(router_a);
            r.add_route(site_a, ra_huba);
            r.set_default_route(ra_core);
        }
        {
            let r = sim.node_as_mut::<Router>(core);
            r.add_route(site_a, core_ra);
            r.add_route(site_b, core_rb);
            r.add_route(site_inet, core_ihub);
        }
        {
            let r = sim.node_as_mut::<Router>(router_b);
            r.add_route(site_b, rb_tap);
            r.set_default_route(rb_core);
        }
        {
            let t = sim.node_as_mut::<TapNode>(tap_node);
            t.add_route(site_b, tap_hubb);
            t.set_default_route(tap_rb);
        }

        Enterprise {
            sim,
            ua_a,
            ua_b,
            proxy_a,
            proxy_b,
            tap: tap_node,
            core,
            inet_hub,
            inet_hub_uplink_to_core: ihub_core,
            next_internet_host: 0,
        }
    }

    /// Attaches a host directly to the Internet core (attackers live here).
    /// Returns the node id and the address it was assigned.
    pub fn add_internet_host(&mut self, app: Box<dyn Application>) -> (NodeId, Address) {
        let _ = self.inet_hub_uplink_to_core; // uplink fixed at build time
        let addr = internet_addr(self.next_internet_host);
        self.next_internet_host += 1;
        let lan = LinkSpec::lan_100base_t();
        let host = self.sim.add_node(Box::new(Host::new(addr, app)));
        let (up, down) = self.sim.add_duplex_link(host, self.inet_hub, lan);
        self.sim.node_as_mut::<Host>(host).set_uplink(up);
        self.sim
            .node_as_mut::<Hub>(self.inet_hub)
            .add_port(addr.ip, down);
        (host, addr)
    }

    /// The Internet core router node (topology introspection for tests).
    pub fn core(&self) -> NodeId {
        self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{AppCtx, PassiveTap};
    use crate::packet::{Packet, Payload};

    /// Minimal app: optionally sends one datagram at start, records arrivals.
    struct Probe {
        send_at_start: Option<Address>,
        received: Vec<(SimTime, Address)>,
    }

    impl Probe {
        fn silent() -> Box<dyn Application> {
            Box::new(Probe {
                send_at_start: None,
                received: Vec::new(),
            })
        }
    }

    impl Application for Probe {
        fn on_start(&mut self, ctx: &mut AppCtx<'_, '_>) {
            if let Some(dst) = self.send_at_start {
                ctx.send_to(dst, Payload::Raw(vec![0; 100]));
            }
        }

        fn on_datagram(&mut self, packet: &Packet, ctx: &mut AppCtx<'_, '_>) {
            self.received.push((ctx.now(), packet.src));
        }
    }

    fn probe_to(dst: Address) -> Box<dyn Application> {
        Box::new(Probe {
            send_at_start: Some(dst),
            received: Vec::new(),
        })
    }

    #[test]
    fn cross_site_delivery_traverses_cloud() {
        let target = ua_addr(SITE_B, 0);
        let mut ent = Enterprise::build(
            1,
            1,
            1,
            Box::new(PassiveTap),
            |_, _| probe_to(target),
            |_, _| Probe::silent(),
            |_| Probe::silent(),
            |_| Probe::silent(),
        );
        ent.sim.run_to_completion();
        let b0 = ent.sim.node_as::<Host>(ent.ua_b[0]).app_as::<Probe>();
        assert_eq!(b0.received.len(), 1);
        assert_eq!(b0.received[0].1, ua_addr(SITE_A, 0));
        // One-way must exceed the 50 ms propagation budget.
        assert!(b0.received[0].0 >= SimTime::from_millis(50));
        assert_eq!(ent.sim.counters().unroutable, 0);
    }

    #[test]
    fn intra_site_traffic_stays_local() {
        let target = proxy_addr(SITE_A);
        let mut ent = Enterprise::build(
            1,
            1,
            1,
            Box::new(PassiveTap),
            |_, _| probe_to(target),
            |_, _| Probe::silent(),
            |_| Probe::silent(),
            |_| Probe::silent(),
        );
        ent.sim.run_to_completion();
        let pa = ent.sim.node_as::<Host>(ent.proxy_a).app_as::<Probe>();
        assert_eq!(pa.received.len(), 1);
        // LAN-only path: well under a millisecond.
        assert!(pa.received[0].0 < SimTime::from_millis(1));
    }

    #[test]
    fn internet_host_reaches_site_b_through_tap() {
        let target = ua_addr(SITE_B, 0);
        let mut ent = Enterprise::build(
            1,
            1,
            1,
            Box::new(PassiveTap),
            |_, _| Probe::silent(),
            |_, _| Probe::silent(),
            |_| Probe::silent(),
            |_| Probe::silent(),
        );
        let (_attacker, addr) = ent.add_internet_host(probe_to(target));
        assert_eq!(addr, internet_addr(0));
        ent.sim.run_to_completion();
        let b0 = ent.sim.node_as::<Host>(ent.ua_b[0]).app_as::<Probe>();
        assert_eq!(b0.received.len(), 1);
        assert_eq!(b0.received[0].1, addr);
    }

    #[test]
    fn reply_path_works_backwards() {
        // B0 sends to A0 at start: exercises B -> tap -> router B -> cloud -> A.
        let target = ua_addr(SITE_A, 0);
        let mut ent = Enterprise::build(
            1,
            1,
            1,
            Box::new(PassiveTap),
            |_, _| Probe::silent(),
            |_, _| probe_to(target),
            |_| Probe::silent(),
            |_| Probe::silent(),
        );
        ent.sim.run_to_completion();
        let a0 = ent.sim.node_as::<Host>(ent.ua_a[0]).app_as::<Probe>();
        assert_eq!(a0.received.len(), 1);
    }

    #[test]
    fn address_helpers_are_consistent() {
        assert_eq!(ua_addr(SITE_A, 0).to_string(), "10.1.0.10:5060");
        assert_eq!(ua_addr(SITE_B, 3).to_string(), "10.2.0.13:5060");
        assert_eq!(proxy_addr(SITE_B).to_string(), "10.2.0.5:5060");
        assert_eq!(internet_addr(1).to_string(), "10.0.0.11:5060");
        assert_ne!(ua_addr(SITE_A, 0).site(), ua_addr(SITE_B, 0).site());
    }
}
