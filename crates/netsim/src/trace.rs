//! Packet capture at a tap point.
//!
//! [`TraceTap`] is a [`crate::node::Tap`] that records every packet
//! crossing it (optionally filtered) with zero forwarding delay — a
//! pcap-style capture for debugging scenarios and for replaying captured
//! traffic through the IDS offline.

use crate::node::Tap;
use crate::packet::{Packet, Payload};
use crate::time::SimTime;

/// One captured packet with its capture time.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedPacket {
    /// When the packet crossed the tap.
    pub at: SimTime,
    /// The packet itself.
    pub packet: Packet,
}

/// Which traffic a [`TraceTap`] keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CaptureFilter {
    /// Keep everything.
    #[default]
    All,
    /// Keep only SIP messages.
    SipOnly,
    /// Keep only RTP packets.
    RtpOnly,
    /// Keep SIP and RTP, drop raw background traffic.
    VoipOnly,
}

impl CaptureFilter {
    fn keeps(&self, payload: &Payload) -> bool {
        matches!(
            (self, payload),
            (CaptureFilter::All, _)
                | (CaptureFilter::SipOnly, Payload::Sip(_))
                | (CaptureFilter::RtpOnly, Payload::Rtp(_))
                | (CaptureFilter::VoipOnly, Payload::Sip(_) | Payload::Rtp(_))
        )
    }
}

/// A passive capture tap with a bounded buffer (oldest packets drop first
/// when the cap is hit, like a ring buffer).
#[derive(Debug, Default)]
pub struct TraceTap {
    filter: CaptureFilter,
    capacity: usize,
    captured: Vec<CapturedPacket>,
    dropped: u64,
}

impl TraceTap {
    /// Captures everything, up to `capacity` packets.
    pub fn new(capacity: usize) -> Self {
        TraceTap {
            filter: CaptureFilter::All,
            capacity,
            captured: Vec::new(),
            dropped: 0,
        }
    }

    /// Sets the capture filter, builder-style.
    #[must_use]
    pub fn with_filter(mut self, filter: CaptureFilter) -> Self {
        self.filter = filter;
        self
    }

    /// The captured packets in capture order.
    pub fn captured(&self) -> &[CapturedPacket] {
        &self.captured
    }

    /// Packets discarded due to the capacity cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders a human-readable flow summary (src -> dst, protocol, count).
    pub fn flow_summary(&self) -> Vec<(String, usize)> {
        let mut flows: Vec<(String, usize)> = Vec::new();
        for c in &self.captured {
            let key = format!(
                "{} -> {} [{}]",
                c.packet.src,
                c.packet.dst,
                c.packet.payload.protocol()
            );
            match flows.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => flows.push((key, 1)),
            }
        }
        flows.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
        flows
    }
}

impl Tap for TraceTap {
    fn observe(&mut self, packet: &Packet, now: SimTime) -> SimTime {
        if self.filter.keeps(&packet.payload) {
            if self.captured.len() >= self.capacity && !self.captured.is_empty() {
                self.captured.remove(0);
                self.dropped += 1;
            }
            if self.capacity > 0 {
                self.captured.push(CapturedPacket {
                    at: now,
                    packet: packet.clone(),
                });
            }
        }
        SimTime::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Address;

    fn pkt(payload: Payload) -> Packet {
        Packet {
            src: Address::new(10, 1, 0, 1, 5060),
            dst: Address::new(10, 2, 0, 1, 5060),
            payload,
            id: 0,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn captures_in_order_with_timestamps() {
        let mut tap = TraceTap::new(10);
        tap.observe(&pkt(Payload::Sip("a".into())), SimTime::from_millis(1));
        tap.observe(&pkt(Payload::Rtp(vec![1])), SimTime::from_millis(2));
        assert_eq!(tap.captured().len(), 2);
        assert_eq!(tap.captured()[0].at, SimTime::from_millis(1));
        assert_eq!(tap.captured()[1].packet.payload.protocol(), "RTP");
    }

    #[test]
    fn filter_selects_protocols() {
        let mut tap = TraceTap::new(10).with_filter(CaptureFilter::SipOnly);
        tap.observe(&pkt(Payload::Sip("a".into())), SimTime::ZERO);
        tap.observe(&pkt(Payload::Rtp(vec![1])), SimTime::ZERO);
        tap.observe(&pkt(Payload::Raw(vec![2])), SimTime::ZERO);
        assert_eq!(tap.captured().len(), 1);

        let mut tap = TraceTap::new(10).with_filter(CaptureFilter::VoipOnly);
        tap.observe(&pkt(Payload::Sip("a".into())), SimTime::ZERO);
        tap.observe(&pkt(Payload::Rtp(vec![1])), SimTime::ZERO);
        tap.observe(&pkt(Payload::Raw(vec![2])), SimTime::ZERO);
        assert_eq!(tap.captured().len(), 2);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut tap = TraceTap::new(2);
        for i in 0..5u64 {
            tap.observe(&pkt(Payload::Raw(vec![i as u8])), SimTime::from_millis(i));
        }
        assert_eq!(tap.captured().len(), 2);
        assert_eq!(tap.dropped(), 3);
        assert_eq!(tap.captured()[0].at, SimTime::from_millis(3));
    }

    #[test]
    fn flow_summary_groups_and_sorts() {
        let mut tap = TraceTap::new(10);
        for _ in 0..3 {
            tap.observe(&pkt(Payload::Rtp(vec![1])), SimTime::ZERO);
        }
        tap.observe(&pkt(Payload::Sip("x".into())), SimTime::ZERO);
        let flows = tap.flow_summary();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].1, 3, "busiest flow first");
        assert!(flows[0].0.contains("[RTP]"));
    }
}

/// Classic pcap (v2.4) export: fabricates Ethernet/IPv4/UDP framing around
/// each captured datagram so captures open in Wireshark/tcpdump. Link type
/// is Ethernet (1); timestamps carry microsecond precision.
pub fn to_pcap_bytes(captured: &[CapturedPacket]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + captured.len() * 128);
    // Global header.
    out.extend_from_slice(&0xA1B2_C3D4u32.to_le_bytes()); // magic
    out.extend_from_slice(&2u16.to_le_bytes()); // major
    out.extend_from_slice(&4u16.to_le_bytes()); // minor
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&1u32.to_le_bytes()); // linktype: Ethernet

    for c in captured {
        let payload: &[u8] = match &c.packet.payload {
            Payload::Sip(s) => s.as_bytes(),
            Payload::Rtp(b) | Payload::Raw(b) => b,
        };
        let udp_len = 8 + payload.len();
        let ip_len = 20 + udp_len;
        let frame_len = 14 + ip_len;

        // Record header.
        let ts = c.at.as_nanos();
        out.extend_from_slice(&((ts / 1_000_000_000) as u32).to_le_bytes());
        out.extend_from_slice(&(((ts % 1_000_000_000) / 1_000) as u32).to_le_bytes());
        out.extend_from_slice(&(frame_len as u32).to_le_bytes());
        out.extend_from_slice(&(frame_len as u32).to_le_bytes());

        // Ethernet: synthetic MACs derived from the IPs, EtherType IPv4.
        let dst_ip = c.packet.dst.ip.to_be_bytes();
        let src_ip = c.packet.src.ip.to_be_bytes();
        out.extend_from_slice(&[0x02, 0x00, dst_ip[0], dst_ip[1], dst_ip[2], dst_ip[3]]);
        out.extend_from_slice(&[0x02, 0x00, src_ip[0], src_ip[1], src_ip[2], src_ip[3]]);
        out.extend_from_slice(&0x0800u16.to_be_bytes());

        // IPv4 header (no options, checksum computed).
        let mut ip = [0u8; 20];
        ip[0] = 0x45; // version 4, IHL 5
        ip[2..4].copy_from_slice(&(ip_len as u16).to_be_bytes());
        ip[8] = 64; // TTL
        ip[9] = 17; // UDP
        ip[12..16].copy_from_slice(&src_ip);
        ip[16..20].copy_from_slice(&dst_ip);
        let checksum = ipv4_checksum(&ip);
        ip[10..12].copy_from_slice(&checksum.to_be_bytes());
        out.extend_from_slice(&ip);

        // UDP header (checksum 0 = unused, legal for IPv4).
        out.extend_from_slice(&c.packet.src.port.to_be_bytes());
        out.extend_from_slice(&c.packet.dst.port.to_be_bytes());
        out.extend_from_slice(&(udp_len as u16).to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes());
        out.extend_from_slice(payload);
    }
    out
}

fn ipv4_checksum(header: &[u8; 20]) -> u16 {
    let mut sum = 0u32;
    for chunk in header.chunks_exact(2) {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod pcap_tests {
    use super::*;
    use crate::packet::{Address, Packet};

    fn captured(payload: Payload, at_ms: u64) -> CapturedPacket {
        CapturedPacket {
            at: SimTime::from_millis(at_ms),
            packet: Packet {
                src: Address::new(10, 1, 0, 10, 5060),
                dst: Address::new(10, 2, 0, 10, 5060),
                payload,
                id: 0,
                sent_at: SimTime::ZERO,
            },
        }
    }

    #[test]
    fn pcap_global_header_is_valid() {
        let bytes = to_pcap_bytes(&[]);
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[0..4], &0xA1B2_C3D4u32.to_le_bytes());
        assert_eq!(
            u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]),
            1
        );
    }

    #[test]
    fn record_framing_and_lengths() {
        let cap = [captured(Payload::Rtp(vec![0xAB; 22]), 1_500)];
        let bytes = to_pcap_bytes(&cap);
        // 24 global + 16 record header + 14 eth + 20 ip + 8 udp + 22 payload
        assert_eq!(bytes.len(), 24 + 16 + 14 + 20 + 8 + 22);
        // Timestamp: 1.5 s.
        assert_eq!(
            u32::from_le_bytes([bytes[24], bytes[25], bytes[26], bytes[27]]),
            1
        );
        assert_eq!(
            u32::from_le_bytes([bytes[28], bytes[29], bytes[30], bytes[31]]),
            500_000
        );
        // incl_len == orig_len == 64.
        assert_eq!(
            u32::from_le_bytes([bytes[32], bytes[33], bytes[34], bytes[35]]),
            64
        );
        // EtherType IPv4 at offset 24+16+12.
        assert_eq!(&bytes[52..54], &[0x08, 0x00]);
        // Protocol UDP in the IP header.
        assert_eq!(bytes[24 + 16 + 14 + 9], 17);
        // UDP ports.
        let udp = 24 + 16 + 14 + 20;
        assert_eq!(u16::from_be_bytes([bytes[udp], bytes[udp + 1]]), 5060);
    }

    #[test]
    fn ip_checksum_validates() {
        let cap = [captured(
            Payload::Sip("OPTIONS sip:h SIP/2.0\r\n\r\n".into()),
            10,
        )];
        let bytes = to_pcap_bytes(&cap);
        let ip_start = 24 + 16 + 14;
        let mut header = [0u8; 20];
        header.copy_from_slice(&bytes[ip_start..ip_start + 20]);
        // Re-summing a valid header including its checksum yields 0xFFFF.
        let mut sum = 0u32;
        for chunk in header.chunks_exact(2) {
            sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        assert_eq!(sum as u16, 0xFFFF);
    }
}
