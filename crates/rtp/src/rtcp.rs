//! Minimal RTCP sender/receiver reports (RFC 3550 §6.4).
//!
//! The simulated media sessions emit periodic reports so the evaluation can
//! collect per-stream delay/jitter/loss without instrumenting the data path.
//! Only the statistics payload is modeled (no binary wire format): RTCP
//! never reaches the vids classifier in the paper's experiments.

use std::fmt;

/// Receiver-side statistics for one RTP stream, as carried in an RTCP
/// receiver report block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceptionReport {
    /// SSRC of the reported stream.
    pub ssrc: u32,
    /// Fraction of packets lost since the previous report, `0.0..=1.0`.
    pub fraction_lost: f64,
    /// Cumulative packets lost since the beginning of reception.
    pub cumulative_lost: u64,
    /// Extended highest sequence number received.
    pub highest_seq: u32,
    /// Interarrival jitter in seconds.
    pub jitter_secs: f64,
}

impl fmt::Display for ReceptionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RR ssrc={:#010x} lost={:.2}% cum={} hseq={} jitter={:.6}s",
            self.ssrc,
            self.fraction_lost * 100.0,
            self.cumulative_lost,
            self.highest_seq,
            self.jitter_secs
        )
    }
}

/// Accumulates reception statistics and produces [`ReceptionReport`]s.
#[derive(Debug, Clone, Default)]
pub struct ReceptionTracker {
    ssrc: u32,
    expected_base: Option<u32>,
    received_total: u64,
    received_at_last_report: u64,
    expected_at_last_report: u64,
    highest: crate::seq::ExtendedSeq,
}

impl ReceptionTracker {
    /// Creates a tracker for the given stream SSRC.
    pub fn new(ssrc: u32) -> Self {
        ReceptionTracker {
            ssrc,
            ..ReceptionTracker::default()
        }
    }

    /// Records one received packet by sequence number.
    pub fn on_packet(&mut self, seq: u16) {
        let ext = self.highest.update(seq);
        if self.expected_base.is_none() {
            self.expected_base = Some(ext);
        }
        self.received_total += 1;
    }

    /// Total packets expected so far: extended highest − base + 1.
    pub fn expected(&self) -> u64 {
        match self.expected_base {
            Some(base) => (self.highest.highest().wrapping_sub(base) as u64) + 1,
            None => 0,
        }
    }

    /// Cumulative packets lost (never negative: duplicates clamp to zero).
    pub fn cumulative_lost(&self) -> u64 {
        self.expected().saturating_sub(self.received_total)
    }

    /// Produces a report and resets the per-interval counters.
    pub fn report(&mut self, jitter_secs: f64) -> ReceptionReport {
        let expected = self.expected();
        let expected_interval = expected - self.expected_at_last_report;
        let received_interval = self.received_total - self.received_at_last_report;
        let fraction_lost = if expected_interval == 0 {
            0.0
        } else {
            (expected_interval.saturating_sub(received_interval)) as f64 / expected_interval as f64
        };
        self.expected_at_last_report = expected;
        self.received_at_last_report = self.received_total;
        ReceptionReport {
            ssrc: self.ssrc,
            fraction_lost,
            cumulative_lost: self.cumulative_lost(),
            highest_seq: self.highest.highest(),
            jitter_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_stream() {
        let mut t = ReceptionTracker::new(7);
        for seq in 0..100u16 {
            t.on_packet(seq);
        }
        assert_eq!(t.expected(), 100);
        assert_eq!(t.cumulative_lost(), 0);
        let rr = t.report(0.001);
        assert_eq!(rr.fraction_lost, 0.0);
        assert_eq!(rr.highest_seq, 99);
        assert_eq!(rr.jitter_secs, 0.001);
    }

    #[test]
    fn detects_gaps_as_loss() {
        let mut t = ReceptionTracker::new(7);
        for seq in [0u16, 1, 2, 5, 6, 9] {
            t.on_packet(seq);
        }
        assert_eq!(t.expected(), 10);
        assert_eq!(t.cumulative_lost(), 4);
        let rr = t.report(0.0);
        assert!((rr.fraction_lost - 0.4).abs() < 1e-9);
    }

    #[test]
    fn interval_fraction_resets() {
        let mut t = ReceptionTracker::new(7);
        for seq in 0..10u16 {
            t.on_packet(seq);
        }
        let _first = t.report(0.0);
        // Second interval: lose half.
        for seq in [10u16, 12, 14, 16, 18, 19] {
            t.on_packet(seq);
        }
        let rr = t.report(0.0);
        // Expected in interval: 10 (seq 10..=19); received 6.
        assert!((rr.fraction_lost - 0.4).abs() < 1e-9);
    }

    #[test]
    fn starts_mid_stream() {
        let mut t = ReceptionTracker::new(7);
        t.on_packet(5_000);
        t.on_packet(5_001);
        assert_eq!(t.expected(), 2);
        assert_eq!(t.cumulative_lost(), 0);
    }
}
