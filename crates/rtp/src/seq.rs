//! Sequence-number arithmetic (RFC 3550 §A.1).
//!
//! RTP sequence numbers are 16 bits and wrap; the media-spamming detector
//! (paper Fig. 6) compares "the sequence number of the incoming packet" with
//! the last stored one, so the comparison must be wraparound-safe.

/// Returns true when `a` is strictly newer than `b` in 16-bit serial-number
/// arithmetic (RFC 1982-style, half-window rule).
pub fn seq_greater(a: u16, b: u16) -> bool {
    a != b && a.wrapping_sub(b) < 0x8000
}

/// Signed forward distance from `b` to `a`: positive when `a` is newer.
/// `seq_distance(5, 3) == 2`, `seq_distance(2, 65534) == 4`.
pub fn seq_distance(a: u16, b: u16) -> i32 {
    let diff = a.wrapping_sub(b);
    if diff < 0x8000 {
        diff as i32
    } else {
        -((b.wrapping_sub(a)) as i32)
    }
}

/// Extended (32-bit) sequence-number tracker per RFC 3550 §A.1: counts
/// wraparound cycles so long streams keep a monotone sequence space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtendedSeq {
    cycles: u32,
    last: u16,
    initialized: bool,
}

impl ExtendedSeq {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        ExtendedSeq::default()
    }

    /// Feeds the next observed sequence number and returns its extended
    /// 32-bit value.
    ///
    /// Late (reordered) packets are mapped into the cycle they were *sent*
    /// in, not the current one: when a packet straddles the most recent
    /// wrap — raw value numerically above the high-water mark yet older in
    /// serial-number order, e.g. `seq = 65534` arriving after the stream
    /// wrapped to `last = 2` — its extension uses the previous cycle count
    /// (RFC 3550 §A.1), so extended-sequence gaps stay small across a wrap.
    pub fn update(&mut self, seq: u16) -> u32 {
        if !self.initialized {
            self.initialized = true;
            self.last = seq;
            return seq as u32;
        }
        if seq_greater(seq, self.last) {
            if seq < self.last {
                // Forward movement that wrapped through zero.
                self.cycles = self.cycles.wrapping_add(1);
            }
            self.last = seq;
            (self.cycles << 16) | seq as u32
        } else {
            // Late or duplicate packet. A raw value above the high-water
            // mark belongs to the cycle before the wrap the stream just
            // crossed.
            let cycle = if seq > self.last {
                self.cycles.wrapping_sub(1)
            } else {
                self.cycles
            };
            (cycle << 16) | seq as u32
        }
    }

    /// The highest extended sequence number seen so far.
    pub fn highest(&self) -> u32 {
        (self.cycles << 16) | self.last as u32
    }

    /// Whether any packet has been observed.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greater_simple() {
        assert!(seq_greater(5, 3));
        assert!(!seq_greater(3, 5));
        assert!(!seq_greater(7, 7));
    }

    #[test]
    fn greater_across_wrap() {
        assert!(seq_greater(2, 65_534));
        assert!(!seq_greater(65_534, 2));
    }

    #[test]
    fn distance_simple_and_wrapped() {
        assert_eq!(seq_distance(5, 3), 2);
        assert_eq!(seq_distance(3, 5), -2);
        assert_eq!(seq_distance(2, 65_534), 4);
        assert_eq!(seq_distance(65_534, 2), -4);
        assert_eq!(seq_distance(9, 9), 0);
    }

    #[test]
    fn extended_counts_cycles() {
        let mut ext = ExtendedSeq::new();
        assert_eq!(ext.update(65_533), 65_533);
        assert_eq!(ext.update(65_535), 65_535);
        // Wrap: 65535 -> 1
        assert_eq!(ext.update(1), 0x1_0001);
        assert_eq!(ext.highest(), 0x1_0001);
    }

    #[test]
    fn extended_ignores_reordered_old_packets() {
        let mut ext = ExtendedSeq::new();
        ext.update(100);
        ext.update(102);
        // Late arrival of 101 must not move the high-water mark.
        ext.update(101);
        assert_eq!(ext.highest(), 102);
    }

    /// Regression (ISSUE 5): a late packet that straddles the wrap must be
    /// extended with the *previous* cycle count. Before the fix,
    /// `last = 2, cycles = 1` with a late `seq = 65534` returned `0x1FFFE`
    /// (a forward gap of 131068 from the high-water mark) instead of
    /// cycle-0's `0xFFFE` (a 4-packet reorder).
    #[test]
    fn extended_late_packet_straddling_a_wrap_uses_previous_cycle() {
        let mut ext = ExtendedSeq::new();
        ext.update(65_000);
        ext.update(65_534);
        ext.update(65_535);
        assert_eq!(ext.update(2), 0x1_0002); // wraps into cycle 1
                                             // 65534 retransmitted/reordered: still cycle 0.
        assert_eq!(ext.update(65_534), 0xFFFE);
        // The high-water mark is untouched by the straggler.
        assert_eq!(ext.highest(), 0x1_0002);
        // A late-but-same-cycle packet keeps the current cycle.
        assert_eq!(ext.update(1), 0x1_0001);
    }

    #[test]
    fn extended_duplicate_of_the_high_water_mark_keeps_its_cycle() {
        let mut ext = ExtendedSeq::new();
        ext.update(65_535);
        assert_eq!(ext.update(0), 0x1_0000);
        assert_eq!(ext.update(0), 0x1_0000); // duplicate, not previous cycle
    }

    #[test]
    fn extended_survives_multiple_wraps() {
        let mut ext = ExtendedSeq::new();
        ext.update(0);
        for cycle in 0..3u32 {
            // Walk forward in half-window-safe steps, then wrap past zero.
            ext.update(30_000);
            ext.update(60_000);
            let v = ext.update(10); // 60000 -> 10 wraps through zero
            assert_eq!(v >> 16, cycle + 1);
        }
    }
}
