//! RTCP wire format (RFC 3550 §6.4): sender reports (SR, packet type 200)
//! and receiver reports (RR, packet type 201), with report blocks.
//!
//! The vids monitor itself does not consume RTCP (the paper's detection is
//! driven by SIP and RTP data packets), but a complete media stack needs
//! the format: downstream users can emit/ingest reports, and the testbed's
//! statistics structures ([`crate::rtcp`]) convert into wire report blocks.

use std::fmt;

/// RTP protocol version (shared with data packets).
const VERSION: u8 = 2;
/// RTCP packet type: sender report.
pub const PT_SENDER_REPORT: u8 = 200;
/// RTCP packet type: receiver report.
pub const PT_RECEIVER_REPORT: u8 = 201;

/// One report block (RFC 3550 §6.4.1), 24 bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReportBlock {
    /// SSRC of the source this block reports on.
    pub ssrc: u32,
    /// Fraction of packets lost since the last report, as a fixed-point
    /// 8-bit value (fraction × 256).
    pub fraction_lost: u8,
    /// Cumulative packets lost (24-bit signed on the wire; clamped here).
    pub cumulative_lost: u32,
    /// Extended highest sequence number received.
    pub highest_seq: u32,
    /// Interarrival jitter in timestamp units.
    pub jitter: u32,
    /// Middle 32 bits of the last SR's NTP timestamp.
    pub last_sr: u32,
    /// Delay since that SR, in 1/65536 s units.
    pub delay_since_last_sr: u32,
}

impl ReportBlock {
    /// Builds a block from the statistics tracker's report, converting
    /// seconds-domain values into wire units for `clock_rate` Hz media.
    pub fn from_report(r: &crate::rtcp::ReceptionReport, clock_rate: u32) -> ReportBlock {
        ReportBlock {
            ssrc: r.ssrc,
            fraction_lost: (r.fraction_lost.clamp(0.0, 1.0) * 256.0).min(255.0) as u8,
            cumulative_lost: r.cumulative_lost.min(0x7F_FFFF) as u32,
            highest_seq: r.highest_seq,
            jitter: (r.jitter_secs * clock_rate as f64).max(0.0) as u32,
            last_sr: 0,
            delay_since_last_sr: 0,
        }
    }

    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ssrc.to_be_bytes());
        out.push(self.fraction_lost);
        let lost = self.cumulative_lost.min(0xFF_FFFF);
        out.extend_from_slice(&lost.to_be_bytes()[1..4]);
        out.extend_from_slice(&self.highest_seq.to_be_bytes());
        out.extend_from_slice(&self.jitter.to_be_bytes());
        out.extend_from_slice(&self.last_sr.to_be_bytes());
        out.extend_from_slice(&self.delay_since_last_sr.to_be_bytes());
    }

    fn read(bytes: &[u8]) -> ReportBlock {
        ReportBlock {
            ssrc: be32(&bytes[0..4]),
            fraction_lost: bytes[4],
            cumulative_lost: u32::from_be_bytes([0, bytes[5], bytes[6], bytes[7]]),
            highest_seq: be32(&bytes[8..12]),
            jitter: be32(&bytes[12..16]),
            last_sr: be32(&bytes[16..20]),
            delay_since_last_sr: be32(&bytes[20..24]),
        }
    }
}

fn be32(b: &[u8]) -> u32 {
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

/// An RTCP packet: sender report or receiver report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtcpPacket {
    /// SR: sender info plus reception blocks.
    SenderReport {
        /// Sender's SSRC.
        ssrc: u32,
        /// 64-bit NTP timestamp of this report.
        ntp_timestamp: u64,
        /// RTP timestamp corresponding to the NTP time.
        rtp_timestamp: u32,
        /// Packets sent since stream start.
        packet_count: u32,
        /// Payload octets sent since stream start.
        octet_count: u32,
        /// Reception quality of remote streams.
        reports: Vec<ReportBlock>,
    },
    /// RR: reception blocks only.
    ReceiverReport {
        /// Reporter's SSRC.
        ssrc: u32,
        /// Reception quality of remote streams.
        reports: Vec<ReportBlock>,
    },
}

impl RtcpPacket {
    /// The report blocks of either variant.
    pub fn reports(&self) -> &[ReportBlock] {
        match self {
            RtcpPacket::SenderReport { reports, .. } => reports,
            RtcpPacket::ReceiverReport { reports, .. } => reports,
        }
    }

    /// The originating SSRC of either variant.
    pub fn ssrc(&self) -> u32 {
        match self {
            RtcpPacket::SenderReport { ssrc, .. } | RtcpPacket::ReceiverReport { ssrc, .. } => {
                *ssrc
            }
        }
    }

    /// Serializes to wire format (header + body, length in 32-bit words).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        let (pt, count) = match self {
            RtcpPacket::SenderReport {
                ssrc,
                ntp_timestamp,
                rtp_timestamp,
                packet_count,
                octet_count,
                reports,
            } => {
                body.extend_from_slice(&ssrc.to_be_bytes());
                body.extend_from_slice(&ntp_timestamp.to_be_bytes());
                body.extend_from_slice(&rtp_timestamp.to_be_bytes());
                body.extend_from_slice(&packet_count.to_be_bytes());
                body.extend_from_slice(&octet_count.to_be_bytes());
                for r in reports {
                    r.write(&mut body);
                }
                (PT_SENDER_REPORT, reports.len())
            }
            RtcpPacket::ReceiverReport { ssrc, reports } => {
                body.extend_from_slice(&ssrc.to_be_bytes());
                for r in reports {
                    r.write(&mut body);
                }
                (PT_RECEIVER_REPORT, reports.len())
            }
        };
        let words = body.len() / 4; // length field excludes this header word
        let mut out = Vec::with_capacity(4 + body.len());
        out.push((VERSION << 6) | (count as u8 & 0x1f));
        out.push(pt);
        out.extend_from_slice(&(words as u16).to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parses one RTCP packet from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRtcpError`] on short input, wrong version, unknown
    /// packet type, or a length field inconsistent with the block count.
    pub fn parse(bytes: &[u8]) -> Result<RtcpPacket, ParseRtcpError> {
        if bytes.len() < 8 {
            return Err(ParseRtcpError::TooShort { len: bytes.len() });
        }
        if bytes[0] >> 6 != VERSION {
            return Err(ParseRtcpError::BadVersion {
                version: bytes[0] >> 6,
            });
        }
        let count = (bytes[0] & 0x1f) as usize;
        let pt = bytes[1];
        let words = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        let declared_len = 4 + words * 4;
        if bytes.len() < declared_len {
            return Err(ParseRtcpError::TooShort { len: bytes.len() });
        }
        let body = &bytes[4..declared_len];
        match pt {
            PT_SENDER_REPORT => {
                let need = 24 + count * 24;
                if body.len() < need {
                    return Err(ParseRtcpError::LengthMismatch);
                }
                let reports = (0..count)
                    .map(|i| ReportBlock::read(&body[24 + i * 24..24 + (i + 1) * 24]))
                    .collect();
                Ok(RtcpPacket::SenderReport {
                    ssrc: be32(&body[0..4]),
                    ntp_timestamp: u64::from_be_bytes([
                        body[4], body[5], body[6], body[7], body[8], body[9], body[10], body[11],
                    ]),
                    rtp_timestamp: be32(&body[12..16]),
                    packet_count: be32(&body[16..20]),
                    octet_count: be32(&body[20..24]),
                    reports,
                })
            }
            PT_RECEIVER_REPORT => {
                let need = 4 + count * 24;
                if body.len() < need {
                    return Err(ParseRtcpError::LengthMismatch);
                }
                let reports = (0..count)
                    .map(|i| ReportBlock::read(&body[4 + i * 24..4 + (i + 1) * 24]))
                    .collect();
                Ok(RtcpPacket::ReceiverReport {
                    ssrc: be32(&body[0..4]),
                    reports,
                })
            }
            other => Err(ParseRtcpError::UnknownType { packet_type: other }),
        }
    }
}

/// Error returned by [`RtcpPacket::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseRtcpError {
    /// Input shorter than the declared or minimum length.
    TooShort {
        /// Available bytes.
        len: usize,
    },
    /// Version field was not 2.
    BadVersion {
        /// Observed version.
        version: u8,
    },
    /// The length field disagrees with the block count.
    LengthMismatch,
    /// Not an SR/RR packet.
    UnknownType {
        /// Observed packet type.
        packet_type: u8,
    },
}

impl fmt::Display for ParseRtcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseRtcpError::TooShort { len } => write!(f, "RTCP packet too short: {len} bytes"),
            ParseRtcpError::BadVersion { version } => {
                write!(f, "unsupported RTCP version {version}")
            }
            ParseRtcpError::LengthMismatch => f.write_str("RTCP length field mismatch"),
            ParseRtcpError::UnknownType { packet_type } => {
                write!(f, "unsupported RTCP packet type {packet_type}")
            }
        }
    }
}

impl std::error::Error for ParseRtcpError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(ssrc: u32) -> ReportBlock {
        ReportBlock {
            ssrc,
            fraction_lost: 12,
            cumulative_lost: 345,
            highest_seq: 0x0001_F00D,
            jitter: 42,
            last_sr: 7,
            delay_since_last_sr: 9,
        }
    }

    #[test]
    fn sender_report_round_trips() {
        let sr = RtcpPacket::SenderReport {
            ssrc: 0xAABBCCDD,
            ntp_timestamp: 0x0123_4567_89AB_CDEF,
            rtp_timestamp: 8_000,
            packet_count: 1_000,
            octet_count: 10_000,
            reports: vec![block(1), block(2)],
        };
        let bytes = sr.to_bytes();
        assert_eq!(bytes.len(), 4 + 24 + 48);
        assert_eq!(RtcpPacket::parse(&bytes).unwrap(), sr);
    }

    #[test]
    fn receiver_report_round_trips() {
        let rr = RtcpPacket::ReceiverReport {
            ssrc: 9,
            reports: vec![block(1)],
        };
        let parsed = RtcpPacket::parse(&rr.to_bytes()).unwrap();
        assert_eq!(parsed, rr);
        assert_eq!(parsed.reports().len(), 1);
        assert_eq!(parsed.ssrc(), 9);
    }

    #[test]
    fn empty_receiver_report() {
        let rr = RtcpPacket::ReceiverReport {
            ssrc: 1,
            reports: vec![],
        };
        assert_eq!(RtcpPacket::parse(&rr.to_bytes()).unwrap(), rr);
    }

    #[test]
    fn header_layout() {
        let rr = RtcpPacket::ReceiverReport {
            ssrc: 0x01020304,
            reports: vec![block(5)],
        };
        let bytes = rr.to_bytes();
        assert_eq!(bytes[0], 0x81); // version 2, count 1
        assert_eq!(bytes[1], PT_RECEIVER_REPORT);
        // length = (4 + 24) / 4 = 7 words
        assert_eq!(u16::from_be_bytes([bytes[2], bytes[3]]), 7);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            RtcpPacket::parse(&[0x80, 200, 0, 1]),
            Err(ParseRtcpError::TooShort { .. })
        ));
        let mut bytes = RtcpPacket::ReceiverReport {
            ssrc: 1,
            reports: vec![],
        }
        .to_bytes();
        bytes[0] = 0x41; // version 1
        assert!(matches!(
            RtcpPacket::parse(&bytes),
            Err(ParseRtcpError::BadVersion { .. })
        ));
        let mut bytes = RtcpPacket::ReceiverReport {
            ssrc: 1,
            reports: vec![],
        }
        .to_bytes();
        bytes[1] = 204; // APP packet
        assert!(matches!(
            RtcpPacket::parse(&bytes),
            Err(ParseRtcpError::UnknownType { packet_type: 204 })
        ));
        // Claim 2 blocks but provide none.
        let mut bytes = RtcpPacket::ReceiverReport {
            ssrc: 1,
            reports: vec![],
        }
        .to_bytes();
        bytes[0] = 0x82;
        assert!(matches!(
            RtcpPacket::parse(&bytes),
            Err(ParseRtcpError::LengthMismatch)
        ));
    }

    #[test]
    fn block_from_stats_report() {
        let stats = crate::rtcp::ReceptionReport {
            ssrc: 77,
            fraction_lost: 0.5,
            cumulative_lost: 100,
            highest_seq: 5_000,
            jitter_secs: 0.002,
        };
        let b = ReportBlock::from_report(&stats, 8_000);
        assert_eq!(b.ssrc, 77);
        assert_eq!(b.fraction_lost, 128);
        assert_eq!(b.cumulative_lost, 100);
        assert_eq!(b.jitter, 16); // 2 ms at 8 kHz
    }

    #[test]
    fn cumulative_lost_saturates_at_24_bits() {
        let mut b = block(1);
        b.cumulative_lost = u32::MAX;
        let rr = RtcpPacket::ReceiverReport {
            ssrc: 1,
            reports: vec![b],
        };
        let parsed = RtcpPacket::parse(&rr.to_bytes()).unwrap();
        assert_eq!(parsed.reports()[0].cumulative_lost, 0xFF_FFFF);
    }
}
