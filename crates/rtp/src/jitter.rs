//! Interarrival jitter estimation (RFC 3550 §6.4.1).
//!
//! Figure 10 of the paper reports the "average delay variation" of RTP
//! streams with and without vids inline. This module implements the standard
//! RTP jitter estimator: for packets *i* and *j*,
//! `D(i,j) = (Rj − Ri) − (Sj − Si)` in timestamp units, and the running
//! estimate `J += (|D| − J) / 16`.

/// Running interarrival-jitter estimator for one RTP stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct JitterEstimator {
    clock_rate: u32,
    last_arrival_ticks: f64,
    last_timestamp: u32,
    jitter_ticks: f64,
    initialized: bool,
    samples: u64,
}

impl JitterEstimator {
    /// Creates an estimator for a stream with the given RTP clock rate (Hz).
    ///
    /// # Panics
    ///
    /// Panics if `clock_rate` is zero.
    pub fn new(clock_rate: u32) -> Self {
        assert!(clock_rate > 0, "clock rate must be positive");
        JitterEstimator {
            clock_rate,
            ..JitterEstimator::default()
        }
    }

    /// Feeds one packet: wall-clock arrival time in seconds and the packet's
    /// RTP timestamp. Returns the updated jitter estimate in seconds.
    pub fn on_packet(&mut self, arrival_secs: f64, rtp_timestamp: u32) -> f64 {
        let arrival_ticks = arrival_secs * self.clock_rate as f64;
        if self.initialized {
            // The timestamp delta is interpreted as a *signed* 32-bit value:
            // a reordered packet (older timestamp) must contribute a small
            // negative delta, not the ~2³²-tick positive one the unsigned
            // wrapping difference would give — which poisoned the estimate
            // for dozens of samples after a single reorder. In-order wraps
            // still come out small and positive.
            let ts_delta = rtp_timestamp.wrapping_sub(self.last_timestamp) as i32;
            let transit_delta = (arrival_ticks - self.last_arrival_ticks) - ts_delta as f64;
            let d = transit_delta.abs();
            self.jitter_ticks += (d - self.jitter_ticks) / 16.0;
        } else {
            self.initialized = true;
        }
        self.last_arrival_ticks = arrival_ticks;
        self.last_timestamp = rtp_timestamp;
        self.samples += 1;
        self.jitter_secs()
    }

    /// The current jitter estimate in seconds.
    pub fn jitter_secs(&self) -> f64 {
        self.jitter_ticks / self.clock_rate as f64
    }

    /// The current jitter estimate in RTP timestamp ticks (as RTCP reports).
    pub fn jitter_ticks(&self) -> f64 {
        self.jitter_ticks
    }

    /// How many packets have been observed.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Perfectly periodic arrivals produce zero jitter.
    #[test]
    fn zero_for_periodic_stream() {
        let mut j = JitterEstimator::new(8_000);
        let mut ts = 0u32;
        for i in 0..100 {
            j.on_packet(i as f64 * 0.010, ts);
            ts = ts.wrapping_add(80); // 10 ms of 8 kHz ticks
        }
        assert!(j.jitter_secs() < 1e-12, "jitter = {}", j.jitter_secs());
        assert_eq!(j.samples(), 100);
    }

    /// A constant network delay shift also produces zero jitter (only
    /// variation matters).
    #[test]
    fn constant_delay_is_invisible() {
        let mut j = JitterEstimator::new(8_000);
        let mut ts = 0u32;
        for i in 0..100 {
            j.on_packet(0.050 + i as f64 * 0.010, ts);
            ts = ts.wrapping_add(80);
        }
        assert!(j.jitter_secs() < 1e-12);
    }

    /// Alternating early/late arrivals converge toward the mean deviation.
    #[test]
    fn converges_for_alternating_jitter() {
        let mut j = JitterEstimator::new(8_000);
        let mut ts = 0u32;
        for i in 0..2_000 {
            let wobble = if i % 2 == 0 { 0.002 } else { 0.0 };
            j.on_packet(i as f64 * 0.010 + wobble, ts);
            ts = ts.wrapping_add(80);
        }
        // Every interarrival deviates by 2 ms from nominal, so J -> ~2 ms.
        let jit = j.jitter_secs();
        assert!((0.0015..0.0025).contains(&jit), "jitter = {jit}");
    }

    /// Timestamp wraparound must not spike the estimate.
    #[test]
    fn survives_timestamp_wrap() {
        let mut j = JitterEstimator::new(8_000);
        let mut ts = u32::MAX - 200;
        for i in 0..100 {
            j.on_packet(i as f64 * 0.010, ts);
            ts = ts.wrapping_add(80);
        }
        assert!(j.jitter_secs() < 1e-9, "jitter = {}", j.jitter_secs());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_rate_panics() {
        let _ = JitterEstimator::new(0);
    }

    /// Regression (ISSUE 5): one reordered packet must not blow up the
    /// estimate. Before the signed-delta fix, the swapped pair below put a
    /// ~2³²-tick |D| into the filter — minutes of apparent jitter decaying
    /// over dozens of samples. With it, a swap is just two small deviations.
    #[test]
    fn single_reorder_stays_small() {
        let mut j = JitterEstimator::new(8_000);
        for i in 0..200u32 {
            // Swap packets 50 and 51: packet 51's (older) timestamp arrives
            // after packet 50's, at the later wall-clock slot.
            let logical = match i {
                50 => 51,
                51 => 50,
                _ => i,
            };
            j.on_packet(i as f64 * 0.010, logical.wrapping_mul(80));
        }
        // Two deviations of one 10 ms interval each, then decay: well under
        // 10 ms at all times, nowhere near the 2³²-tick spike.
        assert!(j.jitter_secs() < 0.010, "jitter = {}", j.jitter_secs());
    }

    /// A reorder right on the timestamp wrap behaves like any other reorder.
    #[test]
    fn reorder_across_timestamp_wrap_stays_small() {
        let mut j = JitterEstimator::new(8_000);
        let base = u32::MAX - 400;
        for i in 0..100u32 {
            let logical = match i {
                5 => 6,
                6 => 5,
                _ => i,
            };
            j.on_packet(
                i as f64 * 0.010,
                base.wrapping_add(logical.wrapping_mul(80)),
            );
        }
        assert!(j.jitter_secs() < 0.010, "jitter = {}", j.jitter_secs());
    }
}
