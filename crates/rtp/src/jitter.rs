//! Interarrival jitter estimation (RFC 3550 §6.4.1).
//!
//! Figure 10 of the paper reports the "average delay variation" of RTP
//! streams with and without vids inline. This module implements the standard
//! RTP jitter estimator: for packets *i* and *j*,
//! `D(i,j) = (Rj − Ri) − (Sj − Si)` in timestamp units, and the running
//! estimate `J += (|D| − J) / 16`.

/// Running interarrival-jitter estimator for one RTP stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct JitterEstimator {
    clock_rate: u32,
    last_arrival_ticks: f64,
    last_timestamp: u32,
    jitter_ticks: f64,
    initialized: bool,
    samples: u64,
}

impl JitterEstimator {
    /// Creates an estimator for a stream with the given RTP clock rate (Hz).
    ///
    /// # Panics
    ///
    /// Panics if `clock_rate` is zero.
    pub fn new(clock_rate: u32) -> Self {
        assert!(clock_rate > 0, "clock rate must be positive");
        JitterEstimator {
            clock_rate,
            ..JitterEstimator::default()
        }
    }

    /// Feeds one packet: wall-clock arrival time in seconds and the packet's
    /// RTP timestamp. Returns the updated jitter estimate in seconds.
    pub fn on_packet(&mut self, arrival_secs: f64, rtp_timestamp: u32) -> f64 {
        let arrival_ticks = arrival_secs * self.clock_rate as f64;
        if self.initialized {
            let transit_delta = (arrival_ticks - self.last_arrival_ticks)
                - (rtp_timestamp.wrapping_sub(self.last_timestamp) as f64);
            let d = transit_delta.abs();
            self.jitter_ticks += (d - self.jitter_ticks) / 16.0;
        } else {
            self.initialized = true;
        }
        self.last_arrival_ticks = arrival_ticks;
        self.last_timestamp = rtp_timestamp;
        self.samples += 1;
        self.jitter_secs()
    }

    /// The current jitter estimate in seconds.
    pub fn jitter_secs(&self) -> f64 {
        self.jitter_ticks / self.clock_rate as f64
    }

    /// The current jitter estimate in RTP timestamp ticks (as RTCP reports).
    pub fn jitter_ticks(&self) -> f64 {
        self.jitter_ticks
    }

    /// How many packets have been observed.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Perfectly periodic arrivals produce zero jitter.
    #[test]
    fn zero_for_periodic_stream() {
        let mut j = JitterEstimator::new(8_000);
        let mut ts = 0u32;
        for i in 0..100 {
            j.on_packet(i as f64 * 0.010, ts);
            ts = ts.wrapping_add(80); // 10 ms of 8 kHz ticks
        }
        assert!(j.jitter_secs() < 1e-12, "jitter = {}", j.jitter_secs());
        assert_eq!(j.samples(), 100);
    }

    /// A constant network delay shift also produces zero jitter (only
    /// variation matters).
    #[test]
    fn constant_delay_is_invisible() {
        let mut j = JitterEstimator::new(8_000);
        let mut ts = 0u32;
        for i in 0..100 {
            j.on_packet(0.050 + i as f64 * 0.010, ts);
            ts = ts.wrapping_add(80);
        }
        assert!(j.jitter_secs() < 1e-12);
    }

    /// Alternating early/late arrivals converge toward the mean deviation.
    #[test]
    fn converges_for_alternating_jitter() {
        let mut j = JitterEstimator::new(8_000);
        let mut ts = 0u32;
        for i in 0..2_000 {
            let wobble = if i % 2 == 0 { 0.002 } else { 0.0 };
            j.on_packet(i as f64 * 0.010 + wobble, ts);
            ts = ts.wrapping_add(80);
        }
        // Every interarrival deviates by 2 ms from nominal, so J -> ~2 ms.
        let jit = j.jitter_secs();
        assert!((0.0015..0.0025).contains(&jit), "jitter = {jit}");
    }

    /// Timestamp wraparound must not spike the estimate.
    #[test]
    fn survives_timestamp_wrap() {
        let mut j = JitterEstimator::new(8_000);
        let mut ts = u32::MAX - 200;
        for i in 0..100 {
            j.on_packet(i as f64 * 0.010, ts);
            ts = ts.wrapping_add(80);
        }
        assert!(j.jitter_secs() < 1e-9, "jitter = {}", j.jitter_secs());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_rate_panics() {
        let _ = JitterEstimator::new(0);
    }
}
