//! # vids-rtp — Real-time Transport Protocol substrate
//!
//! From-scratch RTP (RFC 3550 / RFC 1889) support for the vids monitor and
//! the simulated media endpoints:
//!
//! * [`packet::RtpPacket`] — the fixed 12-byte header plus payload, with
//!   binary serialize/parse.
//! * [`seq`] — 16-bit sequence-number arithmetic, wraparound-safe ordering
//!   and the extended-sequence-number tracker of RFC 3550 §A.1.
//! * [`jitter::JitterEstimator`] — the interarrival jitter estimator of
//!   RFC 3550 §6.4.1, used for the paper's Fig. 10 QoS measurements.
//! * [`rtcp`] — minimal sender/receiver reports so media sessions can carry
//!   the statistics the evaluation plots.
//!
//! ```
//! use vids_rtp::packet::RtpPacket;
//!
//! let pkt = RtpPacket::new(18, 100, 8_000, 0xdecafbad).with_payload(vec![0u8; 10]);
//! let bytes = pkt.to_bytes();
//! let parsed = RtpPacket::parse(&bytes).unwrap();
//! assert_eq!(parsed.sequence_number, 100);
//! assert_eq!(parsed.ssrc, 0xdecafbad);
//! ```

pub mod jitter;
pub mod packet;
pub mod rtcp;
pub mod rtcp_wire;
pub mod seq;

pub use jitter::JitterEstimator;
pub use packet::{ParseRtpError, RtpPacket};
pub use rtcp_wire::{ReportBlock, RtcpPacket};
pub use seq::{seq_distance, seq_greater, ExtendedSeq};

/// RTP protocol version carried in every header.
pub const RTP_VERSION: u8 = 2;
/// Size of the fixed RTP header in bytes (no CSRCs, no extension).
pub const HEADER_LEN: usize = 12;
