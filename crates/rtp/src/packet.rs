//! The RTP fixed header and packet (RFC 3550 §5.1).

use std::fmt;

use crate::{HEADER_LEN, RTP_VERSION};

/// An RTP packet: the fixed 12-byte header plus an opaque payload.
///
/// CSRC lists and header extensions are not modeled (the testbed never
/// produces them); packets carrying them parse with their extra bytes folded
/// into the payload boundary check and are rejected, which the monitor
/// treats as malformed traffic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RtpPacket {
    /// Padding flag.
    pub padding: bool,
    /// Marker bit — set on the first packet of a talkspurt.
    pub marker: bool,
    /// Payload type (7 bits) identifying the codec.
    pub payload_type: u8,
    /// 16-bit sequence number, increments by one per packet.
    pub sequence_number: u16,
    /// 32-bit media timestamp in codec clock ticks.
    pub timestamp: u32,
    /// Synchronization source identifier.
    pub ssrc: u32,
    /// Codec payload bytes.
    pub payload: Vec<u8>,
}

impl RtpPacket {
    /// Creates a packet with empty payload.
    ///
    /// # Panics
    ///
    /// Panics if `payload_type` exceeds 7 bits (>= 128).
    pub fn new(payload_type: u8, sequence_number: u16, timestamp: u32, ssrc: u32) -> Self {
        assert!(payload_type < 128, "payload type must fit in 7 bits");
        RtpPacket {
            padding: false,
            marker: false,
            payload_type,
            sequence_number,
            timestamp,
            ssrc,
            payload: Vec::new(),
        }
    }

    /// Attaches a payload, builder-style.
    #[must_use]
    pub fn with_payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// Sets the marker bit, builder-style.
    #[must_use]
    pub fn with_marker(mut self) -> Self {
        self.marker = true;
        self
    }

    /// Total wire length in bytes.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Serializes to wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        let b0 = (RTP_VERSION << 6) | ((self.padding as u8) << 5);
        let b1 = ((self.marker as u8) << 7) | self.payload_type;
        out.push(b0);
        out.push(b1);
        out.extend_from_slice(&self.sequence_number.to_be_bytes());
        out.extend_from_slice(&self.timestamp.to_be_bytes());
        out.extend_from_slice(&self.ssrc.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a packet from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRtpError`] on short input, a wrong version field, or a
    /// CSRC count / extension flag this model does not support.
    pub fn parse(bytes: &[u8]) -> Result<RtpPacket, ParseRtpError> {
        let header = RtpHeader::parse(bytes)?;
        Ok(RtpPacket {
            padding: header.padding,
            marker: header.marker,
            payload_type: header.payload_type,
            sequence_number: header.sequence_number,
            timestamp: header.timestamp,
            ssrc: header.ssrc,
            payload: bytes[HEADER_LEN..].to_vec(),
        })
    }
}

/// The fixed 12-byte RTP header alone, without the payload.
///
/// The intrusion monitor only inspects header fields, so its classifier
/// parses this `Copy` view instead of an [`RtpPacket`] and never copies the
/// codec payload out of the datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RtpHeader {
    /// Padding flag.
    pub padding: bool,
    /// Marker bit.
    pub marker: bool,
    /// Payload type (7 bits).
    pub payload_type: u8,
    /// 16-bit sequence number.
    pub sequence_number: u16,
    /// 32-bit media timestamp.
    pub timestamp: u32,
    /// Synchronization source identifier.
    pub ssrc: u32,
}

impl RtpHeader {
    /// Parses the fixed header from wire bytes, applying exactly the checks
    /// [`RtpPacket::parse`] applies, without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRtpError`] on short input, a wrong version field, or a
    /// CSRC count / extension flag this model does not support.
    pub fn parse(bytes: &[u8]) -> Result<RtpHeader, ParseRtpError> {
        // Hot path: one length test plus one masked compare on byte 0
        // accepts exactly the header shape this model supports — version 2
        // (top bits 10), extension bit clear, CSRC count 0. Padding (0x20)
        // and all of byte 1 are don't-cares. Everything else takes the
        // cold path, which re-derives the failure in the original check
        // order so error precedence is unchanged.
        if bytes.len() >= HEADER_LEN && bytes[0] & 0b1101_1111 == 0b1000_0000 {
            return Ok(RtpHeader {
                padding: bytes[0] & 0x20 != 0,
                marker: bytes[1] & 0x80 != 0,
                payload_type: bytes[1] & 0x7f,
                sequence_number: u16::from_be_bytes([bytes[2], bytes[3]]),
                timestamp: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
                ssrc: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
            });
        }
        Err(Self::reject(bytes))
    }

    #[cold]
    fn reject(bytes: &[u8]) -> ParseRtpError {
        if bytes.len() < HEADER_LEN {
            return ParseRtpError::TooShort { len: bytes.len() };
        }
        let version = bytes[0] >> 6;
        if version != RTP_VERSION {
            return ParseRtpError::BadVersion { version };
        }
        let csrc_count = bytes[0] & 0x0f;
        if csrc_count != 0 {
            return ParseRtpError::UnsupportedCsrc { count: csrc_count };
        }
        // The fast-path mask admits every other byte-0 shape, so the
        // extension bit must be the remaining offender.
        debug_assert!(bytes[0] & 0x10 != 0);
        ParseRtpError::UnsupportedExtension
    }
}

impl fmt::Display for RtpPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RTP pt={} seq={} ts={} ssrc={:#010x} len={}",
            self.payload_type,
            self.sequence_number,
            self.timestamp,
            self.ssrc,
            self.wire_len()
        )
    }
}

/// Error returned by [`RtpPacket::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseRtpError {
    /// Fewer than 12 bytes of input.
    TooShort {
        /// How many bytes were available.
        len: usize,
    },
    /// Version field was not 2.
    BadVersion {
        /// The version observed.
        version: u8,
    },
    /// Packet declares CSRC entries, which this model does not support.
    UnsupportedCsrc {
        /// Declared CSRC count.
        count: u8,
    },
    /// Packet declares a header extension, which this model does not support.
    UnsupportedExtension,
}

impl fmt::Display for ParseRtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseRtpError::TooShort { len } => {
                write!(f, "RTP packet too short: {len} bytes")
            }
            ParseRtpError::BadVersion { version } => {
                write!(f, "unsupported RTP version {version}")
            }
            ParseRtpError::UnsupportedCsrc { count } => {
                write!(f, "unsupported CSRC count {count}")
            }
            ParseRtpError::UnsupportedExtension => f.write_str("unsupported header extension"),
        }
    }
}

impl std::error::Error for ParseRtpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let pkt = RtpPacket::new(18, 0xBEEF, 0x01020304, 0xCAFED00D)
            .with_payload(vec![1, 2, 3, 4, 5])
            .with_marker();
        let bytes = pkt.to_bytes();
        assert_eq!(bytes.len(), 17);
        let parsed = RtpPacket::parse(&bytes).unwrap();
        assert_eq!(parsed, pkt);
    }

    #[test]
    fn header_layout_is_network_order() {
        let pkt = RtpPacket::new(18, 0x0102, 0x0A0B0C0D, 0x11223344);
        let bytes = pkt.to_bytes();
        assert_eq!(bytes[0], 0x80); // version 2, no padding/ext/csrc
        assert_eq!(bytes[1], 18);
        assert_eq!(&bytes[2..4], &[0x01, 0x02]);
        assert_eq!(&bytes[4..8], &[0x0A, 0x0B, 0x0C, 0x0D]);
        assert_eq!(&bytes[8..12], &[0x11, 0x22, 0x33, 0x44]);
    }

    #[test]
    fn marker_bit_encodes() {
        let pkt = RtpPacket::new(0, 1, 1, 1).with_marker();
        assert_eq!(pkt.to_bytes()[1], 0x80);
    }

    #[test]
    fn rejects_short_input() {
        assert_eq!(
            RtpPacket::parse(&[0x80; 5]),
            Err(ParseRtpError::TooShort { len: 5 })
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = RtpPacket::new(0, 1, 1, 1).to_bytes();
        bytes[0] = 0x40; // version 1
        assert_eq!(
            RtpPacket::parse(&bytes),
            Err(ParseRtpError::BadVersion { version: 1 })
        );
    }

    #[test]
    fn rejects_csrc_and_extension() {
        let mut bytes = RtpPacket::new(0, 1, 1, 1).to_bytes();
        bytes[0] = 0x82; // csrc count 2
        assert_eq!(
            RtpPacket::parse(&bytes),
            Err(ParseRtpError::UnsupportedCsrc { count: 2 })
        );
        bytes[0] = 0x90; // extension flag
        assert_eq!(
            RtpPacket::parse(&bytes),
            Err(ParseRtpError::UnsupportedExtension)
        );
    }

    #[test]
    #[should_panic(expected = "7 bits")]
    fn payload_type_must_fit() {
        let _ = RtpPacket::new(128, 0, 0, 0);
    }

    #[test]
    fn header_parse_matches_packet_parse() {
        let pkt = RtpPacket::new(18, 7, 560, 0xFEED)
            .with_payload(vec![9; 20])
            .with_marker();
        let bytes = pkt.to_bytes();
        let header = RtpHeader::parse(&bytes).unwrap();
        assert_eq!(header.payload_type, pkt.payload_type);
        assert_eq!(header.sequence_number, pkt.sequence_number);
        assert_eq!(header.timestamp, pkt.timestamp);
        assert_eq!(header.ssrc, pkt.ssrc);
        assert!(header.marker);
        for bad in [&bytes[..5], &[0x40; 16][..], &[0x82; 16][..]] {
            assert_eq!(
                RtpHeader::parse(bad).map(|_| ()),
                RtpPacket::parse(bad).map(|_| ())
            );
        }
    }
}
