//! Property tests for the RTP serial-arithmetic and jitter primitives.
//!
//! These are the algebraic laws the detectors lean on (RFC 1982 serial
//! comparison, RFC 3550 §A.1 extension, §6.4.1 jitter), checked over
//! generated inputs rather than hand-picked examples — the wraparound
//! bugs this PR fixes lived exactly in the corners examples miss.

use proptest::prelude::*;
use vids_rtp::jitter::JitterEstimator;
use vids_rtp::seq::{seq_distance, seq_greater, ExtendedSeq};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `seq_greater` and `seq_distance` are two views of one ordering:
    /// greater exactly when the signed distance is positive.
    #[test]
    fn greater_iff_positive_distance(a in any::<u16>(), b in any::<u16>()) {
        prop_assert_eq!(seq_greater(a, b), seq_distance(a, b) > 0);
        // And the ordering is irreflexive / asymmetric off the antipode.
        prop_assert!(!seq_greater(a, a));
        if a.wrapping_sub(b) != 0x8000 {
            prop_assert!(!(seq_greater(a, b) && seq_greater(b, a)));
        }
    }

    /// Distance is antisymmetric everywhere except the ambiguous antipode
    /// (RFC 1982 leaves the half-range point undefined; ours reports the
    /// most-negative distance from both sides, deterministically).
    #[test]
    fn distance_is_antisymmetric_off_the_antipode(a in any::<u16>(), b in any::<u16>()) {
        if a.wrapping_sub(b) != 0x8000 {
            prop_assert_eq!(seq_distance(a, b), -seq_distance(b, a));
        } else {
            prop_assert_eq!(seq_distance(a, b), -32768);
            prop_assert_eq!(seq_distance(b, a), -32768);
        }
    }

    /// Stepping forward by any 16-bit amount and measuring the distance
    /// back recovers the step, reinterpreted as signed — the exact
    /// identity the wraparound-safe comparisons exist to provide.
    #[test]
    fn distance_recovers_the_signed_step(a in any::<u16>(), d in any::<u16>()) {
        prop_assert_eq!(seq_distance(a.wrapping_add(d), a), (d as i16) as i32);
    }

    /// `ExtendedSeq` against an oracle: walk a true 64-bit position
    /// forward in sub-half-range steps, occasionally re-emitting a recent
    /// (late) position. The extension must equal the true position
    /// truncated to 32 bits — across wraps, and for stragglers that
    /// straddle them — and `highest()` must track the running maximum.
    #[test]
    fn extension_matches_a_64_bit_oracle(
        start in any::<u16>(),
        moves in proptest::collection::vec((1u64..20_000, any::<bool>(), 0u64..100), 1..80),
    ) {
        let mut ext = ExtendedSeq::new();
        let mut pos = start as u64;
        prop_assert_eq!(ext.update(start), start as u32);
        let mut high = pos;
        for (advance, replay, back) in moves {
            pos += advance;
            let got = ext.update((pos & 0xFFFF) as u16);
            prop_assert_eq!(got, pos as u32, "in-order packet at {}", pos);
            high = high.max(pos);
            prop_assert_eq!(ext.highest(), high as u32);
            if replay && back < advance {
                // A late duplicate of a position we already passed, within
                // the reorder window the serial ordering can express.
                let late = pos - back;
                let got = ext.update((late & 0xFFFF) as u16);
                prop_assert_eq!(got, late as u32, "late packet at {} (high {})", late, pos);
                prop_assert_eq!(ext.highest(), high as u32, "late packet moved the high-water mark");
            }
        }
    }

    /// A perfectly periodic stream has (near-)zero jitter wherever its
    /// timestamps start — including streams that wrap 2³² mid-call.
    #[test]
    fn periodic_streams_have_zero_jitter_even_across_the_wrap(
        start in any::<u32>(),
        frames in 16u32..96,
        frame_ticks in 80u32..2000,
    ) {
        let clock = 8_000;
        let mut j = JitterEstimator::new(clock);
        let period = frame_ticks as f64 / clock as f64;
        for i in 0..frames {
            j.on_packet(i as f64 * period, start.wrapping_add(i.wrapping_mul(frame_ticks)));
        }
        prop_assert!(j.jitter_secs() < 1e-9, "jitter = {}", j.jitter_secs());
    }

    /// Jitter measures transit *variation*: shifting every arrival by one
    /// constant delay changes nothing (§6.4.1's D(i,j) telescopes the
    /// constant away). Checked on noisy arrivals with wrapping timestamps.
    #[test]
    fn jitter_is_invariant_under_a_constant_delay_shift(
        start in any::<u32>(),
        noise in proptest::collection::vec(0u32..80, 16..64),
        shift_ms in 1u32..5_000,
    ) {
        let clock = 8_000;
        let shift = shift_ms as f64 * 1e-3;
        let run = |base: f64| {
            let mut j = JitterEstimator::new(clock);
            for (i, n) in noise.iter().enumerate() {
                let arrival = base + i as f64 * 0.020 + *n as f64 / clock as f64;
                j.on_packet(arrival, start.wrapping_add(i as u32 * 160));
            }
            j.jitter_secs()
        };
        let baseline = run(0.0);
        let shifted = run(shift);
        prop_assert!(
            (baseline - shifted).abs() < 1e-9,
            "constant delay changed jitter: {} vs {}", baseline, shifted
        );
    }
}
