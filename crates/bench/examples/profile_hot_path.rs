//! Standalone loop over the hot-path workload for profiler attachment.
//!
//! `cargo run --release -p vids-bench --example profile_hot_path [iters]`

use vids::core::{Config, CostModel, NullSink, Vids};

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let batch = vids_bench::synth_call_batch(60, 20);
    let mut total = 0u64;
    for _ in 0..iters {
        let mut vids = Vids::with_cost(Config::default(), CostModel::free());
        let mut sink = NullSink;
        for p in &batch {
            vids.process(std::hint::black_box(p), p.sent_at, &mut sink);
        }
        total += vids.counters().rtp_packets;
    }
    println!("{total}");
}
