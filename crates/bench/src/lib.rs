//! # vids-bench — experiment harnesses
//!
//! One Criterion bench target per table/figure of the paper's §7 (see
//! `DESIGN.md`'s experiment index E1–E8). Each bench prints its
//! paper-vs-measured series once, then times a representative kernel.
//!
//! Run everything with `cargo bench --workspace`; a single experiment with
//! e.g. `cargo bench -p vids-bench --bench fig9_call_setup`.

use std::sync::Once;

use vids::netsim::stats::Summary;
use vids::netsim::time::SimTime;
use vids::netsim::workload::WorkloadSpec;
use vids::scenario::{Testbed, TestbedConfig};

/// Prints a section banner exactly once per process (criterion calls bench
/// functions repeatedly).
pub fn print_once(once: &'static Once, f: impl FnOnce()) {
    once.call_once(f);
}

/// The QoS evaluation workload: a scaled-down §7.1 testbed that runs in a
/// few seconds yet carries enough calls for stable means.
pub fn qos_workload(seed: u64, minutes: u64) -> TestbedConfig {
    let mut config = TestbedConfig::small(seed);
    config.uas_per_site = 5;
    config.workload = WorkloadSpec {
        callers: 5,
        callees: 5,
        mean_interarrival_secs: 40.0,
        mean_duration_secs: 25.0,
        horizon: SimTime::from_secs(minutes * 60),
    };
    config
}

/// Per-UA QoS aggregates from a finished testbed run.
#[derive(Debug, Clone, Default)]
pub struct QosAggregates {
    /// Call-setup delay across all callers.
    pub setup: Summary,
    /// One-way RTP delay across all UAs.
    pub rtp_delay: Summary,
    /// Stream jitter across all UAs.
    pub jitter: Summary,
    /// Per-caller setup-delay series (Fig. 9 plots callers 3 and 4).
    pub per_caller_setup: Vec<Vec<(f64, f64)>>,
}

/// Runs a testbed to `horizon + 60 s` and aggregates the QoS measurements.
pub fn run_qos(config: &TestbedConfig) -> QosAggregates {
    let mut tb = Testbed::build(config);
    let end = config.workload.horizon + SimTime::from_secs(60);
    tb.run_until(end);
    let mut agg = QosAggregates::default();
    for i in 0..config.uas_per_site {
        let s = tb.ua_a_stats(i);
        agg.setup.merge(&s.setup_delays.summary());
        agg.rtp_delay.merge(&s.rtp_delay);
        agg.jitter.merge(&s.rtp_jitter);
        agg.per_caller_setup.push(s.setup_delays.iter().collect());
        let sb = tb.ua_b(i).stats();
        agg.rtp_delay.merge(&sb.rtp_delay);
        agg.jitter.merge(&sb.rtp_jitter);
    }
    agg
}

/// Formats a paper-vs-measured row.
pub fn row(metric: &str, paper: &str, measured: String) -> String {
    format!("{metric:<38} {paper:>14} {measured:>16}")
}

/// Table header for paper-vs-measured prints.
pub fn header(title: &str) -> String {
    format!(
        "\n=== {title} ===\n{:<38} {:>14} {:>16}\n{}",
        "metric",
        "paper",
        "measured",
        "-".repeat(72)
    )
}
