//! # vids-bench — experiment harnesses
//!
//! One Criterion bench target per table/figure of the paper's §7 (see
//! `DESIGN.md`'s experiment index E1–E8). Each bench prints its
//! paper-vs-measured series once, then times a representative kernel.
//!
//! Run everything with `cargo bench --workspace`; a single experiment with
//! e.g. `cargo bench -p vids-bench --bench fig9_call_setup`.

use std::sync::Once;

use vids::netsim::packet::{Address, Packet, Payload};
use vids::netsim::stats::Summary;
use vids::netsim::time::SimTime;
use vids::netsim::workload::WorkloadSpec;
use vids::scenario::{Testbed, TestbedConfig};

/// Prints a section banner exactly once per process (criterion calls bench
/// functions repeatedly).
pub fn print_once(once: &'static Once, f: impl FnOnce()) {
    once.call_once(f);
}

/// The QoS evaluation workload: a scaled-down §7.1 testbed that runs in a
/// few seconds yet carries enough calls for stable means.
pub fn qos_workload(seed: u64, minutes: u64) -> TestbedConfig {
    let mut config = TestbedConfig::small(seed);
    config.uas_per_site = 5;
    config.workload = WorkloadSpec {
        callers: 5,
        callees: 5,
        mean_interarrival_secs: 40.0,
        mean_duration_secs: 25.0,
        horizon: SimTime::from_secs(minutes * 60),
    };
    config
}

/// Per-UA QoS aggregates from a finished testbed run.
#[derive(Debug, Clone, Default)]
pub struct QosAggregates {
    /// Call-setup delay across all callers.
    pub setup: Summary,
    /// One-way RTP delay across all UAs.
    pub rtp_delay: Summary,
    /// Stream jitter across all UAs.
    pub jitter: Summary,
    /// Per-caller setup-delay series (Fig. 9 plots callers 3 and 4).
    pub per_caller_setup: Vec<Vec<(f64, f64)>>,
}

/// Runs a testbed to `horizon + 60 s` and aggregates the QoS measurements.
pub fn run_qos(config: &TestbedConfig) -> QosAggregates {
    let mut tb = Testbed::build(config);
    let end = config.workload.horizon + SimTime::from_secs(60);
    tb.run_until(end);
    let mut agg = QosAggregates::default();
    for i in 0..config.uas_per_site {
        let s = tb.ua_a_stats(i);
        agg.setup.merge(&s.setup_delays.summary());
        agg.rtp_delay.merge(&s.rtp_delay);
        agg.jitter.merge(&s.rtp_jitter);
        agg.per_caller_setup.push(s.setup_delays.iter().collect());
        let sb = tb.ua_b(i).stats();
        agg.rtp_delay.merge(&sb.rtp_delay);
        agg.jitter.merge(&sb.rtp_jitter);
    }
    agg
}

/// The `VIDS_SHARDS` knob: how many shards the pool-driven benches use.
/// Defaults to 4.
pub fn shards_knob() -> usize {
    std::env::var("VIDS_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

/// A fig. 8-style perimeter batch: `calls` staggered complete calls
/// (INVITE/200/ACK … BYE/200 with `rtp_per_call` media packets each),
/// time-sorted and stamped in `sent_at` so it can be replayed through
/// [`vids::core::VidsPool::process_batch`] or packet-at-a-time through a
/// plain engine with identical timing.
pub fn synth_call_batch(calls: usize, rtp_per_call: usize) -> Vec<Packet> {
    use vids::rtp::packet::RtpPacket;
    use vids::sdp::{Codec, SessionDescription};
    use vids::sip::{Method, Request, SipUri, StatusCode};

    let mut timed: Vec<(u64, Address, Address, Payload)> = Vec::new();
    for i in 0..calls {
        let a = (i / 250) as u8;
        let b = (i % 250 + 1) as u8;
        let caller = Address::new(10, 1, a, b, 5060);
        let callee = Address::new(10, 2, a, b, 5060);
        let caller_ip = format!("10.1.{a}.{b}");
        let callee_ip = format!("10.2.{a}.{b}");
        let t0 = (i as u64) * 3;

        let offer = SessionDescription::audio_offer("alice", &caller_ip, 20_000, &[Codec::G729]);
        let invite = Request::invite(
            &SipUri::new("alice", "a.example.com"),
            &SipUri::new("bob", "b.example.com"),
            &format!("fig8-{i}"),
        )
        .with_body(vids::sdp::MIME_TYPE, offer.to_string());
        timed.push((t0, caller, callee, Payload::Sip(invite.to_string())));

        let answer = SessionDescription::audio_offer("bob", &callee_ip, 30_000, &[Codec::G729]);
        let ok = invite
            .response(StatusCode::OK)
            .with_to_tag("tt")
            .with_body(vids::sdp::MIME_TYPE, answer.to_string());
        timed.push((t0 + 20, callee, caller, Payload::Sip(ok.to_string())));
        let ack = Request::in_dialog(Method::Ack, &invite, 1, Some("tt"));
        timed.push((t0 + 40, caller, callee, Payload::Sip(ack.to_string())));

        for j in 0..rtp_per_call {
            let fwd = j % 2 == 0;
            let k = (j / 2) as u64;
            let rtp = RtpPacket::new(
                18,
                (100 + k) as u16,
                (k * 80) as u32,
                if fwd { 7 } else { 9 },
            )
            .with_payload(vec![0; 10]);
            let (src, dst) = if fwd {
                (caller.with_port(20_000), callee.with_port(30_000))
            } else {
                (callee.with_port(30_000), caller.with_port(20_000))
            };
            timed.push((t0 + 50 + k * 20, src, dst, Payload::Rtp(rtp.to_bytes())));
        }

        let t_bye = t0 + 60 + (rtp_per_call as u64 / 2) * 20;
        let bye = Request::in_dialog(Method::Bye, &invite, 2, Some("tt"));
        timed.push((t_bye, caller, callee, Payload::Sip(bye.to_string())));
        let bye_ok = bye.response(StatusCode::OK);
        timed.push((t_bye + 20, callee, caller, Payload::Sip(bye_ok.to_string())));
    }

    timed.sort_by_key(|(t, ..)| *t);
    timed
        .into_iter()
        .enumerate()
        .map(|(id, (t, src, dst, payload))| Packet {
            src,
            dst,
            payload,
            id: id as u64,
            sent_at: SimTime::from_millis(t),
        })
        .collect()
}

/// Formats a paper-vs-measured row.
pub fn row(metric: &str, paper: &str, measured: String) -> String {
    format!("{metric:<38} {paper:>14} {measured:>16}")
}

/// Table header for paper-vs-measured prints.
pub fn header(title: &str) -> String {
    format!(
        "\n=== {title} ===\n{:<38} {:>14} {:>16}\n{}",
        "metric",
        "paper",
        "measured",
        "-".repeat(72)
    )
}
