#![allow(clippy::field_reassign_with_default)]

//! E7 / §7.5 — detection sensitivity: "the intrusion detection delay is
//! mainly determined by the various timers in attack patterns", i.e. T1/N
//! for INVITE flooding and T for the BYE DoS drain window; shorter T risks
//! false alarms from in-flight packets.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use vids::core::machines::flood::window_counter_machine;
use vids::core::{CollectSink, Config, NullSink, Vids};
use vids::efsm::network::Network;
use vids::efsm::Event;
use vids::netsim::packet::{Address, Packet, Payload};
use vids::netsim::time::SimTime;
use vids::rtp::packet::RtpPacket;
use vids_bench::print_once;

use std::sync::Arc;

static PRINTED: Once = Once::new();

/// Time to detect an INVITE flood of `rate_pps` with threshold `n` and
/// window `t1_ms` (ms from first INVITE).
fn flood_detection_delay(n: u64, t1_ms: u64, rate_pps: f64) -> Option<u64> {
    let def = Arc::new(window_counter_machine("flood", "SIP.INVITE", n, t1_ms, "f"));
    let mut net = Network::new();
    let id = net.add_machine(def);
    let gap_ms = (1_000.0 / rate_pps) as u64;
    let mut t = 0u64;
    for _ in 0..10_000 {
        net.advance_time(t);
        let out = net.deliver(id, Event::data("SIP.INVITE"), t);
        if !out.alerts.is_empty() {
            return Some(t);
        }
        t += gap_ms.max(1);
    }
    None
}

/// Simulates the BYE-DoS drain window at RTT `rtt_ms`: returns
/// `(false_alarm, detection_delay_ms_for_real_attack)` for timer `t_ms`.
///
/// A legitimate teardown has in-flight packets arriving up to one RTT after
/// the BYE; an attack stream continues forever.
fn bye_dos_outcomes(t_ms: u64, rtt_ms: u64) -> (bool, Option<u64>) {
    let run = |packets_until_ms: u64| -> Option<u64> {
        let mut cfg = Config::default();
        cfg.bye_dos_t = SimTime::from_millis(t_ms);
        let mut vids = Vids::with_cost(cfg, vids::core::CostModel::free());
        // Establish a call.
        let sdp = vids::sdp::SessionDescription::audio_offer(
            "alice",
            "10.1.0.10",
            20_000,
            &[vids::sdp::Codec::G729],
        );
        let inv = vids::sip::Request::invite(
            &vids::sip::SipUri::new("alice", "a.example.com"),
            &vids::sip::SipUri::new("bob", "b.example.com"),
            "sens-call",
        )
        .with_body(vids::sdp::MIME_TYPE, sdp.to_string());
        let mk = |payload: Payload, src_port: u16, dst_port: u16| Packet {
            src: Address::new(10, 1, 0, 10, src_port),
            dst: Address::new(10, 2, 0, 10, dst_port),
            payload,
            id: 0,
            sent_at: SimTime::ZERO,
        };
        vids.process(
            &mk(Payload::Sip(inv.to_string()), 5060, 5060),
            SimTime::ZERO,
            &mut NullSink,
        );
        let answer = vids::sdp::SessionDescription::audio_offer(
            "bob",
            "10.2.0.10",
            30_000,
            &[vids::sdp::Codec::G729],
        );
        let ok = inv
            .response(vids::sip::StatusCode::OK)
            .with_to_tag("tt")
            .with_body(vids::sdp::MIME_TYPE, answer.to_string());
        // Responses travel B->A.
        let ok_pkt = Packet {
            src: Address::new(10, 2, 0, 10, 5060),
            dst: Address::new(10, 1, 0, 10, 5060),
            payload: Payload::Sip(ok.to_string()),
            id: 0,
            sent_at: SimTime::ZERO,
        };
        vids.process(&ok_pkt, SimTime::from_millis(50), &mut NullSink);
        // Media, then BYE at 1000 ms, then packets until `packets_until_ms`.
        let mut alert_at: Option<u64> = None;
        let mut seq = 100u16;
        let mut ts = 0u32;
        for t in (100..3_000u64).step_by(10) {
            if t == 1_000 {
                let bye =
                    vids::sip::Request::in_dialog(vids::sip::Method::Bye, &inv, 2, Some("tt"));
                vids.process(
                    &mk(Payload::Sip(bye.to_string()), 5060, 5060),
                    SimTime::from_millis(t),
                    &mut NullSink,
                );
            }
            if t < 1_000 || t <= packets_until_ms {
                let rtp = RtpPacket::new(18, seq, ts, 7).with_payload(vec![0; 10]);
                seq = seq.wrapping_add(1);
                ts = ts.wrapping_add(80);
                let mut alerts = CollectSink::new();
                vids.process(
                    &mk(Payload::Rtp(rtp.to_bytes()), 20_000, 30_000),
                    SimTime::from_millis(t),
                    &mut alerts,
                );
                if alerts
                    .alerts()
                    .iter()
                    .any(|a| a.label == vids::core::alert::labels::RTP_AFTER_BYE)
                    && alert_at.is_none()
                {
                    alert_at = Some(t - 1_000);
                }
            }
        }
        alert_at
    };
    // Legitimate teardown: in-flight packets stop one RTT after the BYE.
    let false_alarm = run(1_000 + rtt_ms).is_some();
    // Attack: media never stops.
    let detection = run(3_000);
    (false_alarm, detection)
}

fn print_tables() {
    println!("\n=== E7 / §7.5: detection sensitivity ===");
    println!("\nINVITE flooding: detection delay vs. attack rate (N=10, T1=1s)");
    println!("{:>12} {:>18}", "rate (pps)", "delay (ms)");
    for rate in [20.0, 50.0, 100.0, 200.0, 1_000.0] {
        let d = flood_detection_delay(10, 1_000, rate);
        println!(
            "{:>12} {:>18}",
            rate,
            d.map(|d| d.to_string()).unwrap_or_else(|| "none".into())
        );
    }
    println!("\nINVITE flooding: detection delay vs. threshold N (100 pps, T1=1s)");
    println!("{:>12} {:>18}", "N", "delay (ms)");
    for n in [5u64, 10, 20, 50] {
        let d = flood_detection_delay(n, 1_000, 100.0);
        println!(
            "{:>12} {:>18}",
            n,
            d.map(|d| d.to_string()).unwrap_or_else(|| "none".into())
        );
    }

    println!("\nBYE DoS: timer T vs. false alarms and detection delay (RTT = 110 ms)");
    println!(
        "{:>10} {:>14} {:>22}",
        "T (ms)", "false alarm?", "detection delay (ms)"
    );
    for t in [20u64, 50, 110, 200, 500, 1_000] {
        let (fa, det) = bye_dos_outcomes(t, 110);
        println!(
            "{:>10} {:>14} {:>22}",
            t,
            if fa { "YES" } else { "no" },
            det.map(|d| d.to_string())
                .unwrap_or_else(|| "missed".into())
        );
    }
    println!("\npaper: T = one RTT is \"long enough to receive all in-flight RTP");
    println!("packets, consequently, there would be less chance of false alarms\" —");
    println!("the table shows T below the RTT false-alarms, T at/above it doesn't,");
    println!("while detection delay grows linearly with T.");
}

fn bench(c: &mut Criterion) {
    print_once(&PRINTED, print_tables);
    c.bench_function("sensitivity/flood_machine_100_events", |b| {
        let def = Arc::new(window_counter_machine("flood", "E", 1_000, 1_000, "f"));
        b.iter(|| {
            let mut net = Network::new();
            let id = net.add_machine(Arc::clone(&def));
            for t in 0..100u64 {
                net.deliver(id, Event::data("E"), t);
            }
            std::hint::black_box(net.memory_bytes())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
