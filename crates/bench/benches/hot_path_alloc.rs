//! Hot-path throughput: events/sec over the mixed fig8-style workload.
//!
//! Guards the zero-allocation classify → EFSM → fact-base path: the same
//! `synth_call_batch` mix (call setup, steady RTP, teardown) is pushed
//! through the plain `Vids` engine packet-at-a-time and through the sharded
//! `VidsPool` in one batch. `scripts/bench_baseline.sh` captures the
//! `elem/s` figures into `BENCH_hotpath.json` so regressions show up as a
//! broken perf trajectory rather than a vague feeling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use vids::core::{Config, CostModel, NullSink, Vids, VidsPool};
use vids::netsim::time::SimTime;

fn bench(c: &mut Criterion) {
    // 60 calls × 20 RTP packets each: dominated by steady-state media with
    // a realistic signaling fraction, matching the Fig. 8 workload shape.
    let batch = vids_bench::synth_call_batch(60, 20);

    let mut group = c.benchmark_group("hot_path");
    group.throughput(Throughput::Elements(batch.len() as u64));

    group.bench_function("vids_mixed_fig8", |b| {
        b.iter(|| {
            let mut vids = Vids::with_cost(Config::default(), CostModel::free());
            let mut sink = NullSink;
            for p in &batch {
                vids.process(std::hint::black_box(p), p.sent_at, &mut sink);
            }
            std::hint::black_box(vids.counters().rtp_packets)
        })
    });

    // The same engine with the full telemetry surface enabled (counters,
    // rings, gauges): the gap between this and vids_mixed_fig8 is the
    // recording overhead the observability subsystem is allowed (≤ 3%).
    group.bench_function("vids_mixed_fig8_telemetry", |b| {
        b.iter(|| {
            let mut vids = Vids::with_cost(Config::default(), CostModel::free());
            let _registry = vids.enable_telemetry(256);
            let mut sink = NullSink;
            for p in &batch {
                vids.process(std::hint::black_box(p), p.sent_at, &mut sink);
            }
            std::hint::black_box(vids.counters().rtp_packets)
        })
    });

    let shards = vids_bench::shards_knob();
    group.bench_function(&format!("pool_mixed_fig8_{shards}_shards"), |b| {
        b.iter(|| {
            let config = Config::builder().shards(shards).build().unwrap();
            let mut pool = VidsPool::with_cost(config, CostModel::free());
            pool.process_batch(std::hint::black_box(&batch), SimTime::ZERO, &mut NullSink);
            std::hint::black_box(pool.counters().rtp_packets)
        })
    });

    group.bench_function(&format!("pool_mixed_fig8_{shards}_shards_telemetry"), |b| {
        b.iter(|| {
            let config = Config::builder().shards(shards).build().unwrap();
            let mut pool = VidsPool::with_cost(config, CostModel::free());
            pool.enable_telemetry(256);
            pool.process_batch(std::hint::black_box(&batch), SimTime::ZERO, &mut NullSink);
            std::hint::black_box(pool.counters().rtp_packets)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
