//! E3 / Fig. 10 — impact of vids on RTP streams: one-way delay and average
//! delay variation (jitter), with vs. without the inline monitor.
//!
//! Paper result: +1.5 ms delay, jitter higher by ~2·10⁻⁴ s — negligible
//! against the 150 ms one-way VoIP budget.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use vids::rtp::JitterEstimator;
use vids_bench::{header, print_once, qos_workload, row, run_qos};

static PRINTED: Once = Once::new();

fn print_figure() {
    let with = run_qos(&qos_workload(10, 4));
    let without = run_qos(&qos_workload(10, 4).without_vids());

    println!("{}", header("E3 / Fig. 10: RTP QoS impact"));
    println!(
        "{}",
        row(
            "one-way RTP delay without vids (s)",
            "~0.052",
            format!("{:.5}", without.rtp_delay.mean())
        )
    );
    println!(
        "{}",
        row(
            "one-way RTP delay with vids (s)",
            "+0.0015",
            format!("{:.5}", with.rtp_delay.mean())
        )
    );
    println!(
        "{}",
        row(
            "delay added by vids (s)",
            "~0.0015",
            format!("{:.5}", with.rtp_delay.mean() - without.rtp_delay.mean())
        )
    );
    println!(
        "{}",
        row(
            "avg delay variation without (s)",
            "(baseline)",
            format!("{:.6}", without.jitter.mean())
        )
    );
    println!(
        "{}",
        row(
            "avg delay variation with (s)",
            "+2e-4",
            format!("{:.6}", with.jitter.mean())
        )
    );
    println!(
        "{}",
        row(
            "RTP packets measured",
            "-",
            format!("{}", with.rtp_delay.count())
        )
    );
    println!(
        "{}",
        row(
            "one-way budget (§7.4)",
            "< 0.150",
            format!("max {:.4}", with.rtp_delay.max())
        )
    );
}

fn bench(c: &mut Criterion) {
    print_once(&PRINTED, print_figure);
    // Kernel: the RFC 3550 jitter estimator at line rate.
    c.bench_function("fig10/jitter_estimator_1000_packets", |b| {
        b.iter(|| {
            let mut j = JitterEstimator::new(8_000);
            let mut ts = 0u32;
            for i in 0..1_000u32 {
                let wobble = (i % 7) as f64 * 1e-4;
                j.on_packet(i as f64 * 0.010 + wobble, ts);
                ts = ts.wrapping_add(80);
            }
            std::hint::black_box(j.jitter_secs())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
