#![allow(clippy::field_reassign_with_default)]

//! E8 — ablation: the value of the cross-protocol δ synchronization.
//!
//! The paper's central claim is that *interaction between protocol state
//! machines* catches attacks a single-protocol monitor cannot. This
//! ablation runs the BYE-DoS signature with the δ channels enabled and
//! disabled: without synchronization the RTP machine never learns about
//! the BYE, never arms timer T, and the attack sails through.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use vids::core::alert::labels;
use vids::core::{CollectSink, Config, CostModel, NullSink, Vids};
use vids::netsim::packet::{Address, Packet, Payload};
use vids::netsim::time::SimTime;
use vids::rtp::packet::RtpPacket;
use vids_bench::{header, print_once, row};

static PRINTED: Once = Once::new();

/// Replays a call + BYE + post-BYE media; returns whether the RTP-after-BYE
/// attack was detected.
fn bye_dos_detected(cross_protocol_sync: bool) -> bool {
    let mut cfg = Config::default();
    cfg.cross_protocol_sync = cross_protocol_sync;
    let mut vids = Vids::with_cost(cfg, CostModel::free());

    let sdp = vids::sdp::SessionDescription::audio_offer(
        "alice",
        "10.1.0.10",
        20_000,
        &[vids::sdp::Codec::G729],
    );
    let inv = vids::sip::Request::invite(
        &vids::sip::SipUri::new("alice", "a.example.com"),
        &vids::sip::SipUri::new("bob", "b.example.com"),
        "ablate",
    )
    .with_body(vids::sdp::MIME_TYPE, sdp.to_string());
    let a2b = |payload: Payload, sp: u16, dp: u16| Packet {
        src: Address::new(10, 1, 0, 10, sp),
        dst: Address::new(10, 2, 0, 10, dp),
        payload,
        id: 0,
        sent_at: SimTime::ZERO,
    };
    vids.process(
        &a2b(Payload::Sip(inv.to_string()), 5060, 5060),
        SimTime::ZERO,
        &mut NullSink,
    );
    let answer = vids::sdp::SessionDescription::audio_offer(
        "bob",
        "10.2.0.10",
        30_000,
        &[vids::sdp::Codec::G729],
    );
    let ok = inv
        .response(vids::sip::StatusCode::OK)
        .with_to_tag("tt")
        .with_body(vids::sdp::MIME_TYPE, answer.to_string());
    let b2a = Packet {
        src: Address::new(10, 2, 0, 10, 5060),
        dst: Address::new(10, 1, 0, 10, 5060),
        payload: Payload::Sip(ok.to_string()),
        id: 0,
        sent_at: SimTime::ZERO,
    };
    vids.process(&b2a, SimTime::from_millis(50), &mut NullSink);

    // Media, BYE at 500 ms, media continues (the attack).
    let mut detected = false;
    let mut seq = 1u16;
    for t in (100..2_000u64).step_by(10) {
        if t == 500 {
            let bye = vids::sip::Request::in_dialog(vids::sip::Method::Bye, &inv, 2, Some("tt"));
            vids.process(
                &a2b(Payload::Sip(bye.to_string()), 5060, 5060),
                SimTime::from_millis(t),
                &mut NullSink,
            );
        }
        let rtp = RtpPacket::new(18, seq, seq as u32 * 80, 7).with_payload(vec![0; 10]);
        seq = seq.wrapping_add(1);
        let mut alerts = CollectSink::new();
        vids.process(
            &a2b(Payload::Rtp(rtp.to_bytes()), 20_000, 30_000),
            SimTime::from_millis(t),
            &mut alerts,
        );
        if alerts
            .alerts()
            .iter()
            .any(|a| a.label == labels::RTP_AFTER_BYE)
        {
            detected = true;
        }
    }
    detected
}

fn print_figure() {
    let with_sync = bye_dos_detected(true);
    let without_sync = bye_dos_detected(false);
    println!(
        "{}",
        header("E8: ablation — cross-protocol synchronization")
    );
    println!(
        "{}",
        row(
            "BYE DoS detected, δ channels ON",
            "detected",
            if with_sync { "detected" } else { "MISSED" }.to_owned()
        )
    );
    println!(
        "{}",
        row(
            "BYE DoS detected, δ channels OFF",
            "(undetectable)",
            if without_sync { "detected?!" } else { "missed" }.to_owned()
        )
    );
    println!(
        "\nThe single-protocol ablation misses the attack: the RTP machine never\n\
         hears about the BYE, so \"RTP after BYE\" is not expressible — this is\n\
         the paper's core argument for communicating protocol state machines."
    );
    assert!(with_sync && !without_sync, "ablation invariant violated");
}

fn bench(c: &mut Criterion) {
    print_once(&PRINTED, print_figure);
    c.bench_function("ablation/bye_dos_replay_with_sync", |b| {
        b.iter(|| std::hint::black_box(bye_dos_detected(true)))
    });
    c.bench_function("ablation/bye_dos_replay_without_sync", |b| {
        b.iter(|| std::hint::black_box(bye_dos_detected(false)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
