//! E2 / Fig. 9 — call-setup delay (INVITE → 180 Ringing) with and without
//! vids, including the paper's per-caller series for callers 3 and 4.
//!
//! Paper result: vids adds ≈100 ms to call setup on average.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use vids_bench::{header, print_once, qos_workload, row, run_qos};

static PRINTED: Once = Once::new();

fn print_figure() {
    let with = run_qos(&qos_workload(9, 4));
    let without = run_qos(&qos_workload(9, 4).without_vids());

    println!("{}", header("E2 / Fig. 9: call setup delay"));
    println!(
        "{}",
        row(
            "setup delay without vids (s)",
            "(baseline)",
            format!("{:.4}", without.setup.mean())
        )
    );
    println!(
        "{}",
        row(
            "setup delay with vids (s)",
            "+0.100",
            format!("{:.4}", with.setup.mean())
        )
    );
    println!(
        "{}",
        row(
            "delay added by vids (s)",
            "~0.100",
            format!("{:.4}", with.setup.mean() - without.setup.mean())
        )
    );
    println!(
        "{}",
        row("calls measured", "-", format!("{}", with.setup.count()))
    );

    // Fig. 9 plots two representative callers (3 and 4): print both series.
    for caller in [3usize, 4] {
        println!("\ncaller {caller} setup-delay series (t s -> with vids s / without s):");
        let w = &with.per_caller_setup[caller];
        let wo = &without.per_caller_setup[caller];
        for (i, ((t, d_with), (_, d_without))) in w.iter().zip(wo.iter()).enumerate() {
            println!(
                "  call {:>2} @ {:>6.1}s: {:.4} / {:.4}",
                i + 1,
                t,
                d_with,
                d_without
            );
        }
        if w.is_empty() {
            println!("  (caller placed no calls in this horizon)");
        }
    }
}

fn bench(c: &mut Criterion) {
    print_once(&PRINTED, print_figure);
    // Kernel: one full call setup through a 1-UA testbed with vids inline.
    c.bench_function("fig9/one_call_setup_with_vids", |b| {
        b.iter(|| {
            let mut config = vids::scenario::TestbedConfig::small(3);
            config.uas_per_site = 1;
            config.workload.callers = 1;
            config.workload.callees = 1;
            config.workload.mean_interarrival_secs = 4.0;
            config.workload.mean_duration_secs = 2.0;
            config.workload.horizon = vids::netsim::time::SimTime::from_secs(10);
            let mut tb = vids::scenario::Testbed::build(&config);
            tb.run_until(vids::netsim::time::SimTime::from_secs(20));
            std::hint::black_box(tb.ua_a_stats(0).setup_delays.len())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
