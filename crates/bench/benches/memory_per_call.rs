//! E5 / §7.3 — per-call memory cost and scaling to thousands of calls.
//!
//! Paper: "All mandatory fields … consume about 450 bytes. Similarly, the
//! RTP state information … requires only 40 bytes", growing linearly with
//! the number of calls, so "vids can monitor thousands of calls at the
//! same time".

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use vids::core::{Config, NullSink, Vids};
use vids::netsim::packet::{Address, Packet, Payload};
use vids::netsim::time::SimTime;
use vids_bench::{header, print_once, row};

static PRINTED: Once = Once::new();

fn invite_packet(i: usize) -> Packet {
    let sdp = vids::sdp::SessionDescription::audio_offer(
        "alice",
        "10.1.0.10",
        20_000 + (i % 10_000) as u16 * 2,
        &[vids::sdp::Codec::G729],
    );
    let req = vids::sip::Request::invite(
        &vids::sip::SipUri::new("alice", "a.example.com"),
        &vids::sip::SipUri::new("bob", "b.example.com"),
        &format!("mem-call-{i}"),
    )
    .with_body(vids::sdp::MIME_TYPE, sdp.to_string());
    Packet {
        src: Address::new(10, 1, 0, 10, 5060),
        dst: Address::new(10, 2, 0, 10, 5060),
        payload: Payload::Sip(req.to_string()),
        id: i as u64,
        sent_at: SimTime::ZERO,
    }
}

fn monitor_with_calls(n: usize) -> Vids {
    let mut vids = Vids::new(Config::default());
    for i in 0..n {
        vids.process(
            &invite_packet(i),
            SimTime::from_millis(i as u64),
            &mut NullSink,
        );
    }
    vids
}

fn print_figure() {
    println!("{}", header("E5 / §7.3: per-call memory cost"));
    println!(
        "{}",
        row(
            "paper per-call state",
            "~490 B",
            "(450 B SIP + 40 B RTP)".to_owned()
        )
    );
    println!(
        "{}",
        row(
            "value accounting",
            "-",
            "Str = 24 B header + capacity; interned Sym = 4 B handle".to_owned(),
        )
    );
    println!(
        "\n{:>8} {:>14} {:>12}",
        "calls", "total bytes", "bytes/call"
    );
    let mut last = 0usize;
    for n in [1usize, 10, 100, 1_000, 5_000] {
        let vids = monitor_with_calls(n);
        let bytes = vids.memory_bytes();
        println!("{:>8} {:>14} {:>12}", n, bytes, bytes / n);
        assert_eq!(vids.monitored_calls(), n);
        last = bytes;
    }
    println!(
        "\n5000 concurrent calls ≈ {:.1} MiB — thousands of calls fit easily (§7.3).",
        last as f64 / (1024.0 * 1024.0)
    );
}

fn bench(c: &mut Criterion) {
    print_once(&PRINTED, print_figure);

    c.bench_function("memory/instantiate_one_call_machine_pair", |b| {
        let mut vids = Vids::new(Config::default());
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            vids.process(
                &invite_packet(i),
                SimTime::from_millis(i as u64),
                &mut NullSink,
            );
            std::hint::black_box(vids.monitored_calls())
        })
    });

    c.bench_function("memory/account_1000_call_factbase", |b| {
        let vids = monitor_with_calls(1_000);
        b.iter(|| std::hint::black_box(vids.memory_bytes()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
