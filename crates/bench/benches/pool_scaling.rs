//! Pool scaling: batch throughput of the sharded engine vs. shard count.
//!
//! Not a paper figure — the 2006 prototype was single-threaded — but the
//! natural follow-on to §7.3's overhead story: the per-call independence the
//! paper argues for is what makes hash-partitioning monitored calls across
//! shards sound. This harness replays a fig. 8-style batch (staggered
//! complete calls with two-way media) through `VidsPool::process_batch` at
//! 1, 2, 4 and 8 shards and reports packets/s, plus criterion timings per
//! shard count.

use std::sync::Once;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use vids::core::{CollectSink, Config, CostModel, NullSink, Vids, VidsPool};
use vids::netsim::packet::Packet;
use vids::netsim::time::SimTime;
use vids_bench::{header, print_once, row, synth_call_batch};

static PRINTED: Once = Once::new();

const CALLS: usize = 150;
const RTP_PER_CALL: usize = 40;

fn pool(shards: usize) -> VidsPool {
    let config = Config::builder().shards(shards).build().unwrap();
    VidsPool::with_cost(config, CostModel::free())
}

/// The unsharded engine over the same stream, packet-at-a-time: the number
/// the pool has to beat for sharding to pay for its routing and merge.
fn plain_engine_pps(batch: &[Packet], passes: usize) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..passes {
        let mut vids = Vids::with_cost(Config::default(), CostModel::free());
        let mut sink = CollectSink::new();
        let start = Instant::now();
        for packet in batch {
            vids.process(packet, packet.sent_at, &mut sink);
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    batch.len() as f64 / best
}

fn print_figure() {
    let batch = synth_call_batch(CALLS, RTP_PER_CALL);
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("{}", header("Pool scaling: batch ingest vs. shard count"));
    println!(
        "{}",
        row(
            "batch",
            "-",
            format!("{} calls / {} packets", CALLS, batch.len())
        )
    );
    println!("{}", row("hardware threads", "-", hw.to_string()));
    if hw == 1 {
        println!("  (single-core host: the pool runs shards sequentially, expect ~1.00x)");
    }
    let plain_pps = plain_engine_pps(&batch, 5);
    println!(
        "{}",
        row(
            "plain engine (no pool)",
            "-",
            format!("{plain_pps:>9.0} pps   baseline")
        )
    );
    let mut base_pps = 0.0;
    for shards in [1usize, 2, 4, 8] {
        // Warm-up pass, then the timed passes on fresh pools.
        let mut best = f64::MAX;
        for _ in 0..5 {
            let mut p = pool(shards);
            let start = Instant::now();
            p.process_batch(&batch, SimTime::ZERO, &mut NullSink);
            best = best.min(start.elapsed().as_secs_f64());
        }
        let pps = batch.len() as f64 / best;
        if shards == 1 {
            base_pps = pps;
        }
        println!(
            "{}",
            row(
                &format!("{shards} shard(s)"),
                "-",
                format!(
                    "{:>9.0} pps   {:>4.2}x vs 1 shard   {:>4.2}x vs plain",
                    pps,
                    pps / base_pps,
                    pps / plain_pps
                )
            )
        );
    }
}

fn bench(c: &mut Criterion) {
    print_once(&PRINTED, print_figure);
    let batch = synth_call_batch(CALLS, RTP_PER_CALL);
    let mut group = c.benchmark_group("pool_scaling");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("plain_engine", |b| {
        b.iter(|| {
            let mut vids = Vids::with_cost(Config::default(), CostModel::free());
            let mut sink = CollectSink::new();
            for packet in std::hint::black_box(&batch) {
                vids.process(packet, packet.sent_at, &mut sink);
            }
            std::hint::black_box(sink.alerts().len())
        })
    });
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(&format!("shards_{shards}"), |b| {
            b.iter(|| {
                let mut p = pool(shards);
                p.process_batch(std::hint::black_box(&batch), SimTime::ZERO, &mut NullSink);
                std::hint::black_box(p.alerts().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
