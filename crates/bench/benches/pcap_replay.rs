//! Wire-tier replay throughput: classic pcap bytes → UDP frame decode →
//! demux → classify → sharded engine, end to end.
//!
//! Not a paper figure — the 2006 prototype consumed a live libpcap feed —
//! but the offline analogue of its deployment path: `vids replay` over a
//! capture is how this engine audits recorded traffic, so the datagrams/s
//! through the full decode path is the number that bounds capture-audit
//! turnaround. Compare against `pool_scaling`'s in-process pps to read
//! off what the wire decode itself costs.

use std::sync::Once;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use vids::core::{Config, CostModel, NullSink, VidsPool};
use vids::ingest::pcap::PcapWriter;
use vids::ingest::record_tap::RecordTap;
use vids::ingest::replay::{replay_pcap, replay_pcap_parallel};
use vids::netsim::packet::{Address, Packet, Payload};
use vids::record::Recorder;
use vids_bench::{header, print_once, row, synth_call_batch};

static PRINTED: Once = Once::new();

const CALLS: usize = 150;
const RTP_PER_CALL: usize = 40;
const FLUSH_PACKETS: usize = 256;

fn to_socket(addr: Address) -> std::net::SocketAddrV4 {
    let [a, b, c, d] = addr.ip.to_be_bytes();
    std::net::SocketAddrV4::new(std::net::Ipv4Addr::new(a, b, c, d), addr.port)
}

/// Renders the synthetic batch to classic pcap capture bytes.
fn to_pcap(batch: &[Packet]) -> Vec<u8> {
    let mut w = PcapWriter::new();
    for p in batch {
        let payload: Vec<u8> = match &p.payload {
            Payload::Sip(text) => text.clone().into_bytes(),
            Payload::Rtp(bytes) | Payload::Raw(bytes) => bytes.clone(),
        };
        w.push_udp(p.sent_at, to_socket(p.src), to_socket(p.dst), &payload);
    }
    w.into_bytes()
}

fn pool(shards: usize) -> VidsPool {
    let config = Config::builder().shards(shards).build().unwrap();
    VidsPool::with_cost(config, CostModel::free())
}

fn replay_pps(capture: &[u8], datagrams: usize, shards: usize, passes: usize, record: bool) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..passes {
        let mut p = pool(shards);
        // The recorder's ring copy rides inside the timed region so the
        // "replay+record" row measures the real tap overhead (the dump
        // path never fires: NullSink traffic raises no alerts here).
        let mut recorder = record.then(|| Recorder::with_defaults(1));
        let mut tap = recorder.as_mut().map(|r| RecordTap::new(r, None));
        let start = Instant::now();
        let report = replay_pcap(
            capture.to_vec(),
            &mut p,
            FLUSH_PACKETS,
            None,
            tap.as_mut(),
            &mut NullSink,
        )
        .unwrap();
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(report.datagrams as usize, datagrams);
    }
    datagrams as f64 / best
}

/// Throughput of the parallel driver: `threads` classifier threads plus
/// the engine's epoch-ring shard workers.
fn parallel_pps(
    capture: &[u8],
    datagrams: usize,
    shards: usize,
    threads: usize,
    passes: usize,
) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..passes {
        let mut p = pool(shards);
        let start = Instant::now();
        let report = replay_pcap_parallel(
            capture.to_vec(),
            &mut p,
            FLUSH_PACKETS,
            threads,
            None,
            None,
            &mut NullSink,
        )
        .unwrap();
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(report.datagrams as usize, datagrams);
    }
    datagrams as f64 / best
}

fn print_figure() {
    let batch = synth_call_batch(CALLS, RTP_PER_CALL);
    let capture = to_pcap(&batch);
    println!("{}", header("Pcap replay: wire-decode + engine throughput"));
    println!(
        "{}",
        row(
            "capture",
            "-",
            format!(
                "{} calls / {} datagrams / {} KiB",
                CALLS,
                batch.len(),
                capture.len() / 1024
            )
        )
    );
    for shards in [1usize, 4] {
        let pps = replay_pps(&capture, batch.len(), shards, 5, false);
        println!(
            "{}",
            row(
                &format!("replay, {shards} shard(s)"),
                "-",
                format!("{pps:>9.0} pps")
            )
        );
    }
    // The same path with the flight recorder's ring tap enabled — the
    // acceptance budget is ≤3% pps overhead against the row above.
    for shards in [1usize, 4] {
        let pps = replay_pps(&capture, batch.len(), shards, 5, true);
        println!(
            "{}",
            row(
                &format!("replay+record, {shards} shard(s)"),
                "-",
                format!("{pps:>9.0} pps")
            )
        );
    }
    // The multi-core scaling grid: parallel classification feeding the
    // epoch-ring pipeline. On a 1-core host the extra threads only add
    // handoff cost; read the grid next to `available_parallelism`.
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{}", row("hw threads", "-", format!("{hw}")));
    for threads in [1usize, 2, 4] {
        for shards in [1usize, 4] {
            let pps = parallel_pps(&capture, batch.len(), shards, threads, 5);
            println!(
                "{}",
                row(
                    &format!("replay, {threads} thread(s) x {shards} shard(s)"),
                    "-",
                    format!("{pps:>9.0} pps")
                )
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    print_once(&PRINTED, print_figure);
    let batch = synth_call_batch(CALLS, RTP_PER_CALL);
    let capture = to_pcap(&batch);
    let mut group = c.benchmark_group("pcap_replay");
    group.throughput(Throughput::Elements(batch.len() as u64));
    for shards in [1usize, 4] {
        group.bench_function(&format!("shards_{shards}"), |b| {
            b.iter(|| {
                let mut p = pool(shards);
                let report = replay_pcap(
                    std::hint::black_box(capture.clone()),
                    &mut p,
                    FLUSH_PACKETS,
                    None,
                    None,
                    &mut NullSink,
                )
                .unwrap();
                std::hint::black_box(report.datagrams)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
