//! E6 / §7.5 — detection accuracy: every recorded attack pattern must be
//! detected (paper: "100% detection accuracy with zero false positive").
//!
//! The printed table runs each §3 attack through the full simulated
//! testbed plus one clean run for the false-positive column.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use vids::attacks::craft::{self, Target};
use vids::attacks::AttackKind;
use vids::core::alert::{labels, AlertKind};
use vids::core::NullSink;
use vids::netsim::time::SimTime;
use vids::netsim::topology::{internet_addr, ua_addr, SITE_A, SITE_B};
use vids::scenario::{Testbed, TestbedConfig};
use vids_bench::print_once;

static PRINTED: Once = Once::new();

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn testbed(seed: u64) -> Testbed {
    let mut config = TestbedConfig::small(seed);
    config.workload.mean_interarrival_secs = 5.0;
    config.workload.mean_duration_secs = 600.0;
    config.workload.horizon = secs(30);
    Testbed::build(&config)
}

fn run_attack(
    seed: u64,
    expected: &str,
    setup: impl FnOnce(&mut Testbed, vids::netsim::engine::NodeId),
) -> bool {
    let mut tb = testbed(seed);
    let (attacker, _) = tb.add_attacker();
    setup(&mut tb, attacker);
    let end = tb.ent.sim.now() + secs(15);
    tb.run_until(end);
    tb.vids_alerts().iter().any(|a| a.label == expected)
}

fn redundant(tb: &mut Testbed, atk: vids::netsim::engine::NodeId, at: SimTime, kind: AttackKind) {
    for k in 0..3u64 {
        tb.attacker_mut(atk)
            .schedule(at + SimTime::from_millis(k * 100), kind.clone());
    }
}

fn print_table() {
    println!("\n=== E6 / §7.5: detection accuracy ===");
    println!("{:<34} {:>10} {:>10}", "attack (§3)", "paper", "measured");
    println!("{}", "-".repeat(58));

    let mut all = true;
    let mut report = |name: &str, detected: bool| {
        all &= detected;
        println!(
            "{:<34} {:>10} {:>10}",
            name,
            "detected",
            if detected { "detected" } else { "MISSED" }
        );
    };

    report(
        "INVITE flooding",
        run_attack(61, labels::INVITE_FLOOD, |tb, atk| {
            tb.attacker_mut(atk).schedule(
                secs(5),
                AttackKind::InviteFlood {
                    target_uri: vids::agents::ua_uri(0, vids::agents::site_domain(SITE_B)),
                    target_addr: ua_addr(SITE_B, 0),
                    rate_pps: 100.0,
                    count: 40,
                },
            );
        }),
    );

    report(
        "BYE DoS (spoofed BYE)",
        run_attack(62, labels::RTP_AFTER_BYE, |tb, atk| {
            let snap = tb.run_until_call_established(0, secs(1), secs(60)).unwrap();
            let at = tb.ent.sim.now() + secs(1);
            let (victim, spoof_src) = snap.endpoints(Target::Callee);
            let message = craft::spoofed_bye(&snap, Target::Callee);
            redundant(
                tb,
                atk,
                at,
                AttackKind::SpoofedBye {
                    victim,
                    message,
                    spoof_src,
                },
            );
        }),
    );

    report(
        "CANCEL DoS (foreign tags)",
        run_attack(63, labels::SPOOFED_CANCEL, |tb, atk| {
            let mut now = tb.ent.sim.now();
            let snap = loop {
                now += SimTime::from_millis(200);
                tb.run_until(now);
                if let Some(s) = tb.sniff_ringing_call(0) {
                    break s;
                }
            };
            let mut lazy = snap;
            lazy.caller_from.set_tag("evil");
            let (victim, spoof_src) = lazy.endpoints(Target::Callee);
            let message = craft::spoofed_cancel(&lazy);
            redundant(
                tb,
                atk,
                now,
                AttackKind::SpoofedCancel {
                    victim,
                    message,
                    spoof_src,
                },
            );
        }),
    );

    report(
        "media spamming",
        run_attack(64, labels::MEDIA_SPAM, |tb, atk| {
            let snap = tb.run_until_call_established(0, secs(1), secs(60)).unwrap();
            let at = tb.ent.sim.now() + secs(1);
            let (seq, ts) = snap.caller_rtp_cursor.unwrap();
            tb.attacker_mut(atk).schedule(
                at,
                AttackKind::MediaSpam {
                    victim: snap.callee_media.unwrap(),
                    ssrc: snap.caller_ssrc.unwrap(),
                    payload_type: 18,
                    start_seq: seq.wrapping_add(1_000),
                    start_timestamp: ts.wrapping_add(200_000),
                    spoof_src: snap.caller_media.unwrap(),
                    rate_pps: 100.0,
                    count: 20,
                },
            );
        }),
    );

    report(
        "RTP flooding",
        run_attack(65, labels::RTP_FOREIGN_SOURCE, |tb, atk| {
            let snap = tb.run_until_call_established(0, secs(1), secs(60)).unwrap();
            let at = tb.ent.sim.now() + secs(1);
            tb.attacker_mut(atk).schedule(
                at,
                AttackKind::RtpFlood {
                    victim: snap.callee_media.unwrap(),
                    payload_type: 18,
                    payload_bytes: 160,
                    rate_pps: 400.0,
                    count: 80,
                },
            );
        }),
    );

    report(
        "codec change",
        run_attack(66, labels::RTP_CODEC_VIOLATION, |tb, atk| {
            let snap = tb.run_until_call_established(0, secs(1), secs(60)).unwrap();
            let at = tb.ent.sim.now() + secs(1);
            let (seq, ts) = snap.caller_rtp_cursor.unwrap();
            tb.attacker_mut(atk).schedule(
                at,
                AttackKind::MediaSpam {
                    victim: snap.callee_media.unwrap(),
                    ssrc: snap.caller_ssrc.unwrap(),
                    payload_type: 0,
                    start_seq: seq,
                    start_timestamp: ts,
                    spoof_src: snap.caller_media.unwrap(),
                    rate_pps: 100.0,
                    count: 20,
                },
            );
        }),
    );

    report(
        "call hijack (re-INVITE)",
        run_attack(67, labels::CALL_HIJACK, |tb, atk| {
            let snap = tb.run_until_call_established(0, secs(1), secs(60)).unwrap();
            let at = tb.ent.sim.now() + secs(1);
            let (victim, spoof_src) = snap.endpoints(Target::Callee);
            let message = craft::spoofed_reinvite(&snap, internet_addr(0).with_port(44_000));
            redundant(
                tb,
                atk,
                at,
                AttackKind::ReinviteHijack {
                    victim,
                    message,
                    spoof_src,
                },
            );
        }),
    );

    report("billing fraud (BYE + RTP)", {
        let mut config = TestbedConfig::small(68);
        config.workload.mean_interarrival_secs = 5.0;
        config.workload.mean_duration_secs = 8.0;
        config.workload.horizon = secs(30);
        config.fraud_caller_0 = Some(secs(5));
        let mut tb = Testbed::build(&config);
        tb.run_until(secs(120));
        tb.vids_alerts()
            .iter()
            .any(|a| a.label == labels::RTP_AFTER_BYE)
    });

    report(
        "DRDoS reflection",
        run_attack(69, labels::RESPONSE_FLOOD, |tb, atk| {
            tb.attacker_mut(atk).schedule(
                secs(5),
                AttackKind::Drdos {
                    reflectors: vec![ua_addr(SITE_B, 0), ua_addr(SITE_B, 1)],
                    victim: ua_addr(SITE_A, 1),
                    per_reflector: 15,
                    rate_pps: 200.0,
                },
            );
        }),
    );

    // False-positive column: a clean 3-minute run.
    let mut config = TestbedConfig::small(70);
    config.uas_per_site = 4;
    config.workload.callers = 4;
    config.workload.callees = 4;
    config.workload.mean_interarrival_secs = 30.0;
    config.workload.mean_duration_secs = 20.0;
    config.workload.horizon = secs(180);
    let mut tb = Testbed::build(&config);
    tb.run_until(secs(240));
    let false_positives = tb
        .vids_alerts()
        .iter()
        .filter(|a| a.kind == AlertKind::Attack)
        .count();
    println!("{}", "-".repeat(58));
    println!(
        "{:<34} {:>10} {:>10}",
        "false positives (clean run)", "0", false_positives
    );
    println!(
        "\noverall: {}",
        if all && false_positives == 0 {
            "100% detection, zero false positives — matches the paper"
        } else {
            "MISMATCH vs paper"
        }
    );
}

fn bench(c: &mut Criterion) {
    print_once(&PRINTED, print_table);
    // Kernel: one spoofed-BYE classification + machine step.
    c.bench_function("accuracy/classify_and_step_bye", |b| {
        use vids::netsim::packet::{Address, Packet, Payload};
        let mut vids = vids::core::Vids::new(vids::core::Config::default());
        let sdp = vids::sdp::SessionDescription::audio_offer(
            "alice",
            "10.1.0.10",
            20_000,
            &[vids::sdp::Codec::G729],
        );
        let inv = vids::sip::Request::invite(
            &vids::sip::SipUri::new("alice", "a.example.com"),
            &vids::sip::SipUri::new("bob", "b.example.com"),
            "bench-call",
        )
        .with_body(vids::sdp::MIME_TYPE, sdp.to_string());
        let pkt = |payload: Payload| Packet {
            src: Address::new(10, 1, 0, 10, 5060),
            dst: Address::new(10, 2, 0, 10, 5060),
            payload,
            id: 0,
            sent_at: SimTime::ZERO,
        };
        vids.process(
            &pkt(Payload::Sip(inv.to_string())),
            SimTime::ZERO,
            &mut NullSink,
        );
        let bye = vids::sip::Request::in_dialog(vids::sip::Method::Bye, &inv, 2, Some("tt"));
        let bye_pkt = pkt(Payload::Sip(bye.to_string()));
        b.iter(|| {
            vids.process(&bye_pkt, SimTime::from_millis(10), &mut NullSink);
            std::hint::black_box(vids.counters().sip_packets)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
