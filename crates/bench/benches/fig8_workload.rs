//! E1 / Fig. 8 — call arrivals and durations observed at enterprise B's
//! proxy over the experiment horizon.
//!
//! The paper plots ~120 minutes of Poisson call arrivals and their random
//! durations. This harness replays the same generator at full scale for the
//! printed series and benches plan generation.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};

use vids::netsim::time::SimTime;
use vids::netsim::workload::{CallPlan, WorkloadSpec};
use vids::scenario::{Testbed, TestbedConfig};
use vids_bench::{header, print_once, row};

static PRINTED: Once = Once::new();

fn print_figure() {
    // Full-scale plan: the paper's 20 callers over 120 minutes.
    let spec = WorkloadSpec::default();
    let plan = CallPlan::generate(&spec, 1);
    println!(
        "{}",
        header("E1 / Fig. 8: call arrivals & durations (120 min plan)")
    );
    println!(
        "{}",
        row("total call attempts", "~O(100s)", plan.len().to_string())
    );
    let durations: Vec<f64> = plan
        .calls()
        .iter()
        .map(|c| c.duration.as_secs_f64())
        .collect();
    let mean_dur = durations.iter().sum::<f64>() / durations.len() as f64;
    println!(
        "{}",
        row("mean call duration (s)", "random", format!("{mean_dur:.1}"))
    );
    println!("\narrivals per 10-minute bin:");
    let mut bins = [0u32; 12];
    for c in plan.calls() {
        let bin = (c.start.as_secs_f64() / 600.0) as usize;
        if bin < bins.len() {
            bins[bin] += 1;
        }
    }
    for (i, n) in bins.iter().enumerate() {
        println!(
            "  {:>3}-{:>3} min: {:>4} {}",
            i * 10,
            (i + 1) * 10,
            n,
            "#".repeat(*n as usize / 2)
        );
    }

    // A short actual simulation confirming proxy B observes the plan.
    let mut config = TestbedConfig::paper(1);
    config.workload.horizon = SimTime::from_secs(240);
    let mut tb = Testbed::build(&config);
    tb.run_until(SimTime::from_secs(360));
    let proxy = tb.proxy_b();
    println!("\n4-minute simulated slice at proxy B:");
    println!(
        "{}",
        row(
            "INVITEs observed",
            "= attempts",
            proxy.arrivals().len().to_string()
        )
    );
    println!(
        "{}",
        row(
            "durations logged",
            "completed calls",
            proxy.durations().len().to_string()
        )
    );
}

fn bench(c: &mut Criterion) {
    print_once(&PRINTED, print_figure);
    let spec = WorkloadSpec::default();
    c.bench_function("fig8/generate_120min_call_plan", |b| {
        b.iter(|| CallPlan::generate(std::hint::black_box(&spec), 1).len())
    });

    // Monitoring the fig. 8 call mix through the sharded engine
    // (VIDS_SHARDS knob; see pool_scaling for the full 1/2/4/8 series).
    let shards = vids_bench::shards_knob();
    let batch = vids_bench::synth_call_batch(120, 30);
    c.bench_function(&format!("fig8/monitor_call_mix_{shards}_shards"), |b| {
        use vids::core::{Config, CostModel, NullSink, VidsPool};
        b.iter(|| {
            let config = Config::builder().shards(shards).build().unwrap();
            let mut pool = VidsPool::with_cost(config, CostModel::free());
            pool.process_batch(std::hint::black_box(&batch), SimTime::ZERO, &mut NullSink);
            std::hint::black_box(pool.monitored_calls())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
