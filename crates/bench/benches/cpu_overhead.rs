//! E4 / §7.3 — CPU overhead of running vids.
//!
//! The paper reports 3.6 % added CPU on the testbed host. Absolute
//! percentages depend on 2006 hardware, so this harness reports both the
//! calibrated *model* (per-packet CPU charges over the testbed workload)
//! and the *measured* wall-clock cost of the real vids pipeline per packet
//! on this machine.

use std::sync::Once;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use vids::core::{Config, CostModel, NullSink, Vids, VidsPool};
use vids::netsim::packet::{Address, Packet, Payload};
use vids::netsim::time::SimTime;
use vids::rtp::packet::RtpPacket;
use vids::scenario::{Testbed, TestbedConfig};
use vids_bench::{header, print_once, row};

static PRINTED: Once = Once::new();

fn rtp_packet(i: u64) -> Packet {
    let rtp = RtpPacket::new(18, (100 + i) as u16, (i * 80) as u32, 7).with_payload(vec![0; 10]);
    Packet {
        src: Address::new(10, 1, 0, 10, 20_000),
        dst: Address::new(10, 2, 0, 10, 30_000),
        payload: Payload::Rtp(rtp.to_bytes()),
        id: i,
        sent_at: SimTime::ZERO,
    }
}

fn sip_invite(call: &str) -> Packet {
    let sdp = vids::sdp::SessionDescription::audio_offer(
        "alice",
        "10.1.0.10",
        20_000,
        &[vids::sdp::Codec::G729],
    );
    let req = vids::sip::Request::invite(
        &vids::sip::SipUri::new("alice", "a.example.com"),
        &vids::sip::SipUri::new("bob", "b.example.com"),
        call,
    )
    .with_body(vids::sdp::MIME_TYPE, sdp.to_string());
    Packet {
        src: Address::new(10, 1, 0, 10, 5060),
        dst: Address::new(10, 2, 0, 10, 5060),
        payload: Payload::Sip(req.to_string()),
        id: 0,
        sent_at: SimTime::ZERO,
    }
}

fn print_figure() {
    // Modeled overhead on a steady-state testbed workload: 20 callers kept
    // nearly saturated so ~20 calls run concurrently, as in the paper's
    // busiest stretches.
    let mut config = TestbedConfig::paper(4);
    config.workload.mean_interarrival_secs = 120.0;
    config.workload.mean_duration_secs = 120.0;
    config.workload.horizon = SimTime::from_secs(480);
    let mut tb = Testbed::build(&config);
    tb.run_until(SimTime::from_secs(540));
    let modeled = tb.vids().unwrap().cpu_overhead();

    // Measured wall-clock per-packet cost of the actual pipeline.
    let mut vids = Vids::new(Config::default());
    vids.process(&sip_invite("cpu-1"), SimTime::ZERO, &mut NullSink);
    let n = 50_000u64;
    let start = Instant::now();
    for i in 0..n {
        vids.process(&rtp_packet(i), SimTime::from_millis(i / 100), &mut NullSink);
    }
    let per_rtp_ns = start.elapsed().as_nanos() as f64 / n as f64;

    let mut vids2 = Vids::new(Config::default());
    let m = 5_000u64;
    let start = Instant::now();
    for i in 0..m {
        vids2.process(
            &sip_invite(&format!("cpu-{i}")),
            SimTime::from_millis(i * 2_000),
            &mut NullSink,
        );
    }
    let per_sip_ns = start.elapsed().as_nanos() as f64 / m as f64;

    // The same pipeline batched through the sharded pool (VIDS_SHARDS knob).
    let shards = vids_bench::shards_knob();
    let batch = vids_bench::synth_call_batch(100, 40);
    let pool_config = Config::builder().shards(shards).build().unwrap();
    let mut pool = VidsPool::with_cost(pool_config, CostModel::free());
    let start = Instant::now();
    pool.process_batch(&batch, SimTime::ZERO, &mut NullSink);
    let per_pool_ns = start.elapsed().as_nanos() as f64 / batch.len() as f64;

    // At the paper's workload (~6000 RTP pps through the perimeter), the
    // measured pipeline would consume this CPU fraction on *this* machine.
    let measured_fraction = 6_000.0 * per_rtp_ns * 1e-9;

    println!("{}", header("E4 / §7.3: CPU overhead"));
    println!(
        "{}",
        row(
            "modeled overhead (2006 host)",
            "3.6 %",
            format!("{:.2} %", modeled * 100.0)
        )
    );
    println!(
        "{}",
        row(
            "pipeline cost per RTP packet",
            "-",
            format!("{per_rtp_ns:.0} ns")
        )
    );
    println!(
        "{}",
        row(
            "pipeline cost per SIP message",
            "-",
            format!("{per_sip_ns:.0} ns")
        )
    );
    println!(
        "{}",
        row(
            "equiv. overhead @6000 pps (this host)",
            "-",
            format!("{:.3} %", measured_fraction * 100.0)
        )
    );
    println!(
        "{}",
        row(
            &format!("pool batch cost per packet ({shards} shards)"),
            "-",
            format!("{per_pool_ns:.0} ns"),
        )
    );
}

fn bench(c: &mut Criterion) {
    print_once(&PRINTED, print_figure);

    let mut vids = Vids::new(Config::default());
    vids.process(&sip_invite("bench-call"), SimTime::ZERO, &mut NullSink);
    let pkt = rtp_packet(1);
    let mut i = 0u64;
    c.bench_function("cpu/vids_process_rtp_packet", |b| {
        b.iter(|| {
            i += 1;
            let mut p = pkt.clone();
            if let Payload::Rtp(bytes) = &mut p.payload {
                // Advance the sequence number so the machine self-loops.
                let seq = (100 + i) as u16;
                bytes[2..4].copy_from_slice(&seq.to_be_bytes());
                let ts = (i as u32) * 80;
                bytes[4..8].copy_from_slice(&ts.to_be_bytes());
            }
            vids.process(&p, SimTime::from_millis(i / 100), &mut NullSink);
            std::hint::black_box(vids.alerts().len())
        })
    });

    c.bench_function("cpu/vids_process_sip_invite", |b| {
        let mut vids = Vids::new(Config::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let pkt = sip_invite(&format!("bench-{i}"));
            vids.process(&pkt, SimTime::from_millis(i * 2_000), &mut NullSink);
            std::hint::black_box(vids.alerts().len())
        })
    });

    c.bench_function("cpu/classify_rtp_only", |b| {
        let pkt = rtp_packet(5);
        b.iter(|| std::hint::black_box(vids::core::classify::classify(&pkt)))
    });

    let shards = vids_bench::shards_knob();
    let batch = vids_bench::synth_call_batch(100, 40);
    c.bench_function(&format!("cpu/pool_batch_{shards}_shards"), |b| {
        b.iter(|| {
            let config = Config::builder().shards(shards).build().unwrap();
            let mut pool = VidsPool::with_cost(config, CostModel::free());
            pool.process_batch(std::hint::black_box(&batch), SimTime::ZERO, &mut NullSink);
            std::hint::black_box(pool.alerts().len())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
