//! Parser/codec throughput: the per-packet cost floors the monitor's §7.3
//! CPU story, so each wire format gets a microbench. Not a paper figure —
//! supporting data for E4.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use vids::rtp::packet::RtpPacket;
use vids::rtp::RtcpPacket;
use vids::sdp::{Codec, SessionDescription};
use vids::sip::md5::md5_hex;
use vids::sip::parse::parse_message;
use vids::sip::{Request, SipUri};

fn bench(c: &mut Criterion) {
    let sdp = SessionDescription::audio_offer("alice", "10.1.0.10", 20_000, &[Codec::G729]);
    let invite = Request::invite(
        &SipUri::new("alice", "a.example.com"),
        &SipUri::new("bob", "b.example.com"),
        "bench-call",
    )
    .with_body(vids::sdp::MIME_TYPE, sdp.to_string())
    .to_string();

    let mut group = c.benchmark_group("parser");
    group.throughput(Throughput::Bytes(invite.len() as u64));
    group.bench_function("sip_parse_invite_with_sdp", |b| {
        b.iter(|| parse_message(std::hint::black_box(&invite)).unwrap())
    });

    // Borrowed-view parse in isolation: this is the classifier's front
    // line (every datagram, before any owned allocation), so the SWAR
    // rewrite's win must be visible here, not just end-to-end.
    group.bench_function("sip_parse_view_invite_with_sdp", |b| {
        b.iter(|| vids::sip::view::parse_view(std::hint::black_box(&invite)).unwrap())
    });

    // Header-scan-only series: the raw SWAR walk every parse does before
    // anything protocol-shaped happens — blank-line split, line
    // iteration, colon split, case-insensitive name probes — measured on
    // the scan primitives directly so scanning bandwidth is isolated
    // from token/URI work.
    let head_len = vids::scan::find_seq(invite.as_bytes(), b"\r\n\r\n").unwrap();
    group.throughput(Throughput::Bytes(head_len as u64));
    group.bench_function("sip_header_scan_only", |b| {
        b.iter(|| {
            let bytes = &std::hint::black_box(&invite).as_bytes()[..head_len];
            let mut rest = bytes;
            let mut hits = 0usize;
            while !rest.is_empty() {
                let line = match vids::scan::find_byte(rest, b'\n') {
                    Some(i) => {
                        let l = &rest[..i];
                        rest = &rest[i + 1..];
                        l.strip_suffix(b"\r").unwrap_or(l)
                    }
                    None => std::mem::take(&mut rest),
                };
                if let Some(colon) = vids::scan::find_byte(line, b':') {
                    let name = &line[..colon];
                    hits += usize::from(
                        vids::scan::eq_ignore_case(name, b"call-id")
                            || vids::scan::eq_ignore_case(name, b"via")
                            || vids::scan::eq_ignore_case(name, b"cseq")
                            || vids::scan::eq_ignore_case(name, b"content-length"),
                    );
                }
            }
            std::hint::black_box(hits)
        })
    });
    group.throughput(Throughput::Bytes(invite.len() as u64));

    let sdp_text = sdp.to_string();
    group.throughput(Throughput::Bytes(sdp_text.len() as u64));
    group.bench_function("sdp_parse_offer", |b| {
        b.iter(|| {
            std::hint::black_box(&sdp_text)
                .parse::<SessionDescription>()
                .unwrap()
        })
    });

    let rtp = RtpPacket::new(18, 100, 8_000, 7)
        .with_payload(vec![0; 10])
        .to_bytes();
    group.throughput(Throughput::Bytes(rtp.len() as u64));
    group.bench_function("rtp_parse", |b| {
        b.iter(|| RtpPacket::parse(std::hint::black_box(&rtp)).unwrap())
    });

    // Header-only decode: what the ingest demux probe runs per media
    // datagram (no payload copy), so the branchless fixed-header path is
    // measured in isolation.
    group.bench_function("rtp_decode_header", |b| {
        use vids::rtp::packet::RtpHeader;
        b.iter(|| RtpHeader::parse(std::hint::black_box(&rtp)).unwrap())
    });

    let rtcp = vids::rtp::RtcpPacket::SenderReport {
        ssrc: 7,
        ntp_timestamp: 1,
        rtp_timestamp: 8_000,
        packet_count: 100,
        octet_count: 1_000,
        reports: vec![Default::default()],
    }
    .to_bytes();
    group.throughput(Throughput::Bytes(rtcp.len() as u64));
    group.bench_function("rtcp_parse_sr", |b| {
        b.iter(|| RtcpPacket::parse(std::hint::black_box(&rtcp)).unwrap())
    });

    // Reject path: a flood of malformed datagrams must be cheap to refuse.
    // Parse errors carry `&'static str` reasons, so a reject allocates
    // nothing; this bench pins the claim with a number.
    let malformed = [
        "HELLO sip:bob@b.example.com SIP/2.0\r\n\r\n",
        "INVITE not-a-uri SIP/2.0\r\n\r\n",
        "SIP/2.0 9xx Nope\r\n\r\n",
        "INVITE sip:bob@b.example.com SIP/2.0\r\nVia: bad\r\n\r\n",
        "INVITE sip:bob@b.example.com SIP/2.0\r\nCSeq: one INVITE\r\n\r\n",
        "INVITE sip:bob@b.example.com SIP/2.0\r\nContent-Length: many\r\n\r\n",
        "INVITE sip:bob@b.example.com SIP/2.0\r\nContent-Length: 9999\r\n\r\ntruncated",
        "INVITE sip:bob@b.example.com SIP/2.0\r\nheader without colon\r\n\r\n",
        "garbage",
    ];
    assert!(malformed.iter().all(|t| parse_message(t).is_err()));
    group.throughput(Throughput::Elements(malformed.len() as u64));
    group.bench_function("sip_parse_reject_malformed", |b| {
        b.iter(|| {
            let mut rejected = 0usize;
            for text in std::hint::black_box(&malformed) {
                rejected += usize::from(parse_message(text).is_err());
            }
            std::hint::black_box(rejected)
        })
    });

    let digest_input = b"ua3:b.example.com:s3cret";
    group.throughput(Throughput::Bytes(digest_input.len() as u64));
    group.bench_function("md5_digest", |b| {
        b.iter(|| md5_hex(std::hint::black_box(digest_input)))
    });
    group.finish();

    // End-to-end floor: the full parse→classify→machine pipeline over a
    // mixed batch, through the sharded pool (VIDS_SHARDS knob).
    let shards = vids_bench::shards_knob();
    let batch = vids_bench::synth_call_batch(60, 20);
    let mut group = c.benchmark_group("parser");
    group.throughput(criterion::Throughput::Elements(batch.len() as u64));
    group.bench_function(&format!("pool_ingest_batch_{shards}_shards"), |b| {
        use vids::core::{Config, CostModel, NullSink, VidsPool};
        use vids::netsim::time::SimTime;
        b.iter(|| {
            let config = Config::builder().shards(shards).build().unwrap();
            let mut pool = VidsPool::with_cost(config, CostModel::free());
            pool.process_batch(std::hint::black_box(&batch), SimTime::ZERO, &mut NullSink);
            std::hint::black_box(pool.counters().sip_packets)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
