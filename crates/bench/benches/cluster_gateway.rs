//! Gateway overhead: the cluster federation layer vs. direct pool ingest.
//!
//! Not a paper figure — the 2006 prototype is one monitor — but the cost
//! question behind DESIGN.md §7j: the gateway re-classifies nothing the
//! pool would not classify anyway, so its overhead is the rendezvous hash,
//! the per-tenant scatter and the cross-node merge. This harness replays
//! the fig. 8-style batch through a 1-node/1-tenant `Cluster` and through
//! a bare `VidsPool` and reports packets/s for both, plus 2- and 4-node
//! rows so the fan-out cost is visible. The 1-node row is the budget line:
//! `scripts/bench_baseline.sh` records it in `BENCH_hotpath.json`, where
//! the gateway is allowed ≤5% under direct ingest.

use std::sync::Once;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use vids::cluster::{Cluster, TenantMap};
use vids::core::{Config, CostModel, NullSink, VidsPool};
use vids::netsim::packet::Packet;
use vids::netsim::time::SimTime;
use vids_bench::{header, print_once, row, synth_call_batch};

static PRINTED: Once = Once::new();

const CALLS: usize = 150;
const RTP_PER_CALL: usize = 40;
const PASSES: usize = 30;

fn cluster(nodes: usize) -> Cluster {
    Cluster::with_cost(
        TenantMap::single(Config::default()),
        nodes,
        CostModel::free(),
    )
}

fn direct_pass(batch: &[Packet]) -> f64 {
    let mut pool = VidsPool::with_cost(Config::default(), CostModel::free());
    let start = Instant::now();
    pool.process_batch(batch, SimTime::ZERO, &mut NullSink);
    start.elapsed().as_secs_f64()
}

fn cluster_pass(batch: &[Packet], nodes: usize) -> f64 {
    let mut c = cluster(nodes);
    let start = Instant::now();
    c.process_packets(batch, SimTime::ZERO, &mut NullSink);
    start.elapsed().as_secs_f64()
}

/// Best-of-N for direct pool and every node count, *interleaved* within
/// each round: on a shared/1-thread host the noise then hits every
/// variant equally instead of biasing whichever ran during a quiet spell.
fn measure(batch: &[Packet], node_counts: &[usize]) -> (f64, Vec<f64>) {
    let mut best_direct = f64::MAX;
    let mut best_nodes = vec![f64::MAX; node_counts.len()];
    for _ in 0..PASSES {
        best_direct = best_direct.min(direct_pass(batch));
        for (slot, &nodes) in best_nodes.iter_mut().zip(node_counts) {
            *slot = slot.min(cluster_pass(batch, nodes));
        }
    }
    let pps = |secs: f64| batch.len() as f64 / secs;
    (pps(best_direct), best_nodes.into_iter().map(pps).collect())
}

fn print_figure() {
    let batch = synth_call_batch(CALLS, RTP_PER_CALL);
    println!(
        "{}",
        header("Cluster gateway: federation overhead vs. direct pool")
    );
    println!(
        "{}",
        row(
            "batch",
            "-",
            format!("{} calls / {} packets", CALLS, batch.len())
        )
    );
    let node_counts = [1usize, 2, 4];
    let (direct, per_nodes) = measure(&batch, &node_counts);
    println!("gateway, direct pool - {direct:.0} pps");
    for (&nodes, &pps) in node_counts.iter().zip(&per_nodes) {
        println!(
            "gateway, {nodes} node(s) - {pps:.0} pps   {:.2}x vs direct",
            pps / direct
        );
    }
    let overhead = 1.0 - per_nodes[0] / direct;
    println!(
        "gateway overhead at 1 node: {:.1}% (budget <= 5%)",
        overhead * 100.0
    );
}

fn bench(c: &mut Criterion) {
    print_once(&PRINTED, print_figure);
    let batch = synth_call_batch(CALLS, RTP_PER_CALL);
    let mut group = c.benchmark_group("cluster_gateway");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("direct_pool", |b| {
        b.iter(|| {
            let mut pool = VidsPool::with_cost(Config::default(), CostModel::free());
            pool.process_batch(std::hint::black_box(&batch), SimTime::ZERO, &mut NullSink);
            std::hint::black_box(pool.alerts().len())
        })
    });
    for nodes in [1usize, 2, 4] {
        group.bench_function(&format!("cluster_{nodes}_nodes"), |b| {
            b.iter(|| {
                let mut cl = cluster(nodes);
                cl.process_packets(std::hint::black_box(&batch), SimTime::ZERO, &mut NullSink);
                std::hint::black_box(cl.alerts().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
