//! The processing-cost model (§7.2–§7.4).
//!
//! The paper measures vids on a Sun Ultra 10 (333 MHz): ≈100 ms added to
//! call setup (dominated by per-message logging "at the granularity of a
//! millisecond", §7.3), ≈1.5 ms added to each RTP packet, and 3.6 % CPU
//! overhead. The reproduction separates the two effects:
//!
//! * **hold time** — how long a packet is delayed at the inline monitor
//!   before being forwarded (drives Figs. 9 and 10);
//! * **CPU time** — how much processor the packet consumes (drives the
//!   §7.3 overhead number).
//!
//! Both are configurable; the defaults are calibrated so the Fig. 7
//! workload reproduces the paper's three headline numbers. A call setup
//! crosses the monitor twice (INVITE in, 180 back), so the 50 ms default
//! SIP hold yields the paper's ≈100 ms setup penalty.

use vids_netsim::packet::{Packet, Payload};
use vids_netsim::time::SimTime;

use crate::classify::Classified;

/// Per-packet cost parameters of the inline monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Forwarding hold per SIP message (parse + state step + ms-granularity
    /// logging on 2006 hardware).
    pub sip_hold: SimTime,
    /// Forwarding hold per RTP packet.
    pub rtp_hold: SimTime,
    /// CPU consumed per SIP message.
    pub sip_cpu: SimTime,
    /// CPU consumed per RTP packet.
    pub rtp_cpu: SimTime,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            sip_hold: SimTime::from_millis(50),
            rtp_hold: SimTime::from_micros(1_500),
            sip_cpu: SimTime::from_micros(500),
            // 9 µs per RTP packet ≈ 3.6 % CPU at the testbed's ~20
            // concurrent G.729 calls (4000 packets/s through the monitor).
            rtp_cpu: SimTime::from_micros(9),
        }
    }
}

impl CostModel {
    /// A zero-cost model: the passive baseline ("without vids").
    pub fn free() -> Self {
        CostModel {
            sip_hold: SimTime::ZERO,
            rtp_hold: SimTime::ZERO,
            sip_cpu: SimTime::ZERO,
            rtp_cpu: SimTime::ZERO,
        }
    }

    /// The forwarding hold for a packet.
    pub fn hold_for(&self, packet: &Packet) -> SimTime {
        match packet.payload {
            Payload::Sip(_) => self.sip_hold,
            Payload::Rtp(_) => self.rtp_hold,
            Payload::Raw(_) => SimTime::ZERO,
        }
    }

    /// The CPU time a packet consumes.
    pub fn cpu_for(&self, packet: &Packet) -> SimTime {
        match packet.payload {
            Payload::Sip(_) => self.sip_cpu,
            Payload::Rtp(_) => self.rtp_cpu,
            Payload::Raw(_) => SimTime::ZERO,
        }
    }

    /// The CPU time a wire-classified datagram consumes. Matches
    /// [`CostModel::cpu_for`] on the equivalent `Packet`: malformed
    /// traffic is charged as the protocol it claimed to be, unmonitored
    /// traffic is free — the replay differential tests depend on the two
    /// accountings agreeing exactly.
    pub fn cpu_for_classified(&self, c: &Classified) -> SimTime {
        match c {
            Classified::Sip { .. } => self.sip_cpu,
            Classified::Rtp { .. } => self.rtp_cpu,
            Classified::Malformed { protocol, .. } => {
                if *protocol == "SIP" {
                    self.sip_cpu
                } else {
                    self.rtp_cpu
                }
            }
            Classified::Ignored => SimTime::ZERO,
        }
    }
}

/// Accumulates CPU busy time to report the §7.3 overhead percentage.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuAccount {
    busy: SimTime,
}

impl CpuAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        CpuAccount::default()
    }

    /// Charges CPU time.
    pub fn charge(&mut self, t: SimTime) {
        self.busy += t;
    }

    /// Total busy time.
    pub fn busy(&self) -> SimTime {
        self.busy
    }

    /// Busy fraction over an elapsed interval (the paper's "increase of CPU
    /// overhead due to running vids").
    pub fn overhead_fraction(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vids_netsim::packet::Address;

    fn pkt(payload: Payload) -> Packet {
        Packet {
            src: Address::default(),
            dst: Address::default(),
            payload,
            id: 0,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn default_holds_match_paper_calibration() {
        let m = CostModel::default();
        // Two SIP crossings during setup: ≈100 ms (paper Fig. 9).
        assert_eq!(
            m.hold_for(&pkt(Payload::Sip("x".into()))) + m.hold_for(&pkt(Payload::Sip("y".into()))),
            SimTime::from_millis(100)
        );
        // RTP: 1.5 ms (paper Fig. 10).
        assert_eq!(
            m.hold_for(&pkt(Payload::Rtp(vec![0]))),
            SimTime::from_micros(1_500)
        );
        assert_eq!(m.hold_for(&pkt(Payload::Raw(vec![0]))), SimTime::ZERO);
    }

    #[test]
    fn cpu_overhead_of_testbed_workload_is_close_to_paper() {
        // ~20 concurrent G.729 calls = 4000 RTP packets/s through the
        // monitor plus a trickle of SIP.
        let m = CostModel::default();
        let mut acct = CpuAccount::new();
        for _ in 0..4_000 {
            acct.charge(m.cpu_for(&pkt(Payload::Rtp(vec![0; 50]))));
        }
        for _ in 0..10 {
            acct.charge(m.cpu_for(&pkt(Payload::Sip("INVITE".into()))));
        }
        let overhead = acct.overhead_fraction(SimTime::from_secs(1));
        assert!(
            (0.025..0.05).contains(&overhead),
            "modeled CPU overhead {overhead} vs paper 3.6 %"
        );
    }

    #[test]
    fn free_model_costs_nothing() {
        let m = CostModel::free();
        assert_eq!(m.hold_for(&pkt(Payload::Sip("x".into()))), SimTime::ZERO);
        assert_eq!(m.cpu_for(&pkt(Payload::Rtp(vec![]))), SimTime::ZERO);
    }

    #[test]
    fn overhead_fraction_handles_zero_elapsed() {
        let acct = CpuAccount::new();
        assert_eq!(acct.overhead_fraction(SimTime::ZERO), 0.0);
    }
}
