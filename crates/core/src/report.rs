//! Post-run alert reporting for administrators (§5: "vids raises an alert
//! flag and notifies administrators for further analysis").
//!
//! [`AlertReport`] aggregates an alert log into per-label counts, a
//! timeline, and CSV export (no extra dependencies — the alert fields are
//! flat).

use std::collections::BTreeMap;
use std::fmt;

use crate::alert::{Alert, AlertKind};

/// An aggregated view over an alert log.
#[derive(Debug, Clone, Default)]
pub struct AlertReport {
    alerts: Vec<Alert>,
}

impl AlertReport {
    /// Builds a report from a log slice.
    pub fn from_alerts(alerts: &[Alert]) -> Self {
        AlertReport {
            alerts: alerts.to_vec(),
        }
    }

    /// Total alerts.
    pub fn total(&self) -> usize {
        self.alerts.len()
    }

    /// Alerts of a given kind.
    pub fn count_kind(&self, kind: AlertKind) -> usize {
        self.alerts.iter().filter(|a| a.kind == kind).count()
    }

    /// Per-label counts, sorted by label.
    pub fn by_label(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for a in &self.alerts {
            *m.entry(a.label.clone()).or_insert(0) += 1;
        }
        m
    }

    /// Distinct calls implicated by at least one alert.
    pub fn affected_calls(&self) -> Vec<String> {
        let mut calls: Vec<String> = self
            .alerts
            .iter()
            .filter_map(|a| a.call_id.clone())
            .collect();
        calls.sort();
        calls.dedup();
        calls
    }

    /// The earliest attack-kind alert, if any — the detection instant the
    /// §7.5 sensitivity analysis cares about.
    pub fn first_attack(&self) -> Option<&Alert> {
        self.alerts.iter().find(|a| a.kind == AlertKind::Attack)
    }

    /// Renders the report as CSV (`time_ms,kind,label,call_id,machine,detail`).
    /// Fields containing commas or quotes are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ms,kind,label,call_id,machine,detail\n");
        for a in &self.alerts {
            let fields = [
                a.time_ms.to_string(),
                a.kind.to_string(),
                a.label.clone(),
                a.call_id.clone().unwrap_or_default(),
                a.machine.clone(),
                a.detail.clone(),
            ];
            let row: Vec<String> = fields.iter().map(|f| csv_escape(f)).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

impl fmt::Display for AlertReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "alert report: {} alerts", self.total())?;
        writeln!(
            f,
            "  attacks: {}  deviations: {}  nondeterminism: {}",
            self.count_kind(AlertKind::Attack),
            self.count_kind(AlertKind::Deviation),
            self.count_kind(AlertKind::Nondeterminism)
        )?;
        for (label, count) in self.by_label() {
            writeln!(f, "  {label:<28} {count}")?;
        }
        let calls = self.affected_calls();
        if !calls.is_empty() {
            writeln!(f, "  affected calls: {}", calls.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(time_ms: u64, kind: AlertKind, label: &str, call: Option<&str>) -> Alert {
        Alert {
            time_ms,
            kind,
            label: label.to_owned(),
            call_id: call.map(str::to_owned),
            machine: "sip".to_owned(),
            detail: String::new(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn aggregates_counts_and_calls() {
        let log = [
            alert(10, AlertKind::Attack, "invite-flood", None),
            alert(20, AlertKind::Attack, "media-spam", Some("c1")),
            alert(30, AlertKind::Deviation, "deviation:SIP.BYE", Some("c1")),
            alert(40, AlertKind::Attack, "media-spam", Some("c2")),
        ];
        let report = AlertReport::from_alerts(&log);
        assert_eq!(report.total(), 4);
        assert_eq!(report.count_kind(AlertKind::Attack), 3);
        assert_eq!(report.count_kind(AlertKind::Deviation), 1);
        assert_eq!(report.by_label()["media-spam"], 2);
        assert_eq!(report.affected_calls(), vec!["c1", "c2"]);
        assert_eq!(report.first_attack().unwrap().time_ms, 10);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let log = [alert(5, AlertKind::Attack, "rtp-after-bye", Some("call-9"))];
        let csv = AlertReport::from_alerts(&log).to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "time_ms,kind,label,call_id,machine,detail"
        );
        assert_eq!(lines.next().unwrap(), "5,ATTACK,rtp-after-bye,call-9,sip,");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut a = alert(1, AlertKind::Deviation, "x", None);
        a.detail = "bad, \"quoted\" value".to_owned();
        let csv = AlertReport::from_alerts(&[a]).to_csv();
        assert!(csv.contains("\"bad, \"\"quoted\"\" value\""));
    }

    #[test]
    fn display_renders_summary() {
        let log = [alert(1, AlertKind::Attack, "call-hijack", Some("c7"))];
        let text = AlertReport::from_alerts(&log).to_string();
        assert!(text.contains("attacks: 1"));
        assert!(text.contains("call-hijack"));
        assert!(text.contains("c7"));
    }

    #[test]
    fn empty_report() {
        let report = AlertReport::from_alerts(&[]);
        assert_eq!(report.total(), 0);
        assert!(report.first_attack().is_none());
        assert!(report.affected_calls().is_empty());
        assert_eq!(report.to_csv().lines().count(), 1);
    }
}
