//! The Analysis Engine (Fig. 3): feeds classified events to the right
//! machines, collects attack-state entries and specification deviations,
//! and raises [`Alert`]s.
//!
//! Alerts flow through the push-based [`AlertSink`] API ([`Vids::process`]);
//! the legacy collect-into-a-`Vec` entry point ([`Vids::process`]) remains as a
//! deprecated shim. The packet path is decomposed into `ingest_*` parts so the
//! sharded [`crate::pool::VidsPool`] can route each part of a packet (per-call
//! machine, per-destination flood machine) to a different shard while reusing
//! exactly this engine's semantics.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use vids_efsm::network::NetworkOutcome;
use vids_efsm::{sym, Event, Sym, TransitionObserver};
use vids_netsim::packet::Packet;
use vids_netsim::time::SimTime;
use vids_telemetry::{
    Counter, Gauge, Registry, ShardSlab, Snapshot, TransitionRecord, TransitionRing,
};

use crate::alert::{Alert, AlertKind};
use crate::classify::{classify, ip_sym, Classified};
use crate::config::Config;
use crate::cost::{CostModel, CpuAccount};
use crate::factbase::{FactBase, FactBaseStats};
use crate::monitor::Monitor;
use crate::sink::AlertSink;

/// Traffic counters the engine maintains alongside the alert log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VidsCounters {
    /// SIP messages processed.
    pub sip_packets: u64,
    /// RTP packets processed.
    pub rtp_packets: u64,
    /// Unparseable SIP/RTP datagrams.
    pub malformed: u64,
    /// Non-VoIP traffic passed through unmonitored.
    pub ignored: u64,
    /// RTP packets matching no monitored call's media coordinates.
    pub unassociated_rtp: u64,
    /// SIP requests for calls vids does not know.
    pub unassociated_sip_requests: u64,
    /// SIP responses matching no monitored call (DRDoS symptom).
    pub unassociated_sip_responses: u64,
}

impl std::ops::AddAssign for VidsCounters {
    fn add_assign(&mut self, rhs: VidsCounters) {
        self.sip_packets += rhs.sip_packets;
        self.rtp_packets += rhs.rtp_packets;
        self.malformed += rhs.malformed;
        self.ignored += rhs.ignored;
        self.unassociated_rtp += rhs.unassociated_rtp;
        self.unassociated_sip_requests += rhs.unassociated_sip_requests;
        self.unassociated_sip_responses += rhs.unassociated_sip_responses;
    }
}

/// How often idle call networks are advanced and finished calls evicted.
/// Public so a cluster gateway can mirror the pool's sweep-interval gate
/// when accounting batch-level telemetry exactly once for a global batch.
pub const SWEEP_INTERVAL_MS: u64 = 100;

/// A SIP response that matched no monitored call. The pool detects the miss
/// on the call-owning shard and counts it on the destination-owning shard's
/// DRDoS reflection machine.
pub(crate) struct ResponseMiss {
    /// The responder (reflection source).
    pub src_ip: Sym,
}

/// An alert scope that renders only on the suspicious (cold) path. The
/// clean warm path carries this enum by value — never the `format!` the
/// flood/registration scopes used to pay per packet.
#[derive(Clone, Copy)]
enum Scope<'a> {
    /// A call-scoped delivery: the Call-ID text.
    Call(&'a str),
    /// A registration delivery, rendered `aor:<aor>`.
    Aor(Sym),
    /// A destination-pinned flood delivery, rendered `dst:<ip-word>`.
    Dst(u32),
}

impl fmt::Display for Scope<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Call(id) => f.write_str(id),
            Scope::Aor(aor) => write!(f, "aor:{aor}"),
            Scope::Dst(ip) => write!(f, "dst:{ip}"),
        }
    }
}

/// The engine's telemetry attachment: one shard slab plus a transition
/// ring. Recording is relaxed-atomic (slab) or overwrite-in-place (ring),
/// so the warm packet path stays allocation-free with telemetry on.
pub(crate) struct Telemetry {
    /// Metric slot block shared with the owning [`Registry`].
    slab: Arc<ShardSlab>,
    /// Recent transitions, tagged by scope for alert forensics.
    ring: TransitionRing,
    /// Present only when this engine owns its registry (standalone use);
    /// pool shards record into slabs owned by the pool's registry.
    registry: Option<Arc<Registry>>,
}

/// Observer wired into the EFSM network for one ingest: counts transitions
/// on the slab and pushes scope-tagged records into the ring. Holding the
/// `Option` (rather than requiring telemetry) keeps the telemetry-off path
/// a single branch.
struct RingObserver<'a> {
    tel: Option<&'a mut Telemetry>,
    scope: Sym,
}

impl TransitionObserver for RingObserver<'_> {
    #[inline]
    fn on_transition(
        &mut self,
        time_ms: u64,
        machine: Sym,
        event: Sym,
        from: Sym,
        to: Sym,
        label: Option<Sym>,
    ) {
        if let Some(tel) = self.tel.as_deref_mut() {
            tel.slab.inc(Counter::Transitions);
            tel.ring.push(TransitionRecord {
                time_ms,
                scope: self.scope,
                machine,
                event,
                from,
                to,
                label,
            });
        }
    }
}

/// The vids intrusion detection system. Feed it every packet crossing the
/// monitoring point via [`Vids::process`]; read the persistent alert
/// log back with [`Vids::alerts`].
pub struct Vids {
    config: Config,
    cost: CostModel,
    factbase: FactBase,
    alerts: Vec<Alert>,
    dedup: HashSet<(String, String)>,
    counters: VidsCounters,
    cpu: CpuAccount,
    last_sweep_ms: u64,
    telemetry: Option<Telemetry>,
}

impl Vids {
    /// Creates a monitor with the default cost model.
    pub fn new(config: Config) -> Self {
        Vids::with_cost(config, CostModel::default())
    }

    /// Creates a monitor with an explicit cost model.
    pub fn with_cost(config: Config, cost: CostModel) -> Self {
        Vids {
            factbase: FactBase::new(config),
            config,
            cost,
            alerts: Vec::new(),
            dedup: HashSet::new(),
            counters: VidsCounters::default(),
            cpu: CpuAccount::new(),
            last_sweep_ms: 0,
            telemetry: None,
        }
    }

    /// Enables telemetry on this standalone engine: allocates a one-shard
    /// [`Registry`] plus a transition ring of `ring_capacity` records and
    /// returns the registry for snapshotting. All storage is allocated
    /// here, up front; subsequent recording is allocation-free.
    pub fn enable_telemetry(&mut self, ring_capacity: usize) -> Arc<Registry> {
        let registry = Arc::new(Registry::new(1));
        self.telemetry = Some(Telemetry {
            slab: registry.shard_slab(0),
            ring: TransitionRing::new(ring_capacity),
            registry: Some(Arc::clone(&registry)),
        });
        registry
    }

    /// Attaches a pool-owned slab (shard engines record into the pool's
    /// registry; snapshots are taken by the pool, not per shard).
    pub(crate) fn attach_telemetry(&mut self, slab: Arc<ShardSlab>, ring_capacity: usize) {
        self.telemetry = Some(Telemetry {
            slab,
            ring: TransitionRing::new(ring_capacity),
            registry: None,
        });
    }

    /// Refreshes the gauges (live calls, memory) on this engine's slab.
    pub(crate) fn refresh_telemetry_gauges(&self) {
        if let Some(tel) = &self.telemetry {
            tel.slab
                .set_gauge(Gauge::LiveCalls, self.factbase.call_count() as u64);
            tel.slab
                .set_gauge(Gauge::MemoryBytes, self.factbase.memory_bytes() as u64);
        }
    }

    /// A snapshot of this engine's registry at engine time `now`, when
    /// telemetry was enabled via [`Vids::enable_telemetry`]. Engines inside
    /// a pool return `None`; snapshot through the pool instead.
    pub fn telemetry_snapshot(&self, now: SimTime) -> Option<Snapshot> {
        let registry = self.telemetry.as_ref()?.registry.as_ref()?;
        self.refresh_telemetry_gauges();
        Some(registry.snapshot(now.as_millis()))
    }

    /// One-branch counter mirror; a no-op with telemetry off.
    #[inline]
    fn tel_inc(&self, c: Counter) {
        if let Some(tel) = &self.telemetry {
            tel.slab.inc(c);
        }
    }

    /// Like [`Vids::tel_inc`] for bulk increments.
    #[inline]
    fn tel_add(&self, c: Counter, n: u64) {
        if let Some(tel) = &self.telemetry {
            tel.slab.add(c, n);
        }
    }

    /// Renders the ring records belonging to `scope`, oldest → newest.
    /// Called only on the suspicious path (an alert is being built), never
    /// for clean warm packets.
    fn render_trace(&self, scope: Sym) -> Vec<String> {
        match &self.telemetry {
            Some(tel) => tel
                .ring
                .iter()
                .filter(|r| r.scope == scope)
                .map(TransitionRecord::render)
                .collect(),
            None => Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The cost model (the inline tap charges holds from it).
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// All alerts raised so far, in order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Traffic counters.
    pub fn counters(&self) -> VidsCounters {
        self.counters
    }

    /// The number of calls currently monitored.
    pub fn monitored_calls(&self) -> usize {
        self.factbase.call_count()
    }

    /// Fact-base lifetime statistics.
    pub fn factbase_stats(&self) -> FactBaseStats {
        self.factbase.stats()
    }

    /// Current fact-base memory footprint (E5).
    pub fn memory_bytes(&self) -> usize {
        self.factbase.memory_bytes()
    }

    /// Direct fact-base access for introspection.
    pub fn factbase(&self) -> &FactBase {
        &self.factbase
    }

    /// Freezes the EFSM state of one monitored call — per-machine states,
    /// locals and call globals — for forensic dumps. `None` when the call
    /// is not (or no longer) monitored.
    pub fn call_snapshot(&self, call_id: &str) -> Option<crate::snapshot::CallSnapshot> {
        let record = self.factbase.call(call_id)?;
        Some(crate::snapshot::CallSnapshot::of_network(
            call_id,
            &record.network,
        ))
    }

    /// CPU busy time accumulated by the cost model.
    pub fn cpu_busy(&self) -> SimTime {
        self.cpu.busy()
    }

    /// CPU overhead fraction over an elapsed monitoring interval (§7.3).
    pub fn cpu_overhead(&self, elapsed: SimTime) -> f64 {
        self.cpu.overhead_fraction(elapsed)
    }

    /// Processes one packet at monitor time `now`, pushing any alerts it
    /// raises into `sink` (they are also appended to the persistent log).
    pub fn process<S: AlertSink + ?Sized>(&mut self, packet: &Packet, now: SimTime, sink: &mut S) {
        let now_ms = now.as_millis();
        self.cpu.charge(self.cost.cpu_for(packet));
        self.maintain(now_ms, sink);
        self.dispatch(classify(packet), now_ms, sink);
    }

    /// Advances idle timers and evicts finished calls, pushing timer-driven
    /// alerts into `sink`. Called automatically from the packet path every
    /// `SWEEP_INTERVAL_MS`; call explicitly to flush at the end of a run.
    pub fn tick<S: AlertSink + ?Sized>(&mut self, now: SimTime, sink: &mut S) {
        self.last_sweep_ms = 0; // force
        self.maintain(now.as_millis(), sink);
    }

    /// Routes one classified packet through the machinery. The pool calls
    /// the finer-grained `ingest_*` parts directly instead.
    fn dispatch<S: AlertSink + ?Sized>(
        &mut self,
        classified: Classified,
        now_ms: u64,
        sink: &mut S,
    ) {
        match classified {
            Classified::Sip {
                call_id,
                event,
                is_initial_invite,
                is_request,
                dst_ip,
            } => {
                if event.name == sym::SIP_REGISTER {
                    self.ingest_register(event, now_ms, sink);
                    return;
                }
                if event.name == sym::SIP_INVITE {
                    self.ingest_invite_flood(event.clone(), dst_ip, now_ms, sink);
                }
                if let Some(miss) = self.ingest_call_event(
                    call_id,
                    event,
                    is_initial_invite,
                    is_request,
                    now_ms,
                    sink,
                ) {
                    self.ingest_response_flood(dst_ip, miss.src_ip, now_ms, sink);
                }
            }
            Classified::Rtp { event } => self.ingest_rtp(event, now_ms, sink),
            Classified::Malformed { protocol, reason } => {
                self.ingest_malformed(protocol, reason, now_ms, sink)
            }
            Classified::Ignored => {
                self.counters.ignored += 1;
                self.tel_inc(Counter::Ignored);
            }
        }
    }

    /// REGISTER traffic crossing the perimeter, tracked per address-of-record
    /// by the registration machine (extension: the unregister /
    /// registration-hijack attack).
    pub(crate) fn ingest_register<S: AlertSink + ?Sized>(
        &mut self,
        event: Event,
        now_ms: u64,
        sink: &mut S,
    ) {
        self.counters.sip_packets += 1;
        self.tel_inc(Counter::SipPackets);
        let aor = event.sym_arg(sym::AOR).unwrap_or_default();
        let mut obs = RingObserver {
            tel: self.telemetry.as_mut(),
            scope: aor,
        };
        let target = self.factbase.solo_machine();
        let net = self.factbase.registration_mut(aor);
        net.advance_time_observed(now_ms, &mut obs);
        let outcome = net.deliver_observed(target, event, now_ms, &mut obs);
        self.absorb(outcome, Scope::Aor(aor), aor, now_ms, None, sink);
    }

    /// Fig. 4: every INVITE also feeds the per-destination flooding
    /// detector, attack or not. This is the destination-pinned part of an
    /// INVITE; [`Vids::ingest_call_event`] is the call-pinned part.
    pub(crate) fn ingest_invite_flood<S: AlertSink + ?Sized>(
        &mut self,
        event: Event,
        dst_ip: u32,
        now_ms: u64,
        sink: &mut S,
    ) {
        let scope = ip_sym(dst_ip);
        let mut obs = RingObserver {
            tel: self.telemetry.as_mut(),
            scope,
        };
        let target = self.factbase.solo_machine();
        let net = self.factbase.invite_flood_mut(dst_ip);
        net.advance_time_observed(now_ms, &mut obs);
        let outcome = net.deliver_observed(target, event, now_ms, &mut obs);
        self.absorb(outcome, Scope::Dst(dst_ip), scope, now_ms, None, sink);
    }

    /// The call-pinned part of a non-REGISTER SIP packet: delivery to the
    /// per-call SIP machine, the unassociated-request deviation, or — for a
    /// response matching no monitored call — a [`ResponseMiss`] the caller
    /// must feed to the destination's DRDoS reflection detector.
    pub(crate) fn ingest_call_event<S: AlertSink + ?Sized>(
        &mut self,
        call_id: Sym,
        event: Event,
        is_initial_invite: bool,
        is_request: bool,
        now_ms: u64,
        sink: &mut S,
    ) -> Option<ResponseMiss> {
        self.counters.sip_packets += 1;
        self.tel_inc(Counter::SipPackets);
        let known = self.factbase.call_idx(call_id);
        // Per-engine state budget: at quota, new dialogs are refused (and
        // counted) while packets for already-tracked calls keep flowing.
        // The INVITE still feeds the destination's flood detector, which
        // runs before this call-pinned part.
        if known.is_none()
            && is_initial_invite
            && self.config.max_tracked_calls > 0
            && self.factbase.call_count() >= self.config.max_tracked_calls
        {
            self.tel_inc(Counter::CallQuotaDrops);
            return None;
        }
        if known.is_some() || is_initial_invite {
            let idx = match known {
                Some(idx) => idx,
                None => {
                    self.tel_inc(Counter::CallsCreated);
                    self.factbase.create_call_idx(call_id, now_ms)
                }
            };
            let sip = self.factbase.sip_machine();
            let mut obs = RingObserver {
                tel: self.telemetry.as_mut(),
                scope: call_id,
            };
            let record = self.factbase.record_mut(idx);
            // Cached deadline: scan the timer maps only when something is
            // actually due, not on every packet.
            let mut outcome = if record.next_timer_ms <= now_ms {
                record.network.advance_time_observed(now_ms, &mut obs)
            } else {
                NetworkOutcome::default()
            };
            let delivered = record
                .network
                .deliver_observed(sip, event, now_ms, &mut obs);
            outcome.alerts.extend(delivered.alerts);
            outcome.deviations.extend(delivered.deviations);
            outcome.nondeterministic |= delivered.nondeterministic;
            outcome.transitions += delivered.transitions;
            outcome.sync_deliveries += delivered.sync_deliveries;
            self.factbase.refresh_media_index_idx(idx);
            // The delivery may have armed/fired timers or changed finality:
            // re-file the call under its next wake deadline.
            self.factbase.reindex_idx(idx);
            self.absorb(
                outcome,
                Scope::Call(call_id.as_str()),
                call_id,
                now_ms,
                Some(call_id.as_str()),
                sink,
            );
        } else if is_request {
            // A non-dialog-forming request for an unknown call:
            // a specification anomaly worth an alert.
            self.counters.unassociated_sip_requests += 1;
            self.tel_inc(Counter::UnassociatedSipRequests);
            self.raise(
                now_ms,
                AlertKind::Deviation,
                format!("unassociated-request:{}", event.name),
                Some(call_id.as_str().to_owned()),
                "engine",
                format!("request for unmonitored call {call_id}"),
                self.render_trace(call_id),
                sink,
            );
        } else {
            // A response matching no monitored call: DRDoS reflection
            // evidence, counted against its destination.
            self.counters.unassociated_sip_responses += 1;
            self.tel_inc(Counter::UnassociatedSipResponses);
            return Some(ResponseMiss {
                src_ip: event.sym_arg(sym::SRC_IP).unwrap_or_default(),
            });
        }
        None
    }

    /// Delivers one unassociated-response observation to the destination's
    /// response-flood machine.
    pub(crate) fn ingest_response_flood<S: AlertSink + ?Sized>(
        &mut self,
        dst_ip: u32,
        src_ip: Sym,
        now_ms: u64,
        sink: &mut S,
    ) {
        let scope = ip_sym(dst_ip);
        let mut obs = RingObserver {
            tel: self.telemetry.as_mut(),
            scope,
        };
        let target = self.factbase.solo_machine();
        let net = self.factbase.response_flood_mut(dst_ip);
        net.advance_time_observed(now_ms, &mut obs);
        let synthetic = Event::data(sym::SIP_RESPONSE_UNASSOCIATED).with_sym(sym::SRC_IP, src_ip);
        let outcome = net.deliver_observed(target, synthetic, now_ms, &mut obs);
        self.absorb(outcome, Scope::Dst(dst_ip), scope, now_ms, None, sink);
    }

    /// An RTP packet: grouped with its call via the media index published
    /// by the SIP machine, or flagged as unassociated.
    pub(crate) fn ingest_rtp<S: AlertSink + ?Sized>(
        &mut self,
        event: Event,
        now_ms: u64,
        sink: &mut S,
    ) {
        self.counters.rtp_packets += 1;
        self.tel_inc(Counter::RtpPackets);
        let dst_ip = event.sym_arg(sym::DST_IP).unwrap_or_default();
        let dst_port = event.uint_arg(sym::DST_PORT).unwrap_or(0);
        match self.factbase.media_lookup_idx(dst_ip, dst_port) {
            Some(idx) => {
                let call_id = self.factbase.id_of(idx);
                let rtp = self.factbase.rtp_machine();
                let mut obs = RingObserver {
                    tel: self.telemetry.as_mut(),
                    scope: call_id,
                };
                let record = self.factbase.record_mut(idx);
                // Cached deadline: scan the timer maps only when something
                // is actually due, not on every packet.
                let mut outcome = if record.next_timer_ms <= now_ms {
                    record.network.advance_time_observed(now_ms, &mut obs)
                } else {
                    NetworkOutcome::default()
                };
                let delivered = record
                    .network
                    .deliver_observed(rtp, event, now_ms, &mut obs);
                outcome.alerts.extend(delivered.alerts);
                outcome.deviations.extend(delivered.deviations);
                outcome.nondeterministic |= delivered.nondeterministic;
                outcome.transitions += delivered.transitions;
                outcome.sync_deliveries += delivered.sync_deliveries;
                // Warm RTP packets take the active→active self-loop, which
                // re-arms nothing — this reindex is then a no-op compare,
                // keeping the warm path allocation-free.
                self.factbase.reindex_idx(idx);
                self.absorb(
                    outcome,
                    Scope::Call(call_id.as_str()),
                    call_id,
                    now_ms,
                    Some(call_id.as_str()),
                    sink,
                );
            }
            None => {
                self.counters.unassociated_rtp += 1;
                self.tel_inc(Counter::UnassociatedRtp);
                self.raise(
                    now_ms,
                    AlertKind::Deviation,
                    "unassociated-rtp".to_owned(),
                    None,
                    "engine",
                    format!("RTP to {dst_ip}:{dst_port} outside any session"),
                    Vec::new(),
                    sink,
                );
            }
        }
    }

    /// An unparseable SIP/RTP datagram.
    pub(crate) fn ingest_malformed<S: AlertSink + ?Sized>(
        &mut self,
        protocol: &'static str,
        reason: &'static str,
        now_ms: u64,
        sink: &mut S,
    ) {
        self.counters.malformed += 1;
        self.tel_inc(Counter::Malformed);
        self.raise(
            now_ms,
            AlertKind::Deviation,
            format!("malformed-{}", protocol.to_ascii_lowercase()),
            None,
            "classifier",
            reason.to_owned(),
            Vec::new(),
            sink,
        );
    }

    /// Forced sweep regardless of the interval gate; the pool applies its
    /// own batch-level gating and then calls this on every shard.
    pub(crate) fn force_maintain<S: AlertSink + ?Sized>(&mut self, now_ms: u64, sink: &mut S) {
        self.last_sweep_ms = now_ms;
        self.sweep_calls(now_ms, sink);
    }

    fn maintain<S: AlertSink + ?Sized>(&mut self, now_ms: u64, sink: &mut S) {
        if now_ms.saturating_sub(self.last_sweep_ms) < SWEEP_INTERVAL_MS {
            return;
        }
        self.last_sweep_ms = now_ms;
        // Pool shards are swept through `force_maintain`, where the pool
        // counts one batch-level sweep on its own slab; counting here would
        // make the total vary with shard count.
        self.tel_inc(Counter::TimerSweeps);
        self.sweep_calls(now_ms, sink);
    }

    fn sweep_calls<S: AlertSink + ?Sized>(&mut self, now_ms: u64, sink: &mut S) {
        // Only calls whose wake deadline fell due are visited: an armed
        // timer, a freshly-final network awaiting its eviction stamp, or a
        // grace period running out. A call with none of those would take no
        // transitions under `advance_time_observed` anyway, so skipping it
        // is alert-identical to the old full scan — at O(expiring) instead
        // of O(live calls · log). `due_calls` returns text order, keeping
        // sweep output independent of interning/hash order so single-engine
        // runs stay comparable with sharded ones.
        let due = self.factbase.due_calls(now_ms);
        for &idx in &due {
            let id = self.factbase.id_of(idx);
            let mut obs = RingObserver {
                tel: self.telemetry.as_mut(),
                scope: id,
            };
            let record = self.factbase.record_mut(idx);
            let outcome = record.network.advance_time_observed(now_ms, &mut obs);
            if outcome.transitions > 0 || outcome.is_suspicious() {
                self.absorb(
                    outcome,
                    Scope::Call(id.as_str()),
                    id,
                    now_ms,
                    Some(id.as_str()),
                    sink,
                );
            }
        }
        let evicted = self.factbase.sweep_due(&due, now_ms);
        self.tel_add(Counter::CallsEvicted, evicted.len() as u64);
    }

    /// Converts a network outcome into deduplicated alerts. `scope_sym` is
    /// the interned form of the scope, used to pull the scope's transition
    /// history out of the telemetry ring for alert forensics. `scope` is
    /// rendered only past the clean-path early return, so the per-packet
    /// call sites never pay its formatting.
    fn absorb<S: AlertSink + ?Sized>(
        &mut self,
        outcome: NetworkOutcome,
        scope: Scope<'_>,
        scope_sym: Sym,
        now_ms: u64,
        call_id: Option<&str>,
        sink: &mut S,
    ) {
        self.tel_add(Counter::SyncDeliveries, outcome.sync_deliveries as u64);
        if !outcome.is_suspicious() && !outcome.nondeterministic {
            return; // the common clean path: no trace rendering, no allocs
        }
        let trace = self.render_trace(scope_sym);
        for a in outcome.alerts {
            self.raise(
                a.time_ms, // keep machine time
                AlertKind::Attack,
                a.label,
                call_id.map(str::to_owned),
                &a.machine,
                format!("scope {scope}"),
                trace.clone(),
                sink,
            );
        }
        for d in outcome.deviations {
            self.raise(
                d.time_ms,
                AlertKind::Deviation,
                format!("deviation:{}", d.event.name),
                call_id.map(str::to_owned),
                &d.machine,
                d.event.to_string(),
                trace.clone(),
                sink,
            );
        }
        if outcome.nondeterministic {
            self.raise(
                now_ms,
                AlertKind::Nondeterminism,
                "nondeterministic-machine".to_owned(),
                call_id.map(str::to_owned),
                "engine",
                format!("scope {scope}"),
                trace,
                sink,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn raise<S: AlertSink + ?Sized>(
        &mut self,
        time_ms: u64,
        kind: AlertKind,
        label: String,
        call_id: Option<String>,
        machine: &str,
        detail: String,
        trace: Vec<String>,
        sink: &mut S,
    ) {
        let scope = call_id.clone().unwrap_or_else(|| detail.clone());
        if !self.dedup.insert((scope, label.clone())) {
            return;
        }
        self.tel_inc(match kind {
            AlertKind::Attack => Counter::AlertsAttack,
            AlertKind::Deviation => Counter::AlertsDeviation,
            AlertKind::Nondeterminism => Counter::AlertsNondeterminism,
        });
        let alert = Alert {
            time_ms,
            kind,
            label,
            call_id,
            machine: machine.to_owned(),
            detail,
            trace,
        };
        self.alerts.push(alert.clone());
        sink.accept(alert);
    }
}

impl Monitor for Vids {
    fn process(&mut self, packet: &Packet, now: SimTime, sink: &mut dyn AlertSink) {
        self.process(packet, now, sink);
    }

    fn tick(&mut self, now: SimTime, sink: &mut dyn AlertSink) {
        self.tick(now, sink);
    }

    fn alerts(&self) -> &[Alert] {
        Vids::alerts(self)
    }

    fn counters(&self) -> VidsCounters {
        Vids::counters(self)
    }

    fn memory_bytes(&self) -> usize {
        Vids::memory_bytes(self)
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::alert::labels;
    use crate::sink::{CollectSink, NullSink};
    use vids_netsim::packet::{Address, Payload};
    use vids_rtp::packet::RtpPacket;
    use vids_sdp::{Codec, SessionDescription};
    use vids_sip::message::Request;
    use vids_sip::{Method, SipUri, StatusCode};

    const CALLER: Address = Address::new(10, 1, 0, 10, 5060);
    const CALLEE: Address = Address::new(10, 2, 0, 10, 5060);

    /// Sink-API driver used throughout: collects what one packet raised.
    fn process(vids: &mut Vids, packet: &Packet, now: SimTime) -> Vec<Alert> {
        let mut sink = CollectSink::new();
        vids.process(packet, now, &mut sink);
        sink.into_alerts()
    }

    fn pkt(src: Address, dst: Address, payload: Payload) -> Packet {
        Packet {
            src,
            dst,
            payload,
            id: 0,
            sent_at: SimTime::ZERO,
        }
    }

    fn invite(call_id: &str) -> Request {
        let sdp = SessionDescription::audio_offer("alice", "10.1.0.10", 20_000, &[Codec::G729]);
        Request::invite(
            &SipUri::new("alice", "a.example.com"),
            &SipUri::new("bob", "b.example.com"),
            call_id,
        )
        .with_body(vids_sdp::MIME_TYPE, sdp.to_string())
    }

    /// Drives a full clean call through the engine.
    fn clean_call(vids: &mut Vids, call_id: &str) {
        let inv = invite(call_id);
        process(
            vids,
            &pkt(CALLER, CALLEE, Payload::Sip(inv.to_string())),
            SimTime::from_millis(0),
        );
        let ringing = inv.response(StatusCode::RINGING).with_to_tag("tt");
        process(
            vids,
            &pkt(CALLEE, CALLER, Payload::Sip(ringing.to_string())),
            SimTime::from_millis(60),
        );
        let answer = SessionDescription::audio_offer("bob", "10.2.0.10", 30_000, &[Codec::G729]);
        let ok = inv
            .response(StatusCode::OK)
            .with_to_tag("tt")
            .with_body(vids_sdp::MIME_TYPE, answer.to_string());
        process(
            vids,
            &pkt(CALLEE, CALLER, Payload::Sip(ok.to_string())),
            SimTime::from_millis(120),
        );
        let ack = Request::in_dialog(Method::Ack, &inv, 1, Some("tt"));
        process(
            vids,
            &pkt(CALLER, CALLEE, Payload::Sip(ack.to_string())),
            SimTime::from_millis(180),
        );
        // A little media both ways.
        for i in 0..20u16 {
            let fwd = RtpPacket::new(18, 100 + i, (i as u32) * 80, 7).with_payload(vec![0; 10]);
            process(
                vids,
                &pkt(
                    CALLER.with_port(20_000),
                    CALLEE.with_port(30_000),
                    Payload::Rtp(fwd.to_bytes()),
                ),
                SimTime::from_millis(200 + i as u64 * 10),
            );
            let rev = RtpPacket::new(18, 500 + i, (i as u32) * 80, 9).with_payload(vec![0; 10]);
            process(
                vids,
                &pkt(
                    CALLEE.with_port(30_000),
                    CALLER.with_port(20_000),
                    Payload::Rtp(rev.to_bytes()),
                ),
                SimTime::from_millis(205 + i as u64 * 10),
            );
        }
        let bye = Request::in_dialog(Method::Bye, &inv, 2, Some("tt"));
        process(
            vids,
            &pkt(CALLER, CALLEE, Payload::Sip(bye.to_string())),
            SimTime::from_millis(500),
        );
        let bye_ok = bye.response(StatusCode::OK);
        process(
            vids,
            &pkt(CALLEE, CALLER, Payload::Sip(bye_ok.to_string())),
            SimTime::from_millis(560),
        );
    }

    #[test]
    fn clean_call_raises_no_alerts_and_gets_evicted() {
        let mut vids = Vids::new(Config::default());
        clean_call(&mut vids, "clean-1");
        assert!(vids.alerts().is_empty(), "alerts: {:?}", vids.alerts());
        assert_eq!(vids.monitored_calls(), 1);
        // Flush timers: the first tick marks the call final, the second
        // (past the eviction grace period) removes it.
        vids.tick(SimTime::from_secs(30), &mut NullSink);
        vids.tick(SimTime::from_secs(40), &mut NullSink);
        assert_eq!(vids.monitored_calls(), 0);
        assert_eq!(vids.factbase_stats().calls_evicted, 1);
        let c = vids.counters();
        assert_eq!(c.sip_packets, 6);
        assert_eq!(c.rtp_packets, 40);
        assert_eq!(c.malformed, 0);
        assert_eq!(c.unassociated_rtp, 0);
    }

    #[test]
    fn invite_flood_is_detected_across_calls() {
        let mut vids = Vids::new(Config::default());
        let n = vids.config().invite_flood_n;
        let mut raised = Vec::new();
        for i in 0..=n {
            let inv = invite(&format!("flood-{i}"));
            raised.extend(process(
                &mut vids,
                &pkt(CALLER, CALLEE, Payload::Sip(inv.to_string())),
                SimTime::from_millis(i * 5),
            ));
        }
        assert!(
            raised.iter().any(|a| a.label == labels::INVITE_FLOOD),
            "alerts: {raised:?}"
        );
    }

    #[test]
    fn call_quota_refuses_new_dialogs_but_keeps_tracked_ones() {
        let mut cfg = Config::default();
        cfg.max_tracked_calls = 2;
        let mut vids = Vids::new(cfg);
        vids.enable_telemetry(16);
        let invites: Vec<_> = (0..4).map(|i| invite(&format!("quota-{i}"))).collect();
        for (i, inv) in invites.iter().enumerate() {
            process(
                &mut vids,
                &pkt(CALLER, CALLEE, Payload::Sip(inv.to_string())),
                SimTime::from_millis(i as u64 * 2_000),
            );
        }
        assert_eq!(vids.monitored_calls(), 2, "quota caps tracked calls");
        // Packets for an already-tracked call still progress it: the 200 OK
        // answers call 0, which remains monitored.
        let ok = invites[0].response(StatusCode::OK).with_to_tag("tt");
        process(
            &mut vids,
            &pkt(CALLEE, CALLER, Payload::Sip(ok.to_string())),
            SimTime::from_millis(9_000),
        );
        assert_eq!(vids.monitored_calls(), 2);
        let snap = vids
            .telemetry_snapshot(SimTime::from_secs(10))
            .expect("telemetry enabled above");
        assert_eq!(snap.merged().counter(Counter::CallQuotaDrops), 2);
        assert_eq!(snap.merged().counter(Counter::CallsCreated), 2);
    }

    #[test]
    fn paced_invites_do_not_alert() {
        let mut vids = Vids::new(Config::default());
        for i in 0..30u64 {
            let inv = invite(&format!("paced-{i}"));
            let alerts = process(
                &mut vids,
                &pkt(CALLER, CALLEE, Payload::Sip(inv.to_string())),
                SimTime::from_millis(i * 2_000),
            );
            assert!(alerts.is_empty(), "call {i}: {alerts:?}");
        }
    }

    #[test]
    fn rtp_after_bye_detected_through_cross_protocol_sync() {
        let mut vids = Vids::new(Config::default());
        clean_call(&mut vids, "byedos-1");
        // The call tore down at ~500 ms. After T (200 ms) expires, media
        // resumes — the BYE-DoS / billing-fraud signature.
        let spam = RtpPacket::new(18, 200, 9_999, 7).with_payload(vec![0; 10]);
        let alerts = process(
            &mut vids,
            &pkt(
                CALLER.with_port(20_000),
                CALLEE.with_port(30_000),
                Payload::Rtp(spam.to_bytes()),
            ),
            SimTime::from_millis(1_500),
        );
        assert!(
            alerts.iter().any(|a| a.label == labels::RTP_AFTER_BYE),
            "alerts: {alerts:?}"
        );
    }

    #[test]
    fn sync_disabled_ablation_misses_rtp_after_bye() {
        let mut cfg = Config::default();
        cfg.cross_protocol_sync = false;
        let mut vids = Vids::with_cost(cfg, CostModel::free());
        clean_call(&mut vids, "ablate-1");
        let spam = RtpPacket::new(18, 200, 9_999, 7).with_payload(vec![0; 10]);
        let alerts = process(
            &mut vids,
            &pkt(
                CALLER.with_port(20_000),
                CALLEE.with_port(30_000),
                Payload::Rtp(spam.to_bytes()),
            ),
            SimTime::from_millis(1_500),
        );
        assert!(
            !alerts.iter().any(|a| a.label == labels::RTP_AFTER_BYE),
            "without δ sync the RTP machine never armed timer T: {alerts:?}"
        );
    }

    #[test]
    fn media_spam_detected_mid_call() {
        let mut vids = Vids::new(Config::default());
        // Set up a call but don't tear it down: INVITE/200 then media.
        let inv = invite("spam-1");
        process(
            &mut vids,
            &pkt(CALLER, CALLEE, Payload::Sip(inv.to_string())),
            SimTime::ZERO,
        );
        let answer = SessionDescription::audio_offer("bob", "10.2.0.10", 30_000, &[Codec::G729]);
        let ok = inv
            .response(StatusCode::OK)
            .with_to_tag("tt")
            .with_body(vids_sdp::MIME_TYPE, answer.to_string());
        process(
            &mut vids,
            &pkt(CALLEE, CALLER, Payload::Sip(ok.to_string())),
            SimTime::from_millis(50),
        );
        let legit = RtpPacket::new(18, 100, 800, 7).with_payload(vec![0; 10]);
        process(
            &mut vids,
            &pkt(
                CALLER.with_port(20_000),
                CALLEE.with_port(30_000),
                Payload::Rtp(legit.to_bytes()),
            ),
            SimTime::from_millis(100),
        );
        // Spoofed packet: same SSRC, big jumps (paper Fig. 6).
        let spam = RtpPacket::new(18, 100 + 200, 800 + 50_000, 7).with_payload(vec![0; 10]);
        let alerts = process(
            &mut vids,
            &pkt(
                CALLER.with_port(20_000),
                CALLEE.with_port(30_000),
                Payload::Rtp(spam.to_bytes()),
            ),
            SimTime::from_millis(110),
        );
        assert!(alerts.iter().any(|a| a.label == labels::MEDIA_SPAM));
    }

    #[test]
    fn unknown_call_bye_is_flagged() {
        let mut vids = Vids::new(Config::default());
        let inv = invite("ghost");
        let bye = Request::in_dialog(Method::Bye, &inv, 2, Some("tt"));
        let alerts = process(
            &mut vids,
            &pkt(CALLER, CALLEE, Payload::Sip(bye.to_string())),
            SimTime::ZERO,
        );
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::Deviation);
        assert!(alerts[0].label.contains("unassociated-request"));
        assert_eq!(vids.counters().unassociated_sip_requests, 1);
    }

    #[test]
    fn response_flood_triggers_drdos_alert() {
        let mut vids = Vids::new(Config::default());
        let n = vids.config().response_flood_n;
        let inv = invite("never-seen");
        let ok = inv.response(StatusCode::OK);
        let mut raised = Vec::new();
        for i in 0..=n {
            raised.extend(process(
                &mut vids,
                &pkt(CALLEE, CALLER, Payload::Sip(ok.to_string())),
                SimTime::from_millis(i * 5),
            ));
        }
        assert!(
            raised.iter().any(|a| a.label == labels::RESPONSE_FLOOD),
            "alerts: {raised:?}"
        );
        assert!(vids.counters().unassociated_sip_responses > n);
    }

    #[test]
    fn malformed_traffic_is_flagged_once() {
        let mut vids = Vids::new(Config::default());
        let junk = pkt(CALLER, CALLEE, Payload::Sip("garbage".to_owned()));
        let a1 = process(&mut vids, &junk, SimTime::ZERO);
        let a2 = process(&mut vids, &junk, SimTime::from_millis(1));
        assert_eq!(a1.len(), 1);
        assert!(a2.is_empty(), "dedup suppresses repeats");
        assert_eq!(vids.counters().malformed, 2);
    }

    fn register_packet(src: Address, contact_ip: &str, expires: u32) -> Packet {
        use vids_sip::headers::{CSeq as SipCSeq, Header, NameAddr, Via};
        let aor = SipUri::new("roamer", "b.example.com");
        let mut req = vids_sip::Request::new(Method::Register, SipUri::host_only("b.example.com"));
        req.headers
            .push(Header::Via(Via::udp(src.ip_string(), 5060, "z9hG4bK-r1")));
        req.headers
            .push(Header::From(NameAddr::new(aor.clone()).with_tag("rt")));
        req.headers.push(Header::To(NameAddr::new(aor)));
        req.headers.push(Header::CallId("reg-roamer".to_owned()));
        req.headers
            .push(Header::CSeq(SipCSeq::new(1, Method::Register)));
        req.headers.push(Header::Contact(NameAddr::new(SipUri::new(
            "roamer", contact_ip,
        ))));
        req.headers.push(Header::Expires(expires));
        req.headers.push(Header::ContentLength(0));
        pkt(src, CALLEE, Payload::Sip(req.to_string()))
    }

    #[test]
    fn perimeter_register_is_tracked_not_flagged() {
        let mut vids = Vids::new(Config::default());
        let owner = Address::new(10, 0, 0, 20, 5060);
        let alerts = process(
            &mut vids,
            &register_packet(owner, "10.0.0.20", 3600),
            SimTime::ZERO,
        );
        assert!(alerts.is_empty(), "{alerts:?}");
        // Refresh from the same source: still clean.
        let alerts = process(
            &mut vids,
            &register_packet(owner, "10.0.0.20", 3600),
            SimTime::from_secs(60),
        );
        assert!(alerts.is_empty());
        assert_eq!(vids.counters().unassociated_sip_requests, 0);
    }

    #[test]
    fn registration_hijack_from_foreign_source_is_detected() {
        let mut vids = Vids::new(Config::default());
        let owner = Address::new(10, 0, 0, 20, 5060);
        let attacker = Address::new(10, 0, 0, 66, 5060);
        process(
            &mut vids,
            &register_packet(owner, "10.0.0.20", 3600),
            SimTime::ZERO,
        );
        let alerts = process(
            &mut vids,
            &register_packet(attacker, "10.0.0.66", 3600),
            SimTime::from_secs(10),
        );
        assert!(
            alerts
                .iter()
                .any(|a| a.label == labels::REGISTRATION_HIJACK),
            "{alerts:?}"
        );
    }

    #[test]
    fn foreign_unregister_is_detected() {
        let mut vids = Vids::new(Config::default());
        let owner = Address::new(10, 0, 0, 20, 5060);
        let attacker = Address::new(10, 0, 0, 66, 5060);
        process(
            &mut vids,
            &register_packet(owner, "10.0.0.20", 3600),
            SimTime::ZERO,
        );
        let alerts = process(
            &mut vids,
            &register_packet(attacker, "10.0.0.20", 0),
            SimTime::from_secs(10),
        );
        assert!(
            alerts
                .iter()
                .any(|a| a.label == labels::REGISTRATION_HIJACK),
            "{alerts:?}"
        );
    }

    #[test]
    fn memory_is_accounted_per_call() {
        let mut vids = Vids::new(Config::default());
        let empty = vids.memory_bytes();
        for i in 0..50 {
            let inv = invite(&format!("mem-{i}"));
            process(
                &mut vids,
                &pkt(CALLER, CALLEE, Payload::Sip(inv.to_string())),
                SimTime::from_millis(i * 2_000),
            );
        }
        let full = vids.memory_bytes();
        assert_eq!(vids.monitored_calls(), 50);
        let per_call = (full - empty) / 50;
        assert!((100..4_000).contains(&per_call), "per-call {per_call} B");
    }

    #[test]
    fn sink_receives_what_the_persistent_log_records() {
        let mut vids = Vids::new(Config::default());
        let junk = pkt(CALLER, CALLEE, Payload::Sip("garbage".to_owned()));
        let alerts = process(&mut vids, &junk, SimTime::ZERO);
        assert_eq!(alerts.len(), 1);
        assert_eq!(vids.alerts().len(), 1);
        assert_eq!(alerts[0].label, vids.alerts()[0].label);
    }

    #[test]
    fn telemetry_mirrors_counters_and_alerts_carry_traces() {
        let mut vids = Vids::new(Config::default());
        let registry = vids.enable_telemetry(64);
        clean_call(&mut vids, "tel-1");
        // RTP after the BYE: the cross-protocol attack signature.
        let spam = RtpPacket::new(18, 200, 9_999, 7).with_payload(vec![0; 10]);
        let alerts = process(
            &mut vids,
            &pkt(
                CALLER.with_port(20_000),
                CALLEE.with_port(30_000),
                Payload::Rtp(spam.to_bytes()),
            ),
            SimTime::from_millis(1_500),
        );
        let attack = alerts
            .iter()
            .find(|a| a.label == labels::RTP_AFTER_BYE)
            .expect("attack detected");
        assert!(
            !attack.trace.is_empty(),
            "alert should carry its call's transition history"
        );
        assert!(
            attack.trace.iter().all(|line| line.starts_with("t=")),
            "trace lines are rendered records: {:?}",
            attack.trace
        );

        let snap = vids
            .telemetry_snapshot(SimTime::from_millis(1_500))
            .expect("standalone engine owns its registry");
        let m = snap.merged();
        let c = vids.counters();
        assert_eq!(m.counter(Counter::SipPackets), c.sip_packets);
        assert_eq!(m.counter(Counter::RtpPackets), c.rtp_packets);
        assert!(m.counter(Counter::Transitions) > 0);
        assert!(
            m.counter(Counter::SyncDeliveries) > 0,
            "δ sync events flow in a clean call"
        );
        assert_eq!(m.counter(Counter::CallsCreated), 1);
        assert_eq!(m.counter(Counter::AlertsAttack), 1);
        assert_eq!(m.gauge(vids_telemetry::Gauge::LiveCalls), 1);
        assert!(m.gauge(vids_telemetry::Gauge::MemoryBytes) > 0);
        // Same registry handle sees the same totals.
        assert_eq!(
            registry.shard(0).get(Counter::Transitions),
            m.counter(Counter::Transitions)
        );
    }

    #[test]
    fn telemetry_off_engine_emits_empty_traces() {
        let mut vids = Vids::new(Config::default());
        let junk = pkt(CALLER, CALLEE, Payload::Sip("garbage".to_owned()));
        let alerts = process(&mut vids, &junk, SimTime::ZERO);
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].trace.is_empty());
        assert!(vids.telemetry_snapshot(SimTime::ZERO).is_none());
    }

    #[test]
    fn monitor_trait_drives_the_engine() {
        let mut vids = Vids::new(Config::default());
        let monitor: &mut dyn Monitor = &mut vids;
        let mut sink = CollectSink::new();
        let junk = pkt(CALLER, CALLEE, Payload::Sip("garbage".to_owned()));
        monitor.process(&junk, SimTime::ZERO, &mut sink);
        monitor.tick(SimTime::from_secs(1), &mut sink);
        assert_eq!(sink.len(), 1);
        assert_eq!(monitor.alerts().len(), 1);
        assert_eq!(monitor.counters().malformed, 1);
        assert!(monitor.memory_bytes() < 1_000);
    }
}
