//! The per-call SIP signaling machine (Fig. 2 / Fig. 5, SIP side).
//!
//! States follow the paper's narrative: `INIT → INVITE_RCVD → PROCEEDING →
//! CALL_ESTABLISHED → CALL_TEARDOWN → TERMINATED`, with `CANCELLING` and
//! `FAILED` side paths and three annotated attack states (call hijack,
//! spoofed BYE, spoofed CANCEL). The machine is written from the monitor's
//! perspective: it observes both directions of the perimeter traffic.

use vids_efsm::machine::{ActionCtx, MachineDef, PredicateCtx};
use vids_efsm::value::Value;
use vids_efsm::{sym, Event, Sym};

use crate::alert::labels;
use crate::config::Config;
use crate::machines::{
    DELTA_BYE, DELTA_OPEN, DELTA_REOPEN, DELTA_UPDATE, RTP_MACHINE, SIP_MACHINE,
};

/// Timer name for the teardown/failure linger.
pub const TIMER_LINGER: &str = "T_linger";

/// The empty string as a `Value`, the default for absent textual args.
/// Compares equal to both `Str("")` and `Sym("")`.
static EMPTY_VAL: Value = Value::Sym(sym::EMPTY);

/// Copies a textual argument out of the event (cheap for interned args,
/// which is everything the classifier produces), defaulting to `""`.
fn arg_or_empty(ev: &Event, name: Sym) -> Value {
    ev.arg(name).cloned().unwrap_or(Value::Sym(sym::EMPTY))
}

fn store_invite_vars(ctx: &mut ActionCtx<'_>) {
    // Local variables (Fig. 2: Call-ID, branch, tags, endpoints).
    let ev = ctx.event;
    ctx.locals
        .set(sym::L_CALL_ID, arg_or_empty(ev, sym::CALL_ID));
    ctx.locals.set(sym::L_BRANCH, arg_or_empty(ev, sym::BRANCH));
    ctx.locals
        .set(sym::L_FROM_TAG, arg_or_empty(ev, sym::FROM_TAG));
    ctx.locals
        .set(sym::L_CALLER_IP, arg_or_empty(ev, sym::SRC_IP));
    ctx.locals
        .set(sym::L_CALLEE_IP, arg_or_empty(ev, sym::DST_IP));
    // Global variables: the caller's offered media coordinates.
    if ev.bool_arg(sym::HAS_SDP) {
        ctx.globals
            .set(sym::G_CALLER_MEDIA_IP, arg_or_empty(ev, sym::SDP_IP));
        ctx.globals.set(
            sym::G_CALLER_MEDIA_PORT,
            ev.uint_arg(sym::SDP_PORT).unwrap_or(0),
        );
        ctx.globals
            .set(sym::G_CODEC_PT, ev.uint_arg(sym::SDP_PT).unwrap_or(255));
    }
}

fn store_answer_vars(ctx: &mut ActionCtx<'_>) {
    let ev = ctx.event;
    ctx.locals.set(sym::L_TO_TAG, arg_or_empty(ev, sym::TO_TAG));
    if ev.bool_arg(sym::HAS_SDP) {
        ctx.globals
            .set(sym::G_CALLEE_MEDIA_IP, arg_or_empty(ev, sym::SDP_IP));
        ctx.globals.set(
            sym::G_CALLEE_MEDIA_PORT,
            ev.uint_arg(sym::SDP_PORT).unwrap_or(0),
        );
    }
}

fn is_invite_cseq(ctx: &PredicateCtx<'_>) -> bool {
    ctx.event.sym_arg(sym::CSEQ_METHOD) == Some(sym::METHOD_INVITE)
}

fn is_cancel_cseq(ctx: &PredicateCtx<'_>) -> bool {
    ctx.event.sym_arg(sym::CSEQ_METHOD) == Some(sym::METHOD_CANCEL)
}

fn is_bye_cseq(ctx: &PredicateCtx<'_>) -> bool {
    ctx.event.sym_arg(sym::CSEQ_METHOD) == Some(sym::METHOD_BYE)
}

/// Whether the event's To tag is absent or empty (initial-INVITE shape).
fn to_tag_empty(ctx: &PredicateCtx<'_>) -> bool {
    ctx.event.arg(sym::TO_TAG).is_none_or(|v| *v == EMPTY_VAL)
}

/// Whether the event's From/To tags identify the monitored dialog, in
/// either direction. Early in the dialog the To tag may still be unknown
/// to the monitor; an empty stored tag matches anything. `Value`
/// comparisons here are O(1) symbol-id compares for interned tags.
fn tags_consistent(ctx: &PredicateCtx<'_>) -> bool {
    let from = ctx.event.arg(sym::FROM_TAG).unwrap_or(&EMPTY_VAL);
    let to = ctx.event.arg(sym::TO_TAG).unwrap_or(&EMPTY_VAL);
    let l_from = ctx.locals.get(sym::L_FROM_TAG).unwrap_or(&EMPTY_VAL);
    let l_to = ctx.locals.get(sym::L_TO_TAG).unwrap_or(&EMPTY_VAL);
    let m = |a: &Value, b: &Value| *a == EMPTY_VAL || *b == EMPTY_VAL || a == b;
    (m(l_from, from) && m(l_to, to)) || (m(l_from, to) && m(l_to, from))
}

/// Whether an SDP body (if present) keeps media on the negotiated parties.
///
/// The comparison uses the media addresses the parties themselves declared
/// in earlier SDP bodies (the call-global variables) — *not* the packet's
/// source/destination, which at the monitoring point are proxy hops.
fn sdp_on_dialog_parties(ctx: &PredicateCtx<'_>) -> bool {
    if !ctx.event.bool_arg(sym::HAS_SDP) {
        return true;
    }
    let sdp_ip = ctx.event.arg(sym::SDP_IP).unwrap_or(&EMPTY_VAL);
    let caller = ctx
        .globals
        .get(sym::G_CALLER_MEDIA_IP)
        .unwrap_or(&EMPTY_VAL);
    let callee = ctx
        .globals
        .get(sym::G_CALLEE_MEDIA_IP)
        .unwrap_or(&EMPTY_VAL);
    sdp_ip == caller || sdp_ip == callee
}

/// Builds the SIP call machine.
pub fn sip_call_machine(config: &Config) -> MachineDef {
    let linger_ms = config.teardown_linger.as_millis();
    let mut def = MachineDef::new(SIP_MACHINE);

    let init = def.add_state("INIT");
    let invite_rcvd = def.add_state("INVITE_RCVD");
    let proceeding = def.add_state("PROCEEDING");
    let established = def.add_state("CALL_ESTABLISHED");
    let cancelling = def.add_state("CANCELLING");
    let teardown = def.add_state("CALL_TEARDOWN");
    let failed = def.add_state("FAILED");
    let terminated = def.add_state("TERMINATED");
    let hijack = def.add_state("HIJACK_DETECTED");
    let spoofed_bye = def.add_state("SPOOFED_BYE_DETECTED");
    let spoofed_cancel = def.add_state("SPOOFED_CANCEL_DETECTED");

    def.mark_final(terminated);
    def.mark_attack(hijack, labels::CALL_HIJACK);
    def.mark_attack(spoofed_bye, labels::SPOOFED_BYE);
    def.mark_attack(spoofed_cancel, labels::SPOOFED_CANCEL);

    // ---- INIT ----------------------------------------------------------
    def.add_transition(init, "SIP.INVITE", invite_rcvd)
        .predicate(to_tag_empty)
        .action(|ctx| {
            store_invite_vars(ctx);
            ctx.send_sync(RTP_MACHINE, Event::sync(DELTA_OPEN));
        })
        .label("call setup request");

    // ---- INVITE_RCVD ---------------------------------------------------
    def.add_transition(invite_rcvd, "SIP.INVITE", invite_rcvd)
        .predicate(to_tag_empty)
        .label("INVITE retransmission");
    def.add_transition(invite_rcvd, "SIP.1xx", proceeding)
        .action(|ctx| {
            let tag = arg_or_empty(ctx.event, sym::TO_TAG);
            if tag != EMPTY_VAL {
                ctx.locals.set(sym::L_TO_TAG, tag);
            }
        })
        .label("ringing");
    def.add_transition(invite_rcvd, "SIP.2xx", established)
        .predicate(is_invite_cseq)
        .action(|ctx| {
            store_answer_vars(ctx);
            ctx.send_sync(RTP_MACHINE, Event::sync(DELTA_UPDATE));
        })
        .label("answered without ringing");
    def.add_transition(invite_rcvd, "SIP.failure", failed)
        .predicate(is_invite_cseq)
        .action(|ctx| {
            ctx.set_timer(TIMER_LINGER, 8_000);
            ctx.send_sync(RTP_MACHINE, Event::sync(DELTA_BYE));
        })
        .label("call rejected");
    def.add_transition(invite_rcvd, "SIP.CANCEL", cancelling)
        .predicate(tags_consistent)
        .label("setup cancelled");
    def.add_transition(invite_rcvd, "SIP.CANCEL", spoofed_cancel)
        .predicate(|ctx| !tags_consistent(ctx))
        .label("CANCEL with foreign dialog tags");

    // ---- PROCEEDING ----------------------------------------------------
    def.add_transition(proceeding, "SIP.1xx", proceeding)
        .label("more ringing");
    def.add_transition(proceeding, "SIP.INVITE", proceeding)
        .predicate(to_tag_empty)
        .label("INVITE retransmission");
    def.add_transition(proceeding, "SIP.2xx", established)
        .predicate(is_invite_cseq)
        .action(|ctx| {
            store_answer_vars(ctx);
            ctx.send_sync(RTP_MACHINE, Event::sync(DELTA_UPDATE));
        })
        .label("call answered");
    def.add_transition(proceeding, "SIP.failure", failed)
        .predicate(is_invite_cseq)
        .action(|ctx| {
            ctx.set_timer(TIMER_LINGER, 8_000);
            ctx.send_sync(RTP_MACHINE, Event::sync(DELTA_BYE));
        })
        .label("call rejected");
    def.add_transition(proceeding, "SIP.CANCEL", cancelling)
        .predicate(tags_consistent)
        .label("setup cancelled");
    def.add_transition(proceeding, "SIP.CANCEL", spoofed_cancel)
        .predicate(|ctx| !tags_consistent(ctx))
        .label("CANCEL with foreign dialog tags");

    // ---- CANCELLING ----------------------------------------------------
    def.add_transition(cancelling, "SIP.2xx", cancelling)
        .predicate(is_cancel_cseq)
        .label("CANCEL confirmed");
    def.add_transition(cancelling, "SIP.1xx", cancelling);
    def.add_transition(cancelling, "SIP.CANCEL", cancelling)
        .label("CANCEL retransmission");
    def.add_transition(cancelling, "SIP.failure", failed)
        .predicate(is_invite_cseq)
        .action(|ctx| {
            ctx.set_timer(TIMER_LINGER, 8_000);
            ctx.send_sync(RTP_MACHINE, Event::sync(DELTA_BYE));
        })
        .label("487 for cancelled INVITE");
    def.add_transition(cancelling, "SIP.ACK", terminated)
        .label("cancelled call acknowledged");

    // ---- CALL_ESTABLISHED ----------------------------------------------
    def.add_transition(established, "SIP.ACK", established)
        .label("three-way handshake completes");
    def.add_transition(established, "SIP.2xx", established)
        .label("200 retransmission");
    def.add_transition(established, "SIP.1xx", established)
        .label("stale provisional");
    // Legitimate re-INVITE: dialog tags match and media stays on parties.
    def.add_transition(established, "SIP.INVITE", established)
        .predicate(|ctx| !to_tag_empty(ctx) && tags_consistent(ctx) && sdp_on_dialog_parties(ctx))
        .action(|ctx| {
            let ev = ctx.event;
            if ev.bool_arg(sym::HAS_SDP) {
                // The media may move within the parties: refresh globals.
                ctx.globals
                    .set(sym::G_CALLER_MEDIA_IP, arg_or_empty(ev, sym::SDP_IP));
                ctx.globals.set(
                    sym::G_CALLER_MEDIA_PORT,
                    ev.uint_arg(sym::SDP_PORT).unwrap_or(0),
                );
                ctx.send_sync(RTP_MACHINE, Event::sync(DELTA_UPDATE));
            }
        })
        .label("re-INVITE within dialog");
    // Hijack: in-dialog INVITE pushing media off the negotiated parties.
    def.add_transition(established, "SIP.INVITE", hijack)
        .predicate(|ctx| !to_tag_empty(ctx) && tags_consistent(ctx) && !sdp_on_dialog_parties(ctx))
        .label("re-INVITE redirects media off-dialog");
    // Hijack: in-dialog INVITE with tags that never belonged to the dialog.
    def.add_transition(established, "SIP.INVITE", hijack)
        .predicate(|ctx| !to_tag_empty(ctx) && !tags_consistent(ctx))
        .label("re-INVITE with foreign dialog tags");
    // BYE with consistent tags: normal teardown begins. The RTP machine is
    // synchronized *before* the transition (Fig. 5).
    def.add_transition(established, "SIP.BYE", teardown)
        .predicate(tags_consistent)
        .action(|ctx| {
            ctx.send_sync(RTP_MACHINE, Event::sync(DELTA_BYE));
            ctx.set_timer(TIMER_LINGER, 8_000);
        })
        .label("call tear-down begins");
    def.add_transition(established, "SIP.BYE", spoofed_bye)
        .predicate(|ctx| !tags_consistent(ctx))
        .label("BYE with foreign dialog tags");
    // CANCEL after establishment is never legitimate (§3.1: "a CANCEL is
    // for an outstanding INVITE").
    def.add_transition(established, "SIP.CANCEL", spoofed_cancel)
        .label("CANCEL after establishment");

    // ---- CALL_TEARDOWN -------------------------------------------------
    def.add_transition(teardown, "SIP.BYE", teardown)
        .predicate(tags_consistent)
        .label("BYE retransmission");
    def.add_transition(teardown, "SIP.2xx", terminated)
        .predicate(is_bye_cseq)
        .action(|ctx| ctx.cancel_timer(TIMER_LINGER))
        .label("teardown confirmed");
    def.add_transition(teardown, TIMER_LINGER, terminated)
        .label("teardown response lost; linger expired");
    // A 401/486/… answering the BYE: the teardown was rejected (digest
    // authentication, §3.1's countermeasure) and the session lives on.
    def.add_transition(teardown, "SIP.failure", established)
        .predicate(is_bye_cseq)
        .action(|ctx| {
            ctx.cancel_timer(TIMER_LINGER);
            ctx.send_sync(RTP_MACHINE, Event::sync(DELTA_REOPEN));
        })
        .label("teardown rejected; session continues");

    // ---- FAILED ---------------------------------------------------------
    def.add_transition(failed, "SIP.ACK", terminated)
        .action(|ctx| ctx.cancel_timer(TIMER_LINGER))
        .label("failure acknowledged");
    def.add_transition(failed, "SIP.failure", failed)
        .label("failure retransmission");
    def.add_transition(failed, TIMER_LINGER, terminated)
        .label("ACK lost; linger expired");

    // ---- TERMINATED & attack states absorb stragglers -------------------
    def.add_transition(terminated, "*", terminated)
        .label("post-call straggler");
    def.add_transition(hijack, "*", hijack);
    def.add_transition(spoofed_bye, "*", spoofed_bye);
    def.add_transition(spoofed_cancel, "*", spoofed_cancel);

    let _ = linger_ms; // linger currently fixed at 8 s in the actions above

    // Predicates partition on dialog/CSeq ownership per state; verified by
    // the busy-call determinism test and the debug-build exhaustive scan.
    def.declare_deterministic();
    def.build().expect("sip machine definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vids_efsm::network::Network;

    fn sip_only_network() -> (Network, vids_efsm::network::MachineId) {
        let def = Arc::new(sip_call_machine(&Config::default()));
        let mut net = Network::new();
        net.enable_trace();
        let id = net.add_machine(def);
        (net, id)
    }

    fn invite_event() -> Event {
        Event::data("SIP.INVITE")
            .with_str("call_id", "c1")
            .with_str("from_tag", "ft")
            .with_str("to_tag", "")
            .with_str("branch", "z9hG4bKx")
            .with_str("src_ip", "10.1.0.10")
            .with_str("dst_ip", "10.2.0.10")
            .with_str("cseq_method", "INVITE")
            .with_uint("cseq", 1)
            .with_bool("has_sdp", true)
            .with_str("sdp_ip", "10.1.0.10")
            .with_uint("sdp_port", 20_000)
            .with_uint("sdp_pt", 18)
    }

    fn ok_event(cseq_method: &str) -> Event {
        Event::data("SIP.2xx")
            .with_str("call_id", "c1")
            .with_str("from_tag", "ft")
            .with_str("to_tag", "tt")
            .with_str("cseq_method", cseq_method)
            .with_uint("status", 200)
            .with_bool("has_sdp", cseq_method == "INVITE")
            .with_str("sdp_ip", "10.2.0.10")
            .with_uint("sdp_port", 30_000)
    }

    fn bye_event(from_tag: &str, to_tag: &str) -> Event {
        Event::data("SIP.BYE")
            .with_str("call_id", "c1")
            .with_str("from_tag", from_tag)
            .with_str("to_tag", to_tag)
            .with_str("cseq_method", "BYE")
    }

    #[test]
    fn normal_call_walks_to_terminated() {
        let (mut net, id) = sip_only_network();
        let ringing = Event::data("SIP.1xx")
            .with_str("to_tag", "tt")
            .with_str("cseq_method", "INVITE");
        for (i, ev) in [
            invite_event(),
            ringing,
            ok_event("INVITE"),
            Event::data("SIP.ACK")
                .with_str("from_tag", "ft")
                .with_str("to_tag", "tt"),
            bye_event("ft", "tt"),
            ok_event("BYE"),
        ]
        .into_iter()
        .enumerate()
        {
            let out = net.deliver(id, ev, i as u64 * 100);
            assert!(!out.is_suspicious(), "step {i}: {out:?}");
        }
        assert!(net.all_final());
        let path = net.trace().unwrap().path_of(SIP_MACHINE);
        assert_eq!(
            path,
            vec![
                "INIT",
                "INVITE_RCVD",
                "PROCEEDING",
                "CALL_ESTABLISHED",
                "CALL_ESTABLISHED",
                "CALL_TEARDOWN",
                "TERMINATED"
            ]
        );
    }

    #[test]
    fn invite_publishes_media_globals() {
        let (mut net, id) = sip_only_network();
        net.deliver(id, invite_event(), 0);
        assert_eq!(net.globals().str("g_caller_media_ip"), Some("10.1.0.10"));
        assert_eq!(net.globals().uint("g_caller_media_port"), Some(20_000));
        assert_eq!(net.globals().uint("g_codec_pt"), Some(18));
        net.deliver(id, ok_event("INVITE"), 10);
        assert_eq!(net.globals().str("g_callee_media_ip"), Some("10.2.0.10"));
        assert_eq!(net.globals().uint("g_callee_media_port"), Some(30_000));
    }

    #[test]
    fn spoofed_bye_with_foreign_tags_is_attacked() {
        let (mut net, id) = sip_only_network();
        net.deliver(id, invite_event(), 0);
        net.deliver(id, ok_event("INVITE"), 10);
        let out = net.deliver(id, bye_event("evil", "other"), 20);
        assert_eq!(out.alerts.len(), 1);
        assert_eq!(out.alerts[0].label, labels::SPOOFED_BYE);
    }

    #[test]
    fn well_spoofed_bye_passes_sip_layer() {
        // A BYE carrying the sniffed, correct tags is indistinguishable at
        // the SIP layer — the cross-protocol RTP machine must catch it.
        let (mut net, id) = sip_only_network();
        net.deliver(id, invite_event(), 0);
        net.deliver(id, ok_event("INVITE"), 10);
        let out = net.deliver(id, bye_event("ft", "tt"), 20);
        assert!(out.alerts.is_empty());
        assert!(!out.is_suspicious());
    }

    #[test]
    fn cancel_after_establishment_is_attack() {
        let (mut net, id) = sip_only_network();
        net.deliver(id, invite_event(), 0);
        net.deliver(id, ok_event("INVITE"), 10);
        let cancel = Event::data("SIP.CANCEL")
            .with_str("from_tag", "ft")
            .with_str("cseq_method", "CANCEL");
        let out = net.deliver(id, cancel, 20);
        assert_eq!(out.alerts[0].label, labels::SPOOFED_CANCEL);
    }

    #[test]
    fn cancel_during_setup_is_legitimate() {
        let (mut net, id) = sip_only_network();
        net.deliver(id, invite_event(), 0);
        let cancel = Event::data("SIP.CANCEL")
            .with_str("from_tag", "ft")
            .with_str("cseq_method", "CANCEL");
        let out = net.deliver(id, cancel, 5);
        assert!(!out.is_suspicious());
        // 487 + ACK complete the teardown.
        let terminated = Event::data("SIP.failure")
            .with_str("cseq_method", "INVITE")
            .with_uint("status", 487);
        net.deliver(id, terminated, 6);
        let out = net.deliver(id, Event::data("SIP.ACK"), 7);
        assert!(!out.is_suspicious());
        assert!(net.all_final());
    }

    #[test]
    fn hijacking_reinvite_is_attacked() {
        let (mut net, id) = sip_only_network();
        net.deliver(id, invite_event(), 0);
        net.deliver(id, ok_event("INVITE"), 10);
        // In-dialog re-INVITE redirecting media to a foreign host.
        let hijack = Event::data("SIP.INVITE")
            .with_str("call_id", "c1")
            .with_str("from_tag", "ft")
            .with_str("to_tag", "tt")
            .with_str("cseq_method", "INVITE")
            .with_bool("has_sdp", true)
            .with_str("sdp_ip", "10.0.0.10")
            .with_uint("sdp_port", 44_000);
        let out = net.deliver(id, hijack, 20);
        assert_eq!(out.alerts[0].label, labels::CALL_HIJACK);
    }

    #[test]
    fn legitimate_reinvite_is_accepted() {
        let (mut net, id) = sip_only_network();
        net.deliver(id, invite_event(), 0);
        net.deliver(id, ok_event("INVITE"), 10);
        let reinvite = Event::data("SIP.INVITE")
            .with_str("call_id", "c1")
            .with_str("from_tag", "ft")
            .with_str("to_tag", "tt")
            .with_str("cseq_method", "INVITE")
            .with_bool("has_sdp", true)
            .with_str("sdp_ip", "10.1.0.10")
            .with_uint("sdp_port", 22_000);
        let out = net.deliver(id, reinvite, 20);
        assert!(!out.is_suspicious());
        assert!(!out.nondeterministic);
        assert_eq!(net.globals().uint("g_caller_media_port"), Some(22_000));
    }

    #[test]
    fn unexpected_event_is_deviation() {
        let (mut net, id) = sip_only_network();
        // A BYE before any INVITE deviates from the specification.
        let out = net.deliver(id, bye_event("x", "y"), 0);
        assert_eq!(out.deviations.len(), 1);
    }

    #[test]
    fn lost_bye_ok_expires_via_linger_timer() {
        let (mut net, id) = sip_only_network();
        net.deliver(id, invite_event(), 0);
        net.deliver(id, ok_event("INVITE"), 10);
        net.deliver(id, bye_event("ft", "tt"), 20);
        assert!(!net.all_final());
        let out = net.advance_time(20 + 8_000);
        assert_eq!(out.transitions, 1);
        assert!(net.all_final());
    }

    #[test]
    fn rejected_call_terminates_after_ack() {
        let (mut net, id) = sip_only_network();
        net.deliver(id, invite_event(), 0);
        let busy = Event::data("SIP.failure")
            .with_str("cseq_method", "INVITE")
            .with_uint("status", 486);
        net.deliver(id, busy, 5);
        let out = net.deliver(id, Event::data("SIP.ACK"), 6);
        assert!(!out.is_suspicious());
        assert!(net.all_final());
    }
}
